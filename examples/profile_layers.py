"""Hook-based layer profiling demo: the paper's estimator from live traffic.

NetCut's profiler-based estimator needs one per-layer latency table per
original network. The paper builds it offline with CUDA events around every
layer; this demo builds the same table *online*, by attaching
:class:`repro.obs.LayerProfiler` to the network's forward hooks and letting
ordinary forward passes feed it — the way a production server would profile
itself while serving.

It then recomputes the paper's ratio-form TRN latency estimate

    Latency(TRN) = Latency(Net0) * (1 - sum(removed t_i) / sum(all t_i))

from the hook-built table at several cut depths and checks it against the
estimate from ``repro.device.profile_network`` (the offline table the rest
of the repo uses). The two tables come from independent noisy measurement
runs, so agreement within a small tolerance is the interesting result: the
profiling *chain* — hooks, warm-up discard, event-overhead inflation,
ratio form — reproduces the offline estimator end to end.

Run:  python examples/profile_layers.py
"""

import numpy as np

from repro.device import profile_network, xavier
from repro.estimators import ProfilerEstimator
from repro.obs import LayerProfiler
from repro.trim import enumerate_blockwise, removed_node_set
from repro.zoo import build_network

NETWORK = "mobilenet_v1_0.25"
RUNS = 80               # recorded forward passes
TOLERANCE = 0.05        # acceptance bound: obs vs device estimate

device = xavier()
net = build_network(NETWORK).build(0)

# profile through forward hooks: every forward pass is one observed run
# (forward_one = the explicit single-sample API; hooks force the
# interpreted walk, which is what the per-layer profiler needs)
with LayerProfiler(net, device, rng=0) as prof:
    prof.warm_up()      # jump the device's 200-run cold-start ramp
    x = np.zeros(net.input_shape, dtype=np.float32)
    for _ in range(RUNS):
        net.forward_one(x)
table = prof.table()

print(table.describe(top=10))
print(f"\n({prof.recorded_runs} recorded runs after a "
      f"{prof.warmup}-run warm-up discard)\n")

# the same table, built offline by the device's own profiler
offline = profile_network(net, device)
est_obs = ProfilerEstimator(net, table)
est_dev = ProfilerEstimator(net, offline)

print(f"{'cutpoint':24s} {'blocks':>6} {'obs est (ms)':>13} "
      f"{'device est (ms)':>16} {'apart':>7}")
worst = 0.0
for cut in enumerate_blockwise(net):
    removed = removed_node_set(net, cut.cut_node)
    a = est_obs.estimate(removed)
    b = est_dev.estimate(removed)
    rel = abs(a - b) / b
    worst = max(worst, rel)
    print(f"{cut.cut_node:24s} {cut.blocks_removed:>6d} {a:>13.4f} "
          f"{b:>16.4f} {100 * rel:>6.2f}%")

print(f"\nworst disagreement: {100 * worst:.2f}% "
      f"(tolerance {100 * TOLERANCE:.0f}%)")
assert worst < TOLERANCE, "hook-built table drifted from the device table"
print("hook-built table matches the offline profiler estimate.")
