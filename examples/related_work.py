"""Layer removal vs the related work, head to head (paper §II).

Runs the three methods the paper positions NetCut against, on the same
substrates, and prints a comparison at the robotic hand's 0.9 ms deadline:

- NetCut's TRN (static, hard latency bound, one retrain per network),
- BranchyNet early exiting on DenseNet (runtime, average-latency bound),
- NetAdapt channel pruning of MobileNetV1(0.5) (static, but one retrained
  candidate per layer per iteration).

Run:  python examples/related_work.py
"""

import numpy as np

from repro import Workbench
from repro.device import network_latency
from repro.extensions import NetAdaptConfig, build_branchy, run_netadapt
from repro.hand import DEFAULT_DEADLINE_MS


def main() -> None:
    wb = Workbench()
    train, test = wb.hands()
    exploration = wb.exploration()
    deadline = DEFAULT_DEADLINE_MS

    print(f"== NetCut (this paper) @ {deadline} ms ==")
    feasible = [r for r in exploration.records if r.latency_ms <= deadline]
    trn = max(feasible, key=lambda r: r.accuracy)
    print(f"  best TRN: {trn.trn_name}  acc={trn.accuracy:.4f}  "
          f"lat={trn.latency_ms:.3f} ms (hard bound)  "
          f"retrain cost≈{trn.train_hours:.2f} GPU-h")

    print("\n== BranchyNet early exiting (DenseNet-121, 4 exits) ==")
    branchy = build_branchy(wb.base("densenet121"), wb.device, train.x,
                            train.y, head_epochs=wb.config.head_epochs)
    print(f"  {'threshold':>9} {'accuracy':>9} {'avg_latency_ms':>15}")
    for t in np.linspace(0.2, 1.6, 8):
        acc, lat = branchy.evaluate(test.x, test.y, float(t))
        marker = "  <- avg meets deadline" if lat <= deadline else ""
        print(f"  {t:>9.2f} {acc:>9.4f} {lat:>15.3f}{marker}")
    print("  note: the bound is on *average* latency; per-frame worst case"
          " is the last exit")

    print("\n== NetAdapt channel pruning (MobileNetV1(0.5)) ==")
    trn0 = wb.transfer_model("mobilenet_v1_0.5")
    start = network_latency(trn0, wb.device).total_ms
    budget = 0.9 * start
    result = run_netadapt(
        trn0, budget, wb.device, train.x, train.y, test.x, test.y,
        NetAdaptConfig(step_ms=0.012, head_epochs_short=10,
                       head_epochs_final=wb.config.head_epochs),
        cost_model=wb.cost_model)
    print(f"  budget {budget:.3f} ms (from {start:.3f} ms): "
          f"acc={result.accuracy:.4f} lat={result.latency_ms:.3f} ms")
    print(f"  candidates retrained: {result.candidates_trained} "
          f"(≈{result.train_hours:.2f} GPU-h) across "
          f"{len(result.history)} iterations")
    rows = [r for r in exploration.for_base("mobilenet_v1_0.5")
            if r.latency_ms <= budget]
    same_budget = max(rows, key=lambda r: r.accuracy)
    print(f"  NetCut TRN at the same budget: {same_budget.trn_name} "
          f"acc={same_budget.accuracy:.4f} "
          f"(≈{same_budget.train_hours:.2f} GPU-h)")


if __name__ == "__main__":
    main()
