"""Quickstart: trim a pretrained network to meet a deadline.

This walks the core NetCut loop on a single network:

1. load a pretrained MobileNetV2 (pretrained on the synthetic ImageNet
   stand-in; cached on disk after the first run),
2. measure it on the simulated Jetson Xavier — it misses the 0.9 ms
   robotic-hand deadline,
3. let NetCut pick the cutpoint whose *estimated* latency first meets the
   deadline,
4. retrain the trimmed network (TRN) on the HANDS-like grasp dataset and
   report its accuracy and measured latency.

Run:  python examples/quickstart.py
"""

from repro.device import measure_latency, profile_network, xavier
from repro.estimators import ProfilerEstimator
from repro.hand import DEFAULT_DEADLINE_MS
from repro.metrics import mean_angular_similarity
from repro.data import make_hands_dataset
from repro.train import get_pretrained, record_gap_features, train_head_on_features
from repro.trim import build_trn, enumerate_blockwise, removed_node_set


def main() -> None:
    device = xavier()
    deadline = DEFAULT_DEADLINE_MS
    print(f"device: {device.name}   deadline: {deadline} ms")

    print("\n[1] loading pretrained mobilenet_v2_1.0 "
          "(first run pretrains it, ~3 min) ...")
    base = get_pretrained("mobilenet_v2_1.0", verbose=True)

    transfer = build_trn(base, enumerate_blockwise(base)[0].cut_node, 5)
    # the zero-cut transfer model is the "off-the-shelf" reference point
    full = measure_latency(base, device).mean_ms
    print(f"[2] off-the-shelf latency: {full:.3f} ms "
          f"-> {'meets' if full <= deadline else 'MISSES'} the deadline")

    print("[3] profiling once, then walking cutpoints until the estimate "
          "meets the deadline ...")
    table = profile_network(transfer, device)
    estimator = ProfilerEstimator(transfer, table)
    chosen = None
    for cut in enumerate_blockwise(base):
        est = estimator.estimate(removed_node_set(base, cut.cut_node))
        print(f"    remove {cut.blocks_removed:2d} block(s): "
              f"estimated {est:.3f} ms")
        if est <= deadline:
            chosen = cut
            break
    if chosen is None:
        raise SystemExit("no cutpoint meets the deadline")

    print(f"[4] retraining TRN at cutpoint {chosen.cut_node!r} "
          f"({chosen.blocks_removed} blocks removed) ...")
    data = make_hands_dataset(800, seed=1)
    train, test = data.split(0.75, rng=0)
    feats_train = record_gap_features(base, train.x, [chosen.cut_node])
    feats_test = record_gap_features(base, test.x, [chosen.cut_node])
    head = train_head_on_features(feats_train[chosen.cut_node], train.y, 5,
                                  epochs=50)
    accuracy = mean_angular_similarity(
        head.network.forward(feats_test[chosen.cut_node]), test.y)

    trn = build_trn(base, chosen.cut_node, 5)
    measured = measure_latency(trn, device).mean_ms
    print(f"\nresult: {trn.name}  latency {measured:.3f} ms "
          f"(deadline {deadline} ms)  angular-similarity accuracy "
          f"{accuracy:.3f}")


if __name__ == "__main__":
    main()
