"""Walk NetCut across a range of deadlines.

The paper fixes the deadline at the robotic hand's 0.9 ms; this example
shows how the selected architecture and cut depth change as the deadline
tightens or relaxes — the practical "give me the best network for *my*
budget" use of the methodology. It also prints the off-the-shelf choice at
each deadline so the TRN's accuracy gain is visible.

Run:  python examples/deadline_sweep.py
"""

from repro import Workbench
from repro.metrics import CandidatePoint, best_under_deadline

DEADLINES_MS = [0.3, 0.5, 0.7, 0.9, 1.2, 1.6, 2.2]


def main() -> None:
    wb = Workbench()
    exploration = wb.exploration()
    off_the_shelf = [
        CandidatePoint(r.base_name, r.latency_ms, r.accuracy)
        for r in exploration.originals()]

    print(f"{'deadline':>9} | {'off-the-shelf choice':>32} | "
          f"{'NetCut choice':>26} | {'gain':>7}")
    print("-" * 88)
    for deadline in DEADLINES_MS:
        baseline = best_under_deadline(off_the_shelf, deadline)
        result = wb.netcut("profiler", deadline_ms=deadline)
        feasible = [c for c in result.candidates if c.feasible]
        if baseline is None and not feasible:
            print(f"{deadline:7.1f}ms | {'-':>32} | {'-':>26} |")
            continue
        best = result.best
        base_txt = (f"{baseline.name} ({baseline.accuracy:.3f})"
                    if baseline else "none feasible")
        gain = ("n/a" if baseline is None else
                f"{100 * (best.accuracy - baseline.accuracy) / baseline.accuracy:+.1f}%")
        print(f"{deadline:7.1f}ms | {base_txt:>32} | "
              f"{best.trn_name} ({best.accuracy:.3f}) | {gain:>7}")


if __name__ == "__main__":
    main()
