"""The full deployment pipeline: deadline in, shippable network out.

Runs NetCut, validates the winner's *measured* latency, retrains and
grafts the head, INT8-quantizes with a calibration split, and writes the
result to a single ``.npz`` that reloads without any of the training code.

Run:  python examples/deploy_pipeline.py
"""

from repro import Workbench
from repro.device import network_latency
from repro.netcut import deploy
from repro.nn.serialize import load_network


def main() -> None:
    wb = Workbench()
    print("running the deployment pipeline (netcut -> validate -> retrain "
          "-> quantize -> serialise) ...")
    artifact = deploy(wb, quantize=True, save_path="deployed_trn.npz")

    print(f"\nselected:   {artifact.trn_name} (from {artifact.base_name})")
    print(f"latency:    {artifact.measured_latency_ms:.3f} ms "
          f"(deadline {artifact.deadline_ms} ms, "
          f"{'OK' if artifact.meets_deadline else 'VIOLATED'})")
    print(f"accuracy:   {artifact.accuracy:.4f} (fp32)  "
          f"{artifact.int8_accuracy:.4f} (int8)")
    int8_ms = network_latency(artifact.network, wb.device,
                              precision="int8").total_ms
    print(f"int8 model latency: {int8_ms:.3f} ms")

    loaded = load_network(artifact.path)
    print(f"\nserialised to {artifact.path}; reloaded "
          f"{loaded.name!r} with {loaded.total_params():,} parameters "
          f"and verified identical structure.")


if __name__ == "__main__":
    main()
