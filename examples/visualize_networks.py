"""Visualise the zoo and the TRN trade-off space without any plotting deps.

Exports Graphviz DOT files for each architecture (render with
``dot -Tsvg``) and prints the Fig. 6 trade-off scatter as a terminal plot,
with the deadline marked.

Run:  python examples/visualize_networks.py
"""

import os

from repro import Workbench
from repro.hand import DEFAULT_DEADLINE_MS
from repro.viz import scatter
from repro.zoo import NETWORKS, build_network


def main() -> None:
    os.makedirs("dot", exist_ok=True)
    for name in NETWORKS:
        net = build_network(name).build(0)
        path = os.path.join("dot", f"{name}.dot")
        with open(path, "w") as fh:
            fh.write(net.to_dot())
        print(f"wrote {path:36s} ({len(net.nodes):4d} nodes, "
              f"{len(net.block_ids()):3d} blocks)")

    print("\nTRN trade-off space (Fig. 6), deadline marked with '|':\n")
    wb = Workbench()
    exploration = wb.exploration()
    series = {}
    for r in exploration.records:
        series.setdefault(r.base_name, []).append((r.latency_ms, r.accuracy))
    print(scatter(series, xlabel="latency (ms)", ylabel="accuracy",
                  vline=DEFAULT_DEADLINE_MS))


if __name__ == "__main__":
    main()
