"""Closed-loop serving demo: a TRN ladder absorbing a traffic spike.

The paper stops at deployment — a single TRN that meets the 0.9 ms
prosthetic-hand deadline. This demo runs the step after that: serving.
It builds the full TRN ladder of MobileNetV1(0.5) on the simulated Jetson
Xavier and replays two seeded Poisson traces through the deadline-aware
server (EDF queue + admission control + micro-batching):

1. a fixed-rate sensor feed (the prosthetic hand's camera) the full TRN
   can handle — the ladder never moves;
2. open-loop Poisson traffic with a 4x burst in the middle — the server
   degrades to a shorter TRN for the duration of the spike and upgrades
   back when the pressure subsides, trading a little accuracy for deadline
   compliance instead of missing deadlines wholesale.

Everything runs over virtual time on the device model, so the demo is
deterministic and finishes in seconds.

Run:  python examples/serve_trace.py
"""

from repro.device import xavier
from repro.hand import DEFAULT_DEADLINE_MS
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import poisson_trace, uniform_trace
from repro.zoo import build_network


def run(server, trace, label):
    result = server.run_trace(trace)
    print(f"\n--- {label} ---")
    print(result.metrics.report())
    for t_ms, direction, frm, to in result.metrics.snapshot()["transitions"]:
        print(f"  t={t_ms:9.2f} ms  {direction:8s} {frm} -> {to}")
    print(f"final rung: {result.final_rung}")
    return result


def main() -> None:
    device = xavier()
    deadline = DEFAULT_DEADLINE_MS
    base = build_network("mobilenet_v1_0.5").build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5, max_rungs=6)
    print(f"device: {device.name}   deadline: {deadline} ms")
    print(f"TRN ladder for {base.name}:")
    print(ladder.describe())

    full_ms = ladder.rungs[0].estimate_ms(1)
    steady_rps = 0.5e3 / full_ms          # half the full TRN's capacity
    server = Server(ladder, ServerConfig(deadline_ms=deadline,
                                         execute=False, seed=0))

    calm = uniform_trace(1500, steady_rps, deadline, rng=0)
    result = run(server, calm,
                 f"fixed-rate sensor feed ({steady_rps:,.0f} req/s)")
    assert result.metrics.counters["degrade_events"].value == 0

    bursty = poisson_trace(4000, steady_rps, deadline, rng=0,
                           burst=(0.25, 0.55, 4.0))
    run(server, bursty,
        "Poisson traffic with a 4x burst over the middle 30% of requests")

    print("\nThe burst forces the ladder down to a shorter TRN; the quiet "
          "tail lets it climb back. Deadline misses stay rare either way — "
          "that is the point of serving a ladder instead of one TRN.")


if __name__ == "__main__":
    main()
