"""Scale-out demo: one TRN serving stack becomes a routed fleet.

Four acts, all on the virtual clock with fixed seeds (every run prints
identical numbers):

1. **Saturation** — a Poisson trace arrives ~40% faster than one
   Xavier-class replica can serve even fully degraded; nearly everything
   it admits misses the 3 ms deadline.
2. **Scale-out** — the same trace over 3 replicas, once per routing
   policy (round-robin, join-shortest-queue, deadline-aware
   power-of-two-choices), so the policies can be read side by side.
3. **Heterogeneous fleet** — one Xavier next to two slower Nano-class
   replicas; deadline-aware routing weighs each device's own latency
   estimate, so the Xavier soaks up most of the traffic instead of a
   third of it.
4. **Chaos** — a rung-failure scenario (repro.faults) kills one replica
   of three mid-trace; its breakers open, the router routes around it,
   and the conservation law ``completed + dropped == admitted`` still
   holds at drain.

Run:  python examples/cluster_serving.py
"""

from dataclasses import replace

from repro.cluster import Replica, Router, homogeneous_replicas, make_policy
from repro.device import nano, xavier
from repro.faults import build_scenario
from repro.serve import ServerConfig, TRNLadder
from repro.workload import poisson_trace
from repro.zoo import build_network

DEADLINE_MS = 3.0
REQUESTS = 2000
RATE_RPS = 44e3
SEED = 0

CONFIG = ServerConfig(deadline_ms=DEADLINE_MS, execute=False, seed=SEED,
                      queue_capacity=64, window=16, min_observations=8,
                      cooldown=8)


def row(label, result, trace):
    agg = result.metrics.aggregate()
    span_s = (trace[-1].arrival_ms - trace[0].arrival_ms) / 1e3
    admitted = agg.counters["admitted"].value
    print(f"  {label:24s} miss {100 * result.miss_rate:6.2f}%   "
          f"admitted {admitted / span_s:8,.0f}/s   "
          f"p99 {agg.latency.quantile(0.99):6.3f} ms   "
          f"unroutable {result.metrics.counters['no_replica'].value}")
    return result


def main() -> None:
    base = build_network("mobilenet_v1_0.5").build(0)
    spec = xavier()
    trace = poisson_trace(REQUESTS, RATE_RPS, DEADLINE_MS, rng=SEED)
    print(f"{REQUESTS} Poisson requests @ {RATE_RPS:,.0f} req/s, "
          f"deadline {DEADLINE_MS} ms, seed {SEED}")

    print("\n=== 1. one replica saturates")
    single = homogeneous_replicas(base, spec, 1, CONFIG, max_rungs=6)
    row("1x xavier", Router(single, make_policy("round-robin")).run(trace),
        trace)

    print("\n=== 2. three replicas, one policy at a time")
    for policy in ("round-robin", "jsq", "p2c-deadline"):
        fleet = homogeneous_replicas(base, spec, 3, CONFIG, max_rungs=6)
        row(f"3x xavier, {policy}",
            Router(fleet, make_policy(policy, SEED)).run(trace), trace)

    print("\n=== 3. heterogeneous fleet: 1 xavier + 2 nano")
    fleet = []
    for i, dev in enumerate((xavier(), nano(), nano())):
        ladder = TRNLadder.from_base(base, dev, num_classes=5, max_rungs=6)
        fleet.append(Replica(f"r{i}-{dev.name}", ladder,
                             replace(CONFIG, seed=SEED + i)))
    hetero_trace = poisson_trace(REQUESTS, 20e3, DEADLINE_MS, rng=SEED)
    hetero = row("p2c-deadline @ 20k rps",
                 Router(fleet, make_policy("p2c-deadline", SEED)).run(
                     hetero_trace), hetero_trace)
    for name, n in hetero.metrics.per_replica.items():
        print(f"    routed to {name:12s} {n:5d}")

    print("\n=== 4. kill one replica of three mid-trace")
    kill_trace = poisson_trace(REQUESTS, 30e3, DEADLINE_MS, rng=SEED)
    scenario = build_scenario("rung-failure", kill_trace[-1].arrival_ms,
                              seed=SEED)
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=False, seed=SEED,
                          resilience=True, queue_capacity=64, window=16,
                          min_observations=8, cooldown=8)
    fleet = homogeneous_replicas(base, spec, 3, config, max_rungs=6,
                                 faults={0: scenario.injector()})
    result = row("r0 killed, p2c routes on",
                 Router(fleet, make_policy("p2c-deadline", SEED)).run(
                     kill_trace), kill_trace)
    agg = result.metrics.aggregate().counters
    for name, n in result.metrics.per_replica.items():
        print(f"    routed to {name:4s} {n:5d}")
    print(f"    conservation: completed {agg['completed'].value} + dropped "
          f"{agg['dropped'].value} == admitted {agg['admitted'].value}: "
          f"{agg['completed'].value + agg['dropped'].value == agg['admitted'].value}")


if __name__ == "__main__":
    main()
