"""Chaos drill: the resilient serving engine surviving device faults.

The serving demos assume the device model behaves; this one breaks it on
purpose. Every scenario wraps the MobileNetV1(0.5) TRN ladder in a seeded
fault injector (repro.faults) and replays the same Poisson trace twice —
once through the undefended engine and once with resilience on (per-batch
timeouts with retry-on-a-faster-rung, per-rung circuit breakers with
half-open probes, last-resort degrade-to-fastest) — so the defense's
effect on the deadline-miss rate can be read side by side:

1. straggler-storm: 35% of inferences take 7-13x longer for the middle
   60% of the trace (scheduler preemption); timeouts cancel the
   stragglers and re-roll or re-route the batch.
2. rung-failure: the most accurate rung hard-fails mid-trace; its
   breaker opens, traffic shifts down the ladder, a half-open probe
   heals it when the window closes.
3. mixed: storm + thermal ramp + failing rung overlapping.

Everything is virtual-time and seeded: every run of this script prints
identical numbers, whatever PYTHONHASHSEED the interpreter drew.

Run:  python examples/chaos_serving.py
"""

from repro.device import xavier
from repro.faults import build_scenario
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import poisson_trace
from repro.zoo import build_network

DEADLINE_MS = 3.0
REQUESTS = 400
SEED = 0


def replay(ladder, trace, scenario, resilient):
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=False, seed=SEED,
                          resilience=resilient, exec_timeout_factor=1.5,
                          max_retries=4)
    server = Server(ladder, config, faults=scenario.injector())
    return server.run_trace(trace)


def main() -> None:
    device = xavier()
    base = build_network("mobilenet_v1_0.5").build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5, max_rungs=6)
    rate = 1e3 / ladder.rungs[0].estimate_ms(1)
    trace = poisson_trace(REQUESTS, rate, DEADLINE_MS, rng=SEED)
    span = trace[-1].arrival_ms
    print(f"device: {device.name}   deadline: {DEADLINE_MS} ms   "
          f"{REQUESTS} requests @ {rate:,.0f} req/s")

    for name in ("straggler-storm", "rung-failure", "mixed"):
        scenario = build_scenario(name, span, seed=SEED,
                                  rungs=(ladder.rungs[0].name,))
        print(f"\n=== {scenario.describe()}")
        for label, resilient in (("undefended", False), ("resilient", True)):
            try:
                result = replay(ladder, trace, scenario, resilient)
            except Exception as exc:      # the undefended engine may crash
                print(f"  {label:11s} CRASHED: {exc}")
                continue
            c = result.metrics.counters
            print(f"  {label:11s} miss {100 * result.metrics.miss_rate:6.2f}%"
                  f"   timeouts {c['timeouts'].value:3d}"
                  f"   retries {c['retries'].value:3d}"
                  f"   breaker opens {c['breaker_opens'].value:2d}"
                  f"   dropped {c['dropped'].value:3d}")


if __name__ == "__main__":
    main()
