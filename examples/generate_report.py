"""Generate the full reproduction report as markdown.

Runs (or loads from cache) every experiment and writes
``netcut_report.md`` in the current directory.

Run:  python examples/generate_report.py
"""

from repro import Workbench
from repro.report import build_report


def main() -> None:
    wb = Workbench()
    report = build_report(wb)
    path = "netcut_report.md"
    with open(path, "w") as fh:
        fh.write(report)
    print(f"wrote {path} ({len(report.splitlines())} lines)")
    print("\n".join(report.splitlines()[:30]))
    print("...")


if __name__ == "__main__":
    main()
