"""Workload demo: production traffic, tenant SLOs, record/replay, fluid.

Four acts, all on the virtual clock with fixed seeds (every run prints
identical numbers):

1. **Flash crowd, plain EDF** — a diurnal baseline with a batch-heavy
   flash crowd riding on top overloads one pinned-rung replica; old
   batch work buries the interactive tenant's 3 ms deadline even though
   the EDF queue orders admitted work optimally.
2. **Weighted-fair admission** — the same trace with a
   ``WeightedFairAdmission`` policy at the door: batch traffic is
   throttled to its weight share while the queue is contended, and the
   interactive tenant's miss rate collapses.
3. **Record/replay** — the fair run is serialized (requests + outcomes)
   to versioned JSONL and replayed through a fresh server; the replay is
   verified outcome-by-outcome against the recording.
4. **Fluid mode** — the analytical model predicts admitted throughput
   and per-tenant miss rate for the same scenario in milliseconds, then
   plans the smallest fleet that holds every tenant under a 2% miss
   rate — fleet sizes the discrete event loop never has to simulate.

Run:  python examples/workload_replay.py
"""

import os
import tempfile

from repro.device import xavier
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import (
    DiurnalCycle,
    FlashCrowd,
    FluidModel,
    Superposition,
    TenantClass,
    TenantMix,
    WeightedFairAdmission,
    generate_trace,
    load_trace,
    record_run,
    verify_replay,
)
from repro.zoo import build_network

HORIZON_MS = 300.0
SEED = 0

# interactive: a sliver of the traffic, a tight SLO, most of the weight;
# batch: the bulk of the traffic and the whole flash crowd's appetite
TENANTS = TenantMix([
    TenantClass("interactive", deadline_ms=3.0, weight=3.0, share=0.10,
                priority=1),
    TenantClass("batch", deadline_ms=12.0, weight=1.0, share=0.90,
                priority=0),
])

PROCESS = Superposition(
    DiurnalCycle(3000, amplitude=0.3, period_ms=HORIZON_MS),
    FlashCrowd(1000, peak_multiplier=8.0, start_ms=0.3 * HORIZON_MS,
               ramp_ms=0.05 * HORIZON_MS, hold_ms=0.25 * HORIZON_MS,
               decay_ms=0.1 * HORIZON_MS))

# pinned rung (adaptive=False): the ladder escaping down would mask the
# admission story this demo is about
CONFIG = ServerConfig(deadline_ms=3.0, execute=False, seed=SEED,
                      queue_capacity=64, adaptive=False)


def tenant_row(result):
    snap = result.metrics.snapshot()
    for name, b in snap["tenants"].items():
        print(f"  {name:12s} {b['arrived']:5d} arrived  "
              f"{b['admitted']:5d} admitted  {b['rejected']:5d} rejected  "
              f"miss {100 * b['miss_rate']:6.2f}%")


def main() -> None:
    base = build_network("mobilenet_v1_0.5").build(0)
    ladder = TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)
    trace = generate_trace(PROCESS, HORIZON_MS, tenants=TENANTS, rng=SEED)
    print(f"workload: {PROCESS.describe()}")
    print(f"{len(trace)} requests over {HORIZON_MS:.0f} ms "
          f"({len(trace) * 1e3 / HORIZON_MS:,.0f} rps offered)\n"
          + TENANTS.describe())

    print("\n=== 1. plain EDF: the flash crowd buries the interactive SLO")
    plain = Server(ladder, CONFIG).run_trace(trace)
    tenant_row(plain)

    print("\n=== 2. weighted-fair admission protects it on the same trace")
    policy = WeightedFairAdmission(TENANTS, watermark=0.25)
    fair_config = ServerConfig(admission_policy=policy,
                               **{k: getattr(CONFIG, k)
                                  for k in ("deadline_ms", "execute", "seed",
                                            "queue_capacity", "adaptive")})
    fair = Server(ladder, fair_config).run_trace(trace)
    tenant_row(fair)

    print("\n=== 3. record the fair run, replay it, verify byte-for-byte")
    path = os.path.join(tempfile.mkdtemp(), "flash_crowd.jsonl")
    record_run(path, trace, fair.responses,
               meta={"scenario": "diurnal+flash", "seed": SEED})
    recorded = load_trace(path)
    print(f"  recorded: {recorded.describe()}")
    replayed = Server(ladder, fair_config).run_trace(recorded.requests)
    problems = verify_replay(recorded, replayed.responses)
    print(f"  replay divergences: {len(problems)} "
          f"({'OK' if not problems else problems[0]})")

    print("\n=== 4. fluid mode: the same scenario, analytically")
    # plain-admission model: act 1's overload, predicted in milliseconds
    # (compare the per-tenant miss rates against the discrete run above)
    fluid = FluidModel.from_ladder(ladder, CONFIG, tenants=TENANTS)
    print(fluid.solve(PROCESS, HORIZON_MS).report())
    n = fluid.plan_fleet(PROCESS, HORIZON_MS, target_miss_rate=0.02)
    print(f"\n  smallest fleet with every tenant at miss <= 2%: "
          f"{n} replica(s)")
    print(fluid.solve(PROCESS, HORIZON_MS, replicas=n).report())


if __name__ == "__main__":
    main()
