"""The full robotic prosthetic hand application (paper §III), end to end.

Builds the complete control loop the paper motivates NetCut with:

- the control-loop timing budget, from which the 0.9 ms visual deadline
  falls out,
- an EMG classifier trained on synthetic Myo-band windows,
- a visual classifier: the TRN NetCut selects under the deadline,
- probability fusion of both modalities over the frames of a reach,
- the actuation command derived from the fused grasp distribution.

It then simulates a batch of reach episodes and reports decision quality
with vision+EMG fusion versus EMG alone — reproducing the paper's point
that the visual classifier in the loop is crucial.

Run:  python examples/prosthetic_hand.py
"""

import numpy as np

from repro import Workbench
from repro.data import grasp_distribution, render_object, sample_object
from repro.hand import (
    ActuationModel,
    ControlLoopSpec,
    EMGClassifier,
    emg_features,
    make_emg_dataset,
    simulate_reach,
    synth_emg_window,
)
from repro.metrics import angular_similarity
from repro.train import record_gap_features, train_head_on_features


def main() -> None:
    spec = ControlLoopSpec()
    deadline = spec.visual_deadline_ms()
    print("control loop:")
    print(f"  camera period     {spec.frame_period_ms:.2f} ms")
    print(f"  preprocessing     {spec.preprocess_ms:.2f} ms")
    print(f"  EMG processing    {spec.emg_processing_ms:.2f} ms")
    print(f"  fusion            {spec.fusion_ms:.2f} ms")
    print(f"  write-back        {spec.writeback_ms:.2f} ms")
    print(f"  safety margin     {spec.safety_margin_ms:.2f} ms")
    print(f"  => visual classifier deadline: {deadline:.2f} ms")

    print("\ntraining the EMG classifier on synthetic Myo windows ...")
    x_emg, y_emg = make_emg_dataset(400, rng=0)
    emg_clf = EMGClassifier(rng=0).fit(x_emg, y_emg, epochs=30)

    print("selecting the visual classifier with NetCut (profiler "
          "estimator) ...")
    wb = Workbench()
    result = wb.netcut("profiler", deadline_ms=deadline)
    # deployment validation: NetCut's picks meet the deadline by
    # *estimate*; before flashing the robot we re-check the measured
    # latency and keep the most accurate candidate that truly fits
    validated = [c for c in result.candidates if c.feasible
                 and c.measured_latency_ms <= deadline]
    best = max(validated, key=lambda c: c.accuracy)
    print(f"  proposed {result.best.trn_name} "
          f"(measured {result.best.measured_latency_ms:.3f} ms); "
          f"validated pick: {best.trn_name}")
    print(f"  selected {best.trn_name}: estimated "
          f"{best.estimated_latency_ms:.3f} ms, measured "
          f"{best.measured_latency_ms:.3f} ms, accuracy {best.accuracy:.3f}")

    # retrain the winning TRN's head and keep the trained head around for
    # per-frame inference during the reaches
    base = wb.base(best.base_name)
    cut_node = (best.cutpoint.cut_node if best.cutpoint
                else list(wb.exploration().for_base(best.base_name))[0].cut_node)
    train_data, _ = wb.hands()
    feats = record_gap_features(base, train_data.x, [cut_node])
    head = train_head_on_features(feats[cut_node], train_data.y, 5,
                                  epochs=50).network

    print("\nsimulating 40 reach episodes ...")
    rng = np.random.default_rng(7)
    actuation = ActuationModel()
    fused_quality, emg_quality = [], []
    deadline_misses, grasps_formed, posture_errors = 0, 0, []
    for _ in range(40):
        params = sample_object(rng)
        truth = grasp_distribution(params, rng=None)
        frames = np.stack([
            render_object(params, 32, rng) for _ in range(spec.fusion_frames)])
        frame_feats = record_gap_features(base, frames, [cut_node])
        visual_preds = head.forward(frame_feats[cut_node])

        grasp_idx = int(np.argmax(truth))
        emg_window = synth_emg_window(grasp_idx, rng)
        emg_pred = emg_clf.predict(emg_features(emg_window.signal)[None])[0]

        outcome = simulate_reach(visual_preds, emg_pred, truth,
                                 best.measured_latency_ms, spec)
        fused_quality.append(outcome.decision_quality)
        emg_quality.append(float(angular_similarity(emg_pred, truth)))
        deadline_misses += 0 if outcome.deadline_met else 1

        # drive the fingers toward the decided posture in the time left
        act = actuation.drive(outcome.fused_distribution,
                              available_ms=spec.actuation_ms)
        grasps_formed += 1 if act.completed else 0
        posture_errors.append(act.posture_error)

    print(f"  mean decision quality, EMG alone:        "
          f"{np.mean(emg_quality):.3f}")
    print(f"  mean decision quality, vision+EMG fused: "
          f"{np.mean(fused_quality):.3f}")
    print(f"  deadline misses: {deadline_misses}/40")
    print(f"  grasps fully formed before contact: {grasps_formed}/40 "
          f"(mean posture error {np.mean(posture_errors):.3f})")


if __name__ == "__main__":
    main()
