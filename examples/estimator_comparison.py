"""Compare the paper's two latency estimators and the linear baseline.

Reproduces the §V-C analysis in text form: for every blockwise TRN of
every network, compare the measured latency against

- the profiler-based ratio estimate (one per-layer table per network),
- the analytical ε-SVR over device-agnostic features (fitted on a 20%
  split, evaluated on the held-out 80%),
- ordinary linear regression over the same features (the paper's
  "unacceptable" baseline).

Run:  python examples/estimator_comparison.py
"""

import numpy as np

from repro import Workbench
from repro.estimators import relative_error
from repro.trim import removed_node_set


def main() -> None:
    wb = Workbench()
    points = wb.latency_dataset()
    truth = np.array([p.measured_ms for p in points])
    names = [p.base_name for p in points]

    profiler = wb.profiler_adapter()
    prof_pred = np.array([
        profiler._estimator_for(wb.base(p.base_name)).estimate(
            removed_node_set(wb.base(p.base_name), p.cut_node))
        for p in points])

    svr_model, test_idx = wb.analytical_model("rbf")
    lin_model, _ = wb.analytical_model("linear-ols")
    svr_pred = svr_model.predict([p.features for p in points])
    lin_pred = lin_model.predict([p.features for p in points])

    print(f"{'network':20s} {'profiler':>10} {'SVR (rbf)':>10} "
          f"{'linear':>10}   (mean relative error, %)")
    print("-" * 58)
    for net in wb.config.networks:
        mask = np.array([n == net for n in names])
        print(f"{net:20s} "
              f"{relative_error(prof_pred[mask], truth[mask]):>9.2f}% "
              f"{relative_error(svr_pred[mask], truth[mask]):>9.2f}% "
              f"{relative_error(lin_pred[mask], truth[mask]):>9.2f}%")
    print("-" * 58)
    hold = np.zeros(len(points), dtype=bool)
    hold[test_idx] = True
    print(f"{'ALL (80% holdout)':20s} "
          f"{relative_error(prof_pred[hold], truth[hold]):>9.2f}% "
          f"{relative_error(svr_pred[hold], truth[hold]):>9.2f}% "
          f"{relative_error(lin_pred[hold], truth[hold]):>9.2f}%")
    print(f"\nabsolute errors (ms): profiler "
          f"{np.abs(prof_pred - truth).mean():.4f}, "
          f"SVR {np.abs(svr_pred[hold] - truth[hold]).mean():.4f}, "
          f"linear {np.abs(lin_pred[hold] - truth[hold]).mean():.4f}")
    print("paper reference: profiler 3.5% (0.024 ms), SVR 4.28% "
          "(0.029 ms), linear 23.81% (0.092 ms)")


if __name__ == "__main__":
    main()
