"""Telemetry demo: a terminal dashboard over one chaos-struck serve run.

One seeded straggler-storm replay with the full observability stack
attached — labeled metric families sampled into the ring-buffer
time-series store on the virtual clock, the two canonical SLO burn-rate
rules, and the SQLite run store — then everything is rendered from the
*recorded* data, the way a real dashboard reads a metrics backend:

1. **Sparklines** — queue depth, windowed p99, offered arrival rate and
   the deadline-miss burn rate (a counter-delta ratio, computed from the
   stored series exactly like the alert engine computes it), bucketed
   over the run's virtual time span.
2. **Alert timeline** — both rules fire mid-storm and resolve in the
   quiet tail; the firing window is marked under the sparklines.
3. **Run store** — the run is archived (metadata, final metrics, every
   series point), a second seed is archived next to it, and the two runs
   are diffed with the biggest relative movers first.

Everything is virtual-time and seeded: the dashboard prints the same
pixels on every machine.

Run:  python examples/telemetry_dashboard.py
"""

import os
import tempfile

from repro.device import xavier
from repro.faults import build_scenario
from repro.obs import (
    AlertEngine,
    RunStore,
    Telemetry,
    default_slo_rules,
    to_openmetrics,
)
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import poisson_trace
from repro.zoo import build_network

REQUESTS = 800
DEADLINE_MS = 2.5
SEED = 2
WIDTH = 64                      # dashboard columns
TICKS = " .:-=+*#%@"            # ASCII intensity ramp


def sparkline(points, t_hi: float, width: int = WIDTH) -> str:
    """Bucket ``(t_ms, value)`` points into a fixed-width intensity row."""
    cells: list[list[float]] = [[] for _ in range(width)]
    for t, v in points:
        if v != v:                                    # NaN: not yet warm
            continue
        col = min(width - 1, int(t / t_hi * width))
        cells[col].append(v)
    means = [sum(c) / len(c) if c else None for c in cells]
    finite = [m for m in means if m is not None]
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    out = []
    for m in means:
        if m is None:
            out.append(" ")
        else:
            out.append(TICKS[int((m - lo) / span * (len(TICKS) - 1))])
    return "".join(out), lo, hi


def row(label: str, points, t_hi: float) -> None:
    line, lo, hi = sparkline(points, t_hi)
    print(f"  {label:24s} |{line}|  {lo:8.2f} .. {hi:8.2f}")


def burn_rate(telemetry, t_hi: float):
    """Miss/completed ratio per bucket, from the stored counter series."""
    store = telemetry.store
    miss = store.series("serve_requests_total", (("event", "deadline_miss"),))
    done = store.series("serve_requests_total", (("event", "completed"),))
    points = []
    window = t_hi / WIDTH
    for i in range(WIDTH):
        t0, t1 = i * window, (i + 1) * window
        dm = _delta(miss, t0, t1)
        dc = _delta(done, t0, t1)
        if dc:
            points.append((t0, dm / dc))
    return points


def _delta(series, t0: float, t1: float) -> float:
    inside = [v for t, v in series if t0 <= t < t1]
    before = [v for t, v in series if t < t0]
    if not inside:
        return 0.0
    return inside[-1] - (before[-1] if before else 0.0)


def replay(seed: int):
    """One telemetered storm replay; returns (result, telemetry, alerts)."""
    base = build_network("mobilenet_v1_0.5").build(0)
    ladder = TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)
    rate = 0.65e3 / ladder.rungs[0].estimate_ms(1)
    trace = poisson_trace(REQUESTS, rate, DEADLINE_MS, rng=seed)
    scenario = build_scenario("straggler-storm",
                              trace[-1].arrival_ms * 0.5, seed=0)
    telemetry = Telemetry(sample_interval_ms=1.0)
    alerts = AlertEngine(default_slo_rules(DEADLINE_MS, miss_budget=0.05,
                                           fast_ms=8.0, slow_ms=24.0))
    telemetry.attach_alerts(alerts)
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=False,
                          seed=seed, adaptive=False)
    server = Server(ladder, config, faults=scenario.injector(),
                    telemetry=telemetry)
    return server.run_trace(trace), telemetry, alerts, scenario


def main() -> None:
    result, telemetry, alerts, scenario = replay(SEED)
    t_hi = max(t for t, _ in telemetry.store.series("serve_queue_depth", ()))

    print("=== 1. sparklines from the time-series store "
          f"(0 .. {t_hi:.0f} virtual ms, {WIDTH} buckets)")
    print(f"  {scenario.describe().splitlines()[0]}")
    store = telemetry.store
    row("queue depth", store.series("serve_queue_depth", ()), t_hi)
    row("windowed p99 (ms)", store.series("serve_recent_p99_ms", ()), t_hi)
    row("arrival rate (rps)",
        store.series("serve_arrival_rate_rps", ()), t_hi)
    row("miss burn rate", burn_rate(telemetry, t_hi), t_hi)

    print("\n=== 2. the SLO burn-rate alert timeline over the same run")
    print(alerts.report())
    firing = [e.time_ms for e in alerts.events if e.state == "firing"]
    resolved = [e.time_ms for e in alerts.events if e.state == "resolved"]
    marks = [" "] * WIDTH
    for t0 in firing:
        t1 = min((t for t in resolved if t > t0), default=t_hi)
        for col in range(int(t0 / t_hi * WIDTH),
                         min(WIDTH, int(t1 / t_hi * WIDTH) + 1)):
            marks[col] = "^"
    print(f"  {'alerts firing':24s} |{''.join(marks)}|")

    print("\n=== 3. archive both seeds in a run store and diff them")
    path = os.path.join(tempfile.mkdtemp(), "dashboard.sqlite")
    with RunStore(path) as rs:
        a = rs.add_run("example.dashboard", meta={"seed": SEED},
                       telemetry=telemetry)
        result_b, telemetry_b, _, _ = replay(SEED + 1)
        b = rs.add_run("example.dashboard", meta={"seed": SEED + 1},
                       telemetry=telemetry_b)
        rows = rs.compare(a, b)
    movers = [r for r in rows if r["rel"]]
    print(f"  {len(rows)} comparable keys, {len(movers)} moved; top 5:")
    for r in rows[:5]:
        print(f"    {r['key'][:48]:48s} {r['a']:>10.4g} -> {r['b']:>10.4g} "
              f"({100 * r['rel']:+.1f}%)")

    print("\n=== 4. the same surface, as OpenMetrics exposition (head)")
    for line in to_openmetrics(telemetry).splitlines()[:8]:
        print(f"  {line}")
    print(f"  ... ({len(to_openmetrics(telemetry).splitlines())} lines, "
          f"miss rate {100 * result.metrics.miss_rate:.1f}%, "
          f"final alerts active: {', '.join(alerts.active) or 'none'})")


if __name__ == "__main__":
    main()
