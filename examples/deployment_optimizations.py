"""Deployment optimizations: layer fusion and INT8 quantization (§III-B4).

Shows, for each zoo network's transfer model, the latency effect of the two
deployment optimizations the paper applies before any measurement — kernel
fusion and post-training INT8 quantization — and verifies that quantization
barely moves the classifier's outputs (max-abs calibration on a random 10%
of the training set, per-feature weight scales, per-tensor activations).

Run:  python examples/deployment_optimizations.py
"""

import numpy as np

from repro import Workbench
from repro.device import QuantizedNetwork, calibration_split, network_latency


def main() -> None:
    wb = Workbench()
    train_data, test_data = wb.hands()
    calib_idx = calibration_split(len(train_data), 0.1, rng=0)
    calib = train_data.x[calib_idx]

    print(f"{'network':20s} {'unfused':>9} {'fused':>9} {'fused+int8':>11} "
          f"{'quant drift':>12}")
    print("-" * 66)
    for name in wb.config.networks:
        trn = wb.transfer_model(name)
        unfused = network_latency(trn, wb.device, fused=False).total_ms
        fused = network_latency(trn, wb.device, fused=True).total_ms
        int8 = network_latency(trn, wb.device, fused=True,
                               precision="int8").total_ms
        qnet = QuantizedNetwork(trn, calib)
        drift = float(np.abs(qnet.forward(test_data.x[:64])
                             - trn.forward(test_data.x[:64])).max())
        print(f"{name:20s} {unfused:8.3f}m {fused:8.3f}m {int8:10.3f}m "
              f"{drift:12.4f}")
    print("\n(latencies in ms; 'quant drift' is the max absolute change in "
          "output probabilities)")


if __name__ == "__main__":
    main()
