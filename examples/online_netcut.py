"""Online NetCut: closing Algorithm 1's loop at serving time.

NetCut picks the deepest TRN whose *estimated* latency meets the deadline
— at deploy time, from profiler tables measured on a cool, idle device.
This demo breaks that assumption mid-trace: a seeded thermal throttle
ramps the simulated Xavier to 2.5x its profiled latency and never
recovers, so the rung Algorithm 1 chose offline starts blowing the
deadline on every request.

The same Poisson trace replays through two servers:

1. *static estimates* — the deployment artifact's latency tables stay
   frozen. Admission and batching keep trusting cool-device numbers, the
   serving rung keeps missing, and the miss rate lands near 90%.
2. *online re-estimation* — a DriftMonitor (repro.obs) watches predicted
   vs. observed service times; when it raises a drift event, the
   ReestimationController (repro.netcut.online) re-fits every rung's
   latency belief from the live observations, re-sorts the ladder and
   re-runs Algorithm 1's greedy selection over the calibrated estimates.
   Two re-fits in, the server has converged on the throttled device's
   true speed and serves from the deepest rung that *actually* fits.

Both arms run with the hysteresis ladder controller off (adaptive=False),
so the whole recovery is attributable to the estimate-maintenance loop —
not to latency-window degradation.

Everything is virtual-time and seeded: every run of this script prints
identical numbers, whatever PYTHONHASHSEED the interpreter drew.

Run:  python examples/online_netcut.py
"""

from repro.device import xavier
from repro.faults import FaultInjector, ThermalThrottle
from repro.obs import DriftMonitor
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import poisson_trace
from repro.zoo import build_network

REQUESTS = 400
THROTTLE = 2.5
SEED = 0


def replay(ladder, trace, deadline_ms, span_ms, online):
    faults = FaultInjector([ThermalThrottle(
        start_ms=0.1 * span_ms, duration_ms=10 * span_ms,
        factor=THROTTLE, ramp_ms=0.03 * span_ms)], seed=SEED)
    drift = DriftMonitor(threshold=0.2, window=16, min_observations=8,
                         cooldown=8)
    config = ServerConfig(
        deadline_ms=deadline_ms, execute=False, seed=SEED,
        adaptive=False, online_reestimation=online,
        reestimate_cooldown_ms=10.0, reestimate_min_samples=8,
        reestimate_max_samples=16)
    server = Server(ladder, config, drift=drift, faults=faults)
    return server.run_trace(trace), server


def main() -> None:
    device = xavier()
    base = build_network("mobilenet_v1_0.5").build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5, max_rungs=6)
    full = ladder.rungs[0].estimate_ms(1)
    deadline = round(1.3 * full, 3)
    rate = 0.4e3 / full
    trace = poisson_trace(REQUESTS, rate, deadline, rng=SEED)
    span = trace[-1].arrival_ms

    print(f"device: {device.name}   deadline: {deadline} ms   "
          f"{REQUESTS} requests @ {rate:,.0f} req/s")
    print(f"thermal throttle to {THROTTLE}x from t={0.1 * span:,.0f} ms "
          f"(never recovers)\n")
    print("ladder (deployment artifact's estimates):")
    for rung in ladder.rungs:
        print(f"  {rung.name:28s} est {rung.estimate_ms(1):.3f} ms")

    for label, online in (("static estimates", False),
                          ("online re-estimation", True)):
        result, server = replay(ladder, trace, deadline, span, online)
        print(f"\n=== {label} ===")
        print(result.metrics.report())
        if online:
            print(server.engine.reestimator.report())
            print("calibrated ladder after the run:")
            for rung in server.engine.ladder.rungs:
                print(f"  {rung.name:28s} est "
                      f"{rung.estimate_ms(1):.3f} ms "
                      f"(scale {rung.estimate_scale:.2f}x)")


if __name__ == "__main__":
    main()
