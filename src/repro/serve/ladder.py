"""The TRN ladder: NetCut's candidates as an anytime degradation hierarchy.

NetCut builds, for every base network, a family of thinned replacement
networks (TRNs) ordered by depth: each shallower TRN is faster and slightly
less accurate. That ordering is exactly an *anytime ladder* — under load a
server can step down to a shorter TRN instead of missing deadlines, and
step back up when pressure subsides (cf. Wójcik et al.'s multi-head depth
ladders in PAPERS.md).

A :class:`TRNLadder` holds the rungs sorted most-accurate-first (slowest
first) with a cursor for the rung currently serving traffic. The
:class:`HysteresisController` decides transitions from a sliding window of
observed response times: degrade when the windowed p99 threatens the
deadline, upgrade when it is comfortably below — with a cooldown so the
ladder does not flap.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.device.runtime import ServiceTimeSampler
from repro.device.spec import DeviceSpec, stable_seed
from repro.nn.graph import Network
from repro.trim.removal import build_trn
from repro.trim.search import enumerate_blockwise

__all__ = ["TRNRung", "TRNLadder", "HysteresisController"]


@dataclass
class TRNRung:
    """One ladder position: a servable TRN plus its latency behaviour."""

    name: str
    network: Network
    spec: DeviceSpec
    accuracy: float = float("nan")
    #: which LadderBuilder strategy produced the rung ("" = unknown);
    #: carried from the deployment artifact into metrics labels and the
    #: serve snapshot so mixed ladders stay attributable per strategy
    builder: str = ""
    sampler: ServiceTimeSampler = field(init=False, repr=False)
    # planner belief vs. device truth: estimate_scale multiplies what the
    # *planner* (admission, batching, ladder ordering) believes this rung
    # costs, while the sampler keeps producing the device's actual
    # behaviour. Online re-estimation (repro.netcut.online) rewrites the
    # belief from live observations; it must never touch the sampler,
    # which would amount to re-profiling the hardware into agreement.
    estimate_scale: float = field(default=1.0, init=False)

    def __post_init__(self):
        if not self.network.built:
            raise ValueError(f"rung {self.name!r} network must be built")
        # compile at load: serving rungs are frozen inference networks, so
        # every forward goes through the fused static schedule (the
        # interpreted walk remains reachable by attaching hooks, e.g. for
        # repro.obs profiling, which falls back transparently)
        self.network.compile()
        self.sampler = ServiceTimeSampler(
            self.network, self.spec,
            rng=stable_seed(self.name, self.spec.name))

    def reseed(self, rng: np.random.Generator | int) -> None:
        """Replace the sampler RNG (determinism across server runs)."""
        self.sampler = ServiceTimeSampler(self.network, self.spec, rng=rng)

    def estimate_ms(self, batch_size: int = 1) -> float:
        """Noise-free batched latency estimate (admission/batch planning)."""
        return self.sampler.base_ms(batch_size) * self.estimate_scale

    def recalibrate(self, scale: float) -> float:
        """Rewrite the rung's latency belief; returns the previous scale.

        ``scale`` replaces (does not compose with) the current calibration:
        it is the ratio of believed to profiled latency, so ``1.0`` always
        means "trust the deployment artifact's table again".
        """
        scale = float(scale)
        if not math.isfinite(scale) or scale <= 0:
            raise ValueError("estimate scale must be positive and finite")
        previous = self.estimate_scale
        self.estimate_scale = scale
        return previous

    def estimate_table(self) -> dict[int, float]:
        """The calibrated latency table at every batch size seen so far."""
        return {b: ms * self.estimate_scale
                for b, ms in sorted(self.sampler._base_ms.items())}

    def sample_service_ms(self, batch_size: int = 1) -> float:
        """One measured (noisy) batched inference latency."""
        return self.sampler.sample_ms(batch_size)

    def forward(self, samples) -> np.ndarray:
        """Run the rung's network on a list of single samples, batched."""
        return self.network.forward_batch(samples)

    def forward_one(self, x: np.ndarray) -> np.ndarray:
        """Run the rung's network on exactly one un-batched sample."""
        return self.network.forward_one(x)


class TRNLadder:
    """An ordered set of TRNs, most accurate (slowest) first."""

    def __init__(self, rungs: list[TRNRung]):
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        # most accurate first == slowest first; sort by the batch-1 estimate
        self.rungs = sorted(rungs, key=lambda r: -r.estimate_ms(1))
        self._current = 0

    # -- construction --------------------------------------------------------
    @classmethod
    def from_networks(cls, networks: list[Network], spec: DeviceSpec,
                      accuracies: list[float] | None = None) -> "TRNLadder":
        """Build a ladder from already-constructed (built) networks."""
        accs = accuracies or [float("nan")] * len(networks)
        if len(accs) != len(networks):
            raise ValueError("need one accuracy per network")
        return cls([TRNRung(net.name, net, spec, acc)
                    for net, acc in zip(networks, accs)])

    @classmethod
    def from_artifacts(cls, artifacts, spec: DeviceSpec) -> "TRNLadder":
        """Build a ladder from :class:`repro.netcut.deploy.DeploymentArtifact`s
        (e.g. round-tripped through ``save_artifact``/``load_artifact``).

        Artifacts may come from *different* ladder builders — rungs are
        sorted by latency estimate regardless of origin, and each rung
        keeps its artifact's ``builder`` tag."""
        return cls([TRNRung(a.trn_name, a.network, spec, a.accuracy,
                            getattr(a, "builder", ""))
                    for a in artifacts])

    @classmethod
    def from_base(cls, base: Network, spec: DeviceSpec, num_classes: int,
                  max_rungs: int | None = None,
                  rng: np.random.Generator | int = 0) -> "TRNLadder":
        """Build the full blockwise ladder of one base network.

        Rung 0 is the zero-cut transfer model (all feature blocks kept);
        deeper cuts follow. ``max_rungs`` caps the ladder length (the
        shallowest cuts are kept so the ladder always has a fast escape
        rung). Heads are freshly initialised — accuracy metadata comes from
        NetCut/exploration when available, not from this constructor.
        """
        cuts = enumerate_blockwise(base)
        if max_rungs is not None and max_rungs < len(cuts):
            # keep the full TRN, the shallowest, and evenly spaced middles
            idx = np.linspace(0, len(cuts) - 1, max_rungs).round().astype(int)
            cuts = [cuts[i] for i in sorted(set(int(i) for i in idx))]
        rungs = [TRNRung(f"{base.name}-cut{c.blocks_removed}",
                         build_trn(base, c.cut_node, num_classes, rng=rng),
                         spec)
                 for c in cuts]
        return cls(rungs)

    # -- cursor --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rungs)

    @property
    def current_index(self) -> int:
        return self._current

    @property
    def current(self) -> TRNRung:
        """The rung currently serving traffic."""
        return self.rungs[self._current]

    @property
    def fastest(self) -> TRNRung:
        return self.rungs[-1]

    @property
    def can_degrade(self) -> bool:
        return self._current < len(self.rungs) - 1

    @property
    def can_upgrade(self) -> bool:
        return self._current > 0

    def peek_slower(self) -> TRNRung | None:
        """The next more-accurate rung (None at the top of the ladder)."""
        return self.rungs[self._current - 1] if self.can_upgrade else None

    def degrade(self) -> bool:
        """Step down to the next faster rung. Returns False at the bottom."""
        if not self.can_degrade:
            return False
        self._current += 1
        return True

    def upgrade(self) -> bool:
        """Step up to the next more-accurate rung. False at the top."""
        if not self.can_upgrade:
            return False
        self._current -= 1
        return True

    def reset(self, index: int = 0) -> None:
        """Park the cursor (0 = most accurate rung)."""
        if not 0 <= index < len(self.rungs):
            raise IndexError(f"no rung {index} in a {len(self.rungs)}-rung "
                             "ladder")
        self._current = index

    def select(self, rung: TRNRung) -> None:
        """Point the cursor at ``rung`` (matched by identity, not equality)."""
        for i, r in enumerate(self.rungs):
            if r is rung:
                self._current = i
                return
        raise ValueError(f"rung {getattr(rung, 'name', rung)!r} is not in "
                         "this ladder")

    def resort(self) -> None:
        """Re-sort the rungs by their *current* batch-1 estimates.

        The construction-time ordering goes stale the moment estimates
        change (online recalibration rewrites them mid-run). The cursor
        keeps pointing at the rung that was serving traffic — tracked by
        identity, so re-ordering never silently swaps which network
        answers the next batch.
        """
        serving = self.rungs[self._current]
        self.rungs.sort(key=lambda r: -r.estimate_ms(1))
        self.select(serving)

    def reseed(self, seed: int) -> None:
        """Give every rung a fresh deterministic sampler."""
        for i, rung in enumerate(self.rungs):
            rung.reseed(seed + i)

    def snapshot(self) -> list[dict]:
        """JSON-able rung inventory (deployment-time estimates and tags).

        One dict per rung in ladder order: name, builder tag, batch-1
        estimate, accuracy. Uses ``getattr`` so wrapped rungs (e.g. fault
        proxies) snapshot too.
        """
        return [{"name": r.name,
                 "builder": getattr(r, "builder", ""),
                 "estimate_ms": round(r.estimate_ms(1), 6),
                 "accuracy": round(float(r.accuracy), 6)
                 if math.isfinite(getattr(r, "accuracy", float("nan")))
                 else None}
                for r in self.rungs]

    def describe(self) -> str:
        """One line per rung: name, builder tag, batch-1 estimate, accuracy."""
        lines = []
        for i, r in enumerate(self.rungs):
            marker = "->" if i == self._current else "  "
            acc = f"{r.accuracy:.4f}" if math.isfinite(r.accuracy) else "?"
            tag = getattr(r, "builder", "")
            tag = f"  [{tag}]" if tag else ""
            lines.append(f"{marker} [{i}] {r.name:32s} "
                         f"est {r.estimate_ms(1):.3f} ms  acc {acc}{tag}")
        return "\n".join(lines)


class HysteresisController:
    """Degrade/upgrade decisions from a sliding window of response times.

    Policy: over the last ``window`` completed requests, estimate the
    ``quantile`` response time. If it exceeds ``degrade_ratio * deadline``
    the current rung cannot hold the deadline under the observed pressure —
    degrade. If it falls below ``upgrade_ratio * deadline`` there is enough
    slack to climb back — upgrade. The asymmetric thresholds plus a
    ``cooldown`` (minimum observations between decisions, letting the
    window refill with post-transition behaviour) prevent oscillation.
    Upgrades use a longer ``upgrade_cooldown`` (default 4x): stepping down
    late costs missed deadlines, stepping up late only costs a little
    accuracy, so the controller reacts fast in one direction and lazily in
    the other.
    """

    def __init__(self, deadline_ms: float, window: int = 32,
                 min_observations: int = 16, cooldown: int = 16,
                 quantile: float = 0.99, degrade_ratio: float = 1.0,
                 upgrade_ratio: float = 0.5,
                 upgrade_cooldown: int | None = None):
        if upgrade_ratio >= degrade_ratio:
            raise ValueError("upgrade_ratio must be < degrade_ratio "
                             "(the hysteresis band)")
        self.deadline_ms = deadline_ms
        self.window = window
        self.min_observations = min(min_observations, window)
        self.cooldown = cooldown
        self.upgrade_cooldown = (4 * cooldown if upgrade_cooldown is None
                                 else upgrade_cooldown)
        self.quantile = quantile
        self.degrade_ratio = degrade_ratio
        self.upgrade_ratio = upgrade_ratio
        self._latencies: deque[float] = deque(maxlen=window)
        self._since_decision = 0

    def observe(self, latency_ms: float) -> str | None:
        """Feed one completed response time; returns a decision or None.

        Decisions are ``"degrade"`` / ``"upgrade"``. The caller applies the
        transition (it knows whether the ladder has a rung left in that
        direction) and then calls :meth:`notify_transition`.
        """
        self._latencies.append(latency_ms)
        self._since_decision += 1
        if (len(self._latencies) < self.min_observations
                or self._since_decision < self.cooldown):
            return None
        q = float(np.quantile(np.asarray(self._latencies), self.quantile))
        if q > self.degrade_ratio * self.deadline_ms:
            return "degrade"
        if (q < self.upgrade_ratio * self.deadline_ms
                and self._since_decision >= self.upgrade_cooldown):
            return "upgrade"
        return None

    def notify_transition(self) -> None:
        """Reset the window after an applied transition (fresh evidence)."""
        self._latencies.clear()
        self._since_decision = 0
