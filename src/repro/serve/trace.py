"""Deprecated location: trace makers moved to :mod:`repro.workload`.

``poisson_trace``, ``uniform_trace`` and ``offered_load`` now live in
:mod:`repro.workload.generators`, alongside the composable arrival
processes (diurnal cycles, flash crowds, MMPPs) they grew into — one
traffic module instead of two. They are re-exported here unchanged
(same signatures, same seeded draw order, byte-identical traces), so
existing imports keep working — but importing this module raises a
:class:`DeprecationWarning`; new code should import from
``repro.workload``.
"""

from __future__ import annotations

import warnings

from repro.workload.generators import (   # noqa: F401
    offered_load,
    poisson_trace,
    uniform_trace,
)

warnings.warn(
    "repro.serve.trace is deprecated: poisson_trace, uniform_trace and "
    "offered_load moved to repro.workload.generators (re-exported from "
    "repro.workload). Update imports to `from repro.workload import ...`.",
    DeprecationWarning, stacklevel=2)

__all__ = ["poisson_trace", "uniform_trace", "offered_load"]
