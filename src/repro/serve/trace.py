"""Deprecated location: trace makers moved to :mod:`repro.workload`.

``poisson_trace``, ``uniform_trace`` and ``offered_load`` now live in
:mod:`repro.workload.generators`, alongside the composable arrival
processes (diurnal cycles, flash crowds, MMPPs) they grew into — one
traffic module instead of two. They are re-exported here unchanged
(same signatures, same seeded draw order, byte-identical traces), so
existing imports keep working; new code should import from
``repro.workload``.
"""

from __future__ import annotations

from repro.workload.generators import (   # noqa: F401
    offered_load,
    poisson_trace,
    uniform_trace,
)

__all__ = ["poisson_trace", "uniform_trace", "offered_load"]
