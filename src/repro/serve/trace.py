"""Synthetic request traces for the serving simulator.

A trace is just a list of :class:`~repro.serve.request.Request`s sorted by
arrival time. Arrivals are Poisson by default (exponential inter-arrival
times — the standard open-loop traffic model) with an optional burst
multiplier over a window, which is how the tests create the overload phase
that forces the ladder to degrade. Payloads are rendered with the
repository's synthetic object renderer (:mod:`repro.data.synthetic`) so a
served request carries a real image of a graspable object; rendering can be
skipped for timing-only runs.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import render_object, sample_object

from .request import Request

__all__ = ["poisson_trace", "uniform_trace", "offered_load"]


def _payloads(n: int, image_size: int, rng: np.random.Generator,
              render: bool) -> list:
    if not render:
        return [None] * n
    return [render_object(sample_object(rng), size=image_size, rng=rng)
            for _ in range(n)]


def poisson_trace(n: int, rate_rps: float, deadline_ms: float,
                  rng: np.random.Generator | int = 0,
                  image_size: int = 32, render: bool = False,
                  burst: tuple[float, float, float] | None = None
                  ) -> list[Request]:
    """``n`` Poisson arrivals at ``rate_rps`` requests/second.

    ``burst=(start_frac, end_frac, multiplier)`` scales the arrival rate by
    ``multiplier`` for the requests whose *index* falls in the given
    fraction of the trace — e.g. ``(0.3, 0.7, 4.0)`` makes the middle 40%
    of requests arrive 4x faster, a load spike the ladder must absorb.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    mean_gap_ms = 1e3 / rate_rps
    gaps = rng.exponential(mean_gap_ms, size=n)
    if burst is not None:
        lo, hi, mult = burst
        if mult <= 0:
            raise ValueError("burst multiplier must be positive")
        idx = np.arange(n)
        in_burst = (idx >= lo * n) & (idx < hi * n)
        gaps[in_burst] /= mult
    arrivals = np.cumsum(gaps)
    xs = _payloads(n, image_size, rng, render)
    return [Request(rid=i, arrival_ms=float(arrivals[i]),
                    deadline_ms=deadline_ms, x=xs[i])
            for i in range(n)]


def uniform_trace(n: int, rate_rps: float, deadline_ms: float,
                  rng: np.random.Generator | int = 0,
                  image_size: int = 32, render: bool = False
                  ) -> list[Request]:
    """``n`` evenly spaced arrivals (a closed-loop sensor at a fixed rate)."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    gap_ms = 1e3 / rate_rps
    xs = _payloads(n, image_size, rng, render)
    return [Request(rid=i, arrival_ms=float((i + 1) * gap_ms),
                    deadline_ms=deadline_ms, x=xs[i])
            for i in range(n)]


def offered_load(trace: list[Request], service_ms: float) -> float:
    """Utilisation ρ of a trace against a fixed per-request service time.

    ρ > 1 means the server cannot keep up without batching or degradation;
    the acceptance tests use this to calibrate overload scenarios.
    """
    if not trace:
        return 0.0
    span_ms = max(r.arrival_ms for r in trace)
    if span_ms <= 0:
        return float("inf")
    return len(trace) * service_ms / span_ms
