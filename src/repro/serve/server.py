"""The Server facade: a TRN ladder behind a deadline-aware front door.

This is the user-facing entry point of :mod:`repro.serve`::

    ladder = TRNLadder.from_base(base, xavier(), num_classes=5)
    server = Server(ladder, ServerConfig(deadline_ms=0.9))
    result = server.run_trace(poisson_trace(1000, rate_rps=2500,
                                            deadline_ms=0.9))
    print(result.metrics.report())

Each :meth:`Server.run_trace` call is an independent, fully deterministic
run: the ladder cursor is parked back on the most accurate rung, every
rung's measurement RNG is reseeded from the config seed, and fresh metrics
are collected — so the same (ladder, config, trace) triple always yields
identical schedules, transitions and numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .engine import Engine, ServerConfig
from .ladder import TRNLadder
from .metrics import ServerMetrics
from .request import Request, Response

__all__ = ["Server", "ServerConfig", "ServingResult"]


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    responses: list[Response]
    metrics: ServerMetrics
    final_rung: str
    config: ServerConfig = field(repr=False, default=None)

    @property
    def completed(self) -> list[Response]:
        return [r for r in self.responses if r.status == "completed"]

    @property
    def rejected(self) -> list[Response]:
        return [r for r in self.responses if r.status == "rejected"]

    @property
    def dropped(self) -> list[Response]:
        """Admitted but never executed (drained or every rung failed)."""
        return [r for r in self.responses if r.status == "dropped"]

    @property
    def missed(self) -> list[Response]:
        """Completed responses that overran their deadline."""
        return [r for r in self.completed if not r.deadline_met]


class Server:
    """Deadline-aware inference server over a TRN ladder.

    ``tracer`` and ``drift`` attach observability without touching the
    serving logic: pass a :class:`repro.obs.Tracer` to record request
    spans and a :class:`repro.obs.DriftMonitor` to watch predicted vs.
    observed service times (see :mod:`repro.obs`). Both are shared across
    :meth:`run_trace` calls — clear them between runs if per-run traces
    are wanted.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) mirrors every metrics
    recording into labeled time-series families sampled on the virtual
    clock (see :mod:`repro.obs.telemetry`); like the tracer it is shared
    across runs — each run's series continue in the same store.

    ``faults`` (a :class:`repro.faults.FaultInjector`) subjects every run
    to its chaos scenario: the ladder is served through fault-perturbed
    rung proxies and the injector's virtual clock is driven by the engine.
    The injector is rewound at the start of each run, so the same
    (ladder, config, trace, faults) quadruple replays identically —
    usually paired with ``ServerConfig(resilience=True)`` so the engine
    fights back.
    """

    def __init__(self, ladder: TRNLadder,
                 config: ServerConfig | None = None,
                 tracer=None, drift=None, faults=None, telemetry=None):
        self.ladder = ladder
        self.config = config or ServerConfig()
        self.tracer = tracer
        self.drift = drift
        self.faults = faults
        self.telemetry = telemetry
        self.engine = None    # the engine of the most recent run_trace

    def run_trace(self, trace: list[Request], stop_ms: float | None = None,
                  **overrides) -> ServingResult:
        """Replay a request trace through a fresh engine.

        Keyword overrides patch the server config for this run only, e.g.
        ``server.run_trace(trace, adaptive=False)`` to get the fixed-rung
        baseline of the same scenario. ``stop_ms`` shuts the engine down
        at that virtual time, draining the queue as drops.
        """
        config = replace(self.config, **overrides) if overrides \
            else self.config
        self.ladder.reset(0)
        ladder = self.ladder if self.faults is None \
            else self.faults.wrap(self.ladder)
        metrics = ServerMetrics(config.deadline_ms,
                                telemetry=self.telemetry)
        engine = Engine(ladder, config, metrics,
                        tracer=self.tracer, drift=self.drift,
                        faults=self.faults)
        # kept for post-run inspection (e.g. the online-NetCut
        # re-estimation controller's fit history on engine.reestimator)
        self.engine = engine
        responses = engine.run(trace, stop_ms=stop_ms)
        # read the cursor off the engine's ladder: under fault injection it
        # is a wrapped copy whose cursor the original never sees
        return ServingResult(responses, metrics,
                             engine.ladder.current.name, config)
