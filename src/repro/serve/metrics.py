"""Serving metrics: counters and streaming latency histograms.

The server observes every response exactly once; latencies go into
fixed-memory log-spaced histograms whose quantiles (p50/p95/p99) are read
out of the bin boundaries, so memory stays O(bins) no matter how long a
trace runs. :meth:`ServerMetrics.snapshot` returns a plain dict (the
monitoring surface) and :meth:`ServerMetrics.report` renders it as the text
block the CLI prints.

:class:`Counter` and :class:`LatencyHistogram` live canonically in
:mod:`repro.obs.telemetry` (one implementation for serve, cluster and the
registry) and are re-exported here for compatibility. When a
:class:`repro.obs.Telemetry` is attached, :class:`ServerMetrics` mirrors
every recording into labeled metric families (``tenant``/``rung``/
``event`` label sets, plus any extra labels such as ``replica``) through
a :class:`ServeTelemetry` handle bundle — snapshots and reports are
unchanged, the labeled series ride alongside.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass

from repro.obs.telemetry import Counter, LatencyHistogram

__all__ = ["Counter", "LatencyHistogram", "ServeTelemetry", "ServerMetrics"]


@dataclass
class DegradationEvent:
    """One ladder transition, recorded for post-hoc analysis."""

    time_ms: float
    direction: str          # "degrade" or "upgrade"
    from_rung: str
    to_rung: str


class ServeTelemetry:
    """Bound label handles into one Telemetry for one serving run.

    Resolving a labeled child costs a tuple build and a dict lookup;
    doing that per request would be measurable, so the fixed-label
    children (life-cycle event counters) are resolved once here and hot
    paths increment bound handles. Children that depend on runtime
    values (tenant, rung, kernel) go through small per-instance caches.

    ``labels`` adds fixed extra labels to every family (the cluster
    layer passes ``{"replica": name}``); every serving stack sharing one
    :class:`~repro.obs.telemetry.Telemetry` must use the same extra
    label *keys*, or family schemas would disagree.
    """

    REQUEST_EVENTS = ("arrived", "admitted", "rejected", "completed",
                      "deadline_miss", "dropped")
    ENGINE_EVENTS = ("batch", "timeout", "retry", "fault",
                     "degrade", "upgrade")

    def __init__(self, telemetry, labels: dict | None = None):
        self.telemetry = telemetry
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        names = tuple(sorted(self.labels))
        self._extra = tuple(self.labels[n] for n in names)
        self.suffix = ",".join(f"{k}={self.labels[k]}" for k in names)

        requests = telemetry.counter(
            "serve_requests_total",
            "requests by life-cycle event", ("event",) + names)
        engine_events = telemetry.counter(
            "serve_engine_events_total",
            "engine-internal events (batches, retries, transitions)",
            ("event",) + names)
        self._requests = {e: requests.child((e,) + self._extra)
                          for e in self.REQUEST_EVENTS}
        self._engine = {e: engine_events.child((e,) + self._extra)
                        for e in self.ENGINE_EVENTS}
        self._tenant_family = telemetry.counter(
            "serve_tenant_requests_total",
            "per-tenant requests by life-cycle event",
            ("tenant", "event") + names)
        self._breaker_family = telemetry.counter(
            "serve_breaker_transitions_total",
            "circuit-breaker transitions by rung and new state",
            ("rung", "state") + names)
        self._latency_family = telemetry.histogram(
            "serve_latency_ms", "end-to-end response latency",
            ("rung",) + names)
        self._queue_wait = telemetry.histogram(
            "serve_queue_wait_ms", "time between arrival and batch start",
            names).child(self._extra)
        self._batch_size = telemetry.histogram(
            "serve_batch_size", "formed micro-batch occupancy",
            names).child(self._extra)
        self._stops_family = telemetry.counter(
            "serve_batch_stops_total",
            "why micro-batch growth stopped", ("stop",) + names)
        self._kernel_family = telemetry.histogram(
            "kernel_latency_ms",
            "per-fused-kernel wall-clock latency of compiled forwards",
            ("kernel", "rung") + names)
        self.reestimate_total = telemetry.counter(
            "netcut_reestimate_total",
            "drift-triggered online latency re-estimations",
            names).child(self._extra)
        self.rebuild_total = telemetry.counter(
            "ladder_rebuild_total",
            "ladder re-syntheses (serving rung re-selected) after online "
            "re-estimation", names).child(self._extra)
        self._scale_family = telemetry.gauge(
            "netcut_estimate_scale",
            "online latency calibration scale per rung "
            "(1.0 = deployment artifact's table)", ("rung",) + names)

        gauge = telemetry.gauge
        self.queue_depth = gauge(
            "serve_queue_depth", "EDF queue depth", names).child(self._extra)
        self.rung_index = gauge(
            "serve_rung_index", "ladder cursor (0 = most accurate)",
            names).child(self._extra)
        self.recent_p99 = gauge(
            "serve_recent_p99_ms", "p99 latency over the recent window",
            names).child(self._extra)
        self.arrival_rate = gauge(
            "serve_arrival_rate_rps", "recent offered arrival rate",
            names).child(self._extra)
        self._share_family = gauge(
            "serve_admission_share",
            "tenant share of the recent admission window",
            ("tenant",) + names)
        self._fair_share_family = gauge(
            "serve_fair_share", "tenant weighted-fair admission guarantee",
            ("tenant",) + names)

        self._tenant_children: dict[tuple[str, str], Counter] = {}
        self._scale_children: dict = {}
        self._stop_children: dict[str, Counter] = {}
        self._latency_children: dict[str, LatencyHistogram] = {}
        self._kernel_children: dict[tuple[str, str], LatencyHistogram] = {}
        self.recent = deque(maxlen=256)

    # -- hot-path recording (called by ServerMetrics / Engine) ---------------
    def event(self, name: str) -> None:
        self._requests[name].increment()

    def engine_event(self, name: str) -> None:
        self._engine[name].increment()

    def tenant_event(self, tenant: str, event: str) -> None:
        child = self._tenant_children.get((tenant, event))
        if child is None:
            child = self._tenant_children[(tenant, event)] = \
                self._tenant_family.child((tenant, event) + self._extra)
        child.increment()

    def observe_response(self, rung: str | None, latency_ms: float,
                         queue_ms: float) -> None:
        key = rung or ""
        hist = self._latency_children.get(key)
        if hist is None:
            hist = self._latency_children[key] = \
                self._latency_family.child((key,) + self._extra)
        hist.observe(latency_ms)
        self._queue_wait.observe(queue_ms)
        self.recent.append(latency_ms)

    def observe_batch(self, size: int) -> None:
        self._engine["batch"].increment()
        self._batch_size.observe(size)

    def batch_stop(self, size: int, stop: str) -> None:
        """Batcher hook: count why batch growth stopped (labeled)."""
        child = self._stop_children.get(stop)
        if child is None:
            child = self._stop_children[stop] = \
                self._stops_family.child((stop,) + self._extra)
        child.increment()

    def observe_kernel(self, kernel: str, rung: str, ms: float) -> None:
        hist = self._kernel_children.get((kernel, rung))
        if hist is None:
            hist = self._kernel_children[(kernel, rung)] = \
                self._kernel_family.child((kernel, rung) + self._extra)
        hist.observe(ms)

    def breaker(self, rung: str, to_state: str) -> None:
        self._breaker_family.child(
            (rung, to_state) + self._extra).increment()

    def scale_gauge(self, rung: str):
        """The calibration-scale gauge for one rung."""
        gauge = self._scale_children.get(rung)
        if gauge is None:
            gauge = self._scale_children[rung] = \
                self._scale_family.child((rung,) + self._extra)
        return gauge

    def share_gauges(self, tenant: str):
        """The (admitted-share, fair-share) gauges for one tenant."""
        return (self._share_family.child((tenant,) + self._extra),
                self._fair_share_family.child((tenant,) + self._extra))

    def recent_quantile(self, q: float) -> float:
        """Quantile of the recent-latency window (the honest windowed p99).

        Exact over the retained window (at most 256 samples), unlike the
        run-cumulative histogram — which is the point: the gauge tracks
        *current* tail latency, so burn-rate windows see storms begin
        and end.
        """
        if not self.recent:
            return 0.0
        ordered = sorted(self.recent)
        rank = int(q * (len(ordered) - 1))
        return ordered[rank]


class ServerMetrics:
    """All counters and histograms of one serving run.

    Untagged (single-class) traffic populates only the run-wide counters;
    requests carrying a ``tenant`` additionally feed a per-tenant
    breakdown (arrivals, admissions, rejections, completions, misses,
    drops and a latency sum) surfaced under ``snapshot()["tenants"]`` —
    the observability needed to tell *whose* deadline a busy server is
    sacrificing.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) additionally mirrors
    every recording into labeled metric families via
    :class:`ServeTelemetry`; ``labels`` adds fixed labels (e.g.
    ``{"replica": "r1"}``) to every series. Snapshots and reports are
    identical with or without telemetry attached.
    """

    COUNTERS = ("arrived", "admitted", "rejected", "completed",
                "deadline_miss", "batches", "degrade_events",
                "upgrade_events", "dropped", "timeouts", "retries",
                "breaker_opens", "breaker_closes", "fault_events",
                "reestimates", "ladder_rebuilds")

    TENANT_COUNTERS = ("arrived", "admitted", "rejected", "completed",
                       "deadline_miss", "dropped")

    def __init__(self, deadline_ms: float, telemetry=None,
                 labels: dict | None = None):
        self.deadline_ms = deadline_ms
        self.counters = {name: Counter(name) for name in self.COUNTERS}
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.service = LatencyHistogram()
        self.batch_occupancy_sum = 0
        self.per_rung: dict[str, int] = {}
        self.tenants: dict[str, dict] = {}
        self.events: list[DegradationEvent] = []
        # rung inventory (name/builder/estimate/accuracy per rung), set by
        # the engine from TRNLadder.snapshot() at construction time
        self.ladder: list[dict] = []
        self.tele = None if telemetry is None \
            else ServeTelemetry(telemetry, labels)

    def set_ladder(self, rungs: list[dict]) -> None:
        """Record the serving ladder's rung inventory (see snapshot)."""
        self.ladder = [dict(r) for r in rungs]

    def _tenant(self, tenant: str) -> dict:
        if tenant not in self.tenants:
            self.tenants[tenant] = dict.fromkeys(self.TENANT_COUNTERS, 0)
            self.tenants[tenant]["latency_sum_ms"] = 0.0
        return self.tenants[tenant]

    # -- recording ----------------------------------------------------------
    def record_arrival(self, tenant: str | None = None) -> None:
        self.counters["arrived"].increment()
        if tenant is not None:
            self._tenant(tenant)["arrived"] += 1
        if self.tele is not None:
            self.tele.event("arrived")
            if tenant is not None:
                self.tele.tenant_event(tenant, "arrived")

    def record_rejection(self, tenant: str | None = None) -> None:
        self.counters["rejected"].increment()
        if tenant is not None:
            self._tenant(tenant)["rejected"] += 1
        if self.tele is not None:
            self.tele.event("rejected")
            if tenant is not None:
                self.tele.tenant_event(tenant, "rejected")

    def record_admission(self, tenant: str | None = None) -> None:
        self.counters["admitted"].increment()
        if tenant is not None:
            self._tenant(tenant)["admitted"] += 1
        if self.tele is not None:
            self.tele.event("admitted")
            if tenant is not None:
                self.tele.tenant_event(tenant, "admitted")

    def record_batch(self, size: int) -> None:
        self.counters["batches"].increment()
        self.batch_occupancy_sum += size
        if self.tele is not None:
            self.tele.observe_batch(size)

    def record_drop(self, tenant: str | None = None) -> None:
        """One admitted request dropped un-executed (drain or dead rungs)."""
        self.counters["dropped"].increment()
        if tenant is not None:
            self._tenant(tenant)["dropped"] += 1
        if self.tele is not None:
            self.tele.event("dropped")
            if tenant is not None:
                self.tele.tenant_event(tenant, "dropped")

    def record_timeout(self) -> None:
        """One batch execution cancelled at its timeout."""
        self.counters["timeouts"].increment()
        if self.tele is not None:
            self.tele.engine_event("timeout")

    def record_retry(self) -> None:
        """One batch re-executed on a faster rung after timeout/failure."""
        self.counters["retries"].increment()
        if self.tele is not None:
            self.tele.engine_event("retry")

    def record_breaker(self, to_state: str, rung: str = "") -> None:
        """One circuit-breaker transition (opens and closes counted)."""
        if to_state == "open":
            self.counters["breaker_opens"].increment()
        elif to_state == "closed":
            self.counters["breaker_closes"].increment()
        if self.tele is not None:
            self.tele.breaker(rung, to_state)

    def record_fault_event(self) -> None:
        """One fault window opening or closing under the engine."""
        self.counters["fault_events"].increment()
        if self.tele is not None:
            self.tele.engine_event("fault")

    def record_response(self, response) -> None:
        """Record one COMPLETED response (rejections use record_rejection)."""
        self.counters["completed"].increment()
        if not response.deadline_met:
            self.counters["deadline_miss"].increment()
        self.latency.observe(response.latency_ms)
        self.queue_wait.observe(max(response.queue_ms, 0.0))
        self.service.observe(response.service_ms)
        if response.rung is not None:
            self.per_rung[response.rung] = \
                self.per_rung.get(response.rung, 0) + 1
        if response.tenant is not None:
            bucket = self._tenant(response.tenant)
            bucket["completed"] += 1
            bucket["latency_sum_ms"] += response.latency_ms
            if not response.deadline_met:
                bucket["deadline_miss"] += 1
        if self.tele is not None:
            tele = self.tele
            tele.event("completed")
            if not response.deadline_met:
                tele.event("deadline_miss")
            tele.observe_response(response.rung, response.latency_ms,
                                  max(response.queue_ms, 0.0))
            if response.tenant is not None:
                tele.tenant_event(response.tenant, "completed")
                if not response.deadline_met:
                    tele.tenant_event(response.tenant, "deadline_miss")

    def record_transition(self, time_ms: float, direction: str,
                          from_rung: str, to_rung: str) -> None:
        key = "degrade_events" if direction == "degrade" else "upgrade_events"
        self.counters[key].increment()
        self.events.append(
            DegradationEvent(time_ms, direction, from_rung, to_rung))
        if self.tele is not None:
            self.tele.engine_event(direction)

    def record_reestimate(self) -> None:
        """One applied online re-estimation (latency tables rewritten)."""
        self.counters["reestimates"].increment()
        if self.tele is not None:
            self.tele.reestimate_total.increment()

    def record_rebuild(self, time_ms: float, from_rung: str,
                       to_rung: str) -> None:
        """One ladder rebuild: re-estimation moved the serving rung."""
        self.counters["ladder_rebuilds"].increment()
        self.events.append(
            DegradationEvent(time_ms, "rebuild", from_rung, to_rung))
        if self.tele is not None:
            self.tele.rebuild_total.increment()

    # -- read-out -----------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        """Deadline misses as a fraction of completed requests."""
        done = self.counters["completed"].value
        return (self.counters["deadline_miss"].value / done
                if done else 0.0)

    @property
    def mean_batch_size(self) -> float:
        batches = self.counters["batches"].value
        return self.batch_occupancy_sum / batches if batches else float("nan")

    def tenant_miss_rate(self, tenant: str) -> float:
        """Deadline misses of one tenant as a fraction of its completions."""
        bucket = self.tenants.get(tenant)
        if not bucket or not bucket["completed"]:
            return 0.0
        return bucket["deadline_miss"] / bucket["completed"]

    def merge_tenants(self, other: dict[str, dict]) -> None:
        """Fold another run's per-tenant breakdown in (cluster roll-up)."""
        for name, bucket in other.items():
            mine = self._tenant(name)
            for key, value in bucket.items():
                mine[key] = mine.get(key, 0) + value

    def snapshot(self) -> dict:
        """The whole metrics surface as one JSON-able dict.

        The snapshot owns every container it returns (deep copy): callers
        may mutate it freely without corrupting the live metrics behind
        the next :meth:`report`. Telemetry mirrors are intentionally not
        included — the attached :class:`repro.obs.Telemetry` has its own
        ``snapshot()`` — so traced and untraced snapshots compare equal.
        """
        return copy.deepcopy({
            "deadline_ms": self.deadline_ms,
            "counters": {n: c.value for n, c in self.counters.items()},
            "miss_rate": self.miss_rate,
            "mean_batch_size": self.mean_batch_size,
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "service": self.service.snapshot(),
            "per_rung": dict(self.per_rung),
            "ladder": list(self.ladder),
            "tenants": {
                name: dict(bucket, miss_rate=(
                    bucket["deadline_miss"] / bucket["completed"]
                    if bucket["completed"] else 0.0))
                for name, bucket in sorted(self.tenants.items())},
            "transitions": [(e.time_ms, e.direction, e.from_rung, e.to_rung)
                            for e in self.events],
        })

    def report(self) -> str:
        """Human-readable metrics block (what ``repro serve`` prints)."""
        snap = self.snapshot()
        c = snap["counters"]
        lat = snap["latency"]
        lines = [
            f"deadline {self.deadline_ms:.3f} ms",
            f"requests: {c['arrived']} arrived, {c['admitted']} admitted, "
            f"{c['rejected']} rejected, {c['completed']} completed",
            f"deadline misses: {c['deadline_miss']} "
            f"(miss rate {100 * snap['miss_rate']:.2f}%)",
            f"latency ms: p50 {lat['p50_ms']:.3f}  p95 {lat['p95_ms']:.3f}  "
            f"p99 {lat['p99_ms']:.3f}  max {lat['max_ms']:.3f}",
            f"batches: {c['batches']} "
            f"(mean occupancy {snap['mean_batch_size']:.2f})",
            f"ladder: {c['degrade_events']} degrade / "
            f"{c['upgrade_events']} upgrade events",
        ]
        if any(c[k] for k in ("dropped", "timeouts", "retries",
                              "breaker_opens", "fault_events")):
            lines.append(
                f"resilience: {c['dropped']} dropped, {c['timeouts']} "
                f"timeouts, {c['retries']} retries, breaker "
                f"{c['breaker_opens']} opens / {c['breaker_closes']} "
                f"closes, {c['fault_events']} fault events")
        if c["reestimates"]:
            lines.append(
                f"online netcut: {c['reestimates']} re-estimations, "
                f"{c['ladder_rebuilds']} ladder rebuilds")
        if snap["per_rung"]:
            served = ", ".join(f"{name}: {n}"
                               for name, n in snap["per_rung"].items())
            lines.append(f"served by: {served}")
        for name, b in snap["tenants"].items():
            mean = (b["latency_sum_ms"] / b["completed"]
                    if b["completed"] else float("nan"))
            lines.append(
                f"tenant {name}: {b['arrived']} arrived, "
                f"{b['admitted']} admitted, {b['rejected']} rejected, "
                f"{b['completed']} completed; miss rate "
                f"{100 * b['miss_rate']:.2f}%, mean latency {mean:.3f} ms")
        return "\n".join(lines)
