"""Serving metrics: counters and streaming latency histograms.

The server observes every response exactly once; latencies go into
fixed-memory log-spaced histograms whose quantiles (p50/p95/p99) are read
out of the bin boundaries, so memory stays O(bins) no matter how long a
trace runs. :meth:`ServerMetrics.snapshot` returns a plain dict (the
monitoring surface) and :meth:`ServerMetrics.report` renders it as the text
block the CLI prints.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

__all__ = ["Counter", "LatencyHistogram", "ServerMetrics"]


@dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def increment(self, n: int = 1) -> None:
        self.value += n


class LatencyHistogram:
    """Streaming histogram over log-spaced bins (default 1 µs .. 10 s).

    Quantiles are estimated as the geometric midpoint of the bin holding
    the requested rank, which bounds the relative error by the bin ratio
    (~12% at 20 bins/decade) without retaining samples.
    """

    def __init__(self, lo_ms: float = 1e-3, hi_ms: float = 1e4,
                 bins_per_decade: int = 20):
        self.lo_ms = lo_ms
        self.hi_ms = hi_ms
        decades = math.log10(hi_ms / lo_ms)
        self.n_bins = int(round(decades * bins_per_decade))
        self._ratio = (hi_ms / lo_ms) ** (1.0 / self.n_bins)
        # two extra bins catch under/overflow
        self.counts = [0] * (self.n_bins + 2)
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0

    def _bin(self, ms: float) -> int:
        if ms < self.lo_ms:
            return 0
        if ms >= self.hi_ms:
            return self.n_bins + 1
        return 1 + int(math.log(ms / self.lo_ms) / math.log(self._ratio))

    def observe(self, ms: float) -> None:
        """Record one latency sample (milliseconds)."""
        self.counts[self._bin(ms)] += 1
        self.count += 1
        self.total_ms += ms
        self.min_ms = min(self.min_ms, ms)
        self.max_ms = max(self.max_ms, ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else float("nan")

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one (cluster roll-up).

        Bin-exact because both histograms share the log-spaced layout;
        histograms with different bounds or resolutions cannot be merged
        without re-binning, so that is rejected.
        """
        if (other.lo_ms, other.hi_ms, other.n_bins) != \
                (self.lo_ms, self.hi_ms, self.n_bins):
            raise ValueError("cannot merge histograms with different bins")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total_ms += other.total_ms
        self.min_ms = min(self.min_ms, other.min_ms)
        self.max_ms = max(self.max_ms, other.max_ms)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) in milliseconds.

        The under/overflow bins have no geometric midpoint (their inner
        edge is the only boundary known), so they clamp to ``lo_ms`` and
        ``max_ms`` respectively — further bounded by the observed
        min/max, which keeps the estimate sane when every sample falls
        outside the binned range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * (self.count - 1)
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum > rank:
                if i == 0:                      # underflow: all < lo_ms
                    return min(self.lo_ms, self.max_ms)
                if i == self.n_bins + 1:        # overflow: clamp to max
                    return self.max_ms
                lo = self.lo_ms * self._ratio ** (i - 1)
                return min(max(lo * math.sqrt(self._ratio), self.min_ms),
                           self.max_ms)
        return self.max_ms

    def snapshot(self) -> dict:
        """Summary statistics as a plain dict."""
        empty = self.count == 0
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "min_ms": float("nan") if empty else self.min_ms,
            "max_ms": float("nan") if empty else self.max_ms,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
        }


@dataclass
class DegradationEvent:
    """One ladder transition, recorded for post-hoc analysis."""

    time_ms: float
    direction: str          # "degrade" or "upgrade"
    from_rung: str
    to_rung: str


class ServerMetrics:
    """All counters and histograms of one serving run.

    Untagged (single-class) traffic populates only the run-wide counters;
    requests carrying a ``tenant`` additionally feed a per-tenant
    breakdown (arrivals, admissions, rejections, completions, misses,
    drops and a latency sum) surfaced under ``snapshot()["tenants"]`` —
    the observability needed to tell *whose* deadline a busy server is
    sacrificing.
    """

    COUNTERS = ("arrived", "admitted", "rejected", "completed",
                "deadline_miss", "batches", "degrade_events",
                "upgrade_events", "dropped", "timeouts", "retries",
                "breaker_opens", "breaker_closes", "fault_events")

    TENANT_COUNTERS = ("arrived", "admitted", "rejected", "completed",
                       "deadline_miss", "dropped")

    def __init__(self, deadline_ms: float):
        self.deadline_ms = deadline_ms
        self.counters = {name: Counter(name) for name in self.COUNTERS}
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.service = LatencyHistogram()
        self.batch_occupancy_sum = 0
        self.per_rung: dict[str, int] = {}
        self.tenants: dict[str, dict] = {}
        self.events: list[DegradationEvent] = []

    def _tenant(self, tenant: str) -> dict:
        if tenant not in self.tenants:
            self.tenants[tenant] = dict.fromkeys(self.TENANT_COUNTERS, 0)
            self.tenants[tenant]["latency_sum_ms"] = 0.0
        return self.tenants[tenant]

    # -- recording ----------------------------------------------------------
    def record_arrival(self, tenant: str | None = None) -> None:
        self.counters["arrived"].increment()
        if tenant is not None:
            self._tenant(tenant)["arrived"] += 1

    def record_rejection(self, tenant: str | None = None) -> None:
        self.counters["rejected"].increment()
        if tenant is not None:
            self._tenant(tenant)["rejected"] += 1

    def record_admission(self, tenant: str | None = None) -> None:
        self.counters["admitted"].increment()
        if tenant is not None:
            self._tenant(tenant)["admitted"] += 1

    def record_batch(self, size: int) -> None:
        self.counters["batches"].increment()
        self.batch_occupancy_sum += size

    def record_drop(self, tenant: str | None = None) -> None:
        """One admitted request dropped un-executed (drain or dead rungs)."""
        self.counters["dropped"].increment()
        if tenant is not None:
            self._tenant(tenant)["dropped"] += 1

    def record_timeout(self) -> None:
        """One batch execution cancelled at its timeout."""
        self.counters["timeouts"].increment()

    def record_retry(self) -> None:
        """One batch re-executed on a faster rung after timeout/failure."""
        self.counters["retries"].increment()

    def record_breaker(self, to_state: str) -> None:
        """One circuit-breaker transition (opens and closes counted)."""
        if to_state == "open":
            self.counters["breaker_opens"].increment()
        elif to_state == "closed":
            self.counters["breaker_closes"].increment()

    def record_fault_event(self) -> None:
        """One fault window opening or closing under the engine."""
        self.counters["fault_events"].increment()

    def record_response(self, response) -> None:
        """Record one COMPLETED response (rejections use record_rejection)."""
        self.counters["completed"].increment()
        if not response.deadline_met:
            self.counters["deadline_miss"].increment()
        self.latency.observe(response.latency_ms)
        self.queue_wait.observe(max(response.queue_ms, 0.0))
        self.service.observe(response.service_ms)
        if response.rung is not None:
            self.per_rung[response.rung] = \
                self.per_rung.get(response.rung, 0) + 1
        if response.tenant is not None:
            bucket = self._tenant(response.tenant)
            bucket["completed"] += 1
            bucket["latency_sum_ms"] += response.latency_ms
            if not response.deadline_met:
                bucket["deadline_miss"] += 1

    def record_transition(self, time_ms: float, direction: str,
                          from_rung: str, to_rung: str) -> None:
        key = "degrade_events" if direction == "degrade" else "upgrade_events"
        self.counters[key].increment()
        self.events.append(
            DegradationEvent(time_ms, direction, from_rung, to_rung))

    # -- read-out -----------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        """Deadline misses as a fraction of completed requests."""
        done = self.counters["completed"].value
        return (self.counters["deadline_miss"].value / done
                if done else 0.0)

    @property
    def mean_batch_size(self) -> float:
        batches = self.counters["batches"].value
        return self.batch_occupancy_sum / batches if batches else float("nan")

    def tenant_miss_rate(self, tenant: str) -> float:
        """Deadline misses of one tenant as a fraction of its completions."""
        bucket = self.tenants.get(tenant)
        if not bucket or not bucket["completed"]:
            return 0.0
        return bucket["deadline_miss"] / bucket["completed"]

    def merge_tenants(self, other: dict[str, dict]) -> None:
        """Fold another run's per-tenant breakdown in (cluster roll-up)."""
        for name, bucket in other.items():
            mine = self._tenant(name)
            for key, value in bucket.items():
                mine[key] = mine.get(key, 0) + value

    def snapshot(self) -> dict:
        """The whole metrics surface as one JSON-able dict.

        The snapshot owns every container it returns (deep copy): callers
        may mutate it freely without corrupting the live metrics behind
        the next :meth:`report`.
        """
        return copy.deepcopy({
            "deadline_ms": self.deadline_ms,
            "counters": {n: c.value for n, c in self.counters.items()},
            "miss_rate": self.miss_rate,
            "mean_batch_size": self.mean_batch_size,
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "service": self.service.snapshot(),
            "per_rung": dict(self.per_rung),
            "tenants": {
                name: dict(bucket, miss_rate=(
                    bucket["deadline_miss"] / bucket["completed"]
                    if bucket["completed"] else 0.0))
                for name, bucket in sorted(self.tenants.items())},
            "transitions": [(e.time_ms, e.direction, e.from_rung, e.to_rung)
                            for e in self.events],
        })

    def report(self) -> str:
        """Human-readable metrics block (what ``repro serve`` prints)."""
        snap = self.snapshot()
        c = snap["counters"]
        lat = snap["latency"]
        lines = [
            f"deadline {self.deadline_ms:.3f} ms",
            f"requests: {c['arrived']} arrived, {c['admitted']} admitted, "
            f"{c['rejected']} rejected, {c['completed']} completed",
            f"deadline misses: {c['deadline_miss']} "
            f"(miss rate {100 * snap['miss_rate']:.2f}%)",
            f"latency ms: p50 {lat['p50_ms']:.3f}  p95 {lat['p95_ms']:.3f}  "
            f"p99 {lat['p99_ms']:.3f}  max {lat['max_ms']:.3f}",
            f"batches: {c['batches']} "
            f"(mean occupancy {snap['mean_batch_size']:.2f})",
            f"ladder: {c['degrade_events']} degrade / "
            f"{c['upgrade_events']} upgrade events",
        ]
        if any(c[k] for k in ("dropped", "timeouts", "retries",
                              "breaker_opens", "fault_events")):
            lines.append(
                f"resilience: {c['dropped']} dropped, {c['timeouts']} "
                f"timeouts, {c['retries']} retries, breaker "
                f"{c['breaker_opens']} opens / {c['breaker_closes']} "
                f"closes, {c['fault_events']} fault events")
        if snap["per_rung"]:
            served = ", ".join(f"{name}: {n}"
                               for name, n in snap["per_rung"].items())
            lines.append(f"served by: {served}")
        for name, b in snap["tenants"].items():
            mean = (b["latency_sum_ms"] / b["completed"]
                    if b["completed"] else float("nan"))
            lines.append(
                f"tenant {name}: {b['arrived']} arrived, "
                f"{b['admitted']} admitted, {b['rejected']} rejected, "
                f"{b['completed']} completed; miss rate "
                f"{100 * b['miss_rate']:.2f}%, mean latency {mean:.3f} ms")
        return "\n".join(lines)
