"""Request/response types for the deadline-aware inference server.

All timestamps are in **milliseconds of virtual time**. The serving stack
is a discrete-event simulation over the repository's simulated devices, so
nothing here ever reads a wall clock — traces, schedules and metrics are
fully deterministic under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "Response", "COMPLETED", "REJECTED", "DROPPED"]

#: Terminal request states. A completed request may still have missed its
#: deadline (``Response.deadline_met`` is False); rejection happens at
#: admission time, before any compute is spent; a *dropped* request was
#: admitted but never executed — the engine drained it at shutdown, or
#: every rung able to run it had failed.
COMPLETED = "completed"
REJECTED = "rejected"
DROPPED = "dropped"


@dataclass
class Request:
    """One inference request against the server.

    ``x`` is a single un-batched sample (shape equal to the network input
    shape) or ``None`` when the server runs in timing-only mode.
    ``deadline_ms`` is the *relative* latency budget; the absolute deadline
    is ``arrival_ms + deadline_ms``. ``tenant`` names the request class
    (see :mod:`repro.workload.tenancy`); ``None`` means untagged
    single-class traffic, which every policy treats as before.
    """

    rid: int
    arrival_ms: float
    deadline_ms: float
    x: np.ndarray | None = None
    tenant: str | None = None

    @property
    def abs_deadline_ms(self) -> float:
        """Absolute virtual-time deadline of this request."""
        return self.arrival_ms + self.deadline_ms


@dataclass
class Response:
    """Outcome of one request: where it ran, when, and whether it made it."""

    rid: int
    status: str                       # COMPLETED or REJECTED
    arrival_ms: float
    abs_deadline_ms: float
    rung: str | None = None           # TRN that served the request
    start_ms: float = float("nan")    # batch execution start
    finish_ms: float = float("nan")   # batch execution end
    batch_size: int = 0
    output: np.ndarray | None = None
    reject_reason: str | None = None
    tenant: str | None = None
    extras: dict = field(default_factory=dict)

    @property
    def queue_ms(self) -> float:
        """Time spent waiting before execution started."""
        return self.start_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        """Batch execution time the request was part of."""
        return self.finish_ms - self.start_ms

    @property
    def latency_ms(self) -> float:
        """End-to-end response time (queueing + service)."""
        return self.finish_ms - self.arrival_ms

    @property
    def deadline_met(self) -> bool:
        """Whether the request completed within its deadline."""
        return self.status == COMPLETED and self.finish_ms <= self.abs_deadline_ms
