"""Micro-batching: coalesce queued requests into one batched inference.

On launch-overhead-dominated embedded GPUs a batch of B requests costs far
less than B single inferences (kernels launch once, weights are read once,
occupancy improves), so batching is the cheapest capacity lever a server
has — as long as no batch member's deadline is sacrificed to wait for the
others. The batcher therefore grows a batch from the EDF head only while
the *batched* latency estimate still fits inside every member's remaining
slack (minus a configurable safety margin for estimator error).
"""

from __future__ import annotations

from .ladder import TRNRung
from .queue import EDFQueue
from .request import Request

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Form deadline-safe micro-batches from the head of an EDF queue.

    ``tracer`` (e.g. :class:`repro.obs.Tracer`) receives one ``batch``
    span per formed batch carrying the batch size; the engine's matching
    ``forward`` span carries the member rids and executed rung.
    ``on_form`` (a callable ``(size, stop)``, e.g.
    :meth:`repro.serve.metrics.ServeTelemetry.batch_stop`) is invoked once
    per formed batch with the stop reason, feeding the labeled
    stop-reason counters.
    """

    def __init__(self, max_batch: int = 8, slack_margin_ms: float = 0.0,
                 tracer=None, on_form=None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if slack_margin_ms < 0:
            raise ValueError("slack_margin_ms must be >= 0")
        self.max_batch = max_batch
        self.slack_margin_ms = slack_margin_ms
        self.tracer = tracer
        self._emit = None if tracer is None else tracer.emit
        self._on_form = on_form

    def _fits(self, batch: list[Request], now_ms: float,
              est_ms: float) -> bool:
        finish = now_ms + est_ms + self.slack_margin_ms
        return all(finish <= r.abs_deadline_ms for r in batch)

    def form(self, queue: EDFQueue, now_ms: float,
             rung: TRNRung) -> list[Request]:
        """Pop the next micro-batch to execute at ``now_ms`` on ``rung``.

        The EDF head is always taken (running it late still beats never
        running it — a miss is recorded either way); further requests join
        only while the grown batch's estimated completion time keeps every
        member inside its deadline minus the slack margin. Because the
        queue is deadline-ordered, the first request that does not fit
        terminates growth: later requests have no tighter deadlines but the
        batch only gets slower.
        """
        if not len(queue):
            raise IndexError("cannot form a batch from an empty queue")
        batch = [queue.pop()]
        stop = None
        while len(batch) < self.max_batch and len(queue):
            candidate = queue.peek()
            est = rung.estimate_ms(len(batch) + 1)
            if not self._fits(batch + [candidate], now_ms, est):
                stop = "deadline-fit"
                break
            batch.append(queue.pop())
        if self._emit is not None or self._on_form is not None:
            # member rids ride the engine's matching "forward" span; the
            # batched estimate and stop reason are stamped here because
            # only the batcher knows *why* growth stopped (estimate_ms at
            # the final size is one cached dict lookup, no per-member work)
            if stop is None:
                stop = ("max-batch" if len(batch) == self.max_batch
                        else "queue-empty")
            if self._on_form is not None:
                self._on_form(len(batch), stop)
            if self._emit is not None:
                self._emit("batch", "batch", now_ms, 0.0, None,
                           {"size": len(batch),
                            "est_ms": rung.estimate_ms(len(batch)),
                            "stop": stop})
        return batch
