"""Deadline-aware inference serving on top of NetCut's TRN ladder.

NetCut picks the deepest TRN that meets a hard deadline *at deploy time*;
this subpackage closes the loop at *serve time*: a bounded
earliest-deadline-first queue with admission control, a micro-batcher that
coalesces requests while every member's deadline still holds, and a
degradation scheduler that steps down the TRN ladder when queue pressure
(observed p99 vs. the deadline) threatens misses and climbs back when
pressure subsides. All timing runs on the simulated devices in
:mod:`repro.device` over virtual time, so serving runs are deterministic
and wall-clock-free.

Entry points: :class:`Server` / :class:`ServerConfig` (the facade),
:class:`TRNLadder` (build from networks, deployment artifacts or a base
network), and :func:`poisson_trace` (synthetic traffic). Observability —
request tracing and estimator-drift monitoring — plugs in through
``Server(..., tracer=..., drift=...)``; see :mod:`repro.obs`.
"""

from .batcher import MicroBatcher
from .engine import Engine, ServerConfig
from .ladder import HysteresisController, TRNLadder, TRNRung
from .metrics import Counter, LatencyHistogram, ServerMetrics
from .queue import EDFQueue
from .request import COMPLETED, REJECTED, Request, Response
from .server import Server, ServingResult

# the trace makers live in repro.workload now; re-exported here for
# compatibility (imported from the source, not the deprecated
# repro.serve.trace shim, so `import repro.serve` stays warning-free)
from repro.workload.generators import (
    offered_load,
    poisson_trace,
    uniform_trace,
)

__all__ = [
    "Server",
    "ServerConfig",
    "ServingResult",
    "Engine",
    "TRNLadder",
    "TRNRung",
    "HysteresisController",
    "MicroBatcher",
    "EDFQueue",
    "Request",
    "Response",
    "COMPLETED",
    "REJECTED",
    "Counter",
    "LatencyHistogram",
    "ServerMetrics",
    "poisson_trace",
    "uniform_trace",
    "offered_load",
]
