"""The serving engine: admission → EDF queue → micro-batch → TRN ladder.

A discrete-event loop over virtual time (milliseconds). Requests are
drained from the trace into a bounded EDF queue under admission control
(anything whose deadline is already un-meetable per the latency estimator
is rejected before consuming compute); the engine then repeatedly forms a
deadline-safe micro-batch, executes it on the ladder's current rung —
service time drawn from the device's per-request measurement hook
(:class:`repro.device.runtime.ServiceTimeSampler`) — and feeds observed
response times to the hysteresis controller, degrading to a faster TRN
when the windowed p99 threatens the deadline and upgrading back when both
the observed latencies and the predicted utilisation of the slower rung
allow it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .batcher import MicroBatcher
from .ladder import HysteresisController, TRNLadder
from .metrics import ServerMetrics
from .queue import EDFQueue
from .request import COMPLETED, REJECTED, Request, Response

__all__ = ["ServerConfig", "Engine"]


@dataclass
class ServerConfig:
    """Every knob of the serving stack, with real-time-friendly defaults."""

    deadline_ms: float = 0.9          # the robotic hand's budget
    queue_capacity: int = 128
    max_batch: int = 8
    batch_slack_ms: float = 0.0       # safety margin for estimator error
    admission_control: bool = True
    adaptive: bool = True             # TRN-ladder degradation on/off
    window: int = 32                  # controller sliding window (requests)
    min_observations: int = 16
    cooldown: int = 16
    degrade_quantile: float = 0.99
    degrade_ratio: float = 1.0
    upgrade_ratio: float = 0.5
    upgrade_cooldown: int | None = None  # default 4x cooldown (lazy upgrades)
    upgrade_utilization: float = 0.75  # max predicted rho on the slower rung
    rate_window: int = 64             # arrivals used for rate estimation
    warm_start: bool = True           # skip the device's cold-start ramp
    execute: bool = True              # run real forwards (False = timing only)
    seed: int = 0


class Engine:
    """Runs one trace through the queue/batcher/ladder pipeline.

    ``tracer`` and ``drift`` are optional observability hooks
    (:class:`repro.obs.Tracer` / :class:`repro.obs.DriftMonitor`, or
    anything duck-compatible). The tracer receives one span per request
    life-cycle step over the virtual clock (``enqueue`` from the queue,
    ``batch`` from the batcher, ``admit``/``drop``/``forward``/``respond``
    from the engine); the drift monitor is fed every executed batch's
    predicted vs. observed service time, and any drift event it raises is
    traced as a ``drift`` span. With both left ``None`` the hot path is
    identical to the untraced engine.
    """

    def __init__(self, ladder: TRNLadder, config: ServerConfig,
                 metrics: ServerMetrics, tracer=None, drift=None):
        self.ladder = ladder
        self.config = config
        self.metrics = metrics
        self.tracer = tracer
        # bound-method cache for the per-request spans; rare spans (ladder
        # transitions, drift events) go through self.tracer directly
        self._emit = None if tracer is None else tracer.emit
        self.drift = drift
        self.queue = EDFQueue(config.queue_capacity, tracer=tracer)
        self.batcher = MicroBatcher(config.max_batch, config.batch_slack_ms,
                                    tracer=tracer)
        self.controller = (HysteresisController(
            config.deadline_ms, window=config.window,
            min_observations=config.min_observations,
            cooldown=config.cooldown, quantile=config.degrade_quantile,
            degrade_ratio=config.degrade_ratio,
            upgrade_ratio=config.upgrade_ratio,
            upgrade_cooldown=config.upgrade_cooldown)
            if config.adaptive else None)
        self._arrivals: deque[float] = deque(maxlen=config.rate_window)
        ladder.reseed(config.seed)
        if config.warm_start:
            for rung in ladder.rungs:
                # the paper's 200-run warm-up, so serving starts past the
                # clock ramp instead of degrading on cold-start stragglers
                rung.sampler.warm_up(200)

    # -- admission -----------------------------------------------------------
    def _admission_estimate_ms(self) -> float:
        """Best-case service estimate used to detect un-meetable deadlines."""
        rung = self.ladder.fastest if self.config.adaptive \
            else self.ladder.current
        return rung.estimate_ms(1)

    def _admit(self, pending: deque, now_ms: float,
               responses: dict[int, Response]) -> None:
        while pending and pending[0].arrival_ms <= now_ms:
            req: Request = pending.popleft()
            self.metrics.record_arrival()
            self._arrivals.append(req.arrival_ms)
            reason = None
            if self.config.admission_control:
                start = max(now_ms, req.arrival_ms)
                if start + self._admission_estimate_ms() > req.abs_deadline_ms:
                    reason = "unmeetable-deadline"
            if reason is None and not self.queue.push(req, now_ms=now_ms):
                reason = "queue-full"
            if reason is None:
                self.metrics.record_admission()
                if self._emit is not None:
                    self._emit("admit", "serve", now_ms, 0.0, req.rid, None)
            else:
                responses[req.rid] = Response(
                    req.rid, REJECTED, req.arrival_ms, req.abs_deadline_ms,
                    reject_reason=reason)
                self.metrics.record_rejection()
                if self._emit is not None:
                    self._emit("drop", "serve", now_ms, 0.0,
                               req.rid, {"reason": reason})

    # -- ladder control ------------------------------------------------------
    def _recent_rate_per_ms(self) -> float | None:
        if len(self._arrivals) < 2:
            return None
        span = self._arrivals[-1] - self._arrivals[0]
        if span <= 0:
            return None
        return (len(self._arrivals) - 1) / span

    def _upgrade_is_safe(self) -> bool:
        """Would the slower rung stay stable under the observed load?

        Predicted utilisation = arrival rate x per-request service time at
        the observed batch occupancy. Gating upgrades on this keeps the
        ladder from climbing straight back into an overload it just
        escaped (the controller's window only sees the fast rung's easy
        latencies, so it cannot make this call alone).
        """
        slower = self.ladder.peek_slower()
        if slower is None:
            return False
        rate = self._recent_rate_per_ms()
        if rate is None:
            return True
        b = self._observed_batch()
        per_request_ms = slower.estimate_ms(b) / b
        return rate * per_request_ms <= self.config.upgrade_utilization

    def _observed_batch(self) -> int:
        occupancy = self.metrics.mean_batch_size
        return max(1, int(round(occupancy))) if occupancy == occupancy else 1

    def _degrade_to_stable(self) -> None:
        """Step down until the predicted utilisation is stable.

        Descending one rung per controller decision costs a full cooldown
        of misses per step while the backlog keeps growing; instead, jump
        straight to the first rung whose service rate beats the observed
        arrival rate (with the upgrade margin as the stability target), or
        to the fastest rung when none does.
        """
        rate = self._recent_rate_per_ms()
        self.ladder.degrade()
        if rate is None:
            return
        b = self._observed_batch()
        while self.ladder.can_degrade:
            per_request_ms = self.ladder.current.estimate_ms(b) / b
            if rate * per_request_ms <= self.config.upgrade_utilization:
                break
            self.ladder.degrade()

    def _apply_policy(self, latency_ms: float, now_ms: float) -> None:
        if self.controller is None:
            return
        decision = self.controller.observe(latency_ms)
        if decision == "degrade" and self.ladder.can_degrade:
            frm = self.ladder.current.name
            self._degrade_to_stable()
            self.metrics.record_transition(now_ms, "degrade", frm,
                                           self.ladder.current.name)
            self.controller.notify_transition()
            self._trace_transition("degrade", now_ms, frm)
        elif (decision == "upgrade" and self.ladder.can_upgrade
                and self._upgrade_is_safe()):
            frm = self.ladder.current.name
            self.ladder.upgrade()
            self.metrics.record_transition(now_ms, "upgrade", frm,
                                           self.ladder.current.name)
            self.controller.notify_transition()
            self._trace_transition("upgrade", now_ms, frm)

    def _trace_transition(self, direction: str, now_ms: float,
                          frm: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(direction, "ladder", now_ms, frm=frm,
                                to=self.ladder.current.name)

    # -- the event loop ------------------------------------------------------
    def run(self, trace: list[Request]) -> list[Response]:
        """Serve a whole trace; returns responses in trace order."""
        responses: dict[int, Response] = {}
        pending = deque(sorted(trace, key=lambda r: (r.arrival_ms, r.rid)))
        now = 0.0
        while pending or len(self.queue):
            if not len(self.queue) and pending \
                    and pending[0].arrival_ms > now:
                now = pending[0].arrival_ms      # idle until the next arrival
            self._admit(pending, now, responses)
            if not len(self.queue):
                continue
            rung = self.ladder.current
            batch = self.batcher.form(self.queue, now, rung)
            predicted_ms = rung.estimate_ms(len(batch))
            service_ms = rung.sample_service_ms(len(batch))
            finish = now + service_ms
            outputs = None
            if self.config.execute and all(r.x is not None for r in batch):
                outputs = rung.forward([r.x for r in batch])
            self.metrics.record_batch(len(batch))
            if self._emit is not None:
                # a tuple of ints (unlike a list) leaves the span record
                # GC-untrackable, keeping collector sweeps off the buffer
                self._emit("forward", "serve", now, service_ms, None,
                           {"rung": rung.name, "size": len(batch),
                            "rids": tuple(r.rid for r in batch)})
            # one (prediction, observation) pair per executed batch: every
            # member shares the batch's estimate and measured time, so
            # feeding it per member would fill the drift window with
            # duplicates of the same evidence
            self._observe_drift(predicted_ms, service_ms, finish, rung.name)
            for i, req in enumerate(batch):
                resp = Response(
                    req.rid, COMPLETED, req.arrival_ms, req.abs_deadline_ms,
                    rung=rung.name, start_ms=now, finish_ms=finish,
                    batch_size=len(batch),
                    output=None if outputs is None else outputs[i])
                responses[req.rid] = resp
                self.metrics.record_response(resp)
                if self._emit is not None:
                    self._emit(
                        "respond", "serve", finish, 0.0, req.rid,
                        {"latency_ms": resp.latency_ms,
                         "met": bool(resp.deadline_met)})
                self._apply_policy(resp.latency_ms, finish)
            now = finish
        return [responses[r.rid] for r in trace]

    def _observe_drift(self, predicted_ms: float, observed_ms: float,
                       time_ms: float, rung: str) -> None:
        """Feed one batch's predicted vs. observed service time.

        The prediction is the same noise-free estimate admission and batch
        planning trusted (the deployment artifact's latency model at the
        executed batch size) — exactly the quantity whose drift invalidates
        those decisions.
        """
        if self.drift is None:
            return
        event = self.drift.observe(predicted_ms, observed_ms,
                                   time_ms=time_ms, rung=rung)
        if event is not None and self.tracer is not None:
            self.tracer.instant("drift", "drift", time_ms,
                                rel_error=event.rel_error,
                                bias=event.bias, rung=rung)
