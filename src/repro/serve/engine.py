"""The serving engine: admission → EDF queue → micro-batch → TRN ladder.

A discrete-event loop over virtual time (milliseconds). Requests are
drained from the trace into a bounded EDF queue under admission control
(anything whose deadline is already un-meetable per the latency estimator
is rejected before consuming compute); the engine then repeatedly forms a
deadline-safe micro-batch, executes it on the ladder's current rung —
service time drawn from the device's per-request measurement hook
(:class:`repro.device.runtime.ServiceTimeSampler`) — and feeds observed
response times to the hysteresis controller, degrading to a faster TRN
when the windowed p99 threatens the deadline and upgrading back when both
the observed latencies and the predicted utilisation of the slower rung
allow it.

With ``ServerConfig(resilience=True)`` the engine also defends the
deadline against a *misbehaving device* (see :mod:`repro.faults`): each
batch execution carries a timeout (a multiple of its predicted latency);
an attempt that would overrun it is cancelled — its timeout cost is paid
on the clock — and retried on a faster rung; per-rung circuit breakers
open after ``breaker_threshold`` consecutive timeouts/failures, taking
the rung out of rotation until a cooldown expires and a half-open probe
batch succeeds; and when every usable rung is broken the engine falls
back to the fastest rung outright, shedding accuracy instead of missing
deadlines or crashing. A batch is dropped (counted, never lost) only
when even the fastest rung hard-fails.

With ``ServerConfig(online_reestimation=True)`` the engine additionally
keeps the latency model itself honest: drift events from the
:class:`repro.obs.DriftMonitor` feed a
:class:`repro.netcut.online.ReestimationController` that re-fits every
rung's latency table from live observed service times and re-runs
NetCut's greedy rung selection over the updated estimates — Algorithm 1
running continuously inside the serving loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.faults.resilience import CircuitBreaker, HealthProbe, \
    RungFailureError

from .batcher import MicroBatcher
from .ladder import HysteresisController, TRNLadder
from .metrics import ServerMetrics
from .queue import EDFQueue
from .request import COMPLETED, DROPPED, REJECTED, Request, Response

__all__ = ["ServerConfig", "Engine"]


@dataclass
class ServerConfig:
    """Every knob of the serving stack, with real-time-friendly defaults."""

    deadline_ms: float = 0.9          # the robotic hand's budget
    queue_capacity: int = 128
    max_batch: int = 8
    batch_slack_ms: float = 0.0       # safety margin for estimator error
    admission_control: bool = True
    admission_policy: object | None = None  # e.g. WeightedFairAdmission
    adaptive: bool = True             # TRN-ladder degradation on/off
    window: int = 32                  # controller sliding window (requests)
    min_observations: int = 16
    cooldown: int = 16
    degrade_quantile: float = 0.99
    degrade_ratio: float = 1.0
    upgrade_ratio: float = 0.5
    upgrade_cooldown: int | None = None  # default 4x cooldown (lazy upgrades)
    upgrade_utilization: float = 0.75  # max predicted rho on the slower rung
    rate_window: int = 64             # arrivals used for rate estimation
    warm_start: bool = True           # skip the device's cold-start ramp
    execute: bool = True              # run real forwards (False = timing only)
    kernel_timing: bool = False       # time compiled kernels per batch
    seed: int = 0
    # -- online NetCut (see repro.netcut.online) ----------------------------
    online_reestimation: bool = False  # drift -> re-fit -> ladder rebuild
    reestimate_cooldown_ms: float = 25.0  # min virtual time between fits
    reestimate_min_samples: int = 8   # fresh batches required per fit
    reestimate_method: str = "ratio"  # "ratio" or "svr"
    reestimate_margin: float = 1.0    # greedy budget = margin x deadline
    reestimate_min_change: float = 0.05  # discard fits below this change
    reestimate_max_samples: int = 64  # per-rung fit buffer (forgetting)
    # -- resilience (see repro.faults) --------------------------------------
    resilience: bool = False          # timeouts/retries/breakers on or off
    exec_timeout_factor: float = 2.5  # batch timeout = factor x predicted
    max_retries: int = 3              # abandoned attempts per batch
    breaker_threshold: int = 3        # consecutive failures that open
    breaker_cooldown_ms: float = 25.0  # open -> half-open probe delay


class Engine:
    """Runs one trace through the queue/batcher/ladder pipeline.

    ``tracer`` and ``drift`` are optional observability hooks
    (:class:`repro.obs.Tracer` / :class:`repro.obs.DriftMonitor`, or
    anything duck-compatible). The tracer receives one span per request
    life-cycle step over the virtual clock (``enqueue`` from the queue,
    ``batch`` from the batcher, ``admit``/``drop``/``forward``/``respond``
    from the engine); the drift monitor is fed every executed batch's
    predicted vs. observed service time, and any drift event it raises is
    traced as a ``drift`` span. With both left ``None`` the hot path is
    identical to the untraced engine.
    """

    def __init__(self, ladder: TRNLadder, config: ServerConfig,
                 metrics: ServerMetrics, tracer=None, drift=None,
                 faults=None):
        self.ladder = ladder
        self.config = config
        self.metrics = metrics
        self.tracer = tracer
        # bound-method cache for the per-request spans; rare spans (ladder
        # transitions, drift events) go through self.tracer directly
        self._emit = None if tracer is None else tracer.emit
        self.drift = drift
        self.faults = faults
        if faults is not None:
            # rewind the chaos scenario: a fresh engine replays the same
            # failures at the same virtual times (run-level determinism)
            faults.reset()
        self.breakers: dict[str, CircuitBreaker] = {}
        if config.resilience:
            self.breakers = {
                rung.name: CircuitBreaker(
                    rung.name, threshold=config.breaker_threshold,
                    cooldown_ms=config.breaker_cooldown_ms,
                    listener=self._on_breaker_event)
                for rung in ladder.rungs}
        # telemetry rides on the metrics object: ServerMetrics owns the
        # ServeTelemetry handle bundle (per-run labels included) and the
        # engine wires its own components against the same bound children
        self._tele = metrics.tele
        self._telemetry = None if self._tele is None \
            else self._tele.telemetry
        self.queue = EDFQueue(
            config.queue_capacity, tracer=tracer,
            depth_gauge=None if self._tele is None
            else self._tele.queue_depth)
        self.batcher = MicroBatcher(
            config.max_batch, config.batch_slack_ms, tracer=tracer,
            on_form=None if self._tele is None else self._tele.batch_stop)
        self.controller = (HysteresisController(
            config.deadline_ms, window=config.window,
            min_observations=config.min_observations,
            cooldown=config.cooldown, quantile=config.degrade_quantile,
            degrade_ratio=config.degrade_ratio,
            upgrade_ratio=config.upgrade_ratio,
            upgrade_cooldown=config.upgrade_cooldown)
            if config.adaptive else None)
        self._arrivals: deque[float] = deque(maxlen=config.rate_window)
        self.admission_policy = config.admission_policy
        if self.admission_policy is not None:
            # fresh share window: a policy object may be reused across
            # runs (and across a cluster's replicas), but each engine's
            # admissions must start from a clean slate
            self.admission_policy.reset()
        # online re-estimation rewrites rung latency beliefs in place and
        # ladders are reused across runs, so every fresh engine restores
        # the deployment artifact's tables (and their ordering) first —
        # one (ladder, config, trace) tuple always replays identically,
        # whether or not a previous run recalibrated
        recalibrated = False
        for rung in ladder.rungs:
            if getattr(rung, "estimate_scale", 1.0) != 1.0:
                rung.recalibrate(1.0)
                recalibrated = True
        if recalibrated and hasattr(ladder, "resort"):
            ladder.resort()
        # record the rung inventory (names, builder tags, deployment-time
        # estimates) on the metrics surface after the belief restore above,
        # so every run's snapshot reports the same deployment ladder
        if hasattr(ladder, "snapshot"):
            metrics.set_ladder(ladder.snapshot())
        self.reestimator = None
        if config.online_reestimation:
            # lazy import: the engine must not pull the netcut package
            # (training/deploy stack) unless the loop is actually closed
            from repro.netcut.online import ReestimationController
            if self.drift is None:
                from repro.obs.drift import DriftMonitor
                self.drift = DriftMonitor()
            self.reestimator = ReestimationController(
                config.deadline_ms,
                cooldown_ms=config.reestimate_cooldown_ms,
                min_samples=config.reestimate_min_samples,
                method=config.reestimate_method,
                margin=config.reestimate_margin,
                min_rel_change=config.reestimate_min_change,
                max_samples_per_rung=config.reestimate_max_samples)
        ladder.reseed(config.seed)
        if config.warm_start:
            for rung in ladder.rungs:
                # the paper's 200-run warm-up, so serving starts past the
                # clock ramp instead of degrading on cold-start stragglers
                rung.sampler.warm_up(200)
        self._kernel_timing = False
        if config.kernel_timing:
            for rung in ladder.rungs:
                net = getattr(rung, "network", None)
                compiled = None if net is None else net.compile()
                if compiled is not None:
                    compiled.enable_timing()
                    self._kernel_timing = True
        if self._tele is not None:
            # keyed registration: a fresh engine on the same telemetry
            # (next run, or this replica rebuilt) replaces its
            # predecessor's collector instead of piling up stale ones
            self._telemetry.collector(
                "engine:" + self._tele.suffix, self._collect_telemetry)

    # -- admission -----------------------------------------------------------
    def _admission_estimate_ms(self) -> float:
        """Best-case service estimate used to detect un-meetable deadlines."""
        rung = self.ladder.fastest if self.config.adaptive \
            else self.ladder.current
        return rung.estimate_ms(1)

    def _admit(self, pending: deque, now_ms: float,
               responses: dict[int, Response]) -> None:
        while pending and pending[0].arrival_ms <= now_ms:
            req: Request = pending.popleft()
            self.metrics.record_arrival(req.tenant)
            self._arrivals.append(req.arrival_ms)
            reason = None
            if self.config.admission_control:
                start = max(now_ms, req.arrival_ms)
                if start + self._admission_estimate_ms() > req.abs_deadline_ms:
                    reason = "unmeetable-deadline"
            if (reason is None and self.admission_policy is not None
                    and not self.admission_policy.allow(
                        req, len(self.queue), self.queue.capacity)):
                # over its weighted-fair share while the queue is contended
                reason = "tenant-over-share"
            if (reason is None and self.faults is not None
                    and len(self.queue) >=
                    self.faults.effective_capacity(self.queue.capacity)):
                # saturation fault: only part of the queue is usable
                reason = "queue-full"
            if reason is None and not self.queue.push(req, now_ms=now_ms):
                reason = "queue-full"
            if reason is None:
                self.metrics.record_admission(req.tenant)
                if self.admission_policy is not None:
                    self.admission_policy.record(req)
                if self._emit is not None:
                    self._emit("admit", "serve", now_ms, 0.0, req.rid,
                               None if req.tenant is None
                               else {"tenant": req.tenant})
            else:
                responses[req.rid] = Response(
                    req.rid, REJECTED, req.arrival_ms, req.abs_deadline_ms,
                    reject_reason=reason, tenant=req.tenant)
                self.metrics.record_rejection(req.tenant)
                if self._emit is not None:
                    args = {"reason": reason}
                    if req.tenant is not None:
                        args["tenant"] = req.tenant
                    self._emit("drop", "serve", now_ms, 0.0, req.rid, args)

    # -- telemetry -----------------------------------------------------------
    def _collect_telemetry(self, now_ms: float) -> None:
        """Refresh the engine's gauges just before a telemetry sample.

        Queue depth is already live (the queue sets its own gauge on every
        push/pop); everything that is derived — ladder cursor, windowed
        p99, offered rate, tenant shares — is computed here, once per
        sample instead of once per request.
        """
        tele = self._tele
        tele.rung_index.set(float(self.ladder.current_index))
        tele.recent_p99.set(tele.recent_quantile(0.99))
        rate = self._recent_rate_per_ms()
        tele.arrival_rate.set(0.0 if rate is None else rate * 1e3)
        policy = self.admission_policy
        if policy is not None and hasattr(policy, "share_of"):
            for tenant in sorted(policy.weights):
                share, fair = tele.share_gauges(tenant)
                share.set(policy.share_of(tenant))
                fair.set(policy.fair_share_of(tenant))
        if self.reestimator is not None:
            for rung in self.ladder.rungs:
                tele.scale_gauge(rung.name).set(rung.estimate_scale)

    def _record_kernel_times(self, rung) -> None:
        """Drain one executed batch's per-kernel wall-clock times.

        ``drain_kernel_times`` returns ``{step name: (calls, total_ms)}``
        accumulated since the previous drain; the mean per call goes into
        the ``kernel_latency_ms{kernel, rung}`` histogram — the same
        per-anchor granularity :class:`repro.device.profiler.LatencyTable`
        uses, so drift monitoring and ladder rebuilds can consume it.
        """
        net = getattr(rung, "network", None)
        compiled = None if net is None else net._compiled
        if compiled is None or not compiled.timing_enabled:
            return
        for name, (calls, total_ms) in compiled.drain_kernel_times().items():
            self._tele.observe_kernel(name, rung.name, total_ms / calls)

    # -- ladder control ------------------------------------------------------
    def _recent_rate_per_ms(self) -> float | None:
        if len(self._arrivals) < 2:
            return None
        span = self._arrivals[-1] - self._arrivals[0]
        if span <= 0:
            return None
        return (len(self._arrivals) - 1) / span

    def _upgrade_is_safe(self) -> bool:
        """Would the slower rung stay stable under the observed load?

        Predicted utilisation = arrival rate x per-request service time at
        the observed batch occupancy. Gating upgrades on this keeps the
        ladder from climbing straight back into an overload it just
        escaped (the controller's window only sees the fast rung's easy
        latencies, so it cannot make this call alone).
        """
        slower = self.ladder.peek_slower()
        if slower is None:
            return False
        rate = self._recent_rate_per_ms()
        if rate is None:
            return True
        b = self._observed_batch()
        per_request_ms = slower.estimate_ms(b) / b
        return rate * per_request_ms <= self.config.upgrade_utilization

    def _observed_batch(self) -> int:
        occupancy = self.metrics.mean_batch_size
        return max(1, int(round(occupancy))) if occupancy == occupancy else 1

    def _degrade_to_stable(self) -> None:
        """Step down until the predicted utilisation is stable.

        Descending one rung per controller decision costs a full cooldown
        of misses per step while the backlog keeps growing; instead, jump
        straight to the first rung whose service rate beats the observed
        arrival rate (with the upgrade margin as the stability target), or
        to the fastest rung when none does.
        """
        rate = self._recent_rate_per_ms()
        self.ladder.degrade()
        if rate is None:
            return
        b = self._observed_batch()
        while self.ladder.can_degrade:
            per_request_ms = self.ladder.current.estimate_ms(b) / b
            if rate * per_request_ms <= self.config.upgrade_utilization:
                break
            self.ladder.degrade()

    def _apply_policy(self, latency_ms: float, now_ms: float) -> None:
        if self.controller is None:
            return
        decision = self.controller.observe(latency_ms)
        if decision == "degrade" and self.ladder.can_degrade:
            frm = self.ladder.current.name
            self._degrade_to_stable()
            self.metrics.record_transition(now_ms, "degrade", frm,
                                           self.ladder.current.name)
            self.controller.notify_transition()
            self._trace_transition("degrade", now_ms, frm)
        elif (decision == "upgrade" and self.ladder.can_upgrade
                and self._upgrade_is_safe()):
            frm = self.ladder.current.name
            self.ladder.upgrade()
            self.metrics.record_transition(now_ms, "upgrade", frm,
                                           self.ladder.current.name)
            self.controller.notify_transition()
            self._trace_transition("upgrade", now_ms, frm)

    def _trace_transition(self, direction: str, now_ms: float,
                          frm: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(direction, "ladder", now_ms, frm=frm,
                                to=self.ladder.current.name)

    # -- resilience ----------------------------------------------------------
    def _on_breaker_event(self, event) -> None:
        """Count and trace one circuit-breaker transition."""
        self.metrics.record_breaker(event.to_state, event.rung)
        if self.tracer is not None:
            self.tracer.instant("breaker", "faults", event.time_ms,
                                rung=event.rung, frm=event.from_state,
                                to=event.to_state, reason=event.reason)

    def _tick_faults(self, now_ms: float) -> None:
        """Advance the injector clock; trace fault windows opening/closing."""
        for event in self.faults.tick(now_ms):
            self.metrics.record_fault_event()
            if self.tracer is not None:
                self.tracer.instant("fault", "faults", now_ms,
                                    fault=event.fault, phase=event.phase)

    def _select_rung(self, now_ms: float):
        """The rung the next batch should target.

        Without resilience this is the ladder cursor. With it, rungs whose
        breaker is open are skipped *downwards* (faster), because a faster
        rung can serve the slower rung's traffic (at lower accuracy) while
        the reverse re-breaks the deadline. With every breaker refusing,
        fall back to the fastest rung outright — the last-resort path.
        """
        if not self.config.resilience:
            return self.ladder.current
        for i in range(self.ladder.current_index, len(self.ladder)):
            rung = self.ladder.rungs[i]
            if self.breakers[rung.name].allow(now_ms):
                return rung
        return self.ladder.fastest

    def _retry_rung(self, failed, now_ms: float):
        """The next faster rung to retry on (None when nothing is faster)."""
        start = self.ladder.rungs.index(failed) + 1
        for i in range(start, len(self.ladder)):
            rung = self.ladder.rungs[i]
            if self.breakers[rung.name].allow(now_ms):
                return rung
        # every faster breaker is open; the fastest rung is still a better
        # bet than replaying the rung that just failed
        return self.ladder.fastest if failed is not self.ladder.fastest \
            else None

    def _execute(self, batch: list, rung, now_ms: float):
        """Run one batch, resiliently when configured.

        Returns ``(rung, service_ms, exec_start_ms)`` — the rung that
        actually served the batch, its sampled service time, and when that
        final attempt started (later than ``now_ms`` when cancelled
        attempts paid their timeouts first). ``service_ms`` is ``None``
        when the batch could not run anywhere (dropped by the caller).
        """
        if not self.config.resilience:
            return rung, rung.sample_service_ms(len(batch)), now_ms
        t = now_ms
        attempts = 0
        while True:
            breaker = self.breakers[rung.name]
            try:
                service_ms = rung.sample_service_ms(len(batch))
            except RungFailureError:
                breaker.record_failure(t, "failure")
                if self._emit is not None:
                    self._emit("rung-failure", "faults", t, 0.0, None,
                               {"rung": rung.name, "size": len(batch)})
                nxt = self._retry_rung(rung, t)
                if nxt is None:
                    return rung, None, t     # nothing can run this batch
                self.metrics.record_retry()
                rung = nxt
                attempts += 1
                continue
            timeout_ms = self.config.exec_timeout_factor \
                * rung.estimate_ms(len(batch))
            if service_ms > timeout_ms and attempts < self.config.max_retries:
                # cancel at the timeout: the cost is bounded at timeout_ms
                # instead of the full straggler latency. A timeout is a
                # stochastic straggler (unlike a hard failure), so when no
                # faster rung exists the same rung is re-rolled in place —
                # paying the timeout for a fresh draw beats riding out a
                # many-x straggler in expectation.
                nxt = self._retry_rung(rung, t) or rung
                breaker.record_failure(t, "timeout")
                self.metrics.record_timeout()
                self.metrics.record_retry()
                if self._emit is not None:
                    self._emit("timeout", "faults", t, timeout_ms, None,
                               {"rung": rung.name, "size": len(batch),
                                "sampled_ms": float(service_ms)})
                t += timeout_ms
                rung = nxt
                attempts += 1
                continue
            breaker.record_success(t)
            return rung, service_ms, t

    def _drop_batch(self, batch: list, now_ms: float,
                    responses: dict[int, Response], reason: str) -> None:
        """Count a batch that could not execute anywhere as drops."""
        for req in batch:
            responses[req.rid] = Response(
                req.rid, DROPPED, req.arrival_ms, req.abs_deadline_ms,
                reject_reason=reason, tenant=req.tenant)
            self.metrics.record_drop(req.tenant)
            if self._emit is not None:
                self._emit("drop", "serve", now_ms, 0.0, req.rid,
                           {"reason": reason})

    def drain(self, now_ms: float) -> list[Response]:
        """Drop every queued request (shutdown); counted, never lost.

        Each drained request becomes a ``DROPPED`` response and increments
        the ``dropped`` counter, keeping the conservation law
        ``completed + dropped == admitted`` intact through shutdown — even
        when the queue backed up behind an open circuit breaker.
        """
        dropped = []
        for req in self.queue.drain():
            resp = Response(req.rid, DROPPED, req.arrival_ms,
                            req.abs_deadline_ms, reject_reason="drained",
                            tenant=req.tenant)
            self.metrics.record_drop(req.tenant)
            if self._emit is not None:
                self._emit("drop", "serve", now_ms, 0.0, req.rid,
                           {"reason": "drained"})
            dropped.append(resp)
        return dropped

    def probe_health(self, slow_factor: float = 3.0) -> list:
        """Actively probe every rung (see :class:`repro.faults.HealthProbe`).

        Off the serving path, but it consumes measurement-RNG draws —
        probe before or after a run, not in the middle of one, if the run
        must stay bit-for-bit reproducible.
        """
        return HealthProbe(slow_factor).probe_ladder(self.ladder)

    # -- the event loop ------------------------------------------------------
    def available_rung(self, now_ms: float):
        """The rung the next batch would target, without side effects.

        The routing-layer counterpart of :meth:`_select_rung`: breaker
        states are *read*, never advanced (``would_allow``), so a cluster
        router may probe any number of replicas for latency estimates
        without consuming half-open probe slots. Returns ``None`` when
        every usable rung's breaker refuses — the caller should treat the
        engine as unhealthy rather than schedule against the last-resort
        fastest-rung fallback.
        """
        if not self.config.resilience:
            return self.ladder.current
        for i in range(self.ladder.current_index, len(self.ladder)):
            rung = self.ladder.rungs[i]
            if self.breakers[rung.name].would_allow(now_ms):
                return rung
        return None

    def _serve_step(self, now: float, responses: dict[int, Response]) -> float:
        """Form, execute and respond to one micro-batch; returns the clock.

        The queue must be non-empty. The returned time is the batch finish
        (or the failed attempts' cost when the batch was dropped) — the
        caller's new ``now``.
        """
        rung = self._select_rung(now)
        batch = self.batcher.form(self.queue, now, rung)
        rung, service_ms, exec_start = self._execute(batch, rung, now)
        if service_ms is None:
            # even the fastest rung hard-failed: shed the batch
            self._drop_batch(batch, exec_start, responses, "rung-failed")
            return max(now, exec_start)
        finish = exec_start + service_ms
        outputs = None
        if self.config.execute and all(r.x is not None for r in batch):
            outputs = rung.forward([r.x for r in batch])
            if self._kernel_timing and self._tele is not None:
                self._record_kernel_times(rung)
        self.metrics.record_batch(len(batch))
        if self._emit is not None:
            # a tuple of ints (unlike a list) leaves the span record
            # GC-untrackable, keeping collector sweeps off the buffer
            self._emit("forward", "serve", exec_start, service_ms, None,
                       {"rung": rung.name, "size": len(batch),
                        "rids": tuple(r.rid for r in batch)})
        # one (prediction, observation) pair per executed batch: every
        # member shares the batch's estimate and measured time, so
        # feeding it per member would fill the drift window with
        # duplicates of the same evidence. The executed rung's own
        # estimate is compared (not the originally selected rung's),
        # so retries don't masquerade as estimator drift.
        predicted_ms = rung.estimate_ms(len(batch))
        event = self._observe_drift(predicted_ms, service_ms, finish,
                                    rung.name)
        if self.reestimator is not None:
            self.reestimator.record(rung.name, len(batch), predicted_ms,
                                    service_ms)
            if event is not None:
                self._apply_reestimation(event, finish)
        for i, req in enumerate(batch):
            # start_ms stays the batch-formation time: service_ms and
            # latency_ms then include cancelled-attempt overhead, so
            # the controller reacts to what requests actually endured
            resp = Response(
                req.rid, COMPLETED, req.arrival_ms, req.abs_deadline_ms,
                rung=rung.name, start_ms=now, finish_ms=finish,
                batch_size=len(batch),
                output=None if outputs is None else outputs[i],
                tenant=req.tenant)
            responses[req.rid] = resp
            self.metrics.record_response(resp)
            if self._emit is not None:
                args = {"latency_ms": resp.latency_ms,
                        "met": bool(resp.deadline_met)}
                if req.tenant is not None:
                    args["tenant"] = req.tenant
                self._emit("respond", "serve", finish, 0.0, req.rid, args)
            self._apply_policy(resp.latency_ms, finish)
        return finish

    def run_until(self, pending: deque, responses: dict[int, Response],
                  now_ms: float, until_ms: float = float("inf")) -> float:
        """Advance the admit/batch/execute loop as far as ``until_ms`` allows.

        The steppable core of :meth:`run`, and the hook
        :class:`repro.cluster.Replica` drives: ``pending`` holds routed
        requests sorted by arrival, and the loop admits and serves them
        exactly as the single-node engine would — but never *starts* work
        at or past ``until_ms``, so an external dispatcher can interleave
        new arrivals at their true virtual times. Returns the engine
        clock (the time the last batch finished, or ``now_ms`` untouched
        when there was nothing to do before the horizon).
        """
        now = now_ms
        while pending or len(self.queue):
            if not len(self.queue) and pending \
                    and pending[0].arrival_ms > now:
                now = pending[0].arrival_ms      # idle until the next arrival
            if now >= until_ms:
                break
            if self.faults is not None:
                self._tick_faults(now)
            self._admit(pending, now, responses)
            if not len(self.queue):
                if self._telemetry is not None:
                    self._telemetry.maybe_sample(now)
                continue
            now = self._serve_step(now, responses)
            if self._telemetry is not None:
                self._telemetry.maybe_sample(now)
        return now

    def run(self, trace: list[Request],
            stop_ms: float | None = None) -> list[Response]:
        """Serve a whole trace; returns responses in trace order.

        ``stop_ms`` shuts the server down at that virtual time: arrivals
        past it are never admitted and whatever is still queued is drained
        as ``DROPPED`` (see :meth:`drain`). Requests the shutdown leaves
        without a response are omitted from the returned list — their
        drops still show in :class:`~repro.serve.metrics.ServerMetrics`.
        """
        responses: dict[int, Response] = {}
        pending = deque(sorted(trace, key=lambda r: (r.arrival_ms, r.rid)))
        until = float("inf") if stop_ms is None else stop_ms
        now = self.run_until(pending, responses, 0.0, until)
        for resp in self.drain(now):
            responses[resp.rid] = resp
        if self._telemetry is not None:
            # one closing sample so the final counter values are in the
            # series even when the run ends between sampling instants
            self._telemetry.sample(now)
        return [responses[r.rid] for r in trace if r.rid in responses]

    def _observe_drift(self, predicted_ms: float, observed_ms: float,
                       time_ms: float, rung: str):
        """Feed one batch's predicted vs. observed service time.

        The prediction is the same noise-free estimate admission and batch
        planning trusted (the deployment artifact's latency model at the
        executed batch size) — exactly the quantity whose drift invalidates
        those decisions. Returns the :class:`~repro.obs.drift.DriftEvent`
        when one fired (the online-NetCut loop consumes it), else None.
        """
        if self.drift is None:
            return None
        event = self.drift.observe(predicted_ms, observed_ms,
                                   time_ms=time_ms, rung=rung)
        if event is not None and self.tracer is not None:
            self.tracer.instant("drift", "drift", time_ms,
                                rel_error=event.rel_error,
                                bias=event.bias, rung=rung)
        return event

    def _apply_reestimation(self, event, now_ms: float) -> None:
        """Close the loop: one drift event may rewrite the latency tables.

        The controller applies its own hysteresis (virtual-time cooldown,
        fresh-sample and minimum-change gates) so a single event cannot
        thrash the ladder. When a fit goes through, the engine counts it,
        clears the drift window (its errors were measured against tables
        that no longer exist), and — if the greedy re-selection moved the
        serving rung — resets the hysteresis controller's evidence exactly
        as a degrade/upgrade transition would.
        """
        fit = self.reestimator.maybe_reestimate(self.ladder, event, now_ms)
        if fit is None:
            return
        self.metrics.record_reestimate()
        self.drift.reset_window()
        if self.tracer is not None:
            self.tracer.instant("reestimate", "netcut", now_ms,
                                method=fit.method, samples=fit.samples,
                                max_scale=max(fit.scales.values()))
        if fit.rebuilt:
            self.metrics.record_rebuild(now_ms, fit.from_rung, fit.to_rung)
            if self.controller is not None:
                self.controller.notify_transition()
            if self.tracer is not None:
                self.tracer.instant("rebuild", "netcut", now_ms,
                                    frm=fit.from_rung, to=fit.to_rung)
