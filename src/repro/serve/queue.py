"""A bounded earliest-deadline-first request queue.

EDF is the natural discipline for deadline serving: executing the request
whose absolute deadline is closest maximises the number of deadlines met
on a single server when the system is feasible, and degrades gracefully
under overload (the requests sacrificed are the ones that were already
closest to missing). Ties break FIFO via a monotone sequence number so the
order is fully deterministic.
"""

from __future__ import annotations

import heapq

from .request import Request

__all__ = ["EDFQueue"]


class EDFQueue:
    """Bounded priority queue ordered by absolute deadline, then arrival.

    ``tracer`` (any object with an ``emit`` method, e.g.
    :class:`repro.obs.Tracer`) receives one ``enqueue`` span per accepted
    request, stamped with the queue depth after insertion. ``depth_gauge``
    (anything with ``set``, e.g. a telemetry gauge child) tracks the live
    depth across push/pop/drain so the sampled series sees every change,
    not just the depth at sampling instants.
    """

    def __init__(self, capacity: int = 128, tracer=None, depth_gauge=None):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.tracer = tracer
        # bound-method cache: push() runs once per admitted request
        self._emit = None if tracer is None else tracer.emit
        self.depth_gauge = depth_gauge
        self._heap: list[tuple[float, int, Request]] = []
        self._seq = 0
        self._last_span_ms = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def push(self, request: Request, now_ms: float | None = None) -> bool:
        """Enqueue; returns False (request dropped) when the queue is full.

        ``now_ms`` stamps the enqueue span with the engine's clock. The
        engine always passes it; when omitted (direct queue use) the span
        falls back to the request's arrival time. Either way the stamp is
        clamped monotone against the previous enqueue span, so delayed
        admission — e.g. a request re-enqueued by the resilience path —
        can never back-date the trace.
        """
        if self.full:
            return False
        heapq.heappush(self._heap,
                       (request.abs_deadline_ms, self._seq, request))
        self._seq += 1
        if self.depth_gauge is not None:
            self.depth_gauge.set(float(len(self._heap)))
        if self._emit is not None:
            ts = request.arrival_ms if now_ms is None else now_ms
            if ts < self._last_span_ms:
                ts = self._last_span_ms
            self._last_span_ms = ts
            self._emit("enqueue", "queue", ts,
                       0.0, request.rid, {"depth": len(self._heap)})
        return True

    def peek(self) -> Request:
        """The request with the earliest absolute deadline."""
        if not self._heap:
            raise IndexError("peek on empty EDFQueue")
        return self._heap[0][2]

    def pop(self) -> Request:
        """Remove and return the earliest-deadline request."""
        if not self._heap:
            raise IndexError("pop on empty EDFQueue")
        request = heapq.heappop(self._heap)[2]
        if self.depth_gauge is not None:
            self.depth_gauge.set(float(len(self._heap)))
        return request

    def drain(self) -> list[Request]:
        """Remove every queued request in EDF order."""
        out = []
        while self._heap:
            out.append(self.pop())
        return out
