"""Terminal visualisation helpers.

The repository has no plotting dependencies, so the examples and the CLI
render trade-off scatters and curves as Unicode text. Deterministic and
easily testable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter", "curve"]

_MARKERS = "ox+*#@%&"


def _axis_ticks(lo: float, hi: float, n: int) -> list[float]:
    return list(np.linspace(lo, hi, n))


def scatter(series: dict[str, list[tuple[float, float]]],
            width: int = 72, height: int = 20,
            xlabel: str = "x", ylabel: str = "y",
            vline: float | None = None) -> str:
    """Render labelled (x, y) point series as a text scatter plot.

    Parameters
    ----------
    series:
        Mapping from series label to its points; each series gets its own
        marker character (cycled from a fixed set).
    vline:
        Optional vertical line (e.g. a deadline) drawn with ``|``.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("no points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if vline is not None:
        x_lo, x_hi = min(x_lo, vline), max(x_hi, vline)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    if vline is not None:
        col = int(round((vline - x_lo) / x_span * (width - 1)))
        for row in grid:
            row[col] = "|"
    legend = []
    for idx, (label, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = marker

    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - i * y_span / (height - 1)
        prefix = f"{y_val:8.3f} " if i % 4 == 0 else " " * 9
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + f"{x_lo:<10.3f}{xlabel:^{max(width - 20, 1)}}"
                 f"{x_hi:>10.3f}")
    lines.append("   " + "   ".join(legend))
    lines.append(f"   (y: {ylabel})")
    return "\n".join(lines)


def curve(xs, ys, width: int = 72, height: int = 16,
          xlabel: str = "x", ylabel: str = "y") -> str:
    """Render a single (x, y) curve as a text plot."""
    return scatter({ylabel: list(zip(xs, ys))}, width, height,
                   xlabel, ylabel)
