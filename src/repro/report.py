"""Markdown report generation for a full reproduction run.

``build_report(wb)`` assembles every experiment of the paper — the
off-the-shelf trade-off, the TRN sweep, the estimator comparison and the
NetCut selections — into one markdown document with the paper's reference
numbers alongside, so a run can be archived or diffed against earlier ones.
Used by ``examples/generate_report.py`` and the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.model_selection import relative_error
from repro.hand.control import DEFAULT_DEADLINE_MS
from repro.metrics.pareto import (
    CandidatePoint,
    best_under_deadline,
    pareto_frontier,
    relative_improvement,
)
from repro.netcut.accounting import compare_costs
from repro.trim.removal import removed_node_set

__all__ = ["build_report"]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |"
                 for row in rows)
    return "\n".join(lines)


def _offtheshelf_section(wb, exploration) -> str:
    rows = []
    for r in sorted(exploration.originals(), key=lambda r: r.latency_ms):
        verdict = "meets" if r.latency_ms <= wb.config.deadline_ms else "misses"
        rows.append([r.base_name, f"{r.latency_ms:.3f}",
                     f"{r.accuracy:.4f}", verdict])
    return ("## Off-the-shelf networks (Fig. 1)\n\n"
            + _table(["network", "latency (ms)", "accuracy",
                      f"{wb.config.deadline_ms} ms deadline"], rows))


def _sweep_section(wb, exploration) -> str:
    rows = []
    for name in wb.config.networks:
        recs = exploration.for_base(name)
        origin = next(r for r in recs if r.blocks_removed == 0)
        best = max(recs, key=lambda r: r.accuracy)
        deepest = recs[-1]
        rows.append([name, len(recs) - 1, f"{origin.accuracy:.4f}",
                     f"{best.accuracy:.4f}", f"{deepest.accuracy:.4f}"])
    return ("## Blockwise TRN sweep (Figs 4-6)\n\n"
            + _table(["network", "TRNs", "origin acc", "best TRN acc",
                      "deepest-cut acc"], rows)
            + f"\n\nTotal TRNs explored: "
              f"{sum(1 for r in exploration.records if r.blocks_removed)}"
              f" (paper: 148); simulated retraining cost "
              f"{exploration.total_train_hours:.1f} K20m GPU-hours.")


def _pareto_section(wb, exploration) -> str:
    points = [CandidatePoint(r.trn_name, r.latency_ms, r.accuracy)
              for r in exploration.records]
    offshelf = [CandidatePoint(r.base_name, r.latency_ms, r.accuracy)
                for r in exploration.originals()]
    deadline = wb.config.deadline_ms
    baseline = best_under_deadline(offshelf, deadline)
    best = best_under_deadline(points, deadline)
    gain = relative_improvement(baseline, best)
    frontier = pareto_frontier(points)
    rows = [[p.name, f"{p.latency_ms:.3f}", f"{p.accuracy:.4f}"]
            for p in frontier]
    return ("## Pareto frontier (Fig. 7)\n\n"
            + _table(["frontier member", "latency (ms)", "accuracy"], rows)
            + f"\n\nAt the {deadline} ms deadline: baseline "
              f"{baseline.name} ({baseline.accuracy:.4f}) -> best TRN "
              f"{best.name} ({best.accuracy:.4f}), relative improvement "
              f"**{gain:+.2f}%** (paper: up to +10.43%).")


def _estimator_section(wb) -> str:
    points = wb.latency_dataset()
    truth = np.array([p.measured_ms for p in points])
    names = [p.base_name for p in points]
    profiler = wb.profiler_adapter()
    prof = np.array([
        profiler._estimator_for(wb.base(p.base_name)).estimate(
            removed_node_set(wb.base(p.base_name), p.cut_node))
        for p in points])
    svr, _ = wb.analytical_model("rbf")
    lin, _ = wb.analytical_model("linear-ols")
    feats = [p.features for p in points]
    svr_pred, lin_pred = svr.predict(feats), lin.predict(feats)
    rows = []
    for net in wb.config.networks:
        mask = np.array([n == net for n in names])
        rows.append([net,
                     f"{relative_error(prof[mask], truth[mask]):.2f}%",
                     f"{relative_error(svr_pred[mask], truth[mask]):.2f}%",
                     f"{relative_error(lin_pred[mask], truth[mask]):.2f}%"])
    rows.append(["**all**",
                 f"**{relative_error(prof, truth):.2f}%**",
                 f"**{relative_error(svr_pred, truth):.2f}%**",
                 f"**{relative_error(lin_pred, truth):.2f}%**"])
    return ("## Latency estimators (Figs 8-9)\n\n"
            + _table(["network", "profiler", "ε-SVR (RBF)", "linear (OLS)"],
                     rows)
            + "\n\nPaper averages: profiler 3.5% (0.024 ms), SVR 4.28% "
              "(0.029 ms), linear 23.81% (0.092 ms).")


def _netcut_section(wb, exploration) -> str:
    sections = []
    results = []
    for estimator in ("profiler", "analytical"):
        result = wb.netcut(estimator)
        results.append(result)
        rows = [[c.base_name, c.trn_name, c.blocks_removed,
                 f"{c.estimated_latency_ms:.3f}",
                 f"{c.measured_latency_ms:.3f}", f"{c.accuracy:.4f}"]
                for c in result.candidates]
        best = result.best
        sections.append(
            f"### {estimator} estimator\n\n"
            + _table(["base", "proposed TRN", "blocks removed", "est (ms)",
                      "meas (ms)", "accuracy"], rows)
            + f"\n\nWinner: **{best.trn_name}** "
              f"(accuracy {best.accuracy:.4f}).")
    comparison = compare_costs(exploration, *results)
    sections.append("### Exploration cost (Algorithm 1)\n\n"
                    + comparison.summary()
                    + "\n\nPaper: 95% fewer networks, 27x faster "
                      "(183 h -> 6.7 h).")
    return "## NetCut selections (Fig. 10)\n\n" + "\n\n".join(sections)


def _serving_section(wb) -> str:
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.zoo import build_network

    base = build_network(wb.config.networks[0]).build(0)
    ladder = TRNLadder.from_base(base, wb.device,
                                 num_classes=wb.config.num_classes,
                                 max_rungs=4)
    full_ms = ladder.rungs[0].estimate_ms(1)
    deadline = 1.6 * full_ms
    trace = poisson_trace(600, 1.3e3 / full_ms, deadline, rng=0)
    rows = []
    for label, adaptive in (("TRN ladder", True), ("full TRN only", False)):
        server = Server(ladder, ServerConfig(
            deadline_ms=deadline, execute=False, seed=0, adaptive=adaptive,
            admission_control=False))
        m = server.run_trace(trace).metrics
        snap = m.snapshot()
        rows.append([label, f"{100 * m.miss_rate:.2f}%",
                     f"{snap['latency']['p99_ms']:.3f}",
                     snap["counters"]["degrade_events"]
                     + snap["counters"]["upgrade_events"]])
    return ("## Deadline-aware serving (beyond the paper)\n\n"
            + _table(["policy", "miss rate", "p99 (ms)", "transitions"],
                     rows)
            + f"\n\n{base.name} under 1.3x overload (600 Poisson requests, "
              f"deadline {deadline:.3f} ms = 1.6x the full TRN): degrading "
              "along the TRN ladder trades accuracy for deadline "
              "compliance instead of missing wholesale.")


def _observability_section(wb) -> str:
    from repro.estimators import ProfilerEstimator
    from repro.obs import DriftMonitor, Tracer, profile_forward
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.trim import enumerate_blockwise, removed_node_set
    from repro.zoo import build_network

    base = build_network(wb.config.networks[0]).build(0)
    table = profile_forward(base, wb.device, runs=60, rng=0)
    slowest = sorted(table.records, key=lambda r: -r.recorded_ms)[:5]
    rows = [[r.anchor, len(r.node_names), f"{r.recorded_ms:.5f}",
             f"{100 * r.recorded_ms / table.recorded_total_ms:.2f}%"]
            for r in slowest]
    cut = enumerate_blockwise(base)[len(enumerate_blockwise(base)) // 2]
    removed = removed_node_set(base, cut.cut_node)
    est = ProfilerEstimator(base, table).estimate(removed)

    ladder = TRNLadder.from_base(base, wb.device,
                                 num_classes=wb.config.num_classes,
                                 max_rungs=4)
    full_ms = ladder.rungs[0].estimate_ms(1)
    tracer, drift = Tracer(), DriftMonitor()
    server = Server(ladder, ServerConfig(deadline_ms=1.6 * full_ms,
                                         execute=False, seed=0),
                    tracer=tracer, drift=drift)
    server.run_trace(poisson_trace(300, 1.3e3 / full_ms,
                                   1.6 * full_ms, rng=0))
    spans = ", ".join(f"{name}: {n}"
                      for name, n in tracer.snapshot()["by_name"].items())
    return ("## Observability (beyond the paper)\n\n"
            + _table(["slowest kernel", "fused nodes", "recorded (ms)",
                      "share"], rows)
            + f"\n\nHook-based profile of {base.name} (60 recorded runs): "
              f"recorded total {table.recorded_total_ms:.4f} ms > "
              f"end-to-end {table.end_to_end_ms:.4f} ms, reproducing the "
              "paper's event-overhead artefact; the ratio-form estimate at "
              f"cutpoint `{cut.cut_node}` is {est:.4f} ms. A traced "
              f"serving replay (300 requests) emitted spans {spans}; "
              f"estimator drift monitor: "
              f"{'DRIFTING' if drift.drifting else 'ok'} "
              f"(rolling error {100 * drift.rolling_error:.2f}%).")


def build_report(wb) -> str:
    """Assemble the full markdown report for a workbench."""
    exploration = wb.exploration()
    parts = [
        "# NetCut reproduction report",
        f"Configuration: {len(wb.config.networks)} networks, "
        f"{wb.config.hands_images} HANDS images, deadline "
        f"{wb.config.deadline_ms} ms, device `{wb.device.name}`.",
        _offtheshelf_section(wb, exploration),
        _sweep_section(wb, exploration),
        _pareto_section(wb, exploration),
        _estimator_section(wb),
        _netcut_section(wb, exploration),
        _serving_section(wb),
        _observability_section(wb),
    ]
    return "\n\n".join(parts) + "\n"


# re-exported for convenience in examples
DEADLINE_MS = DEFAULT_DEADLINE_MS
