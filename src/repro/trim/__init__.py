"""Layer removal: block boundaries, cutpoint enumeration, TRN construction,
plus the structural-compression surgery (channel pruning, block skipping)
behind the alternative ladder builders."""

from .blocks import BlockBoundary, block_boundaries, stem_output
from .prune import (
    channel_importance,
    prunable_channel_convs,
    prune_channels,
    remove_blocks,
    skippable_blocks,
)
from .removal import (
    DEFAULT_HEAD_HIDDEN,
    attach_head,
    build_trn,
    removed_node_set,
    removed_weighted_layers,
    trn_node_count,
)
from .search import Cutpoint, enumerate_blockwise, enumerate_iterative

__all__ = [
    "BlockBoundary",
    "block_boundaries",
    "stem_output",
    "attach_head",
    "build_trn",
    "trn_node_count",
    "removed_weighted_layers",
    "removed_node_set",
    "DEFAULT_HEAD_HIDDEN",
    "Cutpoint",
    "enumerate_blockwise",
    "enumerate_iterative",
    "channel_importance",
    "prunable_channel_convs",
    "prune_channels",
    "skippable_blocks",
    "remove_blocks",
]
