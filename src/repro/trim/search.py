"""Cutpoint enumeration: blockwise vs iterative (exhaustive) layer removal.

Blockwise removal (the paper's chosen heuristic) cuts only at block
boundaries; iterative removal cuts after *every* feature node. Fig. 4 of the
paper compares the two on InceptionV3 and finds intra-block cutpoints gain
less than 0.03 accuracy, motivating the blockwise search space of 148 TRNs
across the seven networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.graph import Network

from .blocks import block_boundaries, stem_output
from .removal import removed_weighted_layers

__all__ = ["Cutpoint", "enumerate_blockwise", "enumerate_iterative"]


@dataclass(frozen=True)
class Cutpoint:
    """A candidate TRN: where to cut a base network.

    ``blocks_removed`` counts removed feature blocks (``None`` for
    intra-block cutpoints from iterative enumeration); ``layers_removed``
    counts removed weighted layers — the paper's depth axis.
    """

    base_name: str
    cut_node: str
    blocks_removed: int | None
    layers_removed: int


def enumerate_blockwise(net: Network) -> list[Cutpoint]:
    """All blockwise cutpoints, shallowest cut first.

    Removing ``k`` of ``B`` blocks cuts at the output of block ``B−k``;
    removing all ``B`` blocks cuts at the stem output. The list has exactly
    ``B`` entries — summed over the seven zoo networks this yields the
    paper's 148 TRN candidates.
    """
    bounds = block_boundaries(net)
    # removing k of B blocks cuts at the output of block B-k (1-indexed);
    # removing all B blocks cuts at the stem output.
    cut_nodes = [b.output_node for b in reversed(bounds[:-1])]
    cut_nodes.append(stem_output(net))
    cuts = []
    for k, node in enumerate(cut_nodes, start=1):
        cuts.append(Cutpoint(net.name, node, k,
                             removed_weighted_layers(net, node)))
    return cuts


def enumerate_iterative(net: Network) -> list[Cutpoint]:
    """Exhaustive per-layer cutpoints: after every feature node.

    Cut tensors must be spatial or flat (they all are, for the zoo
    networks). Ordered from the deepest (least removed) to the shallowest
    cut. ``blocks_removed`` is filled in for cutpoints that coincide with a
    block boundary and is ``None`` otherwise.
    """
    boundary_of = {b.output_node: i + 1
                   for i, b in enumerate(block_boundaries(net))}
    n_blocks = len(boundary_of)
    feature_nodes = [n.name for n in net.nodes.values()
                     if n.role == "feature"]
    cuts = []
    for node in reversed(feature_nodes):
        blocks = (n_blocks - boundary_of[node]
                  if node in boundary_of else None)
        if blocks == 0:
            continue  # cutting at the last block boundary removes nothing
        cuts.append(Cutpoint(net.name, node, blocks,
                             removed_weighted_layers(net, node)))
    cuts.append(Cutpoint(net.name, stem_output(net), n_blocks,
                         removed_weighted_layers(net, stem_output(net))))
    return cuts
