"""TRN construction: cut a pretrained network and attach a transfer head.

A TRimmed Network (TRN) is built from a pretrained network by

1. keeping the subgraph up to a *cutpoint* node (pretrained weights and
   batch-norm statistics are copied, so fine-tuning starts from the
   transferred features), and
2. attaching the paper's transfer head: Global Average Pooling (when the
   cut tensor is spatial), two FC/ReLU layers, and a FC/Softmax output
   (§III-B3).

The TRN naming convention follows the paper's ``ResNet/114`` style: the
number after the slash is the count of remaining graph nodes (the
framework-layer count a Keras ``len(model.layers)`` would report).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Dense, GlobalAvgPool, Network, ReLU, Softmax

__all__ = ["DEFAULT_HEAD_HIDDEN", "attach_head", "build_trn",
           "trn_node_count", "removed_weighted_layers", "removed_node_set"]

#: Hidden widths of the two FC/ReLU layers in the transfer head.
DEFAULT_HEAD_HIDDEN = (32, 16)


def attach_head(features: Network, num_classes: int,
                hidden: tuple[int, int] = DEFAULT_HEAD_HIDDEN,
                rng: np.random.Generator | int = 0) -> Network:
    """Attach the GAP + FC/ReLU + FC/ReLU + FC/Softmax head in place.

    ``features`` must be built (so shapes are known); the head parameters
    are freshly initialised from ``rng`` and the returned network is
    ``features`` itself, rebuilt to cover the new layers.
    """
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    out = features.output_name
    if len(features.shape_of(out)) == 3:
        out = features.add("head_gap", GlobalAvgPool(), inputs=out,
                           role="head")
    elif len(features.shape_of(out)) != 1:
        raise ValueError(
            f"cannot attach head to output of shape "
            f"{features.shape_of(out)}")
    for i, width in enumerate(hidden, start=1):
        out = features.add(f"head_fc{i}", Dense(width), inputs=out,
                           role="head")
        out = features.add(f"head_relu{i}", ReLU(), role="head")
    features.add("head_logits", Dense(num_classes), inputs=out, role="head")
    features.add("head_probs", Softmax(), role="head")
    return features.build(rng)


def build_trn(base: Network, cut_node: str, num_classes: int,
              hidden: tuple[int, int] = DEFAULT_HEAD_HIDDEN,
              rng: np.random.Generator | int = 0,
              name: str | None = None) -> Network:
    """Build a TRN from a pretrained base network and a cutpoint node.

    The feature subgraph is deep-copied, so the base network is untouched
    and several TRNs of the same base can be trained independently.
    """
    features = base.subgraph(cut_node)
    trn = attach_head(features, num_classes, hidden, rng)
    trn.name = name or f"{base.name}/{trn_node_count(trn)}"
    return trn


def trn_node_count(net: Network) -> int:
    """Framework-layer count: all graph nodes except the input placeholder."""
    return len(net.nodes) - 1


def removed_node_set(base: Network, cut_node: str) -> set[str]:
    """Names of all base-network nodes a cut at ``cut_node`` removes.

    This is what the profiler-based estimator consumes: kernels anchored at
    any of these nodes no longer execute in the TRN.
    """
    kept: set[str] = set()
    stack = [cut_node]
    while stack:
        cur = stack.pop()
        if cur in kept:
            continue
        kept.add(cur)
        stack.extend(base.nodes[cur].inputs)
    return {name for name in base.nodes if name not in kept}


def removed_weighted_layers(base: Network, cut_node: str) -> int:
    """Number of weighted (conv/dense) feature layers the cut removes.

    This is the x-axis of the paper's Fig. 5. Head layers of the base
    network do not count: transfer learning replaces them in any case.
    """
    kept: set[str] = set()
    stack = [cut_node]
    while stack:
        cur = stack.pop()
        if cur in kept:
            continue
        kept.add(cur)
        stack.extend(base.nodes[cur].inputs)
    removed = 0
    for node in base.nodes.values():
        if node.role != "feature" or node.name in kept:
            continue
        if type(node.layer).__name__ in ("Conv2D", "DepthwiseConv2D", "Dense"):
            removed += 1
    return removed
