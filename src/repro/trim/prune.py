"""Structural compression beyond cutpoints: channel pruning and block skipping.

Blockwise layer removal (this package's original tool) shortens a network;
the competing compression families in PAPERS.md instead *narrow* it
("To Filter Prune, or to Layer Prune", HALP) or skip interior blocks
(two-stage DP depth compression). This module supplies the graph surgery
both need, on the same :class:`~repro.nn.graph.Network` DAG:

- :func:`channel_importance` — per-output-channel L1 norms of a conv's
  kernel, the standard data-free filter saliency.
- :func:`prunable_channel_convs` — the feature convolutions whose output
  channels can be removed without changing any tensor contract the rest of
  the graph relies on (nothing downstream of a residual ``Add`` or the
  network output; see :func:`_absorbed`).
- :func:`prune_channels` — rebuild the network with a keep-list per conv,
  slicing every affected weight (conv kernels, depthwise kernels,
  batch-norm statistics, dense rows through ``Flatten``/``GlobalAvgPool``).
- :func:`skippable_blocks` / :func:`remove_blocks` — identify and delete
  shape-preserving interior feature blocks, rewiring their consumers to the
  block input (depth compression without a cutpoint).

All functions are pure: they return a fresh built network via the
serialization round-trip and never mutate the input network.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Network
from repro.nn.serialize import architecture_dict, network_from_dict

__all__ = [
    "channel_importance",
    "prunable_channel_convs",
    "prune_channels",
    "skippable_blocks",
    "remove_blocks",
]

# layers whose output channel axis is the input channel axis, unchanged:
# a keep-list flows straight through them
_CHANNEL_PRESERVING = {
    "BatchNorm", "ReLU", "ReLU6", "MaxPool2D", "AvgPool2D", "Dropout",
    "Softmax", "GlobalAvgPool", "DepthwiseConv2D",
}
# layers that consume the channel axis and emit their own: a keep-list
# stops here (the layer's weights are sliced on the *input* side instead)
_ABSORBING = {"Conv2D", "Dense"}


def _layer_type(net: Network, name: str) -> str:
    return type(net.nodes[name].layer).__name__


def _consumers(net: Network) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {name: [] for name in net.nodes}
    for node in net.nodes.values():
        for dep in node.inputs:
            out[dep].append(node.name)
    return out


def channel_importance(net: Network, conv: str) -> np.ndarray:
    """L1 norm of each output channel's kernel slice (+ bias if present).

    The classic magnitude saliency of Li et al.'s "Pruning Filters for
    Efficient ConvNets": channels whose kernels are small in L1 contribute
    little to the activations and are pruned first.
    """
    layer = net.nodes[conv].layer
    if type(layer).__name__ != "Conv2D":
        raise ValueError(f"{conv!r} is not a Conv2D node")
    w = layer.params["w"].value  # (kh, kw, c_in, filters)
    imp = np.abs(w).sum(axis=(0, 1, 2))
    if "b" in layer.params:
        imp = imp + np.abs(layer.params["b"].value)
    return imp.astype(np.float64)


def _absorbed(net: Network, conv: str, consumers: dict[str, list[str]]) -> bool:
    """Whether every path out of ``conv``'s channel axis ends in an
    absorbing layer before reaching an ``Add`` or the network output."""
    stack = list(consumers[conv])
    seen: set[str] = set()
    if conv == net.output_name:
        return False
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        kind = _layer_type(net, name)
        if kind in _ABSORBING:
            continue  # this branch slices its input weights instead
        if kind == "Add":
            return False  # would desynchronise the residual sum
        if kind in _CHANNEL_PRESERVING or kind in ("Concat", "Flatten"):
            if name == net.output_name:
                return False  # would change the network's output shape
            stack.extend(consumers[name])
            continue
        return False  # unknown layer: be conservative
    return True


def prunable_channel_convs(net: Network) -> list[str]:
    """Feature convolutions whose output channels may be pruned.

    A conv qualifies when every downstream path of its channel axis is
    absorbed by a Conv2D/Dense (whose input weights we can slice) without
    first touching a residual ``Add`` (all summands must keep identical
    channel sets) or the network output (its shape is the serving
    contract). Stem and head convs are left alone: the stem is the
    network's retina and heads are replaced wholesale by transfer learning.
    """
    consumers = _consumers(net)
    return [node.name for node in net.nodes.values()
            if node.role == "feature"
            and type(node.layer).__name__ == "Conv2D"
            and _absorbed(net, node.name, consumers)]


def _propagate_keeps(net: Network,
                     keep: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Keep-index array (into the *original* channel axis) per node output."""
    keeps: dict[str, np.ndarray] = {}
    for node in net.nodes.values():
        kind = type(node.layer).__name__
        if kind == "Input":
            keeps[node.name] = np.arange(net.input_shape[-1])
        elif kind == "Conv2D":
            keeps[node.name] = keep.get(node.name,
                                        np.arange(node.layer.filters))
        elif kind == "Dense":
            keeps[node.name] = np.arange(node.layer.units)
        elif kind == "Add":
            first = keeps[node.inputs[0]]
            for dep in node.inputs[1:]:
                if not np.array_equal(keeps[dep], first):
                    raise ValueError(
                        f"Add node {node.name!r} would sum mismatched "
                        "channel sets; prune only prunable_channel_convs")
            keeps[node.name] = first
        elif kind == "Concat":
            parts, offset = [], 0
            for dep in node.inputs:
                parts.append(keeps[dep] + offset)
                offset += net.shape_of(dep)[-1]
            keeps[node.name] = np.concatenate(parts)
        elif kind == "Flatten":
            in_shape = net.shape_of(node.inputs[0])
            if len(in_shape) == 1:
                keeps[node.name] = keeps[node.inputs[0]]
            else:
                h, w, c = in_shape
                base = np.arange(h * w) * c
                keeps[node.name] = (base[:, None]
                                    + keeps[node.inputs[0]][None, :]).ravel()
        else:  # channel-preserving
            keeps[node.name] = keeps[node.inputs[0]]
    return keeps


def prune_channels(net: Network, keep: dict[str, "np.ndarray | list[int]"],
                   name: str | None = None) -> Network:
    """Rebuild ``net`` with only the listed output channels of each conv.

    ``keep`` maps Conv2D node names to sorted original-channel indices to
    retain; every key must come from :func:`prunable_channel_convs`.
    Weights of the pruned convs, of the layers that carry their channel
    axis (depthwise kernels, batch-norm statistics) and of the absorbing
    layers' input dimensions are sliced from the original network, so the
    pruned network computes exactly the original function restricted to
    the kept channels.
    """
    if not net.built:
        raise RuntimeError("network must be built before pruning")
    allowed = set(prunable_channel_convs(net))
    norm: dict[str, np.ndarray] = {}
    for conv, idx in keep.items():
        if conv not in allowed:
            raise ValueError(f"{conv!r} is not a prunable feature conv "
                             "(see prunable_channel_convs)")
        arr = np.asarray(sorted(int(i) for i in idx), dtype=np.int64)
        filters = net.nodes[conv].layer.filters
        if arr.size == 0 or arr[0] < 0 or arr[-1] >= filters or \
                len(set(arr.tolist())) != arr.size:
            raise ValueError(f"invalid keep list for {conv!r}")
        norm[conv] = arr
    keeps = _propagate_keeps(net, norm)

    arch = architecture_dict(net)
    arch["name"] = name or f"{net.name}-pruned"
    for spec in arch["nodes"]:
        if spec["name"] in norm:
            spec["config"]["filters"] = int(norm[spec["name"]].size)

    state = net.state_dict()
    new_state: dict[str, np.ndarray] = {}
    for node in net.nodes.values():
        kind = type(node.layer).__name__
        if kind == "Input":
            continue
        in_keep = keeps[node.inputs[0]] if node.inputs else None
        out_keep = keeps[node.name]
        for key in (k for k in state if k.startswith(f"{node.name}.")):
            pname = key.split(".", 1)[1]
            value = state[key]
            if kind == "Conv2D":
                if pname == "w":
                    value = value[:, :, in_keep, :][:, :, :, norm.get(
                        node.name, np.arange(value.shape[-1]))]
                else:  # bias
                    value = value[norm.get(node.name,
                                           np.arange(value.size))]
            elif kind == "DepthwiseConv2D":
                value = value[:, :, in_keep] if pname == "w" \
                    else value[in_keep]
            elif kind == "Dense":
                if pname == "w":
                    value = value[in_keep, :]
            elif kind == "BatchNorm":
                value = value[out_keep]
            new_state[key] = np.ascontiguousarray(value)
    return network_from_dict(arch, new_state)


def skippable_blocks(net: Network) -> list[str]:
    """Interior feature blocks removable without re-plumbing the graph.

    A block qualifies when it has exactly one external input producer, its
    only externally consumed node is its last node, and input and output
    tensors have the same shape — then consumers of the block output can
    be rewired to the block input verbatim. These are exactly the
    shape-preserving (stride-1, equal-width, possibly residual) blocks.
    """
    members: dict[str, list[str]] = {}
    order: list[str] = []
    for node in net.nodes.values():
        if node.role != "feature" or node.block_id is None:
            continue
        if node.block_id not in members:
            order.append(node.block_id)
        members.setdefault(node.block_id, []).append(node.name)
    consumers = _consumers(net)
    out: list[str] = []
    for block in order:
        names = set(members[block])
        entries = {dep for n in members[block]
                   for dep in net.nodes[n].inputs if dep not in names}
        exit_node = members[block][-1]
        exits = {n for n in members[block]
                 if any(c not in names for c in consumers[n])}
        if len(entries) != 1 or exits != {exit_node}:
            continue
        entry = next(iter(entries))
        if net.shape_of(entry) == net.shape_of(exit_node) \
                and exit_node != net.output_name:
            out.append(block)
    return out


def remove_blocks(net: Network, blocks: "list[str] | set[str]",
                  name: str | None = None) -> Network:
    """Delete whole feature blocks, rewiring consumers to the block inputs.

    Every entry of ``blocks`` must come from :func:`skippable_blocks` (of
    the same network). Consecutive removed blocks chain: the replacement
    map resolves transitively, so removing blocks ``k`` and ``k+1`` wires
    block ``k+2`` straight to block ``k-1``'s output.
    """
    if not net.built:
        raise RuntimeError("network must be built before block removal")
    allowed = set(skippable_blocks(net))
    wanted = list(dict.fromkeys(blocks))
    bad = [b for b in wanted if b not in allowed]
    if bad:
        raise ValueError(f"blocks {bad} are not skippable "
                         "(see skippable_blocks)")
    removed_nodes: set[str] = set()
    replace: dict[str, str] = {}
    for block in wanted:
        members = [n.name for n in net.nodes.values()
                   if n.role == "feature" and n.block_id == block]
        names = set(members)
        entry = next(dep for n in members
                     for dep in net.nodes[n].inputs if dep not in names)
        replace[members[-1]] = entry
        removed_nodes |= names

    def resolve(dep: str) -> str:
        while dep in replace:
            dep = replace[dep]
        return dep

    arch = architecture_dict(net)
    arch["name"] = name or f"{net.name}-skip{len(wanted)}"
    arch["nodes"] = [dict(spec, inputs=[resolve(d) for d in spec["inputs"]])
                     for spec in arch["nodes"]
                     if spec["name"] not in removed_nodes]
    arch["output"] = resolve(arch["output"])
    state = {k: v for k, v in net.state_dict().items()
             if k.split(".", 1)[0] not in removed_nodes}
    return network_from_dict(arch, state)
