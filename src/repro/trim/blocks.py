"""Block-boundary extraction for blockwise layer removal.

The zoo constructors tag every node with a ``block_id``; here we recover the
ordered list of feature blocks and the node at which each block's output is
available — the candidate cutpoints for blockwise removal. The paper argues
(Fig. 4) that block boundaries are the right granularity: cutting inside a
block buys little accuracy for a large increase in search-space size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.graph import Network

__all__ = ["BlockBoundary", "block_boundaries", "stem_output"]


@dataclass(frozen=True)
class BlockBoundary:
    """A feature block and the node carrying its output."""

    block_id: str
    output_node: str
    weighted_layers: int  # conv/dense layers inside the block


def _weighted(layer) -> bool:
    return type(layer).__name__ in ("Conv2D", "DepthwiseConv2D", "Dense")


def block_boundaries(net: Network) -> list[BlockBoundary]:
    """Ordered feature blocks of a network with their output nodes.

    The output node of a block is its last node in topological order, which
    by construction of the zoo builders is the node every later block
    consumes.
    """
    last_node: dict[str, str] = {}
    weighted: dict[str, int] = {}
    order: list[str] = []
    for node in net.nodes.values():
        if node.role != "feature" or node.block_id is None:
            continue
        if node.block_id not in last_node:
            order.append(node.block_id)
        last_node[node.block_id] = node.name
        if _weighted(node.layer):
            weighted[node.block_id] = weighted.get(node.block_id, 0) + 1
    return [BlockBoundary(b, last_node[b], weighted.get(b, 0)) for b in order]


def stem_output(net: Network) -> str:
    """The last stem node — the deepest possible cut leaves only the stem.

    The input placeholder does not count as a stem layer: a network whose
    only stem-role node is the input has no stem to cut back to.
    """
    name = None
    for node in net.nodes.values():
        if node.role == "stem" and type(node.layer).__name__ != "Input":
            name = node.name
    if name is None:
        raise ValueError(f"network {net.name!r} has no stem nodes")
    return name
