"""One-pass feature recording for fast TRN sweeps.

Retraining a TRN starts (phase 1 of the paper's recipe) with the pretrained
feature extractor *frozen* and only the new head training. For a frozen
extractor the features at every candidate cutpoint can be recorded in a
single forward pass over the dataset per base network — the GAP of each
cutpoint node's activation — after which training a head per cutpoint is a
small dense-network problem. This is what makes evaluating all 148 blockwise
TRNs (and the 289 iterative InceptionV3 TRNs of Fig. 4) tractable.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Network

__all__ = ["record_gap_features"]


def record_gap_features(net: Network, x: np.ndarray,
                        node_names: list[str],
                        batch_size: int = 64) -> dict[str, np.ndarray]:
    """GAP features of every requested node over a dataset.

    Parameters
    ----------
    net:
        Built network with pretrained weights.
    x:
        Images, shape ``(N, H, W, C)``.
    node_names:
        Cutpoint nodes whose features to record.
    batch_size:
        Forward-pass batch size (bounds peak memory).

    Returns
    -------
    Mapping from node name to a float32 array of shape ``(N, channels)``:
    the spatial mean of the node's activation (or the activation itself if
    it is already flat).
    """
    unique = list(dict.fromkeys(node_names))
    chunks: dict[str, list[np.ndarray]] = {name: [] for name in unique}
    for start in range(0, x.shape[0], batch_size):
        batch = x[start:start + batch_size]
        _, acts = net.forward(batch, training=False, capture=unique)
        for name, act in acts.items():
            if act.ndim == 4:
                act = act.mean(axis=(1, 2))
            elif act.ndim != 2:
                raise ValueError(
                    f"node {name!r} has unexpected activation rank "
                    f"{act.ndim}")
            chunks[name].append(act.astype(np.float32))
    return {name: np.concatenate(parts) for name, parts in chunks.items()}
