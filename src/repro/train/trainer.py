"""Training loops: head-only training and the paper's two-phase fine-tuning.

The paper's transfer recipe (§III-B3): start with all pretrained features
frozen and train the new head at learning rate 1e-3, then unfreeze the
whole network and continue for 50 epochs at 1e-4. ``fine_tune`` implements
exactly that on a full TRN; ``train_head_on_features`` implements the
frozen phase on pre-recorded GAP features, which is what the large sweeps
use (see :mod:`repro.train.features`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import Dataset
from repro.metrics.angular import mean_angular_similarity
from repro.nn import Adam, Dense, Network, ReLU, Softmax
from repro.nn.losses import softmax_cross_entropy

__all__ = ["TrainConfig", "TrainResult", "build_head_network",
           "train_head_on_features", "fine_tune", "evaluate", "predict",
           "transplant_head"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the paper's fine-tuning recipe."""

    epochs_frozen: int = 20
    epochs_full: int = 50
    lr_frozen: float = 1e-3
    lr_full: float = 1e-4
    batch_size: int = 32
    seed: int = 0


@dataclass
class TrainResult:
    """Training outcome: the trained network and its learning curve."""

    network: Network
    losses: list[float] = field(default_factory=list)
    train_accuracy: float = float("nan")
    test_accuracy: float = float("nan")


def build_head_network(in_dim: int, num_classes: int,
                       hidden: tuple[int, int] = (32, 16),
                       rng: np.random.Generator | int = 0) -> Network:
    """The paper's transfer head as a standalone network on GAP features."""
    net = Network("head", (in_dim,))
    prev = "input"
    for i, width in enumerate(hidden, start=1):
        prev = net.add(f"fc{i}", Dense(width), inputs=prev, role="head")
        prev = net.add(f"relu{i}", ReLU(), role="head")
    net.add("logits", Dense(num_classes), inputs=prev, role="head")
    net.add("probs", Softmax(), role="head")
    return net.build(rng)


def transplant_head(head: Network, trn: Network) -> Network:
    """Copy a standalone head's trained weights into a TRN's head layers.

    The sweep experiments train the transfer head on pre-recorded GAP
    features (:func:`train_head_on_features`); this grafts those weights
    onto the full TRN (whose head layers are named ``head_fc1``,
    ``head_fc2``, ``head_logits``) so the TRN can run end-to-end inference.
    Returns ``trn``.
    """
    mapping = {"fc1": "head_fc1", "fc2": "head_fc2", "logits": "head_logits"}
    for src, dst in mapping.items():
        if src not in head.nodes or dst not in trn.nodes:
            raise KeyError(f"cannot transplant {src!r} -> {dst!r}")
        for pname, p in head.nodes[src].layer.params.items():
            target = trn.nodes[dst].layer.params[pname]
            if target.value.shape != p.value.shape:
                raise ValueError(
                    f"head/TRN shape mismatch at {dst}.{pname}: "
                    f"{target.value.shape} vs {p.value.shape}")
            target.value = p.value.copy()
    return trn


def _logits_node(net: Network) -> str:
    """The node feeding the final softmax (training bypasses the softmax)."""
    out = net.nodes[net.output_name]
    if type(out.layer).__name__ == "Softmax":
        return out.inputs[0]
    return net.output_name


def _run_epochs(net: Network, x: np.ndarray, y: np.ndarray, epochs: int,
                optimizer: Adam, batch_size: int,
                rng: np.random.Generator, losses: list[float]) -> None:
    logits_node = _logits_node(net)
    saved_output = net.output_name
    net.output_name = logits_node
    try:
        for _ in range(epochs):
            order = rng.permutation(x.shape[0])
            epoch_loss = 0.0
            batches = 0
            for start in range(0, x.shape[0], batch_size):
                idx = order[start:start + batch_size]
                net.zero_grad()
                _, loss = net.forward_backward(
                    x[idx], loss_fn=softmax_cross_entropy, y=y[idx],
                    training=True)
                optimizer.step(net.parameters())
                epoch_loss += loss
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
    finally:
        net.output_name = saved_output


def train_head_on_features(features: np.ndarray, y: np.ndarray,
                           num_classes: int, epochs: int = 60,
                           lr: float = 1e-3, batch_size: int = 64,
                           hidden: tuple[int, int] = (32, 16),
                           rng: np.random.Generator | int = 0) -> TrainResult:
    """Phase-1 training: fit the transfer head on frozen GAP features."""
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    head = build_head_network(features.shape[1], num_classes, hidden, rng)
    result = TrainResult(head)
    optimizer = Adam(lr)
    _run_epochs(head, features.astype(np.float32), y, epochs, optimizer,
                batch_size, rng, result.losses)
    result.train_accuracy = mean_angular_similarity(
        head.forward(features.astype(np.float32)), y)
    return result


def fine_tune(net: Network, train_data: Dataset,
              test_data: Dataset | None = None,
              config: TrainConfig = TrainConfig()) -> TrainResult:
    """The paper's two-phase fine-tuning of a full TRN.

    Phase 1 freezes every non-head layer and trains the head at
    ``lr_frozen``; phase 2 unfreezes everything and continues at
    ``lr_full``.
    """
    rng = np.random.default_rng(config.seed)
    result = TrainResult(net)

    net.freeze(lambda node: node.role != "head")
    optimizer = Adam(config.lr_frozen)
    _run_epochs(net, train_data.x, train_data.y, config.epochs_frozen,
                optimizer, config.batch_size, rng, result.losses)

    net.unfreeze()
    optimizer.set_lr(config.lr_full)
    _run_epochs(net, train_data.x, train_data.y, config.epochs_full,
                optimizer, config.batch_size, rng, result.losses)

    result.train_accuracy = evaluate(net, train_data)
    if test_data is not None:
        result.test_accuracy = evaluate(net, test_data)
    return result


def predict(net: Network, x: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Batched inference returning the network's probability outputs."""
    outs = [net.forward(x[s:s + batch_size])
            for s in range(0, x.shape[0], batch_size)]
    return np.concatenate(outs)


def evaluate(net: Network, data: Dataset, batch_size: int = 128) -> float:
    """Mean angular similarity of the network on a dataset."""
    return mean_angular_similarity(predict(net, data.x, batch_size), data.y)
