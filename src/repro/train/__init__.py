"""Transfer learning: feature recording, head training, fine-tuning, pretraining."""

from .features import record_gap_features
from .pretrain import (
    PretrainConfig,
    default_cache_dir,
    get_pretrained,
    pretrain,
    recipe_for,
)
from .trainer import (
    TrainConfig,
    TrainResult,
    build_head_network,
    evaluate,
    fine_tune,
    predict,
    train_head_on_features,
    transplant_head,
)

__all__ = [
    "record_gap_features",
    "PretrainConfig",
    "recipe_for",
    "default_cache_dir",
    "get_pretrained",
    "pretrain",
    "TrainConfig",
    "TrainResult",
    "build_head_network",
    "evaluate",
    "fine_tune",
    "predict",
    "train_head_on_features",
    "transplant_head",
]
