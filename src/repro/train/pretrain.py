"""Pretraining the zoo on SynthImageNet, with on-disk caching.

The paper starts from ImageNet-pretrained weights; this module produces the
equivalent starting point by training each zoo network on the synthetic
20-class pretraining task (:mod:`repro.data.imagenet`). Pretraining a
network once takes minutes in NumPy, so trained weights are cached as
``.npz`` files keyed by network name and recipe, and every experiment
loads from the cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.data.imagenet import make_synth_imagenet
from repro.nn import Adam, Network
from repro.nn.losses import softmax_cross_entropy
from repro.zoo import build_network

__all__ = ["PretrainConfig", "recipe_for", "default_cache_dir", "pretrain",
           "get_pretrained"]


@dataclass(frozen=True)
class PretrainConfig:
    """Recipe for SynthImageNet pretraining."""

    n_images: int = 1600
    image_size: int = 32
    num_classes: int = 20
    epochs: int = 12
    lr: float = 2e-3
    batch_size: int = 32
    seed: int = 0

    def cache_key(self, network: str) -> str:
        """Filename-safe cache key for this recipe and network."""
        return (f"{network}-n{self.n_images}-s{self.image_size}"
                f"-e{self.epochs}-lr{self.lr:g}-seed{self.seed}")


def recipe_for(name: str, base: PretrainConfig | None = None) -> PretrainConfig:
    """Per-family pretraining recipe.

    The narrow MobileNets need a higher learning rate and more epochs to
    reach useful features from scratch (mirroring how they are harder to
    train than ResNet-style networks in practice); InceptionV3 is the most
    expensive network, and converges in fewer epochs.
    """
    base = base or PretrainConfig()
    if name.startswith("mobilenet"):
        return PretrainConfig(base.n_images, base.image_size,
                              base.num_classes, epochs=20, lr=5e-3,
                              batch_size=base.batch_size, seed=base.seed)
    if name.startswith("inception"):
        return PretrainConfig(base.n_images, base.image_size,
                              base.num_classes, epochs=10, lr=base.lr,
                              batch_size=base.batch_size, seed=base.seed)
    return base


def default_cache_dir() -> str:
    """The weight cache directory (override with ``REPRO_CACHE_DIR``)."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-netcut"))


def pretrain(net: Network, config: PretrainConfig = PretrainConfig(),
             verbose: bool = False) -> Network:
    """Train a built network on SynthImageNet in place and return it."""
    data = make_synth_imagenet(config.n_images, config.image_size,
                               seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    optimizer = Adam(config.lr)
    # train on logits: bypass the final softmax for numerical stability
    saved_output = net.output_name
    out_node = net.nodes[net.output_name]
    if type(out_node.layer).__name__ == "Softmax":
        net.output_name = out_node.inputs[0]
    try:
        for epoch in range(config.epochs):
            order = rng.permutation(len(data))
            total, batches = 0.0, 0
            for start in range(0, len(data), config.batch_size):
                idx = order[start:start + config.batch_size]
                net.zero_grad()
                _, loss = net.forward_backward(
                    data.x[idx], loss_fn=softmax_cross_entropy,
                    y=data.y[idx], training=True)
                optimizer.step(net.parameters())
                total += loss
                batches += 1
            if verbose:
                print(f"  [{net.name}] epoch {epoch + 1}/{config.epochs} "
                      f"loss={total / batches:.4f}")
    finally:
        net.output_name = saved_output
    return net


def get_pretrained(name: str, config: PretrainConfig | None = None,
                   cache_dir: str | None = None, verbose: bool = False
                   ) -> Network:
    """Build a zoo network with pretrained weights, via the on-disk cache.

    With ``config=None`` the per-family default recipe
    (:func:`recipe_for`) is used — this is what experiments should do.
    """
    config = config or recipe_for(name)
    cache_dir = cache_dir or default_cache_dir()
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, config.cache_key(name) + ".npz")
    net = build_network(name, input_shape=(config.image_size,
                                           config.image_size, 3),
                        num_classes=config.num_classes)
    net.build(config.seed)
    if os.path.exists(path):
        with np.load(path) as archive:
            net.load_state_dict(dict(archive))
        return net
    if verbose:
        print(f"pretraining {name} (cache miss: {path})")
    pretrain(net, config, verbose=verbose)
    np.savez_compressed(path, **net.state_dict())
    return net
