"""The injection layer: wrap a TRN ladder in a composed set of faults.

A :class:`FaultInjector` owns a list of :class:`repro.faults.FaultModel`\\ s
and a virtual clock the serving engine advances (``tick``). Wrapping a
ladder replaces every rung with a :class:`FaultedRung` proxy whose
estimates, sampled service times and forwards are perturbed by the
currently active faults — the engine's code path is identical with and
without faults, which is the point: chaos is injected *under* the serving
stack, at the device boundary, not special-cased inside it.

Determinism: every fault's RNG is reseeded from
:func:`repro.device.spec.stable_seed` (scenario seed + fault index), and
the injector resets itself whenever a fresh engine starts, so one
``(ladder, config, trace, scenario)`` tuple always replays the same
failures at the same virtual times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.device.spec import stable_seed

from .models import FaultModel
from .resilience import RungFailureError

__all__ = ["FaultEvent", "FaultInjector", "FaultedRung"]


@dataclass(frozen=True)
class FaultEvent:
    """One fault window opening or closing, in virtual time."""

    time_ms: float
    fault: str                  # FaultModel.describe()
    phase: str                  # "activate" or "deactivate"

    def as_dict(self) -> dict:
        return {"time_ms": self.time_ms, "fault": self.fault,
                "phase": self.phase}


class FaultInjector:
    """Compose fault models over a shared virtual clock.

    The engine calls :meth:`tick` as its loop advances; the wrapped rungs
    read the injector's clock when they are asked for estimates or
    samples. Multiplicative hooks compose as products (a storm during a
    thermal window multiplies both slowdowns); ``fails`` composes as
    *any*; queue capacity composes as the *minimum* factor.
    """

    def __init__(self, faults: Sequence[FaultModel], seed: int = 0):
        self.faults = list(faults)
        self.seed = int(seed)
        self.events: list[FaultEvent] = []
        self.now_ms = 0.0
        self._active = [False] * len(self.faults)
        self.reset()

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        """Rewind to t=0 with fresh per-fault RNGs (fresh-engine start)."""
        for i, fault in enumerate(self.faults):
            fault.reseed(stable_seed(type(fault).__name__, i, self.seed))
        self.now_ms = 0.0
        self.events = []
        self._active = [False] * len(self.faults)

    def tick(self, now_ms: float) -> list[FaultEvent]:
        """Advance the clock; returns fault windows that just opened/closed."""
        self.now_ms = now_ms
        fresh: list[FaultEvent] = []
        for i, fault in enumerate(self.faults):
            active = fault.active(now_ms)
            if active != self._active[i]:
                self._active[i] = active
                event = FaultEvent(
                    now_ms, fault.describe(),
                    "activate" if active else "deactivate")
                self.events.append(event)
                fresh.append(event)
        return fresh

    # -- composed perturbations ----------------------------------------------
    def service_factor(self, rung_name: str, batch_size: int) -> float:
        factor = 1.0
        for fault in self.faults:
            factor *= fault.service_factor(self.now_ms, rung_name, batch_size)
        return factor

    def estimate_factor(self, rung_name: str) -> float:
        factor = 1.0
        for fault in self.faults:
            factor *= fault.estimate_factor(self.now_ms, rung_name)
        return factor

    def fails(self, rung_name: str) -> bool:
        return any(f.fails(self.now_ms, rung_name) for f in self.faults)

    def capacity_factor(self) -> float:
        return min((f.capacity_factor(self.now_ms) for f in self.faults),
                   default=1.0)

    def effective_capacity(self, capacity: int) -> int:
        """Usable queue slots under the currently active saturation faults."""
        return max(1, int(capacity * self.capacity_factor()))

    # -- wrapping ------------------------------------------------------------
    def wrap(self, ladder):
        """A new ladder whose rungs route through this injector.

        The original ladder is untouched; the wrapped one is a fresh
        instance of the same ladder class over :class:`FaultedRung`
        proxies (which satisfy the full rung protocol, so sorting,
        reseeding and warm-up behave identically).
        """
        return type(ladder)([FaultedRung(r, self) for r in ladder.rungs])

    # -- read-out ------------------------------------------------------------
    def snapshot(self) -> dict:
        """Injector state as a plain dict (mountable in a registry)."""
        return {"seed": self.seed, "now_ms": self.now_ms,
                "faults": [f.describe() for f in self.faults],
                "active": [f.describe() for f, a
                           in zip(self.faults, self._active) if a],
                "events": [e.as_dict() for e in self.events]}

    def report(self) -> str:
        lines = [f"faults ({len(self.faults)}), seed {self.seed}:"]
        for fault, active in zip(self.faults, self._active):
            marker = "*" if active else " "
            lines.append(f" {marker} {fault.describe()}")
        for e in self.events:
            lines.append(f"  t={e.time_ms:9.2f} ms  {e.phase:10s} {e.fault}")
        return "\n".join(lines)


class FaultedRung:
    """A TRN rung proxy that routes timing through a fault injector.

    Satisfies the rung protocol the serving stack uses (``name``,
    ``accuracy``, ``sampler``, ``estimate_ms``, ``sample_service_ms``,
    ``forward``, ``reseed``, ``recalibrate``) and perturbs each call with
    the injector's currently active faults.
    """

    def __init__(self, rung, injector: FaultInjector):
        self._rung = rung
        self._injector = injector

    # -- delegated attributes ------------------------------------------------
    @property
    def name(self) -> str:
        return self._rung.name

    @property
    def network(self):
        return self._rung.network

    @property
    def spec(self):
        return self._rung.spec

    @property
    def accuracy(self) -> float:
        return self._rung.accuracy

    @property
    def builder(self) -> str:
        return getattr(self._rung, "builder", "")

    @property
    def sampler(self):
        return self._rung.sampler

    @property
    def estimate_scale(self) -> float:
        return self._rung.estimate_scale

    def reseed(self, rng) -> None:
        self._rung.reseed(rng)

    def recalibrate(self, scale: float) -> float:
        """Rewrite the wrapped rung's latency belief (shared with the
        unwrapped ladder — there is one belief per rung, not per proxy)."""
        return self._rung.recalibrate(scale)

    def estimate_table(self) -> dict:
        return self._rung.estimate_table()

    # -- perturbed timing ----------------------------------------------------
    def estimate_ms(self, batch_size: int = 1) -> float:
        return (self._rung.estimate_ms(batch_size)
                * self._injector.estimate_factor(self.name))

    def sample_service_ms(self, batch_size: int = 1) -> float:
        if self._injector.fails(self.name):
            raise RungFailureError(self.name)
        return (self._rung.sample_service_ms(batch_size)
                * self._injector.service_factor(self.name, batch_size))

    def forward(self, samples):
        if self._injector.fails(self.name):
            raise RungFailureError(self.name)
        return self._rung.forward(samples)

    def forward_one(self, x):
        if self._injector.fails(self.name):
            raise RungFailureError(self.name)
        return self._rung.forward_one(x)

    def __repr__(self) -> str:
        return f"FaultedRung({self._rung!r})"
