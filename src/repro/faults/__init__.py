"""Fault injection and serving resilience for the NetCut stack.

The paper's contract is a hard deadline on a real embedded device — and
real devices misbehave: scheduler preemption storms, thermal throttling,
a TRN whose weights fail to load, memory pressure eating the request
queue, an estimator that quietly goes stale. This subpackage supplies
both halves of surviving that:

- **Injection** (:class:`FaultInjector` + the :class:`FaultModel` family)
  perturbs the virtual-time device model underneath the serving stack —
  deterministically, from a seed — so chaos experiments replay
  bit-for-bit. :func:`build_scenario` instantiates the named built-in
  :data:`SCENARIOS`.
- **Resilience** (:class:`CircuitBreaker`, :class:`HealthProbe`, plus the
  engine wiring in :mod:`repro.serve.engine` behind
  ``ServerConfig(resilience=True)``): per-batch execution timeouts with
  retry on a faster rung, per-rung breakers that take a sick rung out of
  rotation and probe it back in, and a last-resort degrade-to-fastest
  path — the server sheds accuracy instead of missing deadlines or
  crashing.

Typical chaos experiment::

    scenario = build_scenario("straggler-storm", span_ms=200.0, seed=0)
    injector = scenario.injector()
    server = Server(injector.wrap(ladder),
                    ServerConfig(deadline_ms=0.9, resilience=True),
                    faults=injector)
    result = server.run_trace(trace)

``repro faults --scenario straggler-storm`` runs the same experiment from
the command line, resilience on vs. off.
"""

from .inject import FaultEvent, FaultInjector, FaultedRung
from .models import (
    EstimatorBias,
    FaultModel,
    QueueSaturation,
    RungFailure,
    StragglerStorm,
    ThermalThrottle,
)
from .resilience import (
    BreakerEvent,
    CircuitBreaker,
    HealthProbe,
    ProbeResult,
    RungFailureError,
)
from .scenario import SCENARIOS, ChaosScenario, build_scenario

__all__ = [
    "FaultModel",
    "StragglerStorm",
    "ThermalThrottle",
    "RungFailure",
    "QueueSaturation",
    "EstimatorBias",
    "FaultEvent",
    "FaultInjector",
    "FaultedRung",
    "RungFailureError",
    "BreakerEvent",
    "CircuitBreaker",
    "ProbeResult",
    "HealthProbe",
    "ChaosScenario",
    "SCENARIOS",
    "build_scenario",
]
