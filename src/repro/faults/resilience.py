"""Serving resilience primitives: circuit breakers and health probes.

The serving engine keeps one :class:`CircuitBreaker` per TRN rung. A rung
that keeps timing out or hard-failing is taken out of rotation (*open*)
instead of burning deadline budget on every batch; after a virtual-time
cooldown the breaker lets exactly one probe batch through (*half-open*) —
success closes it, another failure re-opens it. Every transition is a
structured :class:`BreakerEvent` (the resilience counterpart of
:class:`repro.obs.DriftEvent`) and, when a tracer is attached to the
engine, a ``breaker`` trace span.

Nothing here imports :mod:`repro.serve`; the engine imports *us*, and the
classes work on anything rung-shaped (``estimate_ms`` /
``sample_service_ms``), so they are unit-testable in isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RungFailureError", "BreakerEvent", "CircuitBreaker",
           "ProbeResult", "HealthProbe"]

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RungFailureError(RuntimeError):
    """A TRN rung hard-failed to execute (fault-injected or real)."""

    def __init__(self, rung_name: str):
        super().__init__(f"rung {rung_name!r} failed to execute")
        self.rung_name = rung_name


@dataclass(frozen=True)
class BreakerEvent:
    """One circuit-breaker state transition, in virtual time."""

    time_ms: float
    rung: str
    from_state: str
    to_state: str
    reason: str                 # "timeout", "failure", "probe-ok", "cooldown"

    def as_dict(self) -> dict:
        return {"time_ms": self.time_ms, "rung": self.rung,
                "from_state": self.from_state, "to_state": self.to_state,
                "reason": self.reason}


class CircuitBreaker:
    """Per-rung failure accounting with open/half-open/closed states.

    Parameters
    ----------
    rung:
        Name of the rung this breaker guards (stamped into events).
    threshold:
        Consecutive failures (timeouts or hard failures) that open the
        breaker from the closed state. A half-open probe re-opens on its
        first failure.
    cooldown_ms:
        Virtual time the breaker stays open before :meth:`allow` lets a
        probe through (half-open).
    listener:
        Optional callable receiving each :class:`BreakerEvent` as it
        happens (the engine uses this to trace and count transitions).
    """

    def __init__(self, rung: str, threshold: int = 3,
                 cooldown_ms: float = 25.0, listener=None):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_ms <= 0:
            raise ValueError("breaker cooldown must be positive")
        self.rung = rung
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.listener = listener
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = -math.inf
        self.events: list[BreakerEvent] = []

    def _transition(self, now_ms: float, to_state: str, reason: str) -> None:
        event = BreakerEvent(now_ms, self.rung, self.state, to_state, reason)
        self.state = to_state
        self.events.append(event)
        if self.listener is not None:
            self.listener(event)

    # -- the state machine ---------------------------------------------------
    def allow(self, now_ms: float) -> bool:
        """May the engine schedule a batch on this rung at ``now_ms``?

        Closed: always. Open: only once the cooldown has elapsed, which
        transitions to half-open — the caller's next batch *is* the probe.
        Half-open: the probe slot is taken, wait for its verdict.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_ms >= self.opened_at_ms + self.cooldown_ms:
                self._transition(now_ms, HALF_OPEN, "cooldown")
                return True
            return False
        return False                      # half-open: probe in flight

    def would_allow(self, now_ms: float) -> bool:
        """Side-effect-free availability check (routing, not scheduling).

        Unlike :meth:`allow`, never transitions the state machine: an open
        breaker past its cooldown reads as available without arming the
        half-open probe, so a cluster router can poll any number of
        replicas for health without consuming probe slots. A half-open
        breaker reads unavailable — its one probe is already in flight.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return now_ms >= self.opened_at_ms + self.cooldown_ms
        return False

    def record_success(self, now_ms: float) -> None:
        """The rung served a batch fine; close from any state."""
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(now_ms, CLOSED, "probe-ok")

    def record_failure(self, now_ms: float, reason: str = "failure") -> None:
        """A timeout or hard failure on this rung."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self.opened_at_ms = now_ms
            self._transition(now_ms, OPEN, reason)
        elif self.state == CLOSED \
                and self.consecutive_failures >= self.threshold:
            self.opened_at_ms = now_ms
            self._transition(now_ms, OPEN, reason)

    def snapshot(self) -> dict:
        return {"rung": self.rung, "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "transitions": [e.as_dict() for e in self.events]}


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one health probe against a rung."""

    rung: str
    ok: bool
    latency_ms: float           # NaN when the rung hard-failed
    estimate_ms: float
    error: str | None = None

    def __str__(self) -> str:
        if self.error is not None:
            return f"{self.rung}: FAIL ({self.error})"
        verdict = "ok" if self.ok else "slow"
        return (f"{self.rung}: {verdict} "
                f"({self.latency_ms:.4f} ms vs est {self.estimate_ms:.4f})")


class HealthProbe:
    """Active health checks: one synthetic batch-1 inference per rung.

    A probe samples the rung's measured latency off the serving path and
    compares it against the noise-free estimate: more than ``slow_factor``
    over is unhealthy, a :class:`RungFailureError` is dead. Probing
    consumes one draw from the rung's measurement RNG, so health-check
    traffic is visible in (and perturbs) the deterministic sample stream —
    exactly like real probe requests would perturb a real device.
    """

    def __init__(self, slow_factor: float = 3.0):
        if slow_factor <= 1.0:
            raise ValueError("slow_factor must be > 1")
        self.slow_factor = slow_factor

    def probe(self, rung) -> ProbeResult:
        estimate = rung.estimate_ms(1)
        try:
            latency = rung.sample_service_ms(1)
        except RungFailureError:
            return ProbeResult(rung.name, False, float("nan"), estimate,
                               error="rung-failure")
        return ProbeResult(rung.name, latency <= self.slow_factor * estimate,
                           float(latency), estimate)

    def probe_ladder(self, ladder) -> list[ProbeResult]:
        """Probe every rung of a :class:`repro.serve.TRNLadder`."""
        return [self.probe(rung) for rung in ladder.rungs]
