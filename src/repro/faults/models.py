"""Composable fault models: how real devices break the latency contract.

Each :class:`FaultModel` is a pure perturbation of the virtual-time device
model, active over a ``[start_ms, start_ms + duration_ms)`` window and
deterministic given a seed (seeding is centralised in
:class:`repro.faults.FaultInjector`, so a whole chaos scenario replays
bit-for-bit). A model can perturb four surfaces, each through one hook:

==================  =====================================================
hook                what it models
==================  =====================================================
service_factor      the *measured* latency of one batched inference
                    (straggler spikes, thermal throttling)
estimate_factor     the latency the *estimator believes* (miscalibration;
                    the device itself is fine, the planner is lying)
fails               hard rung failure — the TRN cannot execute at all
                    (weights failed to load, kernel launch error)
capacity_factor     usable queue capacity (memory pressure eating the
                    request buffer)
==================  =====================================================

Hooks default to the identity, so a model only overrides the surface it
perturbs and an injector composes any set of models multiplicatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultModel",
    "StragglerStorm",
    "ThermalThrottle",
    "RungFailure",
    "QueueSaturation",
    "EstimatorBias",
]


@dataclass
class FaultModel:
    """Base fault: an activation window plus an optional rung filter.

    ``rungs`` limits the fault to the named TRN rungs (``None`` = all).
    Subclasses override the hooks for the surface they perturb; every hook
    receives the current virtual time and must be a pure function of
    ``(now_ms, arguments, own RNG state)`` so scenarios replay exactly.
    """

    start_ms: float = 0.0
    duration_ms: float = math.inf
    rungs: tuple[str, ...] | None = None
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self):
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.rungs is not None:
            self.rungs = tuple(self.rungs)

    # -- lifecycle -----------------------------------------------------------
    def reseed(self, seed: int) -> None:
        """Give the fault a fresh deterministic RNG (injector-driven)."""
        self._rng = np.random.default_rng(int(seed))

    def active(self, now_ms: float) -> bool:
        """Whether the fault window covers ``now_ms``."""
        return self.start_ms <= now_ms < self.start_ms + self.duration_ms

    def applies_to(self, rung_name: str) -> bool:
        return self.rungs is None or rung_name in self.rungs

    # -- perturbation hooks (identity defaults) ------------------------------
    def service_factor(self, now_ms: float, rung_name: str,
                       batch_size: int) -> float:
        """Multiplier on one sampled (measured) service time."""
        return 1.0

    def estimate_factor(self, now_ms: float, rung_name: str) -> float:
        """Multiplier on the noise-free estimate the planner trusts."""
        return 1.0

    def fails(self, now_ms: float, rung_name: str) -> bool:
        """Whether the rung hard-fails at ``now_ms``."""
        return False

    def capacity_factor(self, now_ms: float) -> float:
        """Multiplier on the usable queue capacity."""
        return 1.0

    def describe(self) -> str:
        window = ("always" if math.isinf(self.duration_ms)
                  else f"[{self.start_ms:g}, "
                       f"{self.start_ms + self.duration_ms:g}) ms")
        scope = "all rungs" if self.rungs is None else ", ".join(self.rungs)
        return f"{type(self).__name__} {window} on {scope}"


@dataclass
class StragglerStorm(FaultModel):
    """Scheduler-preemption storm: straggler spikes become the common case.

    While active, each sampled service time is independently hit with
    probability ``prob`` by a multiplier drawn uniformly from
    ``[1 + scale/2, 1 + scale]`` — far beyond the device spec's background
    straggler behaviour (prob ~1%, scale ~0.25). This is the scenario the
    paper's 200-warm-up/800-run averaging protocol exists to survive
    offline; online, a server has to survive it per request.
    """

    prob: float = 0.35
    scale: float = 12.0

    def service_factor(self, now_ms: float, rung_name: str,
                       batch_size: int) -> float:
        if not (self.active(now_ms) and self.applies_to(rung_name)):
            return 1.0
        if self._rng.random() >= self.prob:
            return 1.0
        return 1.0 + self.scale * (0.5 + 0.5 * self._rng.random())


@dataclass
class ThermalThrottle(FaultModel):
    """Thermal throttling: clocks ramp down, everything gets slower.

    The slowdown ramps linearly from 1x at window start to ``factor`` over
    ``ramp_ms`` and holds there until the window closes (heat soak, then a
    fan or duty-cycle cap). Only *measured* times slow down — the
    estimator still believes the cool-device numbers, which is exactly the
    drift :class:`repro.obs.DriftMonitor` exists to catch.
    """

    factor: float = 2.0
    ramp_ms: float = 0.0

    def service_factor(self, now_ms: float, rung_name: str,
                       batch_size: int) -> float:
        if not (self.active(now_ms) and self.applies_to(rung_name)):
            return 1.0
        if self.ramp_ms <= 0:
            return self.factor
        progress = min(1.0, (now_ms - self.start_ms) / self.ramp_ms)
        return 1.0 + (self.factor - 1.0) * progress


@dataclass
class RungFailure(FaultModel):
    """Hard rung failure: the TRN cannot run at all during the window.

    Models a rung whose weights fail to (re)load or whose kernels abort.
    Executing the rung raises
    :class:`repro.faults.RungFailureError`; a resilient engine treats
    that as a circuit-breaker failure and retries on a faster rung.
    """

    def fails(self, now_ms: float, rung_name: str) -> bool:
        return self.active(now_ms) and self.applies_to(rung_name)


@dataclass
class QueueSaturation(FaultModel):
    """Memory pressure: only ``factor`` of the queue capacity is usable.

    While active, the engine treats the bounded EDF queue as if its
    capacity were ``ceil(capacity * factor)`` — arrivals beyond that are
    rejected as ``queue-full`` instead of silently growing the backlog.
    """

    factor: float = 0.25

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("capacity factor must be in (0, 1]")

    def capacity_factor(self, now_ms: float) -> float:
        return self.factor if self.active(now_ms) else 1.0


@dataclass
class EstimatorBias(FaultModel):
    """Estimator miscalibration: the planner's latency model is wrong.

    Multiplies the noise-free estimate by ``factor`` while leaving the
    measured times untouched. ``factor < 1`` makes the planner
    optimistic — admission admits unmeetable requests and the batcher
    over-grows batches; ``factor > 1`` makes it pessimistic — capacity is
    thrown away. Either way the drift monitor should fire.
    """

    factor: float = 0.5

    def __post_init__(self):
        super().__post_init__()
        if self.factor <= 0:
            raise ValueError("bias factor must be positive")

    def estimate_factor(self, now_ms: float, rung_name: str) -> float:
        if self.active(now_ms) and self.applies_to(rung_name):
            return self.factor
        return 1.0
