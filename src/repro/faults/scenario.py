"""Named chaos scenarios: reproducible bundles of fault models.

A :class:`ChaosScenario` is what the CLI's ``faults`` subcommand and the
chaos benchmarks replay: a named list of fault models plus a seed,
convertible to a fresh :class:`repro.faults.FaultInjector` per run. The
built-in :data:`SCENARIOS` are parameterised by the expected trace span
(fault windows scale with the traffic they disturb) and, where a fault
targets specific rungs, by rung names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .inject import FaultInjector
from .models import (
    EstimatorBias,
    FaultModel,
    QueueSaturation,
    RungFailure,
    StragglerStorm,
    ThermalThrottle,
)

__all__ = ["ChaosScenario", "SCENARIOS", "build_scenario"]


@dataclass
class ChaosScenario:
    """A named, seeded set of faults — one replayable chaos experiment."""

    name: str
    description: str
    faults: list[FaultModel] = field(default_factory=list)
    seed: int = 0

    def injector(self) -> FaultInjector:
        """A fresh injector for one serving run."""
        return FaultInjector(self.faults, seed=self.seed)

    def describe(self) -> str:
        lines = [f"{self.name} (seed {self.seed}): {self.description}"]
        lines += [f"  - {f.describe()}" for f in self.faults]
        return "\n".join(lines)


def _storm(span_ms: float, seed: int, rungs) -> ChaosScenario:
    return ChaosScenario(
        "straggler-storm",
        "scheduler preemption storm over the middle 60% of the trace: "
        "35% of inferences take 7-13x their normal time",
        [StragglerStorm(start_ms=0.2 * span_ms, duration_ms=0.6 * span_ms,
                        prob=0.35, scale=12.0)],
        seed)


def _thermal(span_ms: float, seed: int, rungs) -> ChaosScenario:
    return ChaosScenario(
        "thermal-throttle",
        "thermal throttling from 40% of the trace onwards: clocks ramp "
        "down to a 2.5x slowdown over a 10% ramp and stay there",
        [ThermalThrottle(start_ms=0.4 * span_ms, duration_ms=0.6 * span_ms,
                         factor=2.5, ramp_ms=0.1 * span_ms)],
        seed)


def _rung_failure(span_ms: float, seed: int, rungs) -> ChaosScenario:
    return ChaosScenario(
        "rung-failure",
        "the targeted rung(s) hard-fail over the middle half of the "
        "trace (weights unloadable); everything else is healthy",
        [RungFailure(start_ms=0.25 * span_ms, duration_ms=0.5 * span_ms,
                     rungs=rungs)],
        seed)


def _saturation(span_ms: float, seed: int, rungs) -> ChaosScenario:
    return ChaosScenario(
        "queue-saturation",
        "memory pressure halves then quarters the usable queue over the "
        "middle of the trace",
        [QueueSaturation(start_ms=0.2 * span_ms, duration_ms=0.6 * span_ms,
                         factor=0.25)],
        seed)


def _bias(span_ms: float, seed: int, rungs) -> ChaosScenario:
    return ChaosScenario(
        "estimator-bias",
        "the latency estimator turns optimistic (2x under-estimate) for "
        "the middle 60% of the trace; planning decisions go wrong",
        [EstimatorBias(start_ms=0.2 * span_ms, duration_ms=0.6 * span_ms,
                       factor=0.5)],
        seed)


def _mixed(span_ms: float, seed: int, rungs) -> ChaosScenario:
    return ChaosScenario(
        "mixed",
        "a straggler storm, a late thermal ramp and a failing rung "
        "overlapping — the everything-goes-wrong drill",
        [StragglerStorm(start_ms=0.15 * span_ms, duration_ms=0.4 * span_ms,
                        prob=0.3, scale=10.0),
         ThermalThrottle(start_ms=0.5 * span_ms, duration_ms=0.5 * span_ms,
                         factor=2.0, ramp_ms=0.05 * span_ms),
         RungFailure(start_ms=0.3 * span_ms, duration_ms=0.3 * span_ms,
                     rungs=rungs)],
        seed)


#: Built-in scenario factories: name -> (span_ms, seed, rungs) -> scenario.
SCENARIOS: dict[str, Callable[..., ChaosScenario]] = {
    "straggler-storm": _storm,
    "thermal-throttle": _thermal,
    "rung-failure": _rung_failure,
    "queue-saturation": _saturation,
    "estimator-bias": _bias,
    "mixed": _mixed,
}


def build_scenario(name: str, span_ms: float, seed: int = 0,
                   rungs: tuple[str, ...] | None = None) -> ChaosScenario:
    """Instantiate a built-in scenario scaled to a trace span.

    ``rungs`` names the rungs targeted by rung-specific faults (defaults
    to none, which for :class:`RungFailure` means *every* rung — pass the
    rung you mean to break).
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; available: "
                       f"{sorted(SCENARIOS)}") from None
    return factory(span_ms, seed, rungs)
