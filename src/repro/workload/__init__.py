"""repro.workload: production traffic for the serving stack.

Four parts, one subsystem:

- :mod:`~repro.workload.generators` — composable arrival processes
  (diurnal cycles, flash crowds, Markov-modulated bursts and their
  superposition) sampled into :class:`repro.serve.Request` traces with
  Lewis–Shedler thinning; also the canonical home of ``poisson_trace``
  and ``uniform_trace`` (still re-exported by ``repro.serve.trace``);
- :mod:`~repro.workload.tenancy` — per-tenant request classes with
  distinct deadlines, priorities and traffic shares, plus the
  weighted-fair admission policy the engine enforces under contention;
- :mod:`~repro.workload.recording` — versioned JSONL record/replay of
  request streams and their outcomes, byte-stable across
  ``PYTHONHASHSEED``;
- :mod:`~repro.workload.fluid` — an analytical queueing approximation
  over the same latency tables, for fleet sizes the discrete event loop
  cannot reach.
"""

from .generators import (
    ArrivalProcess,
    ConstantRate,
    DiurnalCycle,
    FlashCrowd,
    MarkovModulated,
    Superposition,
    WORKLOAD_KINDS,
    generate_trace,
    make_process,
    offered_load,
    poisson_trace,
    uniform_trace,
)
from .tenancy import (
    TenantClass,
    TenantMix,
    WeightedFairAdmission,
    default_tenants,
)
from .recording import (
    RecordedTrace,
    TRACE_KIND,
    TRACE_VERSION,
    load_trace,
    record_run,
    save_trace,
    verify_replay,
)
from .fluid import FluidModel, FluidPrediction, TenantPrediction
