"""Composable arrival processes: production traffic for the serving stack.

The serving/cluster layers consume plain lists of
:class:`repro.serve.Request`, so a workload generator is anything that
produces arrival times. This module models the arrival *intensity*
(requests per second as a function of virtual time) as a first-class
object — :class:`ArrivalProcess` — and samples concrete traces from it
with Lewis–Shedler thinning: candidate arrivals are drawn from a
homogeneous Poisson process at the peak rate and each is kept with
probability ``rate(t) / peak_rate``. The result is an exact draw from
the non-homogeneous Poisson process with that intensity, fully
deterministic under a seeded generator.

Four intensities cover the production shapes the single-rate traces of
:func:`poisson_trace` cannot express:

- :class:`DiurnalCycle` — the daily sine every consumer service rides;
- :class:`FlashCrowd` — a ramp/hold/decay spike (a push notification, a
  product launch) on top of a base rate;
- :class:`MarkovModulated` — an MMPP switching between rate states with
  exponential dwell times, the standard model for correlated bursts;
- :class:`Superposition` — the sum of independent processes, which is
  how per-tenant streams compose into one offered load.

:func:`poisson_trace`, :func:`uniform_trace` and :func:`offered_load`
moved here from ``repro.serve.trace`` (which still re-exports them);
they are unchanged, byte-for-byte, so existing seeded experiments
reproduce exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.synthetic import render_object, sample_object

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "DiurnalCycle",
    "FlashCrowd",
    "MarkovModulated",
    "Superposition",
    "make_process",
    "generate_trace",
    "poisson_trace",
    "uniform_trace",
    "offered_load",
]


def _as_rng(rng) -> np.random.Generator:
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    return rng


class ArrivalProcess:
    """An arrival intensity over virtual time (milliseconds).

    Subclasses implement :meth:`rate_rps` (vectorised over numpy arrays
    of times) and :attr:`peak_rate_rps` (a finite upper bound on the
    intensity, used as the thinning envelope). Processes whose intensity
    is itself random (:class:`MarkovModulated`) realise it in
    :meth:`prepare`, which :meth:`arrival_times_ms` calls once per draw.
    """

    def rate_rps(self, t_ms):
        """Instantaneous arrival rate (requests/second) at time ``t_ms``."""
        raise NotImplementedError

    @property
    def peak_rate_rps(self) -> float:
        """A finite upper bound on :meth:`rate_rps` (thinning envelope)."""
        raise NotImplementedError

    def prepare(self, horizon_ms: float, rng: np.random.Generator) -> None:
        """Realise any internal randomness for one draw (default: none)."""

    def mean_rate_rps(self, horizon_ms: float, samples: int = 512) -> float:
        """Time-averaged intensity over ``[0, horizon_ms)`` (numeric)."""
        ts = (np.arange(samples) + 0.5) * (horizon_ms / samples)
        return float(np.mean(self.rate_rps(ts)))

    def arrival_times_ms(self, horizon_ms: float,
                         rng: np.random.Generator | int = 0) -> np.ndarray:
        """One exact draw of the arrival times in ``[0, horizon_ms)``.

        Lewis–Shedler thinning against the peak-rate envelope, vectorised
        in chunks: the candidate stream and the acceptance stream each
        consume the generator in a fixed order, so a seed pins the trace.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        rng = _as_rng(rng)
        self.prepare(horizon_ms, rng)
        peak = self.peak_rate_rps
        if peak <= 0:
            return np.empty(0)
        mean_gap_ms = 1e3 / peak
        out = []
        t = 0.0
        while t < horizon_ms:
            gaps = rng.exponential(mean_gap_ms, size=2048)
            candidates = t + np.cumsum(gaps)
            t = float(candidates[-1])
            candidates = candidates[candidates < horizon_ms]
            if candidates.size == 0:
                continue
            keep = rng.random(candidates.size) * peak \
                <= self.rate_rps(candidates)
            out.append(candidates[keep])
        return np.concatenate(out) if out else np.empty(0)

    def describe(self) -> str:
        return type(self).__name__


class ConstantRate(ArrivalProcess):
    """A homogeneous Poisson process (the classic open-loop model)."""

    def __init__(self, rate_rps: float):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self._rate = float(rate_rps)

    def rate_rps(self, t_ms):
        return np.full_like(np.asarray(t_ms, dtype=float), self._rate)

    @property
    def peak_rate_rps(self) -> float:
        return self._rate

    def describe(self) -> str:
        return f"constant {self._rate:,.0f} rps"


class DiurnalCycle(ArrivalProcess):
    """A sinusoidal daily cycle: ``base * (1 + amplitude*sin(...))``.

    ``period_ms`` is the cycle length in *virtual* milliseconds — serving
    experiments compress a day into however much virtual time the trace
    spans. ``phase`` (radians) shifts where in the cycle the trace starts.
    """

    def __init__(self, base_rps: float, amplitude: float = 0.5,
                 period_ms: float = 1000.0, phase: float = 0.0):
        if base_rps <= 0:
            raise ValueError("base_rps must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period_ms <= 0:
            raise ValueError("period_ms must be positive")
        self.base_rps = float(base_rps)
        self.amplitude = float(amplitude)
        self.period_ms = float(period_ms)
        self.phase = float(phase)

    def rate_rps(self, t_ms):
        t = np.asarray(t_ms, dtype=float)
        cycle = np.sin(2.0 * math.pi * t / self.period_ms + self.phase)
        return self.base_rps * (1.0 + self.amplitude * cycle)

    @property
    def peak_rate_rps(self) -> float:
        return self.base_rps * (1.0 + self.amplitude)

    def describe(self) -> str:
        return (f"diurnal {self.base_rps:,.0f} rps ±"
                f"{100 * self.amplitude:.0f}% / {self.period_ms:.0f} ms")


class FlashCrowd(ArrivalProcess):
    """A base rate with a ramp/hold/decay spike riding on top.

    The rate climbs linearly from ``base_rps`` to
    ``base_rps * peak_multiplier`` over ``ramp_ms`` starting at
    ``start_ms``, holds the peak for ``hold_ms``, then decays
    exponentially back with time constant ``decay_ms`` — the canonical
    shape of a crowd arriving on a push notification and losing interest.
    """

    def __init__(self, base_rps: float, peak_multiplier: float,
                 start_ms: float, ramp_ms: float = 10.0,
                 hold_ms: float = 50.0, decay_ms: float = 25.0):
        if base_rps <= 0:
            raise ValueError("base_rps must be positive")
        if peak_multiplier < 1.0:
            raise ValueError("peak_multiplier must be >= 1")
        if min(ramp_ms, decay_ms) <= 0 or hold_ms < 0 or start_ms < 0:
            raise ValueError("flash-crowd phases must be positive "
                             "(hold_ms may be zero)")
        self.base_rps = float(base_rps)
        self.peak_multiplier = float(peak_multiplier)
        self.start_ms = float(start_ms)
        self.ramp_ms = float(ramp_ms)
        self.hold_ms = float(hold_ms)
        self.decay_ms = float(decay_ms)

    def rate_rps(self, t_ms):
        t = np.asarray(t_ms, dtype=float)
        peak = self.base_rps * self.peak_multiplier
        ramp_end = self.start_ms + self.ramp_ms
        hold_end = ramp_end + self.hold_ms
        frac = np.clip((t - self.start_ms) / self.ramp_ms, 0.0, 1.0)
        rate = self.base_rps + (peak - self.base_rps) * frac
        decay = self.base_rps + (peak - self.base_rps) \
            * np.exp(-np.maximum(t - hold_end, 0.0) / self.decay_ms)
        return np.where(t < hold_end, rate, decay)

    @property
    def peak_rate_rps(self) -> float:
        return self.base_rps * self.peak_multiplier

    def describe(self) -> str:
        return (f"flash crowd {self.base_rps:,.0f} rps x"
                f"{self.peak_multiplier:.1f} @ {self.start_ms:.0f} ms "
                f"(+{self.ramp_ms:.0f}/{self.hold_ms:.0f}/"
                f"{self.decay_ms:.0f} ms)")


class MarkovModulated(ArrivalProcess):
    """A Markov-modulated Poisson process: correlated bursts.

    The intensity jumps between ``rates_rps`` states; state ``i`` holds
    for an exponential dwell with mean ``mean_dwell_ms[i]``, then moves
    to a uniformly random *other* state. The realised state trajectory is
    drawn in :meth:`prepare` (per trace draw, from the same seeded
    generator as the arrivals), so one seed pins both the burst schedule
    and the arrivals inside it.
    """

    def __init__(self, rates_rps: tuple[float, ...],
                 mean_dwell_ms: tuple[float, ...], start_state: int = 0):
        if len(rates_rps) < 2:
            raise ValueError("an MMPP needs at least two rate states")
        if len(mean_dwell_ms) != len(rates_rps):
            raise ValueError("need one mean dwell per rate state")
        if min(rates_rps) < 0 or max(rates_rps) <= 0:
            raise ValueError("rates must be non-negative, one positive")
        if min(mean_dwell_ms) <= 0:
            raise ValueError("mean dwells must be positive")
        if not 0 <= start_state < len(rates_rps):
            raise ValueError("start_state out of range")
        self.rates_rps_states = tuple(float(r) for r in rates_rps)
        self.mean_dwell_ms = tuple(float(d) for d in mean_dwell_ms)
        self.start_state = start_state
        self._switch_ms = np.array([0.0])
        self._state_rates = np.array([self.rates_rps_states[start_state]])

    def prepare(self, horizon_ms: float, rng: np.random.Generator) -> None:
        switches, rates = [0.0], [self.rates_rps_states[self.start_state]]
        state, t = self.start_state, 0.0
        n = len(self.rates_rps_states)
        while t < horizon_ms:
            t += float(rng.exponential(self.mean_dwell_ms[state]))
            nxt = int(rng.integers(n - 1))
            state = nxt if nxt < state else nxt + 1   # any *other* state
            switches.append(t)
            rates.append(self.rates_rps_states[state])
        self._switch_ms = np.array(switches)
        self._state_rates = np.array(rates)

    def rate_rps(self, t_ms):
        t = np.asarray(t_ms, dtype=float)
        idx = np.searchsorted(self._switch_ms, t, side="right") - 1
        return self._state_rates[np.clip(idx, 0, len(self._state_rates) - 1)]

    @property
    def peak_rate_rps(self) -> float:
        return max(self.rates_rps_states)

    def describe(self) -> str:
        states = "/".join(f"{r:,.0f}" for r in self.rates_rps_states)
        return f"mmpp [{states}] rps"


class Superposition(ArrivalProcess):
    """The sum of independent arrival processes (rates add)."""

    def __init__(self, *processes: ArrivalProcess):
        if not processes:
            raise ValueError("a superposition needs at least one process")
        self.processes = tuple(processes)

    def prepare(self, horizon_ms: float, rng: np.random.Generator) -> None:
        for p in self.processes:
            p.prepare(horizon_ms, rng)

    def rate_rps(self, t_ms):
        t = np.asarray(t_ms, dtype=float)
        total = np.zeros_like(t)
        for p in self.processes:
            total = total + p.rate_rps(t)
        return total

    @property
    def peak_rate_rps(self) -> float:
        # conservative envelope: the component peaks need not align, but
        # thinning only requires an upper bound, not a tight one
        return sum(p.peak_rate_rps for p in self.processes)

    def describe(self) -> str:
        return " + ".join(p.describe() for p in self.processes)


#: Named scenario builders for the CLI and benchmarks:
#: ``make_process(kind, base_rps, horizon_ms)``.
_SCENARIOS = {
    "constant": lambda base, horizon: ConstantRate(base),
    "diurnal": lambda base, horizon: DiurnalCycle(
        base, amplitude=0.5, period_ms=horizon),
    "flash": lambda base, horizon: FlashCrowd(
        base, peak_multiplier=4.0, start_ms=0.35 * horizon,
        ramp_ms=0.05 * horizon, hold_ms=0.2 * horizon,
        decay_ms=0.1 * horizon),
    "mmpp": lambda base, horizon: MarkovModulated(
        (0.5 * base, 2.0 * base), (0.2 * horizon, 0.05 * horizon)),
    "diurnal-flash": lambda base, horizon: Superposition(
        DiurnalCycle(base, amplitude=0.5, period_ms=horizon),
        FlashCrowd(0.25 * base, peak_multiplier=10.0,
                   start_ms=0.35 * horizon, ramp_ms=0.05 * horizon,
                   hold_ms=0.2 * horizon, decay_ms=0.1 * horizon)),
}

WORKLOAD_KINDS = tuple(sorted(_SCENARIOS))


def make_process(kind: str, base_rps: float,
                 horizon_ms: float) -> ArrivalProcess:
    """Build a named workload shape scaled to a trace horizon."""
    try:
        factory = _SCENARIOS[kind]
    except KeyError:
        raise KeyError(f"unknown workload kind {kind!r}; available: "
                       f"{list(WORKLOAD_KINDS)}") from None
    return factory(float(base_rps), float(horizon_ms))


def _payloads(n: int, image_size: int, rng: np.random.Generator,
              render: bool) -> list:
    if not render:
        return [None] * n
    return [render_object(sample_object(rng), size=image_size, rng=rng)
            for _ in range(n)]


def generate_trace(process: ArrivalProcess, horizon_ms: float,
                   deadline_ms: float | None = None, tenants=None,
                   rng: np.random.Generator | int = 0,
                   image_size: int = 32, render: bool = False,
                   start_rid: int = 0) -> list:
    """Sample one trace of :class:`repro.serve.Request`s from a process.

    With ``tenants`` (a :class:`repro.workload.TenantMix`) each arrival is
    assigned a tenant class by traffic share and inherits that tenant's
    deadline; otherwise every request carries ``deadline_ms``. The draw
    order is fixed (arrivals, then tenant assignment, then payloads), so
    one seed pins the whole trace.
    """
    # imported lazily: repro.serve re-exports this module's trace makers,
    # so a module-level serve import would be circular either way round
    from repro.serve.request import Request

    if tenants is None and deadline_ms is None:
        raise ValueError("need deadline_ms or a TenantMix with deadlines")
    rng = _as_rng(rng)
    arrivals = process.arrival_times_ms(horizon_ms, rng)
    n = len(arrivals)
    names = [None] * n
    deadlines = [deadline_ms] * n
    if tenants is not None:
        assigned = tenants.draw(n, rng)
        names = [t.name for t in assigned]
        deadlines = [t.deadline_ms for t in assigned]
    xs = _payloads(n, image_size, rng, render)
    return [Request(rid=start_rid + i, arrival_ms=float(arrivals[i]),
                    deadline_ms=float(deadlines[i]), x=xs[i],
                    tenant=names[i])
            for i in range(n)]


def poisson_trace(n: int, rate_rps: float, deadline_ms: float,
                  rng: np.random.Generator | int = 0,
                  image_size: int = 32, render: bool = False,
                  burst: tuple[float, float, float] | None = None
                  ) -> list:
    """``n`` Poisson arrivals at ``rate_rps`` requests/second.

    ``burst=(start_frac, end_frac, multiplier)`` scales the arrival rate by
    ``multiplier`` for the requests whose *index* falls in the given
    fraction of the trace — e.g. ``(0.3, 0.7, 4.0)`` makes the middle 40%
    of requests arrive 4x faster, a load spike the ladder must absorb.
    """
    from repro.serve.request import Request

    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = _as_rng(rng)
    mean_gap_ms = 1e3 / rate_rps
    gaps = rng.exponential(mean_gap_ms, size=n)
    if burst is not None:
        lo, hi, mult = burst
        if mult <= 0:
            raise ValueError("burst multiplier must be positive")
        idx = np.arange(n)
        in_burst = (idx >= lo * n) & (idx < hi * n)
        gaps[in_burst] /= mult
    arrivals = np.cumsum(gaps)
    xs = _payloads(n, image_size, rng, render)
    return [Request(rid=i, arrival_ms=float(arrivals[i]),
                    deadline_ms=deadline_ms, x=xs[i])
            for i in range(n)]


def uniform_trace(n: int, rate_rps: float, deadline_ms: float,
                  rng: np.random.Generator | int = 0,
                  image_size: int = 32, render: bool = False
                  ) -> list:
    """``n`` evenly spaced arrivals (a closed-loop sensor at a fixed rate)."""
    from repro.serve.request import Request

    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = _as_rng(rng)
    gap_ms = 1e3 / rate_rps
    xs = _payloads(n, image_size, rng, render)
    return [Request(rid=i, arrival_ms=float((i + 1) * gap_ms),
                    deadline_ms=deadline_ms, x=xs[i])
            for i in range(n)]


def offered_load(trace: list, service_ms: float) -> float:
    """Utilisation ρ of a trace against a fixed per-request service time.

    ρ > 1 means the server cannot keep up without batching or degradation;
    the acceptance tests use this to calibrate overload scenarios.
    """
    if not trace:
        return 0.0
    span_ms = max(r.arrival_ms for r in trace)
    if span_ms <= 0:
        return float("inf")
    return len(trace) * service_ms / span_ms
