"""Multi-tenant request classes and weighted-fair admission.

A production inference service rarely serves one traffic class: an
interactive tenant with a tight latency SLO shares the fleet with batch
tenants that tolerate far looser deadlines but can flood the queue. This
module gives each class a name, a deadline, a scheduling ``weight`` and a
traffic ``share`` (:class:`TenantClass` / :class:`TenantMix`), and adds
the protection mechanism the EDF queue alone cannot provide:
:class:`WeightedFairAdmission`.

EDF orders *admitted* work optimally, but admission itself is
first-come-first-served — a flash crowd from one tenant fills the bounded
queue and every other tenant's requests then wait behind it (or bounce
off ``queue-full``). Weighted-fair admission closes that hole at the
door: while the queue sits below a contention ``watermark`` everyone is
admitted, and above it a tenant is admitted only while its share of the
recently admitted requests does not exceed its weight share. Because
shares sum to one, at least one tenant is always at or under its
guaranteed slice, so the policy can never deadlock the queue — it only
throttles whoever is flooding. The engine consults the policy via
``ServerConfig(admission_policy=...)`` (see
:meth:`repro.serve.Engine._admit`); rejections carry the
``tenant-over-share`` reason so per-tenant metrics show exactly what the
policy cost each class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["TenantClass", "TenantMix", "WeightedFairAdmission",
           "default_tenants"]


@dataclass(frozen=True)
class TenantClass:
    """One request class: its SLO and its claim on the fleet.

    ``deadline_ms`` is the class's relative latency budget (every request
    of the tenant carries it); ``weight`` is its guaranteed share of
    admissions under contention (relative to the other tenants' weights);
    ``share`` is its fraction of *offered* traffic when a
    :class:`TenantMix` assigns tenants to generated arrivals; ``priority``
    is descriptive rank for reports (higher = more important).
    """

    name: str
    deadline_ms: float
    weight: float = 1.0
    share: float = 1.0
    priority: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("a tenant needs a name")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.share < 0:
            raise ValueError("share must be >= 0")


class TenantMix:
    """An ordered set of tenant classes with normalised traffic shares."""

    def __init__(self, tenants: list[TenantClass]):
        if not tenants:
            raise ValueError("a tenant mix needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        total = sum(t.share for t in tenants)
        if total <= 0:
            raise ValueError("tenant shares must sum to something positive")
        self.tenants = list(tenants)
        self._by_name = {t.name: t for t in tenants}
        self.shares = np.array([t.share / total for t in tenants])

    def __iter__(self):
        return iter(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)

    def __getitem__(self, name: str) -> TenantClass:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def draw(self, n: int, rng: np.random.Generator | int = 0
             ) -> list[TenantClass]:
        """Assign ``n`` arrivals to tenants by traffic share (seeded)."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        idx = rng.choice(len(self.tenants), size=n, p=self.shares)
        return [self.tenants[int(i)] for i in idx]

    def rates_rps(self, total_rps: float) -> dict[str, float]:
        """Split a total offered rate into per-tenant rates by share."""
        return {t.name: float(total_rps * s)
                for t, s in zip(self.tenants, self.shares)}

    def assign(self, requests: list,
               rng: np.random.Generator | int = 0) -> list:
        """Stamp tenant names and per-tenant deadlines onto requests.

        Mutates (and returns) the request list: each request gets a
        tenant drawn by share and that tenant's ``deadline_ms``. Used to
        lift a single-class trace into a multi-tenant one.
        """
        for req, tenant in zip(requests, self.draw(len(requests), rng)):
            req.tenant = tenant.name
            req.deadline_ms = tenant.deadline_ms
        return requests

    def describe(self) -> str:
        lines = []
        for t, s in zip(self.tenants, self.shares):
            lines.append(f"  {t.name:12s} deadline {t.deadline_ms:6.2f} ms  "
                         f"weight {t.weight:4.1f}  share {100 * s:5.1f}%  "
                         f"priority {t.priority}")
        return "\n".join(lines)


def default_tenants() -> TenantMix:
    """The canonical two-class mix used by the CLI and benchmarks.

    ``interactive`` — the high-priority tenant: a quarter of the traffic,
    a tight deadline, and three quarters of the admission weight.
    ``batch`` — the bulk tenant: most of the traffic, a loose deadline,
    and the remaining weight, so a batch flood cannot evict interactive
    work at the admission door.
    """
    return TenantMix([
        TenantClass("interactive", deadline_ms=3.0, weight=3.0,
                    share=0.25, priority=1),
        TenantClass("batch", deadline_ms=12.0, weight=1.0,
                    share=0.75, priority=0),
    ])


class WeightedFairAdmission:
    """Admission control that enforces weighted shares under contention.

    Below ``watermark * queue_capacity`` queued requests the policy is
    inert (uncontended capacity is free-for-all — throttling there would
    only waste it). Above the watermark, a tenant is admitted only while
    its count among the last ``window`` admissions stays within its
    weight share. Unknown tenants (including untagged requests) bypass
    the policy entirely, so single-class workloads behave exactly as
    before.

    The policy is engine-owned state: :class:`repro.serve.Engine` calls
    :meth:`reset` at construction, :meth:`allow` per arrival under
    consideration and :meth:`record` per successful admission, all in
    virtual-time order, so runs replay deterministically.
    """

    def __init__(self, tenants: TenantMix | list[TenantClass],
                 watermark: float = 0.5, window: int = 128):
        if not 0.0 <= watermark <= 1.0:
            raise ValueError("watermark must be in [0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        classes = list(tenants)
        self.weights = {t.name: t.weight for t in classes}
        self.total_weight = sum(self.weights.values())
        self.watermark = watermark
        self.window = window
        self._recent: deque[str] = deque()
        self._counts: dict[str, int] = {}

    def reset(self) -> None:
        """Forget the admission history (fresh serving run)."""
        self._recent.clear()
        self._counts = {name: 0 for name in self.weights}

    def share_of(self, tenant: str) -> float:
        """The tenant's share of the recent admission window."""
        if not self._recent:
            return 0.0
        return self._counts.get(tenant, 0) / len(self._recent)

    def fair_share_of(self, tenant: str) -> float:
        """The tenant's guaranteed admission share (weight-normalised)."""
        return self.weights[tenant] / self.total_weight

    def allow(self, request, queue_len: int, capacity: int) -> bool:
        """Whether this arrival may be admitted right now.

        ``queue_len``/``capacity`` describe the EDF queue at the moment
        of the decision. Side-effect free: the engine records the
        admission separately (rejected requests must not consume window
        slots, or a flood would launder its own share down).
        """
        tenant = getattr(request, "tenant", None)
        if tenant is None or tenant not in self.weights:
            return True
        if queue_len < self.watermark * capacity:
            return True
        n = len(self._recent)
        if n == 0:
            return True
        # admitted-share * total_weight <= weight * window-size, in
        # integers — no float drift in the admission decision
        return (self._counts.get(tenant, 0) * self.total_weight
                <= self.weights[tenant] * n)

    def record(self, request) -> None:
        """Count one successful admission against its tenant's share."""
        tenant = getattr(request, "tenant", None)
        if tenant is None or tenant not in self.weights:
            return
        self._recent.append(tenant)
        self._counts[tenant] = self._counts.get(tenant, 0) + 1
        if len(self._recent) > self.window:
            old = self._recent.popleft()
            self._counts[old] -= 1

    def describe(self) -> str:
        shares = ", ".join(
            f"{name}: {self.fair_share_of(name):.2f}"
            for name in sorted(self.weights))
        return (f"weighted-fair admission (watermark "
                f"{self.watermark:.2f}, window {self.window}; "
                f"fair shares {shares})")
