"""Fluid mode: an analytical approximation of the serving stack.

The discrete-event simulator charges per request — a 100-replica fleet
under tens of thousands of rps costs minutes of wall time per scenario.
This module answers the same questions (admitted throughput, per-tenant
miss rate, fleet sizing) in milliseconds by treating the workload as a
*fluid*: requests become a continuous quantity flowing through the same
pipeline the engine implements — admission (un-meetable-deadline check,
weighted-fair shares, bounded queue), an EDF-ordered queue, deadline-fit
micro-batching against the rung's latency table, and the device noise
model — integrated deterministically over small time steps instead of
being sampled one request at a time.

The approximation is M/G/1-flavoured rather than a closed formula: the
per-tenant queues are fluid FIFOs whose heads compete in EDF order, the
service rate is the batching-aware ``B / est(B)`` with ``B`` limited by
both queue depth and the head's remaining slack (exactly the batcher's
deadline-fit rule), and misses come from the analytic tail of the
device's noise/straggler distribution evaluated at each parcel's
remaining slack. Because every replica of a homogeneous fleet sees an
equal share of a well-balanced router's traffic, a fleet solve is a
single-replica solve at ``rate / n`` — which is what lets fluid mode
stress the autoscaler and router at fleet sizes the event loop cannot
reach. Cross-validation against the discrete simulator lives in
``benchmarks/test_workload_slo.py``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["FluidModel", "FluidPrediction", "TenantPrediction"]

_SQRT2 = math.sqrt(2.0)


def _normal_tail(x: float) -> float:
    """P(Z > x) for a standard normal."""
    return 0.5 * math.erfc(x / _SQRT2)


@dataclass
class TenantPrediction:
    """Fluid-mode outcome of one tenant class (fleet totals)."""

    name: str
    deadline_ms: float
    offered_rps: float
    admitted_rps: float
    completed_rps: float
    miss_rate: float

    @property
    def rejected_rps(self) -> float:
        return max(self.offered_rps - self.admitted_rps, 0.0)


@dataclass
class FluidPrediction:
    """One fluid solve: a rung, a fleet size, per-tenant outcomes."""

    rung: str
    horizon_ms: float
    replicas: int
    tenants: dict[str, TenantPrediction]
    mean_batch: float

    @property
    def offered_rps(self) -> float:
        return sum(t.offered_rps for t in self.tenants.values())

    @property
    def admitted_rps(self) -> float:
        return sum(t.admitted_rps for t in self.tenants.values())

    @property
    def completed_rps(self) -> float:
        return sum(t.completed_rps for t in self.tenants.values())

    @property
    def miss_rate(self) -> float:
        """Completed-weighted miss rate across tenants."""
        done = self.completed_rps
        if done <= 0:
            return 0.0
        return sum(t.miss_rate * t.completed_rps
                   for t in self.tenants.values()) / done

    def report(self) -> str:
        lines = [f"fluid prediction — rung {self.rung}, "
                 f"{self.replicas} replica(s), "
                 f"mean batch {self.mean_batch:.2f}",
                 f"  offered {self.offered_rps:,.0f} rps, admitted "
                 f"{self.admitted_rps:,.0f} rps, miss rate "
                 f"{100 * self.miss_rate:.2f}%"]
        for t in self.tenants.values():
            lines.append(
                f"  {t.name:12s} offered {t.offered_rps:9,.0f}  admitted "
                f"{t.admitted_rps:9,.0f}  miss {100 * t.miss_rate:6.2f}%  "
                f"(deadline {t.deadline_ms:.2f} ms)")
        return "\n".join(lines)


class FluidModel:
    """Analytical serving model over a ladder's latency tables.

    Build with :meth:`from_ladder` so the latency tables, noise model and
    admission knobs come from exactly the objects the discrete server
    uses; then :meth:`solve` one scenario per rung, :meth:`solve_ladder`
    all rungs, :meth:`sweep` fleet sizes, or :meth:`plan_fleet` the
    smallest fleet meeting a miss-rate target.
    """

    def __init__(self, latency_tables: dict[str, list[float]],
                 queue_capacity: int, max_batch: int,
                 admission_est_ms: float, deadline_ms: float,
                 noise_std: float = 0.0, straggler_prob: float = 0.0,
                 straggler_scale: float = 0.0, tenants=None, policy=None,
                 admission_control: bool = True):
        """``latency_tables`` maps rung name -> ``[est(1), .., est(B)]``."""
        if not latency_tables:
            raise ValueError("need at least one rung latency table")
        for name, table in latency_tables.items():
            if len(table) != max_batch:
                raise ValueError(f"rung {name!r}: need one estimate per "
                                 f"batch size 1..{max_batch}")
        self.latency_tables = {n: [float(e) for e in t]
                               for n, t in latency_tables.items()}
        self.queue_capacity = queue_capacity
        self.max_batch = max_batch
        self.admission_est_ms = admission_est_ms
        self.deadline_ms = deadline_ms
        self.noise_std = noise_std
        self.straggler_prob = straggler_prob
        self.straggler_scale = straggler_scale
        self.tenants = tenants
        self.policy = policy
        self.admission_control = admission_control
        # E[noise * straggler]: the sampler's mean service inflation
        self.mean_factor = 1.0 + straggler_prob * straggler_scale / 2.0

    @classmethod
    def from_ladder(cls, ladder, config, tenants=None) -> "FluidModel":
        """Derive the model from a :class:`repro.serve.TRNLadder` and
        :class:`repro.serve.ServerConfig` (same objects the server runs)."""
        tables = {r.name: [r.estimate_ms(b)
                           for b in range(1, config.max_batch + 1)]
                  for r in ladder.rungs}
        adm_rung = ladder.fastest if config.adaptive else ladder.current
        spec = ladder.rungs[0].spec
        return cls(tables, config.queue_capacity, config.max_batch,
                   adm_rung.estimate_ms(1), config.deadline_ms,
                   noise_std=spec.noise_std,
                   straggler_prob=spec.straggler_prob,
                   straggler_scale=spec.straggler_scale,
                   tenants=tenants,
                   policy=getattr(config, "admission_policy", None),
                   admission_control=config.admission_control)

    # -- the device noise tail ----------------------------------------------
    def miss_probability(self, slack_ms: float, est_ms: float) -> float:
        """P(service > slack) under the device noise/straggler model.

        Service is ``est * clip(N(1, sigma), 0.5, inf) * S`` with ``S``
        the straggler multiplier ``1 + scale * U`` hitting with
        probability ``p`` (see :func:`repro.device.runtime.sample_runs`);
        the straggler branch is integrated numerically over ``U``.
        """
        if slack_ms <= 0:
            return 1.0
        z = slack_ms / est_ms
        if z <= 0.5:
            return 1.0              # noise is clipped at 0.5x below
        if self.noise_std <= 0:
            base = 1.0 if z < 1.0 else 0.0
        else:
            base = _normal_tail((z - 1.0) / self.noise_std)
        p = self.straggler_prob
        if p <= 0:
            return base
        # E_U[ P(N > z / (1 + scale*U)) ], 8-point midpoint rule
        acc = 0.0
        for k in range(8):
            u = (k + 0.5) / 8.0
            zz = z / (1.0 + self.straggler_scale * u)
            if self.noise_std <= 0:
                acc += 1.0 if zz < 1.0 else 0.0
            else:
                acc += _normal_tail((zz - 1.0) / self.noise_std)
        return (1.0 - p) * base + p * (acc / 8.0)

    # -- tenant bookkeeping --------------------------------------------------
    def _tenant_specs(self) -> list[tuple[str, float, float, float]]:
        """(name, deadline_ms, traffic share, admission weight) rows."""
        if self.tenants is None:
            return [("default", self.deadline_ms, 1.0, 1.0)]
        mix = self.tenants
        return [(t.name, t.deadline_ms, float(s), t.weight)
                for t, s in zip(mix.tenants, mix.shares)]

    def _waterfill(self, arr: dict[str, float], total: float,
                   weights: dict[str, float]) -> dict[str, float]:
        """Allocate ``total`` among tenants by weight, capped by demand."""
        alloc = {n: 0.0 for n in arr}
        active = [n for n in arr if arr[n] > 0]
        remaining = total
        while active and remaining > 1e-15:
            wsum = sum(weights[n] for n in active)
            capped = False
            for n in list(active):
                give = remaining * weights[n] / wsum
                room = arr[n] - alloc[n]
                if give >= room:
                    alloc[n] = arr[n]
                    active.remove(n)
                    capped = True
                else:
                    alloc[n] += give
            remaining = total - sum(alloc.values())
            if not capped:
                break
        return alloc

    # -- the solver ----------------------------------------------------------
    def solve(self, process, horizon_ms: float, rung: str | None = None,
              replicas: int = 1, dt_ms: float | None = None
              ) -> FluidPrediction:
        """Integrate one scenario on one rung; per-tenant fleet outcomes.

        ``process`` is a :class:`repro.workload.ArrivalProcess` describing
        the *fleet-wide* offered load; each of the ``replicas`` identical
        replicas is assumed to receive ``1/replicas`` of it (what a
        balanced router delivers on a homogeneous fleet), so fleet size
        changes nothing but the per-replica rate — a 100-replica solve
        costs the same milliseconds as a 1-replica solve. The returned
        rates are fleet totals.
        """
        if rung is None:
            rung = next(iter(self.latency_tables))
        if rung not in self.latency_tables:
            raise KeyError(f"unknown rung {rung!r}; have "
                           f"{sorted(self.latency_tables)}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        est = self.latency_tables[rung]     # est[b-1] = est(batch b)
        if dt_ms is None:
            # resolve both the arrival shape and the service granularity
            dt_ms = max(min(horizon_ms / 1000.0, est[0]), horizon_ms / 8000.0)
        specs = self._tenant_specs()
        deadlines = {n: d for n, d, _, _ in specs}
        shares = {n: s for n, _, s, _ in specs}
        weights = {n: w for n, _, _, w in specs}
        use_policy = (self.policy is not None and all(
            n in getattr(self.policy, "weights", {}) for n in deadlines))
        watermark = self.policy.watermark if use_policy else 1.0

        queues: dict[str, deque] = {n: deque() for n in deadlines}
        qlen: dict[str, float] = {n: 0.0 for n in deadlines}
        offered = {n: 0.0 for n in deadlines}
        admitted = {n: 0.0 for n in deadlines}
        completed = {n: 0.0 for n in deadlines}
        missed = {n: 0.0 for n in deadlines}
        batch_weight = batch_sum = 0.0

        # deliberately no process.prepare() here: the fluid solve is
        # randomness-free. A stochastic intensity (MarkovModulated) must
        # be realised by the caller — process.prepare(horizon, rng) —
        # so the discrete and fluid runs share one burst schedule.
        t = 0.0
        # integrate past the horizon until the queues drain, mirroring the
        # discrete engine, which serves every admitted request to the end
        while t < horizon_ms or sum(qlen.values()) > 1e-9:
            # -- serve: EDF over the fluid FIFO heads -------------------
            budget = dt_ms
            while budget > 1e-12:
                head_name, head_deadline = None, float("inf")
                for n, q in queues.items():
                    if q and q[0][0] + deadlines[n] < head_deadline:
                        head_name = n
                        head_deadline = q[0][0] + deadlines[n]
                if head_name is None:
                    break
                now = t + (dt_ms - budget)
                admit_ms, amount = queues[head_name][0]
                slack = head_deadline - now
                qtot = sum(qlen.values())
                # the batcher's deadline-fit rule: grow while the batched
                # estimate still fits the head's remaining slack
                b = 1
                while (b < self.max_batch and b + 1 <= qtot
                       and est[b] <= slack):
                    b += 1
                per_req = est[b - 1] * self.mean_factor / b
                take = min(amount, budget / per_req)
                if take <= 1e-12:
                    break
                wait = now - admit_ms
                pm = self.miss_probability(deadlines[head_name] - wait,
                                           est[b - 1])
                completed[head_name] += take
                missed[head_name] += take * pm
                batch_weight += take
                batch_sum += take * b
                budget -= take * per_req
                qlen[head_name] -= take
                if take >= amount - 1e-12:
                    queues[head_name].popleft()
                else:
                    queues[head_name][0] = (admit_ms, amount - take)
            # -- admit: un-meetable check, fair shares, bounded queue ---
            if t < horizon_ms:
                rate = float(process.rate_rps(t + 0.5 * dt_ms)) / replicas
                arr = {n: rate * shares[n] * dt_ms / 1e3 for n in deadlines}
                for n in arr:
                    offered[n] += arr[n]
                    if (self.admission_control
                            and deadlines[n] <= self.admission_est_ms):
                        arr[n] = 0.0   # rejected: unmeetable-deadline
                qtot = sum(qlen.values())
                free = max(self.queue_capacity - qtot, 0.0)
                total = min(sum(arr.values()), free)
                if total > 0:
                    if use_policy and qtot >= watermark * self.queue_capacity:
                        alloc = self._waterfill(arr, total, weights)
                    else:
                        scale = total / sum(arr.values())
                        alloc = {n: a * scale for n, a in arr.items()}
                    for n, a in alloc.items():
                        if a > 0:
                            queues[n].append((t + 0.5 * dt_ms, a))
                            qlen[n] += a
                            admitted[n] += a
            t += dt_ms

        to_rps = 1e3 * replicas / horizon_ms
        tenants = {
            n: TenantPrediction(
                name=n, deadline_ms=deadlines[n],
                offered_rps=offered[n] * to_rps,
                admitted_rps=admitted[n] * to_rps,
                completed_rps=completed[n] * to_rps,
                miss_rate=(missed[n] / completed[n]
                           if completed[n] > 0 else 0.0))
            for n in deadlines}
        mean_batch = batch_sum / batch_weight if batch_weight else 0.0
        return FluidPrediction(rung, horizon_ms, replicas, tenants,
                               mean_batch)

    def solve_ladder(self, process, horizon_ms: float, replicas: int = 1
                     ) -> dict[str, FluidPrediction]:
        """One prediction per rung (the "per tenant per rung" surface)."""
        return {name: self.solve(process, horizon_ms, rung=name,
                                 replicas=replicas)
                for name in self.latency_tables}

    def sweep(self, process, horizon_ms: float, replica_counts,
              rung: str | None = None) -> dict[int, FluidPrediction]:
        """Solve the same scenario across fleet sizes (autoscaler stress)."""
        return {int(n): self.solve(process, horizon_ms, rung=rung,
                                   replicas=int(n))
                for n in replica_counts}

    def plan_fleet(self, process, horizon_ms: float,
                   target_miss_rate: float, rung: str | None = None,
                   max_replicas: int = 256) -> int | None:
        """Smallest fleet whose *every* tenant meets the miss target.

        Doubles until feasible, then bisects — O(log n) fluid solves, so
        planning a fleet of hundreds stays well under a second. Returns
        ``None`` when even ``max_replicas`` cannot meet the target.
        """
        def ok(n: int) -> bool:
            pred = self.solve(process, horizon_ms, rung=rung, replicas=n)
            return all(tp.miss_rate <= target_miss_rate
                       for tp in pred.tenants.values())

        hi = 1
        while hi <= max_replicas and not ok(hi):
            hi *= 2
        if hi > max_replicas:
            return None if not ok(max_replicas) else max_replicas
        lo = hi // 2   # lo infeasible (or 0), hi feasible
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if ok(mid):
                hi = mid
            else:
                lo = mid
        return hi
