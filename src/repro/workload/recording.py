"""Record/replay: serve runs as versioned, portable JSONL traces.

A recorded trace is the full causal input of a serving run — every
request's arrival time, deadline, tenant and payload — plus, optionally,
the per-request outcomes the run produced. Replaying the request stream
through a server with the same configuration reproduces the original
snapshot byte-for-byte (the simulator is deterministic given its inputs
and seed), which turns any observed incident into a regression test.

The format is line-oriented JSON so traces stream, diff and grep well:

- line 1 — a header ``{"kind": "repro.workload.trace", "version": 1,
  "meta": {...}, "requests": N, "outcomes": M}``;
- then one ``{"t": "request", ...}`` line per request, in arrival order;
- then one ``{"t": "outcome", ...}`` line per recorded response.

Every object is dumped with ``sort_keys=True`` and NaN timestamps mapped
to ``null``, so the bytes on disk are independent of dict insertion
order and ``PYTHONHASHSEED`` — two runs that behave identically record
identical files.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.serve.request import Request, Response

__all__ = ["TRACE_KIND", "TRACE_VERSION", "RecordedTrace",
           "save_trace", "load_trace", "record_run", "verify_replay"]

TRACE_KIND = "repro.workload.trace"
TRACE_VERSION = 1


def _num(value) -> float | None:
    """JSON-safe number: NaN/inf become null (strict-JSON portable)."""
    if value is None:
        return None
    f = float(value)
    return f if math.isfinite(f) else None


def _request_record(req: Request) -> dict:
    rec = {"t": "request", "rid": req.rid,
           "arrival_ms": float(req.arrival_ms),
           "deadline_ms": float(req.deadline_ms),
           "tenant": req.tenant}
    if req.x is not None:
        rec["x"] = np.asarray(req.x).tolist()
    return rec


def _outcome_record(resp: Response) -> dict:
    return {"t": "outcome", "rid": resp.rid, "status": resp.status,
            "arrival_ms": float(resp.arrival_ms),
            "abs_deadline_ms": float(resp.abs_deadline_ms),
            "rung": resp.rung, "start_ms": _num(resp.start_ms),
            "finish_ms": _num(resp.finish_ms),
            "batch_size": resp.batch_size,
            "reject_reason": resp.reject_reason, "tenant": resp.tenant}


@dataclass
class RecordedTrace:
    """One loaded trace: the request stream plus recorded outcomes."""

    requests: list[Request]
    outcomes: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    version: int = TRACE_VERSION

    def __len__(self) -> int:
        return len(self.requests)

    def tenants(self) -> list[str]:
        """Distinct tenant names present in the stream (sorted)."""
        return sorted({r.tenant for r in self.requests
                      if r.tenant is not None})

    def describe(self) -> str:
        span = (max(r.arrival_ms for r in self.requests)
                if self.requests else 0.0)
        tenants = ", ".join(self.tenants()) or "untagged"
        return (f"{len(self.requests)} requests over {span:.1f} ms "
                f"({tenants}); {len(self.outcomes)} recorded outcomes")


def save_trace(path, requests: list[Request],
               responses: list[Response] | None = None,
               meta: dict | None = None) -> None:
    """Write one versioned JSONL trace (see the module docstring)."""
    responses = responses or []
    header = {"kind": TRACE_KIND, "version": TRACE_VERSION,
              "meta": meta or {}, "requests": len(requests),
              "outcomes": len(responses)}
    with open(path, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for req in requests:
            fh.write(json.dumps(_request_record(req), sort_keys=True) + "\n")
        for resp in responses:
            fh.write(json.dumps(_outcome_record(resp), sort_keys=True) + "\n")


def load_trace(path) -> RecordedTrace:
    """Read a trace written by :func:`save_trace`, validating the header."""
    with open(path) as fh:
        header_line = fh.readline()
        if not header_line.strip():
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != TRACE_KIND:
            raise ValueError(f"{path}: not a workload trace "
                             f"(kind={header.get('kind')!r})")
        version = header.get("version")
        if version != TRACE_VERSION:
            raise ValueError(f"{path}: unsupported trace version {version!r} "
                             f"(this reader speaks {TRACE_VERSION})")
        requests, outcomes = [], []
        for line in fh:
            if not line.strip():
                continue
            rec = json.loads(line)
            kind = rec.get("t")
            if kind == "request":
                x = rec.get("x")
                requests.append(Request(
                    rid=int(rec["rid"]),
                    arrival_ms=float(rec["arrival_ms"]),
                    deadline_ms=float(rec["deadline_ms"]),
                    x=None if x is None else np.asarray(x),
                    tenant=rec.get("tenant")))
            elif kind == "outcome":
                outcomes.append(rec)
            else:
                raise ValueError(f"{path}: unknown record type {kind!r}")
    if len(requests) != header["requests"] \
            or len(outcomes) != header["outcomes"]:
        raise ValueError(
            f"{path}: truncated trace — header promises "
            f"{header['requests']} requests / {header['outcomes']} "
            f"outcomes, found {len(requests)} / {len(outcomes)}")
    return RecordedTrace(requests, outcomes, meta=header.get("meta", {}),
                         version=version)


def record_run(path, requests: list[Request],
               responses: list[Response], meta: dict | None = None) -> None:
    """Persist a finished run: its request stream *and* its outcomes.

    Sugar over :func:`save_trace` that stamps the outcome count into the
    metadata a replay can assert against (total completed/rejected), so a
    drifted replay fails loudly instead of silently diverging.
    """
    meta = dict(meta or {})
    meta.setdefault("statuses", {})
    for resp in responses:
        meta["statuses"][resp.status] = \
            meta["statuses"].get(resp.status, 0) + 1
    save_trace(path, requests, responses, meta=meta)


def verify_replay(recorded: RecordedTrace,
                  responses: list[Response]) -> list[str]:
    """Compare a replay's responses against the recorded outcomes.

    Returns a list of human-readable divergences (empty means the replay
    reproduced every recorded outcome exactly — same status, rung,
    timing and tenant per rid). Comparison happens on the serialized
    records, i.e. on exactly what a re-recording would write to disk.
    """
    want = {rec["rid"]: rec for rec in recorded.outcomes}
    got = {resp.rid: _outcome_record(resp) for resp in responses}
    problems = []
    for rid in sorted(set(want) | set(got)):
        if rid not in got:
            problems.append(f"rid {rid}: recorded but missing from replay")
        elif rid not in want:
            problems.append(f"rid {rid}: replayed but not recorded")
        elif json.dumps(want[rid], sort_keys=True) \
                != json.dumps(got[rid], sort_keys=True):
            keys = [k for k in want[rid]
                    if json.dumps(want[rid][k]) != json.dumps(got[rid][k])]
            problems.append(f"rid {rid}: differs in {', '.join(keys)}")
    return problems
