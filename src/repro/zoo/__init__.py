"""The model zoo: the seven ImageNet architectures the paper studies.

Every network is width-scaled (see :data:`repro.zoo.blocks.WIDTH_DIVISOR`)
so it runs at NumPy speed, while preserving the original block structure,
block counts and weighted-layer counts that layer removal operates on.
"""

from .blocks import scale_channels
from .densenet import build_densenet121
from .inception_v3 import build_inception_v3
from .mobilenet_v1 import build_mobilenet_v1
from .mobilenet_v2 import build_mobilenet_v2
from .registry import NETWORKS, NetworkSpec, build_network, network_spec
from .resnet import build_resnet50

__all__ = [
    "NETWORKS",
    "NetworkSpec",
    "build_network",
    "network_spec",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_resnet50",
    "build_densenet121",
    "build_inception_v3",
    "scale_channels",
]
