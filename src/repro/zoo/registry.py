"""Registry of the seven pretrained architectures studied by the paper.

The paper (following Zandigohar et al., 2020) selects MobileNetV1 (0.25 and
0.5), MobileNetV2 (1.0 and 1.4), InceptionV3, ResNet-50 and DenseNet-121 as
the Pareto-efficient sources of transfer among 23 off-the-shelf ImageNet
networks. ``build_network`` constructs any of them by canonical name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.nn import Network

from .densenet import build_densenet121
from .inception_v3 import build_inception_v3
from .mobilenet_v1 import build_mobilenet_v1
from .mobilenet_v2 import build_mobilenet_v2
from .resnet import build_resnet50

__all__ = ["NETWORKS", "NetworkSpec", "build_network", "network_spec"]


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of a zoo architecture."""

    name: str
    family: str
    builder: Callable[..., Network]
    alpha: float | None = None

    def build(self, input_shape=(32, 32, 3), num_classes: int = 20) -> Network:
        """Construct the (unbuilt) network."""
        if self.alpha is not None:
            return self.builder(self.alpha, input_shape=input_shape,
                                num_classes=num_classes)
        return self.builder(input_shape=input_shape, num_classes=num_classes)


_SPECS = [
    NetworkSpec("mobilenet_v1_0.25", "mobilenet_v1", build_mobilenet_v1, 0.25),
    NetworkSpec("mobilenet_v1_0.5", "mobilenet_v1", build_mobilenet_v1, 0.5),
    NetworkSpec("mobilenet_v2_1.0", "mobilenet_v2", build_mobilenet_v2, 1.0),
    NetworkSpec("mobilenet_v2_1.4", "mobilenet_v2", build_mobilenet_v2, 1.4),
    NetworkSpec("inception_v3", "inception", build_inception_v3),
    NetworkSpec("resnet50", "resnet", build_resnet50),
    NetworkSpec("densenet121", "densenet", build_densenet121),
]

_BY_NAME = {spec.name: spec for spec in _SPECS}

#: Canonical names of the seven networks, in the paper's order.
NETWORKS: list[str] = [spec.name for spec in _SPECS]


def network_spec(name: str) -> NetworkSpec:
    """Look up the :class:`NetworkSpec` for a canonical name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {NETWORKS}") from None


def build_network(name: str, input_shape=(32, 32, 3),
                  num_classes: int = 20) -> Network:
    """Construct one of the seven zoo networks by name (unbuilt)."""
    return network_spec(name).build(input_shape, num_classes)
