"""ResNet-50 (He et al., 2016), width-scaled for NumPy execution.

A 7×7 strided stem with max pooling, followed by 16 bottleneck residual
blocks in stages of [3, 4, 6, 3] — 50 weighted layers including the
classifier. Blockwise removal has 16 cutpoints (one per residual block).
"""

from __future__ import annotations

from repro.nn import Dense, GlobalAvgPool, MaxPool2D, Network, Softmax

from .blocks import bottleneck_residual, conv_bn_relu, scale_channels

__all__ = ["build_resnet50"]

#: (original bottleneck width, repeats, first stride) per stage
_STAGES = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)]


def build_resnet50(input_shape: tuple[int, int, int] = (32, 32, 3),
                   num_classes: int = 20) -> Network:
    """Construct ResNet-50 (unbuilt)."""
    net = Network("resnet50", input_shape)
    x = conv_bn_relu(net, "stem", "input", scale_channels(64), 7, stride=2,
                     block_id="stem", role="stem")
    net.add("stem_pool", MaxPool2D(3, 2, "same"), inputs=x,
            block_id="stem", role="stem")
    x = "stem_pool"
    idx = 0
    for stage, (width, repeats, stride) in enumerate(_STAGES, start=1):
        w = scale_channels(width)
        for rep in range(repeats):
            idx += 1
            x = bottleneck_residual(
                net, f"block{idx}", x, w,
                stride=stride if rep == 0 else 1,
                block_id=f"block{idx}",
                project=(rep == 0))
    net.add("gap", GlobalAvgPool(), inputs=x, role="head")
    net.add("logits", Dense(num_classes), role="head")
    net.add("probs", Softmax(), role="head")
    return net
