"""MobileNetV2 (Sandler et al., 2018), width-scaled for NumPy execution.

A stem convolution, 17 inverted-residual blocks arranged in the original
(t, c, n, s) schedule, and a final 1×1 expansion convolution. The paper uses
the 1.0 and 1.4 width multipliers; blockwise removal has 17 cutpoints.

Like MobileNetV1, the stem uses stride 1 at this repository's 32² input
resolution (CIFAR-style adaptation; see :mod:`repro.zoo.mobilenet_v1`).
"""

from __future__ import annotations

from repro.nn import Dense, GlobalAvgPool, Network, Softmax

from .blocks import conv_bn_relu, inverted_residual, scale_channels

__all__ = ["build_mobilenet_v2"]

#: (expansion t, original channels c, repeats n, first stride s)
_SCHEDULE = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def build_mobilenet_v2(alpha: float = 1.0,
                       input_shape: tuple[int, int, int] = (32, 32, 3),
                       num_classes: int = 20) -> Network:
    """Construct MobileNetV2 with width multiplier ``alpha`` (unbuilt)."""
    net = Network(f"mobilenet_v2_{alpha}", input_shape)
    in_ch = scale_channels(32, alpha)
    x = conv_bn_relu(net, "stem", "input", in_ch, 3, stride=1,
                     block_id="stem", role="stem", relu6=True)
    idx = 0
    for t, c, n, s in _SCHEDULE:
        out_ch = scale_channels(c, alpha)
        for rep in range(n):
            idx += 1
            stride = s if rep == 0 else 1
            x = inverted_residual(net, f"block{idx}", x, in_ch, out_ch,
                                  stride, t, block_id=f"block{idx}")
            in_ch = out_ch
    # final expansion conv belongs to the last block for removal purposes:
    # the original's 1280-channel conv exists purely to feed the classifier,
    # so the transfer head re-creates its role and removal drops it first.
    x = conv_bn_relu(net, "head_conv", x, scale_channels(1280, max(alpha, 1.0)),
                     1, 1, block_id=f"block{idx}", relu6=True)
    net.add("gap", GlobalAvgPool(), inputs=x, role="head")
    net.add("logits", Dense(num_classes), role="head")
    net.add("probs", Softmax(), role="head")
    return net
