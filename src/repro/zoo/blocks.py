"""Reusable architectural blocks for the model zoo.

Each helper appends layers to an existing :class:`~repro.nn.graph.Network`
and returns the name of the block's output node. All helpers tag the nodes
they create with a ``block_id`` so that :mod:`repro.trim` can enumerate
block boundaries for blockwise layer removal, exactly the granularity the
paper uses (residual blocks, inverted-residual blocks, dense layers,
inception modules).
"""

from __future__ import annotations

from repro.nn import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    DepthwiseConv2D,
    MaxPool2D,
    Network,
    ReLU,
    ReLU6,
)

__all__ = [
    "scale_channels",
    "conv_bn_relu",
    "separable_block",
    "inverted_residual",
    "bottleneck_residual",
    "dense_layer",
    "dense_transition",
    "inception_a",
    "inception_c",
    "inception_e",
    "reduction_b",
    "reduction_d",
]

#: Global width divisor: every architecture's original channel counts are
#: divided by this so the networks run at NumPy speed while preserving the
#: relative widths between architectures.
WIDTH_DIVISOR = 4

#: Minimum channel count after scaling, so very thin nets stay functional.
MIN_CHANNELS = 3


def scale_channels(channels: int, alpha: float = 1.0,
                   divisor: int = WIDTH_DIVISOR) -> int:
    """Scale an original channel count by ``alpha`` (the paper's width
    multiplier) and the global width divisor, clamped to ``MIN_CHANNELS``."""
    return max(MIN_CHANNELS, int(round(channels * alpha / divisor)))


def conv_bn_relu(net: Network, prefix: str, inputs, filters: int, kernel,
                 stride: int = 1, block_id: str | None = None,
                 role: str = "feature", relu6: bool = False,
                 padding: str = "same") -> str:
    """Conv → BatchNorm → ReLU(6), the universal CNN building unit."""
    act = ReLU6() if relu6 else ReLU()
    net.add(f"{prefix}_conv", Conv2D(filters, kernel, stride, padding,
                                     use_bias=False),
            inputs=inputs, block_id=block_id, role=role)
    net.add(f"{prefix}_bn", BatchNorm(), block_id=block_id, role=role)
    net.add(f"{prefix}_relu", act, block_id=block_id, role=role)
    return f"{prefix}_relu"


def separable_block(net: Network, prefix: str, inputs, filters: int,
                    stride: int, block_id: str) -> str:
    """MobileNetV1 depthwise-separable block: DW conv → BN → ReLU6 →
    pointwise conv → BN → ReLU6 (2 weighted layers)."""
    net.add(f"{prefix}_dw", DepthwiseConv2D(3, stride, "same", use_bias=False),
            inputs=inputs, block_id=block_id)
    net.add(f"{prefix}_dwbn", BatchNorm(), block_id=block_id)
    net.add(f"{prefix}_dwrelu", ReLU6(), block_id=block_id)
    return conv_bn_relu(net, f"{prefix}_pw", f"{prefix}_dwrelu", filters, 1,
                        1, block_id, relu6=True)


def inverted_residual(net: Network, prefix: str, inputs, in_channels: int,
                      out_channels: int, stride: int, expansion: int,
                      block_id: str) -> str:
    """MobileNetV2 inverted residual: 1×1 expand → DW 3×3 → 1×1 project,
    with a skip connection when the shape is preserved."""
    x = inputs
    if expansion != 1:
        x = conv_bn_relu(net, f"{prefix}_expand", x,
                         in_channels * expansion, 1, 1, block_id, relu6=True)
    net.add(f"{prefix}_dw", DepthwiseConv2D(3, stride, "same", use_bias=False),
            inputs=x, block_id=block_id)
    net.add(f"{prefix}_dwbn", BatchNorm(), block_id=block_id)
    net.add(f"{prefix}_dwrelu", ReLU6(), block_id=block_id)
    net.add(f"{prefix}_project", Conv2D(out_channels, 1, 1, "same",
                                        use_bias=False),
            inputs=f"{prefix}_dwrelu", block_id=block_id)
    net.add(f"{prefix}_pbn", BatchNorm(), block_id=block_id)
    if stride == 1 and in_channels == out_channels:
        net.add(f"{prefix}_add", Add(), inputs=[inputs, f"{prefix}_pbn"],
                block_id=block_id)
        return f"{prefix}_add"
    return f"{prefix}_pbn"


def bottleneck_residual(net: Network, prefix: str, inputs, width: int,
                        stride: int, block_id: str,
                        project: bool, expansion: int = 4) -> str:
    """ResNet-50 bottleneck: 1×1 reduce → 3×3 → 1×1 expand (+identity).

    ``project`` selects the 1×1 projection shortcut used at stage
    boundaries (stride > 1 or channel change).
    """
    out_channels = width * expansion
    a = conv_bn_relu(net, f"{prefix}_a", inputs, width, 1, stride, block_id)
    b = conv_bn_relu(net, f"{prefix}_b", a, width, 3, 1, block_id)
    net.add(f"{prefix}_c_conv", Conv2D(out_channels, 1, 1, "same",
                                       use_bias=False),
            inputs=b, block_id=block_id)
    net.add(f"{prefix}_c_bn", BatchNorm(), block_id=block_id)
    shortcut = inputs
    if project:
        net.add(f"{prefix}_sc_conv", Conv2D(out_channels, 1, stride, "same",
                                            use_bias=False),
                inputs=inputs, block_id=block_id)
        net.add(f"{prefix}_sc_bn", BatchNorm(), block_id=block_id)
        shortcut = f"{prefix}_sc_bn"
    net.add(f"{prefix}_add", Add(), inputs=[shortcut, f"{prefix}_c_bn"],
            block_id=block_id)
    net.add(f"{prefix}_out", ReLU(), block_id=block_id)
    return f"{prefix}_out"


def dense_layer(net: Network, prefix: str, inputs, growth: int,
                block_id: str) -> str:
    """DenseNet composite layer: BN→ReLU→1×1 (4g) → BN→ReLU→3×3 (g),
    concatenated with its input (2 weighted layers)."""
    net.add(f"{prefix}_bn1", BatchNorm(), inputs=inputs, block_id=block_id)
    net.add(f"{prefix}_relu1", ReLU(), block_id=block_id)
    net.add(f"{prefix}_conv1", Conv2D(4 * growth, 1, 1, "same",
                                      use_bias=False), block_id=block_id)
    net.add(f"{prefix}_bn2", BatchNorm(), block_id=block_id)
    net.add(f"{prefix}_relu2", ReLU(), block_id=block_id)
    net.add(f"{prefix}_conv2", Conv2D(growth, 3, 1, "same", use_bias=False),
            block_id=block_id)
    net.add(f"{prefix}_concat", Concat(), inputs=[inputs, f"{prefix}_conv2"],
            block_id=block_id)
    return f"{prefix}_concat"


def dense_transition(net: Network, prefix: str, inputs, out_channels: int,
                     block_id: str) -> str:
    """DenseNet transition: BN→ReLU→1×1 compress → 2×2 average pool."""
    net.add(f"{prefix}_bn", BatchNorm(), inputs=inputs, block_id=block_id)
    net.add(f"{prefix}_relu", ReLU(), block_id=block_id)
    net.add(f"{prefix}_conv", Conv2D(out_channels, 1, 1, "same",
                                     use_bias=False), block_id=block_id)
    net.add(f"{prefix}_pool", AvgPool2D(2, 2), block_id=block_id)
    return f"{prefix}_pool"


def _pool_branch(net: Network, prefix: str, inputs, filters: int,
                 block_id: str, max_pool: bool = False) -> str:
    pool = MaxPool2D(3, 1, "same") if max_pool else AvgPool2D(3, 1, "same")
    net.add(f"{prefix}_pool", pool, inputs=inputs, block_id=block_id)
    return conv_bn_relu(net, f"{prefix}_proj", f"{prefix}_pool", filters, 1,
                        1, block_id)


def inception_a(net: Network, prefix: str, inputs, block_id: str,
                pool_filters: int = 4) -> str:
    """Inception module A (35×35 grid in the original): four parallel
    branches (1×1 / 5×5 / double 3×3 / pool) concatenated (7 convs)."""
    b1 = conv_bn_relu(net, f"{prefix}_b1", inputs, scale_channels(64), 1, 1,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2a", inputs, scale_channels(48), 1, 1,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2b", b2, scale_channels(64), 5, 1,
                      block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3a", inputs, scale_channels(64), 1, 1,
                      block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3b", b3, scale_channels(96), 3, 1,
                      block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3c", b3, scale_channels(96), 3, 1,
                      block_id)
    b4 = _pool_branch(net, f"{prefix}_b4", inputs, pool_filters, block_id)
    net.add(f"{prefix}_concat", Concat(), inputs=[b1, b2, b3, b4],
            block_id=block_id)
    return f"{prefix}_concat"


def inception_c(net: Network, prefix: str, inputs, block_id: str,
                mid: int) -> str:
    """Inception module C (17×17): factorized 7×7 branches (10 convs)."""
    c192 = scale_channels(192)
    b1 = conv_bn_relu(net, f"{prefix}_b1", inputs, c192, 1, 1, block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2a", inputs, mid, 1, 1, block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2b", b2, mid, (1, 7), 1, block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2c", b2, c192, (7, 1), 1, block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3a", inputs, mid, 1, 1, block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3b", b3, mid, (7, 1), 1, block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3c", b3, mid, (1, 7), 1, block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3d", b3, mid, (7, 1), 1, block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3e", b3, c192, (1, 7), 1, block_id)
    b4 = _pool_branch(net, f"{prefix}_b4", inputs, c192, block_id)
    net.add(f"{prefix}_concat", Concat(), inputs=[b1, b2, b3, b4],
            block_id=block_id)
    return f"{prefix}_concat"


def inception_e(net: Network, prefix: str, inputs, block_id: str) -> str:
    """Inception module E (8×8): expanded-filter-bank branches with
    1×3 / 3×1 splits (9 convs)."""
    b1 = conv_bn_relu(net, f"{prefix}_b1", inputs, scale_channels(320), 1, 1,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2a", inputs, scale_channels(384), 1, 1,
                      block_id)
    b2x = conv_bn_relu(net, f"{prefix}_b2b", b2, scale_channels(384), (1, 3),
                       1, block_id)
    b2y = conv_bn_relu(net, f"{prefix}_b2c", b2, scale_channels(384), (3, 1),
                       1, block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3a", inputs, scale_channels(448), 1, 1,
                      block_id)
    b3 = conv_bn_relu(net, f"{prefix}_b3b", b3, scale_channels(384), 3, 1,
                      block_id)
    b3x = conv_bn_relu(net, f"{prefix}_b3c", b3, scale_channels(384), (1, 3),
                       1, block_id)
    b3y = conv_bn_relu(net, f"{prefix}_b3d", b3, scale_channels(384), (3, 1),
                       1, block_id)
    b4 = _pool_branch(net, f"{prefix}_b4", inputs, scale_channels(192),
                      block_id)
    net.add(f"{prefix}_concat", Concat(),
            inputs=[b1, b2x, b2y, b3x, b3y, b4], block_id=block_id)
    return f"{prefix}_concat"


def reduction_b(net: Network, prefix: str, inputs, block_id: str) -> str:
    """Inception grid reduction 35→17 (4 convs + pool)."""
    b1 = conv_bn_relu(net, f"{prefix}_b1", inputs, scale_channels(384), 3, 2,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2a", inputs, scale_channels(64), 1, 1,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2b", b2, scale_channels(96), 3, 1,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2c", b2, scale_channels(96), 3, 2,
                      block_id)
    net.add(f"{prefix}_pool", MaxPool2D(3, 2, "same"), inputs=inputs,
            block_id=block_id)
    net.add(f"{prefix}_concat", Concat(),
            inputs=[b1, b2, f"{prefix}_pool"], block_id=block_id)
    return f"{prefix}_concat"


def reduction_d(net: Network, prefix: str, inputs, block_id: str) -> str:
    """Inception grid reduction 17→8 (6 convs + pool)."""
    c192 = scale_channels(192)
    b1 = conv_bn_relu(net, f"{prefix}_b1a", inputs, c192, 1, 1, block_id)
    b1 = conv_bn_relu(net, f"{prefix}_b1b", b1, scale_channels(320), 3, 2,
                      block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2a", inputs, c192, 1, 1, block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2b", b2, c192, (1, 7), 1, block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2c", b2, c192, (7, 1), 1, block_id)
    b2 = conv_bn_relu(net, f"{prefix}_b2d", b2, c192, 3, 2, block_id)
    net.add(f"{prefix}_pool", MaxPool2D(3, 2, "same"), inputs=inputs,
            block_id=block_id)
    net.add(f"{prefix}_concat", Concat(),
            inputs=[b1, b2, f"{prefix}_pool"], block_id=block_id)
    return f"{prefix}_concat"
