"""InceptionV3 (Szegedy et al., 2016), width-scaled for NumPy execution.

A six-convolution stem followed by 11 inception modules: 3×A, a 35→17 grid
reduction, 4×C (factorized 7×7), a 17→8 grid reduction, and 2×E — about 95
weighted layers. Blockwise removal has 11 cutpoints (one per module), which
is the network Fig. 4 of the paper uses to compare blockwise against
exhaustive per-layer removal.
"""

from __future__ import annotations

from repro.nn import Dense, GlobalAvgPool, MaxPool2D, Network, Softmax

from .blocks import (
    conv_bn_relu,
    inception_a,
    inception_c,
    inception_e,
    reduction_b,
    reduction_d,
    scale_channels,
)

__all__ = ["build_inception_v3"]


def build_inception_v3(input_shape: tuple[int, int, int] = (32, 32, 3),
                       num_classes: int = 20) -> Network:
    """Construct InceptionV3 (unbuilt)."""
    net = Network("inception_v3", input_shape)
    x = conv_bn_relu(net, "stem1", "input", scale_channels(32), 3, stride=2,
                     block_id="stem", role="stem")
    x = conv_bn_relu(net, "stem2", x, scale_channels(32), 3, 1,
                     block_id="stem", role="stem")
    x = conv_bn_relu(net, "stem3", x, scale_channels(64), 3, 1,
                     block_id="stem", role="stem")
    net.add("stem_pool", MaxPool2D(3, 2, "same"), inputs=x,
            block_id="stem", role="stem")
    x = conv_bn_relu(net, "stem4", "stem_pool", scale_channels(80), 1, 1,
                     block_id="stem", role="stem")
    x = conv_bn_relu(net, "stem5", x, scale_channels(192), 3, 1,
                     block_id="stem", role="stem")

    pool_filters = [scale_channels(32), scale_channels(64), scale_channels(64)]
    for i in range(1, 4):
        x = inception_a(net, f"mixed{i}", x, block_id=f"module{i}",
                        pool_filters=pool_filters[i - 1])
    x = reduction_b(net, "mixed4", x, block_id="module4")
    mids = [128, 160, 160, 192]
    for i, mid in zip(range(5, 9), mids):
        x = inception_c(net, f"mixed{i}", x, block_id=f"module{i}",
                        mid=scale_channels(mid))
    x = reduction_d(net, "mixed9", x, block_id="module9")
    for i in range(10, 12):
        x = inception_e(net, f"mixed{i}", x, block_id=f"module{i}")

    net.add("gap", GlobalAvgPool(), inputs=x, role="head")
    net.add("logits", Dense(num_classes), role="head")
    net.add("probs", Softmax(), role="head")
    return net
