"""MobileNetV1 (Howard et al., 2017), width-scaled for NumPy execution.

Structure is faithful to the original: a stem convolution followed by 13
depthwise-separable blocks (28 weighted layers including the classifier).
The paper uses the 0.25 and 0.5 width multipliers; blockwise layer removal
therefore has 13 cutpoints per multiplier.

Resolution adaptation: the original stem stride of 2 assumes 224² inputs;
at this repository's 32² resolution the MobileNets keep a stride-1 stem
(the standard CIFAR-style adaptation) because their narrow widths cannot
afford losing three quarters of the input signal in the first layer. The
wider ResNet/DenseNet/Inception stems keep their original strides.
"""

from __future__ import annotations

from repro.nn import Dense, GlobalAvgPool, Network, Softmax

from .blocks import conv_bn_relu, scale_channels, separable_block

__all__ = ["build_mobilenet_v1"]

#: (filters, stride) for the 13 depthwise-separable blocks (original widths).
_BLOCKS = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
]


def build_mobilenet_v1(alpha: float = 1.0,
                       input_shape: tuple[int, int, int] = (32, 32, 3),
                       num_classes: int = 20) -> Network:
    """Construct MobileNetV1 with width multiplier ``alpha`` (unbuilt)."""
    net = Network(f"mobilenet_v1_{alpha}", input_shape)
    x = conv_bn_relu(net, "stem", "input", scale_channels(32, alpha), 3,
                     stride=1, block_id="stem", role="stem", relu6=True)
    for i, (filters, stride) in enumerate(_BLOCKS, start=1):
        x = separable_block(net, f"block{i}", x,
                            scale_channels(filters, alpha), stride,
                            block_id=f"block{i}")
    net.add("gap", GlobalAvgPool(), inputs=x, role="head")
    net.add("logits", Dense(num_classes), role="head")
    net.add("probs", Softmax(), role="head")
    return net
