"""DenseNet-121 (Huang et al., 2017), width-scaled for NumPy execution.

A 7×7 strided stem, four dense blocks of [6, 12, 24, 16] composite layers
(each a BN-ReLU-1×1 / BN-ReLU-3×3 pair) with 0.5-compression transitions —
121 weighted layers including the classifier.

For layer removal each *composite layer* is its own removal unit: because of
the concatenation topology, cutting after any composite layer yields a valid
feature tensor, and this is what lets the paper's Fig. 5 show DenseNet
curves extending past 100 removed layers. Together with the three
transitions that gives 58 + 3 = 61 cutpoints.
"""

from __future__ import annotations

from repro.nn import BatchNorm, Dense, GlobalAvgPool, MaxPool2D, Network, ReLU, Softmax

from .blocks import conv_bn_relu, dense_layer, dense_transition, scale_channels

__all__ = ["build_densenet121"]

_BLOCK_SIZES = [6, 12, 24, 16]


def build_densenet121(input_shape: tuple[int, int, int] = (32, 32, 3),
                      num_classes: int = 20,
                      growth: int | None = None) -> Network:
    """Construct DenseNet-121 (unbuilt).

    ``growth`` defaults to the original growth rate of 32 scaled by the
    global width divisor.
    """
    g = growth if growth is not None else scale_channels(32)
    net = Network("densenet121", input_shape)
    channels = scale_channels(64)
    x = conv_bn_relu(net, "stem", "input", channels, 7, stride=2,
                     block_id="stem", role="stem")
    net.add("stem_pool", MaxPool2D(3, 2, "same"), inputs=x,
            block_id="stem", role="stem")
    x = "stem_pool"
    for b, size in enumerate(_BLOCK_SIZES, start=1):
        for layer in range(1, size + 1):
            x = dense_layer(net, f"dense{b}_{layer}", x, g,
                            block_id=f"dense{b}_{layer}")
            channels += g
        if b < len(_BLOCK_SIZES):
            channels = max(3, channels // 2)
            x = dense_transition(net, f"trans{b}", x, channels,
                                 block_id=f"trans{b}")
    net.add("final_bn", BatchNorm(), inputs=x, role="head")
    net.add("final_relu", ReLU(), role="head")
    net.add("gap", GlobalAvgPool(), role="head")
    net.add("logits", Dense(num_classes), role="head")
    net.add("probs", Softmax(), role="head")
    return net
