"""The cluster router: deadline-aware dispatch over a replica fleet.

One global event loop over the shared virtual clock: arrivals are taken
in time order, every replica is advanced to the arrival instant (so
queue depths, breaker states and fault windows are exactly what a real
dispatcher would observe at that moment), the autoscaler gets a chance
to act, and the routing policy commits the request to one replica — or
to nothing, in which case the request is dropped at cluster level with a
``no-replica`` reason instead of crashing the loop. After the last
arrival every replica drains to completion, so the conservation law
``completed + dropped == admitted`` holds fleet-wide at shutdown.
"""

from __future__ import annotations

from repro.serve.request import REJECTED, Request, Response

from .autoscaler import Autoscaler
from .metrics import ClusterMetrics, ScaleEvent
from .policies import RoutingPolicy
from .replica import Replica

__all__ = ["Router", "ClusterResult"]


class ClusterResult:
    """Everything one cluster run produced."""

    def __init__(self, responses: list[Response], metrics: ClusterMetrics,
                 replicas: list[Replica]):
        self.responses = responses
        self.metrics = metrics
        self.replicas = replicas

    @property
    def completed(self) -> list[Response]:
        return [r for r in self.responses if r.status == "completed"]

    @property
    def rejected(self) -> list[Response]:
        """Refused before execution: replica admission or no-replica."""
        return [r for r in self.responses if r.status == "rejected"]

    @property
    def dropped(self) -> list[Response]:
        """Admitted somewhere but never executed (drain or dead rungs)."""
        return [r for r in self.responses if r.status == "dropped"]

    @property
    def missed(self) -> list[Response]:
        """Completed responses that overran their deadline."""
        return [r for r in self.completed if not r.deadline_met]

    @property
    def miss_rate(self) -> float:
        """Deadline misses as a fraction of completed requests, fleet-wide."""
        done = self.completed
        return len(self.missed) / len(done) if done else 0.0


class Router:
    """Dispatch a request trace across replicas under one virtual clock.

    ``replicas`` is the starting fleet (heterogeneous is fine — each
    replica carries its own device spec and ladder); ``policy`` decides
    placement; ``autoscaler`` (optional) may grow or drain the fleet
    mid-run; ``tracer`` (optional, e.g. :class:`repro.obs.Tracer`)
    receives one ``route`` span per dispatched request plus cluster-level
    ``drop`` and ``scale`` spans — per-replica engine spans arrive
    through each replica's own tagged tracer.

    Like the engine it drives, a router is single-use: one
    :meth:`run` per instance.
    """

    def __init__(self, replicas: list[Replica], policy: RoutingPolicy,
                 autoscaler: Autoscaler | None = None, tracer=None,
                 telemetry=None):
        self.replicas = list(replicas)
        self.policy = policy
        self.autoscaler = autoscaler
        self.tracer = tracer
        self.telemetry = telemetry
        self.metrics = ClusterMetrics(self.replicas, telemetry=telemetry)
        self._spawned = len(self.replicas)
        if telemetry is not None:
            self._g_replicas = telemetry.gauge(
                "cluster_replicas", "fleet size").child(())
            self._g_healthy = telemetry.gauge(
                "cluster_healthy_replicas",
                "replicas accepting traffic").child(())
            self._g_miss = telemetry.gauge(
                "cluster_autoscaler_miss_rate",
                "fleet miss rate the autoscaler last saw").child(())
            self._g_load = telemetry.gauge(
                "cluster_autoscaler_mean_load",
                "mean per-replica load the autoscaler last saw").child(())
            telemetry.collector("cluster", self._collect_telemetry)

    def _collect_telemetry(self, now_ms: float) -> None:
        self._g_replicas.set(float(len(self.replicas)))
        # healthy() only *reads* breaker state (would_allow), so probing
        # the fleet at sample time cannot perturb the run
        self._g_healthy.set(float(len(self.routable(now_ms))))
        if self.autoscaler is not None:
            miss_rate, mean_load = self.autoscaler.last_signals
            self._g_miss.set(miss_rate)
            self._g_load.set(mean_load)

    def routable(self, now_ms: float) -> list[Replica]:
        """Replicas that may receive new traffic at ``now_ms``."""
        return [r for r in self.replicas if r.healthy(now_ms)]

    def _autoscale(self, now_ms: float) -> None:
        if self.autoscaler is None:
            return
        decision = self.autoscaler.evaluate(now_ms, self.replicas)
        if decision is None:
            return
        action, victim = decision
        miss_rate, mean_load = self.autoscaler.last_signals
        if action == "up":
            replica = self.autoscaler.factory(self._spawned)
            self._spawned += 1
            # the new shard joins *now*: its clock starts at the current
            # virtual time, not at zero, so it cannot serve the past
            replica.clock_ms = now_ms
            self.replicas.append(replica)
            event = ScaleEvent(now_ms, "scale-up", replica.name,
                               miss_rate, mean_load)
        else:
            victim.draining = True
            event = ScaleEvent(now_ms, "scale-down", victim.name,
                               miss_rate, mean_load)
        self.metrics.record_scale(event)
        if self.tracer is not None:
            self.tracer.instant("scale", "cluster", now_ms,
                                action=event.action, replica=event.replica)

    def run(self, trace: list[Request]) -> ClusterResult:
        """Dispatch a whole trace and drain the fleet; trace-order result."""
        cluster_rejects: dict[int, Response] = {}
        for req in sorted(trace, key=lambda r: (r.arrival_ms, r.rid)):
            now = req.arrival_ms
            for replica in self.replicas:
                replica.advance(now)
            self._autoscale(now)
            if self.telemetry is not None:
                self.telemetry.maybe_sample(now)
            self.metrics.record_arrival()
            target = self.policy.choose(self.routable(now), req, now)
            if target is None:
                # drop-not-crash: nothing can take the request
                cluster_rejects[req.rid] = Response(
                    req.rid, REJECTED, req.arrival_ms, req.abs_deadline_ms,
                    reject_reason="no-replica", tenant=req.tenant)
                self.metrics.record_no_replica()
                if self.tracer is not None:
                    self.tracer.instant("drop", "cluster", now, rid=req.rid,
                                        reason="no-replica")
            else:
                target.submit(req)
                self.metrics.record_routed(target.name)
                if self.tracer is not None:
                    self.tracer.instant("route", "cluster", now, rid=req.rid,
                                        replica=target.name,
                                        policy=self.policy.name)
        for replica in self.replicas:
            replica.finish()
        responses: dict[int, Response] = dict(cluster_rejects)
        for replica in self.replicas:
            responses.update(replica.responses)
        ordered = [responses[r.rid] for r in trace if r.rid in responses]
        return ClusterResult(ordered, self.metrics, self.replicas)
