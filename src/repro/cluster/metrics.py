"""Cluster metrics: routing counters plus a per-replica roll-up.

The cluster layer adds only what the single-node metrics cannot know —
how requests were routed, what was dropped because no replica could take
it, and when the autoscaler acted. Everything latency-shaped stays in
each replica's own :class:`repro.serve.ServerMetrics`; the roll-up merges
those (bin-exact histogram merges, counter sums) into one cluster-wide
view, and :meth:`ClusterMetrics.snapshot` nests all three levels so a
:class:`repro.obs.MetricsRegistry` mount exposes the fleet as one
monitoring surface with a per-replica breakdown.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.obs.telemetry import Counter
from repro.serve.metrics import ServerMetrics

__all__ = ["ScaleEvent", "ClusterMetrics"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action, in virtual time."""

    time_ms: float
    action: str                 # "scale-up" or "scale-down"
    replica: str
    miss_rate: float
    mean_load: float

    def as_dict(self) -> dict:
        return {"time_ms": self.time_ms, "action": self.action,
                "replica": self.replica, "miss_rate": self.miss_rate,
                "mean_load": self.mean_load}


class ClusterMetrics:
    """Routing/scaling counters over a live fleet of replicas.

    The replica list is shared with the router (replicas the autoscaler
    adds mid-run appear here automatically); snapshots deep-copy, so a
    caller may mutate what it got back without corrupting the live view.
    """

    COUNTERS = ("arrived", "routed", "no_replica", "scale_ups",
                "scale_downs")

    def __init__(self, replicas: list, telemetry=None):
        self.replicas = replicas
        self.counters = {name: Counter(name) for name in self.COUNTERS}
        self.per_replica: dict[str, int] = {}
        self.scale_events: list[ScaleEvent] = []
        self.telemetry = telemetry
        if telemetry is not None:
            events = telemetry.counter(
                "cluster_requests_total",
                "cluster-level routing events", ("event",))
            self._events = {e: events.child((e,))
                            for e in ("arrived", "routed", "no_replica")}
            self._routed_family = telemetry.counter(
                "cluster_routed_total",
                "requests dispatched per replica", ("replica",))
            self._scale_family = telemetry.counter(
                "cluster_scale_events_total",
                "autoscaler actions", ("action",))
            self._routed_children: dict[str, Counter] = {}

    # -- recording -----------------------------------------------------------
    def record_arrival(self) -> None:
        self.counters["arrived"].increment()
        if self.telemetry is not None:
            self._events["arrived"].increment()

    def record_routed(self, replica: str) -> None:
        self.counters["routed"].increment()
        self.per_replica[replica] = self.per_replica.get(replica, 0) + 1
        if self.telemetry is not None:
            self._events["routed"].increment()
            child = self._routed_children.get(replica)
            if child is None:
                child = self._routed_children[replica] = \
                    self._routed_family.child((replica,))
            child.increment()

    def record_no_replica(self) -> None:
        """One request dropped because no replica could take it."""
        self.counters["no_replica"].increment()
        if self.telemetry is not None:
            self._events["no_replica"].increment()

    def record_scale(self, event: ScaleEvent) -> None:
        key = "scale_ups" if event.action == "scale-up" else "scale_downs"
        self.counters[key].increment()
        self.scale_events.append(event)
        if self.telemetry is not None:
            self._scale_family.child((event.action,)).increment()

    # -- time-series roll-up -------------------------------------------------
    def merged_series(self, name: str) -> dict:
        """One fleet-wide series per label set, summed across replicas.

        The time-series counterpart of :meth:`aggregate`: replicas sample
        at their own instants, so their per-replica series (label
        ``replica=<name>``) are summed as step functions — see
        :meth:`repro.obs.telemetry.TimeSeriesStore.merged`. Requires the
        cluster to have been run with a telemetry attached.
        """
        if self.telemetry is None:
            raise ValueError("cluster was run without telemetry")
        return self.telemetry.store.merged(name, drop_label="replica")

    # -- roll-up -------------------------------------------------------------
    def aggregate(self) -> ServerMetrics:
        """All replicas' serving metrics folded into one ServerMetrics.

        Counters sum; histograms merge bin-exactly; transitions
        interleave in time order. The deadline is taken from the first
        replica (the cluster serves one deadline class per run).
        """
        deadline = (self.replicas[0].metrics.deadline_ms
                    if self.replicas else float("nan"))
        total = ServerMetrics(deadline)
        if self.replicas:
            # like the deadline, the rung inventory follows the first
            # replica (one ladder per deadline class per run)
            total.set_ladder(self.replicas[0].metrics.ladder)
        for replica in self.replicas:
            m = replica.metrics
            for name, counter in m.counters.items():
                total.counters[name].increment(counter.value)
            total.latency.merge(m.latency)
            total.queue_wait.merge(m.queue_wait)
            total.service.merge(m.service)
            total.batch_occupancy_sum += m.batch_occupancy_sum
            for rung, n in m.per_rung.items():
                total.per_rung[rung] = total.per_rung.get(rung, 0) + n
            total.merge_tenants(m.tenants)
            total.events.extend(m.events)
        total.events.sort(key=lambda e: e.time_ms)
        return total

    def snapshot(self) -> dict:
        """Cluster counters, the aggregate, and the per-replica breakdown."""
        return copy.deepcopy({
            "cluster": {
                "counters": {n: c.value for n, c in self.counters.items()},
                "per_replica_routed": dict(self.per_replica),
                "scale_events": [e.as_dict() for e in self.scale_events],
                "replicas": [r.name for r in self.replicas],
            },
            "aggregate": self.aggregate().snapshot(),
            "replicas": {r.name: r.metrics.snapshot()
                         for r in self.replicas},
        })

    def report(self) -> str:
        """Human-readable cluster block: routing, roll-up, per-replica."""
        c = {n: counter.value for n, counter in self.counters.items()}
        lines = [
            f"cluster: {len(self.replicas)} replicas, {c['arrived']} "
            f"arrived, {c['routed']} routed, {c['no_replica']} unroutable",
        ]
        if c["scale_ups"] or c["scale_downs"]:
            lines.append(f"autoscaler: {c['scale_ups']} scale-ups / "
                         f"{c['scale_downs']} scale-downs")
            for e in self.scale_events:
                lines.append(f"  t={e.time_ms:9.2f} ms  {e.action:10s} "
                             f"{e.replica} (miss {100 * e.miss_rate:.1f}%, "
                             f"load {e.mean_load:.1f})")
        if self.per_replica:
            routed = ", ".join(f"{name}: {n}"
                               for name, n in self.per_replica.items())
            lines.append(f"routed to: {routed}")
        lines.append("-- aggregate --")
        lines.append(self.aggregate().report())
        for replica in self.replicas:
            lines.append(f"-- {replica.name} ({replica.spec.name}) --")
            lines.append(replica.metrics.report())
        return "\n".join(lines)
