"""Autoscaling: grow and shrink the fleet from serving-pressure signals.

The autoscaler watches two rolling signals over the active replicas —
the deadline-miss rate since its last check and the mean un-executed load
per replica — and acts with hysteresis so a boundary workload cannot make
it flap:

- **asymmetric thresholds**: scaling up triggers at ``up_miss``/
  ``up_load``, scaling down only below the strictly lower ``down_miss``/
  ``down_load`` band;
- **cooldown**: after any action the autoscaler holds off for
  ``cooldown_ms`` of virtual time, letting the routed traffic
  redistribute before the signals are trusted again;
- **down-streak**: scaling down additionally requires
  ``down_checks`` *consecutive* calm evaluations (one brief lull never
  drains a replica), and draining — not killing — is how capacity
  leaves: the router stops sending new work and the replica finishes
  its queue.

This mirrors the serve-layer :class:`repro.serve.HysteresisController`
one level up: that controller trades accuracy for latency on one replica,
this one trades money (replicas) for latency across the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass
class AutoscalerConfig:
    """Scaling thresholds and hysteresis."""

    min_replicas: int = 1
    max_replicas: int = 8
    check_interval_ms: float = 10.0   # virtual time between evaluations
    up_miss: float = 0.10             # recent miss rate that adds a replica
    up_load: float = 8.0              # mean per-replica backlog that adds one
    down_miss: float = 0.02           # both signals must sit below the
    down_load: float = 1.0            # down band to drain a replica
    cooldown_ms: float = 50.0         # hold-off after any action
    down_checks: int = 3              # consecutive calm checks to scale down

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.down_miss >= self.up_miss or self.down_load >= self.up_load:
            raise ValueError("the down band must sit strictly below the up "
                             "band (hysteresis)")
        if self.check_interval_ms <= 0 or self.cooldown_ms < 0:
            raise ValueError("intervals must be positive")


class Autoscaler:
    """Decide scale actions from rolling miss-rate and queue-depth signals.

    ``factory(index)`` builds a fresh replica when the fleet grows (the
    router assigns the index). :meth:`evaluate` is called by the router
    at every global event and is interval-gated internally, so calling it
    often is cheap and the decision cadence stays tied to virtual time,
    not to the arrival rate.
    """

    def __init__(self, factory, config: AutoscalerConfig | None = None):
        self.factory = factory
        self.config = config or AutoscalerConfig()
        self._last_check_ms = 0.0
        self._last_action_ms = -self.config.cooldown_ms
        # published for metrics/telemetry gauges; (0, 0) until the first
        # interval-gated evaluation actually computes the fleet signals
        self.last_signals = (0.0, 0.0)
        self._completed = 0
        self._missed = 0
        self._calm_streak = 0

    def _signals(self, replicas: list) -> tuple[float, float]:
        """Recent miss rate (since last check) and mean load per replica."""
        completed = sum(r.metrics.counters["completed"].value
                        for r in replicas)
        missed = sum(r.metrics.counters["deadline_miss"].value
                     for r in replicas)
        d_completed = completed - self._completed
        d_missed = missed - self._missed
        self._completed, self._missed = completed, missed
        miss_rate = d_missed / d_completed if d_completed else 0.0
        active = [r for r in replicas if not r.draining]
        mean_load = (sum(r.load for r in active) / len(active)
                     if active else 0.0)
        return miss_rate, mean_load

    def evaluate(self, now_ms: float, replicas: list):
        """One scaling decision: ``("up", None)``, ``("down", replica)``
        or ``None``.

        ``replicas`` is the router's live list (draining replicas
        included — their in-flight misses still count against the
        fleet). The router applies the returned action and records the
        scale event.
        """
        cfg = self.config
        if now_ms - self._last_check_ms < cfg.check_interval_ms:
            return None
        self._last_check_ms = now_ms
        miss_rate, mean_load = self._signals(replicas)
        self.last_signals = (miss_rate, mean_load)
        active = [r for r in replicas if not r.draining]
        if now_ms - self._last_action_ms < cfg.cooldown_ms:
            return None
        if miss_rate > cfg.up_miss or mean_load > cfg.up_load:
            self._calm_streak = 0
            if len(active) < cfg.max_replicas:
                self._last_action_ms = now_ms
                return ("up", None)
            return None
        if miss_rate < cfg.down_miss and mean_load < cfg.down_load:
            self._calm_streak += 1
            if (self._calm_streak >= cfg.down_checks
                    and len(active) > cfg.min_replicas):
                self._calm_streak = 0
                self._last_action_ms = now_ms
                # drain the least-loaded replica: cheapest to finish off
                victim = min(enumerate(active),
                             key=lambda p: (p[1].load, p[0]))[1]
                return ("down", victim)
            return None
        # inside the hysteresis band: hold steady
        self._calm_streak = 0
        return None
