"""Routing policies: which replica serves the next request.

Three disciplines, in increasing awareness of what the replicas know:

- :class:`RoundRobin` — oblivious cycling; the baseline every serving
  system starts from.
- :class:`JoinShortestQueue` — route to the replica with the least
  un-executed work; near-optimal for homogeneous fleets but blind to
  device speed, so a Nano-class replica with a short queue can still be
  the slowest place to send a request.
- :class:`DeadlineAwareP2C` — power-of-two-choices (Mitzenmacher's "two
  random choices" result: sampling two queues and picking the better one
  captures most of the benefit of global knowledge at O(1) cost) made
  deadline-aware: the two sampled replicas are compared by their
  *estimated finish time* (device-speed-aware, so heterogeneous fleets
  route correctly), and when the better estimate would still miss the
  request's deadline the policy rejects onward through the remaining
  replicas in estimate order — the same estimate-then-commit discipline
  as NetCut's Algorithm 1 — before falling back to the least-bad
  replica, whose admission control has the final word.

All policies are deterministic: the only randomness is the P2C sampler's
own generator, seeded via :func:`repro.device.stable_seed`.
"""

from __future__ import annotations

import numpy as np

from repro.device.spec import stable_seed
from repro.serve.request import Request

from .replica import Replica

__all__ = ["RoutingPolicy", "RoundRobin", "JoinShortestQueue",
           "DeadlineAwareP2C", "POLICIES", "make_policy"]


class RoutingPolicy:
    """Base policy: pick a replica from the routable candidates.

    ``choose`` receives only replicas that are currently routable
    (healthy, not draining); it returns one of them or ``None`` to
    signal that nothing can take the request (the router then drops it
    at cluster level instead of crashing).
    """

    name = "base"

    def choose(self, candidates: list[Replica], request: Request,
               now_ms: float) -> Replica | None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class RoundRobin(RoutingPolicy):
    """Cycle through the routable replicas in order."""

    name = "round-robin"

    def __init__(self):
        self._turn = 0

    def choose(self, candidates: list[Replica], request: Request,
               now_ms: float) -> Replica | None:
        if not candidates:
            return None
        chosen = candidates[self._turn % len(candidates)]
        self._turn += 1
        return chosen


class JoinShortestQueue(RoutingPolicy):
    """Route to the replica with the least un-executed work.

    Ties break by candidate order, which is stable (the router keeps
    replicas in creation order), so routing is deterministic.
    """

    name = "jsq"

    def choose(self, candidates: list[Replica], request: Request,
               now_ms: float) -> Replica | None:
        if not candidates:
            return None
        return min(enumerate(candidates), key=lambda p: (p[1].load, p[0]))[1]


class DeadlineAwareP2C(RoutingPolicy):
    """Deadline-aware power-of-two-choices over latency estimates.

    Two distinct replicas are sampled uniformly; each is asked when one
    more request would finish (:meth:`Replica.estimate_finish_ms`) and
    the earlier one is taken — *if* its estimate meets the request's
    absolute deadline. Otherwise the policy widens to every remaining
    candidate in estimate order (cheap: the fleet is small compared to
    the request rate) and commits to the first that fits; when no
    replica's estimate fits, the least-bad one is returned — serving a
    probable miss beats dropping outright, and the replica's own
    admission control still rejects truly unmeetable work.
    """

    name = "p2c-deadline"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(
            stable_seed("cluster-router", self.name, seed))

    def choose(self, candidates: list[Replica], request: Request,
               now_ms: float) -> Replica | None:
        if not candidates:
            return None
        if len(candidates) <= 2:
            sampled = list(enumerate(candidates))
        else:
            i, j = self._rng.choice(len(candidates), size=2, replace=False)
            sampled = [(int(i), candidates[int(i)]),
                       (int(j), candidates[int(j)])]
        estimates = {idx: rep.estimate_finish_ms(now_ms)
                     for idx, rep in sampled}
        idx, best = min(sampled, key=lambda p: (estimates[p[0]], p[0]))
        if estimates[idx] <= request.abs_deadline_ms:
            return best
        # both sampled estimates miss: reject onward through the rest of
        # the fleet, cheapest estimate first
        ranked = sorted(
            ((rep.estimate_finish_ms(now_ms), i, rep)
             for i, rep in enumerate(candidates) if i not in estimates),
            key=lambda t: (t[0], t[1]))
        for est, _, rep in ranked:
            if est <= request.abs_deadline_ms:
                return rep
        # every estimate misses: fall back to the least-bad replica
        ranked.append((estimates[idx], idx, best))
        return min(ranked, key=lambda t: (t[0], t[1]))[2]


#: Policy factories by CLI name: name -> (seed) -> policy.
POLICIES = {
    RoundRobin.name: lambda seed: RoundRobin(),
    JoinShortestQueue.name: lambda seed: JoinShortestQueue(),
    DeadlineAwareP2C.name: lambda seed: DeadlineAwareP2C(seed),
}


def make_policy(name: str, seed: int = 0) -> RoutingPolicy:
    """Instantiate a routing policy by name (see :data:`POLICIES`)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown routing policy {name!r}; available: "
                       f"{sorted(POLICIES)}") from None
    return factory(seed)
