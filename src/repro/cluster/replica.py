"""One serving shard: an engine, a TRN ladder and a device of its own.

A :class:`Replica` wraps the single-node serving engine
(:class:`repro.serve.Engine`) behind the push interface a cluster router
needs: requests are :meth:`submit`-ted at their true virtual arrival
times and the replica :meth:`advance`-s its private clock between global
events, serving batches exactly as the single-node engine would — the
engine's steppable ``run_until`` core is the same code path
:meth:`repro.serve.Engine.run` uses, so a one-replica cluster reproduces
a plain :class:`repro.serve.Server` run bit for bit.

Each replica owns its ladder, its device spec and (optionally) its own
fault injector, which is what makes heterogeneous fleets first-class: a
Xavier-class replica next to two Nano-class ones is just three replicas
built from three specs, and killing one of them is a fault scenario
scoped to that replica alone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

from repro.serve.engine import Engine, ServerConfig
from repro.serve.ladder import TRNLadder
from repro.serve.metrics import ServerMetrics
from repro.serve.request import Request, Response

__all__ = ["Replica", "ReplicaTracer", "homogeneous_replicas"]


class ReplicaTracer:
    """A tracer proxy stamping every span with the replica that emitted it.

    Wraps a shared :class:`repro.obs.Tracer` (or anything duck-compatible)
    so the cluster's one trace buffer interleaves per-replica spans that
    remain attributable: each span's args carry ``replica: <name>``.
    """

    __slots__ = ("replica", "_inner")

    def __init__(self, replica: str, inner):
        self.replica = replica
        self._inner = inner

    def emit(self, name, cat, ts_ms, dur_ms, rid, args) -> None:
        tagged = {"replica": self.replica} if args is None \
            else {**args, "replica": self.replica}
        self._inner.emit(name, cat, ts_ms, dur_ms, rid, tagged)

    def instant(self, name, cat, ts_ms, rid=None, **args) -> None:
        self.emit(name, cat, ts_ms, 0.0, rid, args)

    def span(self, name, cat, ts_ms, dur_ms, rid=None, **args) -> None:
        self.emit(name, cat, ts_ms, dur_ms, rid, args)


class Replica:
    """A single serving shard driven by a cluster router.

    Like :class:`repro.serve.Engine`, a replica is single-use: one
    instance serves one routed workload deterministically (the ladder is
    parked and reseeded from the config seed at construction). Build
    fresh replicas per run.

    ``tracer`` is wrapped in a :class:`ReplicaTracer` so this replica's
    spans are attributable in a shared buffer; ``faults`` (a
    :class:`repro.faults.FaultInjector`) wraps *this replica's* ladder
    only — the cluster's other replicas stay healthy.
    """

    def __init__(self, name: str, ladder: TRNLadder,
                 config: ServerConfig | None = None,
                 tracer=None, drift=None, faults=None, telemetry=None):
        self.name = name
        self.config = config or ServerConfig()
        self.tracer = None if tracer is None else ReplicaTracer(name, tracer)
        ladder.reset(0)
        self.ladder = ladder if faults is None else faults.wrap(ladder)
        # the shared telemetry sees this replica's series under a
        # replica=<name> label, the cluster analogue of ReplicaTracer
        self.metrics = ServerMetrics(self.config.deadline_ms,
                                     telemetry=telemetry,
                                     labels=None if telemetry is None
                                     else {"replica": name})
        self.engine = Engine(self.ladder, self.config, self.metrics,
                             tracer=self.tracer, drift=drift, faults=faults)
        self.clock_ms = 0.0
        self.draining = False
        self.responses: dict[int, Response] = {}
        self._pending: deque[Request] = deque()

    @property
    def spec(self):
        """The device spec this replica serves on."""
        return self.ladder.rungs[0].spec

    @property
    def load(self) -> int:
        """Requests routed here but not yet executed (pending + queued)."""
        return len(self._pending) + len(self.engine.queue)

    def healthy(self, now_ms: float) -> bool:
        """Whether new traffic should be routed here at ``now_ms``.

        Healthy means some rung's circuit breaker would accept work (a
        side-effect-free read — see
        :meth:`repro.faults.CircuitBreaker.would_allow`). Without
        resilience there are no breakers and the replica always reads
        healthy; a draining replica refuses new traffic regardless.
        """
        if self.draining:
            return False
        return self.engine.available_rung(now_ms) is not None

    def estimate_finish_ms(self, now_ms: float) -> float:
        """When one more routed request would plausibly finish.

        The estimate-then-commit quantity deadline-aware routing consults
        before dispatching (the cluster analogue of NetCut's Algorithm 1
        estimating a TRN before training it): the replica's next free
        time plus the backlog served in maximally-packed batches on the
        rung the engine would actually target, from the same noise-free
        latency model admission control trusts. Unhealthy replicas
        estimate with the fastest rung — the engine's own last resort.
        """
        rung = self.engine.available_rung(now_ms) or self.ladder.fastest
        backlog = self.load + 1
        max_batch = self.config.max_batch
        batches = -(-backlog // max_batch)           # ceil division
        start = max(self.clock_ms, now_ms)
        return start + batches * rung.estimate_ms(min(backlog, max_batch))

    def submit(self, request: Request) -> None:
        """Accept one routed request (dispatched in global arrival order)."""
        self._pending.append(request)

    def advance(self, until_ms: float) -> None:
        """Serve admitted work, never starting a batch at or past the horizon.

        The router calls this for every replica before each global event
        (the next arrival, or the end of the trace with an infinite
        horizon), so all replicas observe fault windows and serve batches
        in one consistent virtual timeline.
        """
        self.clock_ms = self.engine.run_until(
            self._pending, self.responses, self.clock_ms, until_ms)

    def finish(self) -> None:
        """Drain everything: serve the backlog, then account leftovers.

        After an infinite-horizon :meth:`advance` the queue is empty
        unless every rung hard-failed; :meth:`repro.serve.Engine.drain`
        converts any leftovers to ``DROPPED`` responses so the
        conservation law ``completed + dropped == admitted`` holds.
        """
        self.advance(float("inf"))
        for resp in self.engine.drain(self.clock_ms):
            self.responses[resp.rid] = resp
        telemetry = self.engine._telemetry
        if telemetry is not None:
            # closing sample: the replica's final counter values land in
            # the series even when it went idle between sampling instants
            telemetry.sample(self.clock_ms)


def homogeneous_replicas(base, spec, n: int,
                         config: ServerConfig | None = None,
                         num_classes: int = 5, max_rungs: int = 6,
                         tracer=None, drift=None,
                         faults: dict[int, object] | None = None,
                         telemetry=None) -> list[Replica]:
    """Build ``n`` identical replicas, each with its own ladder and seed.

    Every replica gets a fresh :class:`repro.serve.TRNLadder` from the
    same base network and spec (samplers are stateful, so sharing one
    ladder would entangle the shards) and a per-replica measurement seed
    (``config.seed + index``) so the fleet's noise streams are
    independent but the whole cluster run stays deterministic. ``faults``
    maps replica indices to per-replica fault injectors.
    """
    config = config or ServerConfig()
    replicas = []
    for i in range(n):
        ladder = TRNLadder.from_base(base, spec, num_classes=num_classes,
                                     max_rungs=max_rungs)
        replicas.append(Replica(
            f"r{i}", ladder, replace(config, seed=config.seed + i),
            tracer=tracer, drift=drift,
            faults=None if faults is None else faults.get(i),
            telemetry=telemetry))
    return replicas
