"""Multi-replica scale-out serving for NetCut's TRN ladders.

One replica of the deadline-aware serving stack (:mod:`repro.serve`)
tops out at whatever its device plus its fastest TRN can sustain; this
subpackage scales the same stack *out*: a :class:`Router` dispatches
admitted requests across N :class:`Replica` shards — each wrapping its
own engine, TRN ladder and device spec, so heterogeneous fleets (a
Xavier-class replica next to two slower Nano-class ones) are first-class
— under pluggable routing policies (:class:`RoundRobin`,
:class:`JoinShortestQueue`, and the deadline-aware power-of-two-choices
:class:`DeadlineAwareP2C`, which consults each replica's latency
estimate before committing, exactly the estimate-then-commit discipline
of NetCut's Algorithm 1). An :class:`Autoscaler` grows and drains the
fleet from rolling miss-rate and queue-depth signals with hysteresis.

Everything runs over the repository's virtual clock and composes with
the neighbouring subsystems: :mod:`repro.obs` tracers see per-replica
spans and a cluster-level metrics roll-up, and :mod:`repro.faults`
injectors can kill or degrade a single replica — the router routes
around it through the existing circuit breakers.

Typical run::

    replicas = homogeneous_replicas(base, xavier(), 3,
                                    ServerConfig(deadline_ms=0.9))
    router = Router(replicas, make_policy("p2c-deadline", seed=0))
    result = router.run(poisson_trace(5000, rate_rps=2e4, deadline_ms=0.9))
    print(result.metrics.report())

``repro cluster --replicas 3 --policy p2c-deadline`` runs the same
experiment from the command line.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .metrics import ClusterMetrics, ScaleEvent
from .policies import (
    POLICIES,
    DeadlineAwareP2C,
    JoinShortestQueue,
    RoundRobin,
    RoutingPolicy,
    make_policy,
)
from .replica import Replica, ReplicaTracer, homogeneous_replicas
from .router import ClusterResult, Router

__all__ = [
    "Replica",
    "ReplicaTracer",
    "homogeneous_replicas",
    "Router",
    "ClusterResult",
    "RoutingPolicy",
    "RoundRobin",
    "JoinShortestQueue",
    "DeadlineAwareP2C",
    "POLICIES",
    "make_policy",
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterMetrics",
    "ScaleEvent",
]
