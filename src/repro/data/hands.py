"""A HANDS-like grasp-intent dataset with probabilistic labels.

The HANDS dataset (Han et al., 2020) contains palm-camera images of
graspable objects labelled with a *probability distribution* over five
grasp types — Open Palm, Medium Wrap, Power Sphere, Parallel Extension and
Palmar Pinch — because most objects can be grasped several ways with
different preferences. This module reproduces that structure synthetically:
object geometry (shape family, size, elongation) determines grasp
affinities through an interpretable preference model, and the label is the
softmax of those affinities with Dirichlet jitter standing in for
inter-annotator variability.

The task is *simpler* than SynthImageNet (5 broad geometry-driven outputs
vs. 20 shape×texture classes), which is the regime where the paper argues
late, problem-specific layers of the pretrained network become removable.
"""

from __future__ import annotations

import numpy as np

from .synthetic import Dataset, ObjectParams, render_object, sample_object

__all__ = ["GRASP_TYPES", "grasp_affinities", "grasp_distribution",
           "make_hands_dataset"]

#: The five grasp types, in the paper's order.
GRASP_TYPES = ["open_palm", "medium_wrap", "power_sphere",
               "parallel_extension", "palmar_pinch"]


def grasp_affinities(params: ObjectParams) -> np.ndarray:
    """Grasp-type affinity scores for an object, before normalisation.

    The preference model encodes standard grasp taxonomy heuristics:

    - *Open Palm* suits large flat objects (cards, large boxes).
    - *Medium Wrap* suits elongated medium objects (cylinders).
    - *Power Sphere* suits large round objects (spheres).
    - *Parallel Extension* suits thin flat objects.
    - *Palmar Pinch* suits small objects of any shape.
    """
    size, aspect = params.size, params.aspect
    small = np.exp(-((size - 0.10) / 0.08) ** 2)
    large = 1.0 / (1.0 + np.exp(-(size - 0.27) / 0.05))
    elongated = 1.0 / (1.0 + np.exp(-(aspect - 1.6) / 0.3))
    flat = 1.0 if params.family == "card" else 0.15
    round_ = 1.0 if params.family in ("sphere", "blob") else 0.1
    boxy = 1.0 if params.family == "box" else 0.15

    scores = np.array([
        2.2 * flat * large + 0.6 * boxy * large,            # open palm
        2.4 * elongated + 0.8 * boxy * (1 - large),         # medium wrap
        2.6 * round_ * large,                               # power sphere
        2.0 * flat * (1 - large) + 0.7 * boxy,              # parallel extension
        2.8 * small,                                        # palmar pinch
    ])
    return scores


def grasp_distribution(params: ObjectParams,
                       rng: np.random.Generator | None = None,
                       jitter: float = 25.0,
                       temperature: float = 0.55) -> np.ndarray:
    """Probabilistic grasp label for an object.

    ``temperature`` controls how peaked the distribution is, and ``jitter``
    is the Dirichlet concentration multiplier modelling annotator
    disagreement (larger = less noise). With ``rng=None`` the label is the
    noise-free preference distribution.
    """
    scores = grasp_affinities(params) / temperature
    p = np.exp(scores - scores.max())
    p /= p.sum()
    if rng is not None:
        p = rng.dirichlet(p * jitter)
        p = np.maximum(p, 1e-4)
        p /= p.sum()
    return p.astype(np.float32)


def make_hands_dataset(n: int = 1100, image_size: int = 32,
                       seed: int = 1, label_jitter: float = 25.0) -> Dataset:
    """Generate the HANDS-like dataset of ``n`` labelled object images."""
    rng = np.random.default_rng(seed)
    x = np.empty((n, image_size, image_size, 3), dtype=np.float32)
    y = np.empty((n, len(GRASP_TYPES)), dtype=np.float32)
    for i in range(n):
        params = sample_object(rng)
        x[i] = render_object(params, image_size, rng)
        y[i] = grasp_distribution(params, rng, jitter=label_jitter)
    return Dataset(x, y, list(GRASP_TYPES))
