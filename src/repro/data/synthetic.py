"""A parametric NumPy image renderer for synthetic vision datasets.

The paper trains on camera images of graspable objects (the HANDS dataset)
after pretraining on ImageNet. Neither is available offline, so this module
renders small RGB images of parametric objects — shape family, size, aspect
ratio, orientation, hue, surface texture — over textured backgrounds. The
pretraining task (:mod:`repro.data.imagenet`) and the transfer task
(:mod:`repro.data.hands`) are both drawn from this renderer family, which
preserves the property layer removal exploits: early convolutional features
(edges, colors) are shared between the tasks while late features specialise.

All rendering is vectorised: shapes are signed-distance functions evaluated
on a coordinate grid with a soft (anti-aliased) threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SHAPE_FAMILIES", "TEXTURES", "ObjectParams", "render_object",
           "sample_object", "Dataset"]

#: The shape families the renderer knows about, chosen to span the geometry
#: range of graspable objects (round, boxy, elongated, flat, small).
SHAPE_FAMILIES = ["sphere", "box", "cylinder", "card", "blob"]

#: Surface textures, used to multiply class count in the pretraining task.
TEXTURES = ["plain", "stripes", "checker", "spots"]


@dataclass
class ObjectParams:
    """Full parametric description of one rendered object."""

    family: str
    size: float          # object radius as a fraction of image size, ~[0.1, 0.45]
    aspect: float        # elongation; 1 = isotropic, >1 = elongated
    angle: float         # orientation in radians
    hue: float           # [0, 1) base hue of the object
    texture: str
    cx: float = 0.5      # center, in image fractions
    cy: float = 0.5


def _hsv_to_rgb(h: np.ndarray, s: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorised HSV→RGB, all inputs broadcastable in [0, 1]."""
    i = np.floor(h * 6.0).astype(int) % 6
    f = h * 6.0 - np.floor(h * 6.0)
    p = v * (1 - s)
    q = v * (1 - f * s)
    t = v * (1 - (1 - f) * s)
    table = np.stack([
        np.stack([v, t, p], axis=-1),
        np.stack([q, v, p], axis=-1),
        np.stack([p, v, t], axis=-1),
        np.stack([p, q, v], axis=-1),
        np.stack([t, p, v], axis=-1),
        np.stack([v, p, q], axis=-1),
    ])
    return np.take_along_axis(table, i[None, ..., None], axis=0)[0]


def _sdf(params: ObjectParams, size: int) -> np.ndarray:
    """Signed distance field of the object (negative inside), in pixels."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    x = (xs + 0.5) / size - params.cx
    y = (ys + 0.5) / size - params.cy
    c, s = np.cos(params.angle), np.sin(params.angle)
    u = (c * x + s * y) / max(params.aspect, 1e-3)
    v = -s * x + c * y
    r = params.size
    if params.family in ("sphere", "blob"):
        d = np.sqrt(u * u + v * v) - r
        if params.family == "blob":
            # lumpy boundary to distinguish blobs from spheres
            theta = np.arctan2(v, u)
            d += 0.15 * r * np.sin(5 * theta)
    elif params.family == "box":
        d = np.maximum(np.abs(u), np.abs(v)) - r
    elif params.family == "cylinder":
        # a capsule: elongated along u
        uu = np.clip(u, -r, r)
        d = np.sqrt((u - uu) ** 2 + v * v) - 0.45 * r
    elif params.family == "card":
        # thin rectangle: wide in u, thin in v
        d = np.maximum(np.abs(u) - r, np.abs(v) - 0.28 * r)
    else:
        raise ValueError(f"unknown shape family {params.family!r}")
    return d * size


def _texture_field(params: ObjectParams, size: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Multiplicative brightness field implementing the surface texture."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    c, s = np.cos(params.angle), np.sin(params.angle)
    u = c * xs + s * ys
    v = -s * xs + c * ys
    if params.texture == "plain":
        return np.ones((size, size))
    if params.texture == "stripes":
        return 0.75 + 0.25 * np.sign(np.sin(u * np.pi / 3.0))
    if params.texture == "checker":
        return 0.75 + 0.25 * np.sign(np.sin(u * np.pi / 4.0)
                                     * np.sin(v * np.pi / 4.0))
    if params.texture == "spots":
        field = np.sin(u * 1.3 + 1.7) * np.sin(v * 1.3 + 0.3)
        return 0.8 + 0.2 * np.sign(field)
    raise ValueError(f"unknown texture {params.texture!r}")


def render_object(params: ObjectParams, size: int = 32,
                  rng: np.random.Generator | None = None,
                  noise: float = 0.03) -> np.ndarray:
    """Render one object to a float32 RGB image in [0, 1].

    The background is a smooth two-tone gradient with additive noise so
    that networks must learn figure/ground separation rather than mean
    color statistics.
    """
    rng = rng or np.random.default_rng(0)
    d = _sdf(params, size)
    mask = 1.0 / (1.0 + np.exp(np.clip(d, -20, 20)))  # soft inside-mask

    bg_hue = (params.hue + 0.45 + 0.1 * rng.random()) % 1.0
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64) / size
    grad = 0.35 + 0.3 * (xs * rng.random() + ys * rng.random())
    bg = _hsv_to_rgb(np.full((size, size), bg_hue), np.full((size, size), 0.3),
                     grad)

    tex = _texture_field(params, size, rng)
    shade = 0.55 + 0.45 * np.clip(-d / (params.size * size), 0, 1)  # center highlight
    fg = _hsv_to_rgb(np.full((size, size), params.hue),
                     np.full((size, size), 0.75), np.clip(tex * shade, 0, 1))

    img = bg * (1 - mask[..., None]) + fg * mask[..., None]
    img += rng.normal(0.0, noise, size=img.shape)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def sample_object(rng: np.random.Generator,
                  family: str | None = None,
                  texture: str | None = None) -> ObjectParams:
    """Draw random object parameters, optionally fixing family/texture."""
    family = family or SHAPE_FAMILIES[rng.integers(len(SHAPE_FAMILIES))]
    texture = texture or TEXTURES[rng.integers(len(TEXTURES))]
    if family == "blob":
        size = rng.uniform(0.08, 0.18)       # blobs are small (pinchable)
    elif family == "card":
        size = rng.uniform(0.2, 0.42)
    else:
        size = rng.uniform(0.12, 0.4)
    aspect = rng.uniform(1.6, 3.0) if family == "cylinder" else rng.uniform(0.9, 1.4)
    return ObjectParams(
        family=family,
        size=float(size),
        aspect=float(aspect),
        angle=float(rng.uniform(0, np.pi)),
        hue=float(rng.random()),
        texture=texture,
        cx=float(rng.uniform(0.38, 0.62)),
        cy=float(rng.uniform(0.38, 0.62)),
    )


@dataclass
class Dataset:
    """An in-memory image dataset with (possibly soft) labels.

    Attributes
    ----------
    x:
        Images, shape ``(N, H, W, 3)`` float32 in [0, 1].
    y:
        Labels, shape ``(N, K)``; rows sum to 1 (one-hot or probabilistic).
    class_names:
        Length-K names of the label dimensions.
    """

    x: np.ndarray
    y: np.ndarray
    class_names: list[str]

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_classes(self) -> int:
        return self.y.shape[1]

    def split(self, train_fraction: float, rng: np.random.Generator | int = 0
              ) -> tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test)."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        n = len(self)
        order = rng.permutation(n)
        k = int(round(n * train_fraction))
        tr, te = order[:k], order[k:]
        return (Dataset(self.x[tr], self.y[tr], self.class_names),
                Dataset(self.x[te], self.y[te], self.class_names))

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Select a subset by index array."""
        return Dataset(self.x[indices], self.y[indices], self.class_names)

    def batches(self, batch_size: int,
                rng: np.random.Generator | None = None):
        """Yield ``(x, y)`` minibatches, shuffled when ``rng`` is given."""
        n = len(self)
        order = rng.permutation(n) if rng is not None else np.arange(n)
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            yield self.x[idx], self.y[idx]
