"""Data augmentation transforms for training.

Standard light augmentation for small-image training: horizontal flips,
random shifts (pad-and-crop) and brightness jitter. Used by the pretraining
recipe's ``augment`` option; all transforms are vectorised over the batch
and driven by an explicit generator for reproducibility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_flip", "random_shift", "brightness_jitter", "augment_batch"]


def random_flip(x: np.ndarray, rng: np.random.Generator,
                p: float = 0.5) -> np.ndarray:
    """Horizontally flip each image with probability ``p``."""
    flip = rng.random(x.shape[0]) < p
    out = x.copy()
    out[flip] = out[flip, :, ::-1, :]
    return out


def random_shift(x: np.ndarray, rng: np.random.Generator,
                 max_shift: int = 2) -> np.ndarray:
    """Shift each image by up to ``max_shift`` pixels (edge-padded)."""
    if max_shift == 0:
        return x.copy()
    n, h, w, c = x.shape
    padded = np.pad(x, ((0, 0), (max_shift, max_shift),
                        (max_shift, max_shift), (0, 0)), mode="edge")
    out = np.empty_like(x)
    dys = rng.integers(0, 2 * max_shift + 1, size=n)
    dxs = rng.integers(0, 2 * max_shift + 1, size=n)
    for i in range(n):
        out[i] = padded[i, dys[i]:dys[i] + h, dxs[i]:dxs[i] + w, :]
    return out


def brightness_jitter(x: np.ndarray, rng: np.random.Generator,
                      strength: float = 0.1) -> np.ndarray:
    """Scale each image's brightness by a factor in ``1 ± strength``."""
    factors = rng.uniform(1 - strength, 1 + strength,
                          size=(x.shape[0], 1, 1, 1)).astype(x.dtype)
    return np.clip(x * factors, 0.0, 1.0)


def augment_batch(x: np.ndarray, rng: np.random.Generator,
                  max_shift: int = 2,
                  brightness: float = 0.1) -> np.ndarray:
    """The full light-augmentation pipeline: flip → shift → brightness."""
    out = random_flip(x, rng)
    out = random_shift(out, rng, max_shift)
    return brightness_jitter(out, rng, brightness)
