"""Synthetic datasets: the pretraining task and the HANDS-like transfer task."""

from .hands import GRASP_TYPES, grasp_affinities, grasp_distribution, make_hands_dataset
from .imagenet import SYNTH_IMAGENET_CLASSES, make_synth_imagenet
from .transforms import augment_batch, brightness_jitter, random_flip, random_shift
from .synthetic import (
    SHAPE_FAMILIES,
    TEXTURES,
    Dataset,
    ObjectParams,
    render_object,
    sample_object,
)

__all__ = [
    "Dataset",
    "augment_batch",
    "brightness_jitter",
    "random_flip",
    "random_shift",
    "ObjectParams",
    "render_object",
    "sample_object",
    "SHAPE_FAMILIES",
    "TEXTURES",
    "GRASP_TYPES",
    "grasp_affinities",
    "grasp_distribution",
    "make_hands_dataset",
    "SYNTH_IMAGENET_CLASSES",
    "make_synth_imagenet",
]
