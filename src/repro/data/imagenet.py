"""SynthImageNet: the pretraining task standing in for ImageNet.

The paper's networks are pretrained on ImageNet (1000 classes, millions of
images) before being transferred to the much simpler grasp-estimation task.
SynthImageNet reproduces the *relationship* between the two tasks at
tractable scale: 20 classes formed by the cross product of 5 shape families
and 4 surface textures, with one-hot labels. Distinguishing
``cylinder×checker`` from ``cylinder×stripes`` requires texture-sensitive
late features that the 5-way grasp task does not need — exactly the
"problem-specific last layers" that layer removal targets.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SHAPE_FAMILIES, TEXTURES, Dataset, render_object, sample_object

__all__ = ["SYNTH_IMAGENET_CLASSES", "make_synth_imagenet"]

#: Class names: the cross product of shape family and texture.
SYNTH_IMAGENET_CLASSES = [f"{fam}_{tex}" for fam in SHAPE_FAMILIES
                          for tex in TEXTURES]


def make_synth_imagenet(n: int = 2000, image_size: int = 32,
                        seed: int = 0) -> Dataset:
    """Generate the pretraining dataset.

    Classes are balanced up to rounding; labels are one-hot (ImageNet
    convention), unlike the probabilistic HANDS labels.
    """
    rng = np.random.default_rng(seed)
    k = len(SYNTH_IMAGENET_CLASSES)
    x = np.empty((n, image_size, image_size, 3), dtype=np.float32)
    y = np.zeros((n, k), dtype=np.float32)
    for i in range(n):
        cls = i % k
        family = SHAPE_FAMILIES[cls // len(TEXTURES)]
        texture = TEXTURES[cls % len(TEXTURES)]
        params = sample_object(rng, family=family, texture=texture)
        x[i] = render_object(params, image_size, rng)
        y[i, cls] = 1.0
    order = rng.permutation(n)
    return Dataset(x[order], y[order], list(SYNTH_IMAGENET_CLASSES))
