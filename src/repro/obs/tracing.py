"""Request tracing over the serving stack's virtual clock.

A :class:`Span` is one event in a request's life (``enqueue → admit →
batch → forward → respond``, or ``drop`` when admission rejects it),
stamped in virtual milliseconds. :class:`Tracer` records spans into a
bounded in-memory :class:`TraceBuffer` — O(capacity) memory no matter how
long a trace runs, with an explicit count of spans dropped once full — and
is consumed duck-typed by :mod:`repro.serve` (the engine, queue and
batcher emit spans only when a tracer is attached, so the untraced hot
path stays unchanged).

Exporters live in :mod:`repro.obs.export`: JSONL (one span per line) and
the Chrome trace-event format (load in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

from collections import deque

__all__ = ["Span", "TraceBuffer", "Tracer"]


class Span:
    """One traced event. ``dur_ms == 0`` marks an instant event.

    A ``__slots__`` class rather than a dataclass: spans are created on the
    serving hot path (several per request), where attribute-dict and
    frozen-dataclass ``__setattr__`` costs are measurable.
    """

    __slots__ = ("name", "cat", "ts_ms", "dur_ms", "rid", "args")

    def __init__(self, name: str, cat: str, ts_ms: float,
                 dur_ms: float = 0.0, rid: int | None = None,
                 args: dict | None = None):
        self.name = name            # enqueue/admit/batch/forward/respond/...
        self.cat = cat              # component: "queue", "batch", "serve", ...
        self.ts_ms = ts_ms          # virtual-time start
        self.dur_ms = dur_ms
        self.rid = rid              # request id, when the span has one
        self.args = {} if args is None else args

    def __repr__(self) -> str:
        return (f"Span(name={self.name!r}, cat={self.cat!r}, "
                f"ts_ms={self.ts_ms}, dur_ms={self.dur_ms}, "
                f"rid={self.rid}, args={self.args})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f)
                   for f in self.__slots__)

    def as_dict(self) -> dict:
        d = {"name": self.name, "cat": self.cat, "ts_ms": self.ts_ms,
             "dur_ms": self.dur_ms}
        if self.rid is not None:
            d["rid"] = self.rid
        if self.args:
            d["args"] = dict(self.args)
        return d


class TraceBuffer:
    """Bounded FIFO of spans; the oldest spans yield once capacity is hit.

    ``dropped`` counts evictions so an exported trace is never silently
    partial: ``len(buffer) + buffer.dropped`` is the true span count.

    Internally spans live as plain field tuples and only become
    :class:`Span` objects on iteration: the write side sits on the serving
    hot path (a C-level ``deque.append`` per span), while the read side —
    exports, tests, post-hoc analysis — happily pays the construction.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self._raw: deque[tuple] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, span: Span) -> None:
        if len(self._raw) == self.capacity:
            self.dropped += 1
        self._raw.append((span.name, span.cat, span.ts_ms, span.dur_ms,
                          span.rid, span.args))

    def __len__(self) -> int:
        return len(self._raw)

    def __iter__(self):
        return (Span(*fields) for fields in self._raw)

    def clear(self) -> None:
        self._raw.clear()
        self.dropped = 0


class Tracer:
    """The write side of tracing, shared by every serve component.

    All methods are cheap enough to call per request; none allocate when
    tracing is off because callers guard with ``if tracer is not None``.
    """

    def __init__(self, capacity: int = 65536):
        self.buffer = TraceBuffer(capacity)
        # per-name counts of spans evicted from the buffer; live spans are
        # counted by scanning the buffer on read, so the hot path only pays
        # for name bookkeeping once the buffer is full
        self._evicted: dict[str, int] = {}

    # -- recording -----------------------------------------------------------
    def emit(self, name: str, cat: str, ts_ms: float, dur_ms: float,
             rid: int | None, args: dict | None) -> None:
        """Positional fast path: record one span with no argument binding.

        This is what the serve components call per request — CPython's
        keyword/``**kwargs`` binding costs ~0.3µs per call, which across
        several spans per request is measurable against the serving loop's
        own work. Pass ``args=None`` rather than ``{}`` when a span has no
        payload; the read side normalises it.
        """
        buf = self.buffer
        raw = buf._raw
        if len(raw) == buf.capacity:
            old = raw[0][0]
            self._evicted[old] = self._evicted.get(old, 0) + 1
            buf.dropped += 1
        raw.append((name, cat, ts_ms, dur_ms, rid, args))

    def instant(self, name: str, cat: str, ts_ms: float,
                rid: int | None = None, **args) -> None:
        """Record a zero-duration event (keyword-friendly wrapper)."""
        self.emit(name, cat, ts_ms, 0.0, rid, args)

    def span(self, name: str, cat: str, ts_ms: float, dur_ms: float,
             rid: int | None = None, **args) -> None:
        """Record a complete (duration) event (keyword-friendly wrapper)."""
        self.emit(name, cat, ts_ms, dur_ms, rid, args)

    # -- read-out ------------------------------------------------------------
    def _by_name(self) -> dict[str, int]:
        counts = dict(self._evicted)
        for rec in self.buffer._raw:
            counts[rec[0]] = counts.get(rec[0], 0) + 1
        return counts

    def count(self, name: str) -> int:
        """Total spans recorded under ``name`` (including evicted ones)."""
        n = self._evicted.get(name, 0)
        for rec in self.buffer._raw:
            if rec[0] == name:
                n += 1
        return n

    def spans(self, name: str | None = None) -> list[Span]:
        """Buffered spans, optionally filtered by name, in record order."""
        if name is None:
            return list(self.buffer)
        return [s for s in self.buffer if s.name == name]

    def snapshot(self) -> dict:
        """Span statistics as a plain dict (for the metrics registry)."""
        return {"buffered": len(self.buffer),
                "dropped": self.buffer.dropped,
                "by_name": dict(sorted(self._by_name().items()))}

    def report(self) -> str:
        """One line per span kind plus buffer occupancy."""
        snap = self.snapshot()
        parts = [f"{name}: {n}" for name, n in snap["by_name"].items()]
        lines = ["spans: " + (", ".join(parts) if parts else "none"),
                 f"buffer: {snap['buffered']}/{self.buffer.capacity} "
                 f"({snap['dropped']} dropped)"]
        return "\n".join(lines)

    def clear(self) -> None:
        self.buffer.clear()
        self._evicted.clear()
