"""Per-layer profiling hooks: CUDA-event-style tables from live forwards.

:class:`LayerProfiler` attaches to a network's forward hooks
(:meth:`repro.nn.graph.Network.register_forward_hook`) and treats every
full forward pass it observes as one profiled *run*: the executed kernels
are identified from the device's fusion plan, each kernel's recorded
latency is drawn from the device model at the current run index (warm-up
ramp, run-to-run noise, stragglers and the CUDA-event overhead included),
and an event-free end-to-end sample is accumulated alongside. After a
configurable warm-up discard the accumulated runs average into a
:class:`repro.device.profiler.LatencyTable` — the exact structure the
paper's ratio-form :class:`repro.estimators.ProfilerEstimator` consumes —
so a table profiled through live hooks reproduces the estimator chain of
``repro.device.profile_network`` while also working on traffic the
profiler did not generate itself (e.g. a serving engine's forwards).

The overhead-correcting ratio form matters here exactly as in the paper:
every per-kernel record carries the event overhead, so the table total
exceeds the end-to-end time and only the removed/total *ratio* is
bias-free.
"""

from __future__ import annotations

import numpy as np

from repro.device.fusion import fuse_kernels
from repro.device.latency import network_latency
from repro.device.profiler import LatencyTable, LayerRecord
from repro.device.spec import DeviceSpec, stable_seed
from repro.nn.graph import Network

__all__ = ["LayerProfiler", "profile_forward"]


class LayerProfiler:
    """Accumulate per-layer latency tables from hooked forward passes.

    Use as a context manager around any code that runs forwards::

        with LayerProfiler(net, xavier()) as prof:
            for _ in range(120):
                net.forward_one(x)
        table = prof.table()            # LatencyTable, warm-up discarded
        est = ProfilerEstimator(net, table)

    Parameters
    ----------
    net, spec:
        The built network to observe and the device whose timing model
        supplies per-kernel latencies.
    warmup:
        Number of leading runs discarded from :meth:`table` — the device's
        cold-start ramp; the default matches the paper's 200-run warm-up.
        :meth:`warm_up` jumps the run counter past the ramp without paying
        for real forwards (the counterpart of
        :meth:`repro.device.ServiceTimeSampler.warm_up`).
    rng:
        Seed or generator for measurement noise — fixed seed, identical
        tables.
    """

    def __init__(self, net: Network, spec: DeviceSpec,
                 rng: np.random.Generator | int | None = None,
                 fused: bool = True, precision: str = "fp32",
                 warmup: int = 200):
        if not net.built:
            raise RuntimeError(f"network {net.name!r} must be built first")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.net = net
        self.spec = spec
        self.warmup = warmup
        if rng is None:
            rng = stable_seed("obs-profile", net.name, spec.name)
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self._rng = rng
        breakdown = network_latency(net, spec, fused=fused,
                                    precision=precision)
        self._kernel_ms = {k.anchor: k.latency_ms for k in breakdown.kernels}
        self._kernel_nodes = {k.anchor: k.node_names
                              for k in breakdown.kernels}
        # a kernel is "done" when its last fused member node has executed
        self._closer = {g.node_names[-1]: g.anchor
                        for g in fuse_kernels(net, enabled=fused)}
        self._first_node = next(iter(net.nodes))
        # per-run accumulation
        self._runs: int = 0
        self._sums: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._e2e_sum = 0.0
        self._e2e_runs = 0
        self._current: dict[str, float] | None = None
        self._run_factors: tuple[float, float] = (1.0, 1.0)
        self._handle: int | None = None

    # -- attachment ----------------------------------------------------------
    def attach(self) -> "LayerProfiler":
        """Register the forward hook (idempotent). Returns ``self``."""
        if self._handle is None:
            self._handle = self.net.register_forward_hook(self._on_node)
        return self

    def detach(self) -> None:
        """Unregister the hook; accumulated runs are kept."""
        if self._handle is not None:
            self.net.remove_hook(self._handle)
            self._handle = None

    def __enter__(self) -> "LayerProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    def warm_up(self, runs: int | None = None) -> None:
        """Advance the run counter past the cold-start ramp for free.

        Warm-up runs exist only to move the device past its clock ramp;
        their activations are irrelevant, so skipping the real forwards is
        equivalent to executing them and much cheaper. Defaults to skipping
        exactly the configured ``warmup`` discard.
        """
        self._runs += self.warmup if runs is None else int(runs)
        self._current = None

    # -- the hook ------------------------------------------------------------
    def _on_node(self, net, node, ins, out) -> None:
        if node.name == self._first_node:
            # a new forward pass: fix this run's warm-up/noise regime
            warm = 1.0 + self.spec.warmup_factor * np.exp(
                -self._runs / self.spec.warmup_decay_runs)
            straggler = 1.0
            if self._rng.random() < self.spec.straggler_prob:
                straggler = (1.0 + self.spec.straggler_scale
                             * self._rng.random())
            self._run_factors = (warm, straggler)
            self._current = {}
            self._runs += 1
        if self._current is None:
            return      # attached mid-forward; wait for the next full pass
        anchor = self._closer.get(node.name)
        if anchor is None:
            return      # fused into a later node's kernel
        warm, straggler = self._run_factors
        noise = max(float(self._rng.normal(1.0, self.spec.noise_std)), 0.5)
        true_ms = self._kernel_ms[anchor] * warm * noise * straggler
        self._current[anchor] = true_ms
        if node.name == self.net.output_name:
            self._finish_run()

    def _finish_run(self) -> None:
        assert self._current is not None
        overhead = self.spec.event_overhead_ms()
        warm, straggler = self._run_factors
        if self._runs > self.warmup:
            for anchor, true_ms in self._current.items():
                # the event record inflates every kernel — the artefact the
                # paper's ratio formula exists to cancel
                recorded = true_ms + overhead * warm * straggler
                self._sums[anchor] = self._sums.get(anchor, 0.0) + recorded
                self._counts[anchor] = self._counts.get(anchor, 0) + 1
            self._e2e_sum += sum(self._current.values())
            self._e2e_runs += 1
        self._current = None

    # -- read-out ------------------------------------------------------------
    @property
    def runs(self) -> int:
        """Forward passes observed so far (including warm-up runs)."""
        return self._runs

    @property
    def recorded_runs(self) -> int:
        """Runs that survived the warm-up discard."""
        return self._e2e_runs

    def table(self) -> LatencyTable:
        """Average the recorded runs into a profiling table."""
        if not self._e2e_runs:
            raise RuntimeError(
                f"no profiled runs past the {self.warmup}-run warm-up; "
                "run more forwards while attached")
        records = tuple(
            LayerRecord(anchor, self._kernel_nodes[anchor],
                        self._sums[anchor] / self._counts[anchor])
            for anchor in self._kernel_ms if anchor in self._sums)
        return LatencyTable(self.net.name, self.spec.name, records,
                            self._e2e_sum / self._e2e_runs)

    def snapshot(self) -> dict:
        """Profiler state as a plain dict (for the metrics registry)."""
        out = {"network": self.net.name, "device": self.spec.name,
               "runs": self._runs, "recorded_runs": self._e2e_runs,
               "warmup": self.warmup}
        if self._e2e_runs:
            table = self.table()
            out["end_to_end_ms"] = table.end_to_end_ms
            out["recorded_total_ms"] = table.recorded_total_ms
        return out


def profile_forward(net: Network, spec: DeviceSpec,
                    x: np.ndarray | None = None, runs: int = 100,
                    warmup: int = 200,
                    rng: np.random.Generator | int | None = None,
                    **kwargs) -> LatencyTable:
    """Drive ``runs`` recorded forwards through a fresh :class:`LayerProfiler`.

    The convenience entry point behind ``python -m repro profile``: skips
    the ``warmup`` cold-start runs (paper protocol: 200), builds a zero
    input when ``x`` is omitted (profiling only cares about execution, not
    activations) and returns the accumulated table.
    """
    if runs < 1:
        raise ValueError(f"need at least one recorded run, got {runs}")
    if x is None:
        x = np.zeros(net.input_shape, dtype=np.float32)
    x = np.asarray(x)
    # a single un-batched sample goes through the explicit single-sample
    # API; anything batched profiles as one run per forward pass
    run = net.forward_one if x.shape == net.input_shape else net.forward
    with LayerProfiler(net, spec, rng=rng, warmup=warmup,
                       **kwargs) as prof:
        prof.warm_up()
        for _ in range(runs):
            run(x)
    return prof.table()
