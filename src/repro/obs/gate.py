"""Bench-regression gate: BENCH payloads vs committed baselines, thresholded.

CI's bench-smoke job produces ``BENCH_*.json`` each run; until now those
were uploaded as artifacts and archived in the run store, but nothing
*failed* when a number slid. This module turns the perf trajectory into a
gate: every numeric leaf of the just-produced payloads (flattened to
``file.dotted.path`` keys, the same scheme :class:`repro.obs.RunStore`
uses) is matched against :class:`GateRule` patterns with per-metric
tolerances — ratio floors for higher-is-better metrics (throughput,
speedup, accuracy-at-deadline), absolute increase caps for
lower-is-better rates (deadline misses) — and any violation fails the
gate with a readable table of movers.

Wall-clock caveat, encoded in the default rules: absolute
``samples_per_sec`` numbers vary with the runner, so the forward bench is
gated on its *speedup* columns (compiled over interpreted on the same
machine), which is the stable signal. Everything else in the BENCH files
is virtual-time or analytic and deterministic.

Used by ``scripts/bench_gate.py`` (the CI step) and ``repro obs gate``
(the same thresholds from the CLI).
"""

from __future__ import annotations

import fnmatch
import json
import os
from dataclasses import dataclass, field

from .store import _numeric_leaves

__all__ = ["GateRule", "GateFinding", "GateReport", "DEFAULT_RULES",
           "evaluate_gate", "load_bench_dir", "run_gate"]


@dataclass(frozen=True)
class GateRule:
    """One tolerance: keys matching ``pattern`` must stay within bounds.

    ``min_ratio`` — current must be ≥ ``min_ratio × baseline``
    (higher-is-better metrics). ``max_abs_increase`` — current must be ≤
    ``baseline + max_abs_increase`` (lower-is-better rates; e.g. ``0.02``
    allows +2pp on a miss rate). The first rule whose pattern matches a
    key governs it; unmatched keys are informational only.
    """

    pattern: str
    min_ratio: float | None = None
    max_abs_increase: float | None = None
    note: str = ""

    def check(self, baseline: float, current: float) -> str | None:
        """``None`` when within tolerance, else a short violation reason."""
        if self.min_ratio is not None:
            if baseline > 0 and current < self.min_ratio * baseline:
                return (f"{current:.6g} < {self.min_ratio:g}x baseline "
                        f"{baseline:.6g}")
            if baseline < 0 and current < baseline:  # already-negative floor
                return f"{current:.6g} below baseline {baseline:.6g}"
        if self.max_abs_increase is not None \
                and current > baseline + self.max_abs_increase:
            return (f"{current:.6g} > baseline {baseline:.6g} "
                    f"+ {self.max_abs_increase:g}")
        return None


#: The repo's tolerances. Order matters: first match governs a key.
DEFAULT_RULES: tuple[GateRule, ...] = (
    # compiled-forward throughput, runner-independent form
    GateRule("BENCH_forward.*speedup*", min_ratio=0.85,
             note="compiled speedup >= 0.85x baseline"),
    GateRule("BENCH_forward.*samples_per_sec*",
             note="informational: wall-clock, runner-dependent"),
    # deadline-miss rates move at most +2pp anywhere they appear
    GateRule("*miss_rate*", max_abs_increase=0.02,
             note="miss rates within +2pp absolute"),
    GateRule("*misses*", max_abs_increase=2.0,
             note="paired miss counts drift <= 2 requests"),
    # serving/cluster throughput floors
    GateRule("*admitted_rps*", min_ratio=0.85,
             note="admitted throughput >= 0.85x baseline"),
    GateRule("*throughput*", min_ratio=0.85,
             note="throughput >= 0.85x baseline"),
    # the builder bake-off must not lose accuracy at the deadline
    GateRule("BENCH_builders.*accuracy_at_deadline*", min_ratio=0.98,
             note="accuracy-at-deadline >= 0.98x baseline"),
)


@dataclass(frozen=True)
class GateFinding:
    """One compared key: its values, governing rule, and verdict."""

    key: str
    baseline: float | None
    current: float | None
    rule: GateRule | None
    violation: str | None = None


@dataclass
class GateReport:
    """Outcome of one gate evaluation."""

    findings: list[GateFinding] = field(default_factory=list)

    @property
    def violations(self) -> list[GateFinding]:
        return [f for f in self.findings if f.violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def gated(self) -> list[GateFinding]:
        """Findings a rule with actual bounds governs."""
        return [f for f in self.findings if f.rule is not None
                and (f.rule.min_ratio is not None
                     or f.rule.max_abs_increase is not None)]

    def table(self, top: int = 20) -> str:
        """Readable movers table: violations first, then biggest movers."""
        def rel(f: GateFinding) -> float:
            if not f.baseline or f.current is None:
                return 0.0
            return abs(f.current - f.baseline) / abs(f.baseline)

        bounded = set(map(id, self.gated))
        rows = sorted(self.findings,
                      key=lambda f: (not f.violation, -rel(f),
                                     id(f) not in bounded, f.key))
        lines = [f"{'key':58s} {'baseline':>12} {'current':>12} verdict"]
        for f in rows[:max(top, len(self.violations))]:
            b = "-" if f.baseline is None else f"{f.baseline:12.6g}"
            c = "-" if f.current is None else f"{f.current:12.6g}"
            verdict = f.violation or ("ok" if f.rule is not None else "info")
            lines.append(f"{f.key[:58]:58s} {b:>12} {c:>12} {verdict}")
        if len(rows) > top:
            lines.append(f"... {len(rows) - top} more keys")
        status = "PASS" if self.ok else "FAIL"
        lines.append(f"gate: {status} — {len(self.gated)} gated keys, "
                     f"{len(self.violations)} violation(s)")
        return "\n".join(lines)


def _governing(key: str, rules) -> GateRule | None:
    for rule in rules:
        if fnmatch.fnmatch(key, rule.pattern):
            return rule
    return None


def evaluate_gate(baseline: dict[str, dict], current: dict[str, dict],
                  rules: "tuple[GateRule, ...]" = DEFAULT_RULES
                  ) -> GateReport:
    """Compare payload dicts (``name → JSON payload``) under the rules.

    Baseline files absent from the current run are a violation for gated
    keys (a benchmark silently disappearing must not pass); current files
    without a baseline are informational (a new benchmark gates once its
    baseline is committed).
    """
    report = GateReport()
    for name in sorted(baseline):
        base_leaves = _numeric_leaves(baseline[name], name)
        cur_leaves = (_numeric_leaves(current[name], name)
                      if name in current else {})
        for key in sorted(base_leaves):
            rule = _governing(key, rules)
            bounded = rule is not None and (
                rule.min_ratio is not None
                or rule.max_abs_increase is not None)
            if key not in cur_leaves:
                report.findings.append(GateFinding(
                    key, base_leaves[key], None, rule,
                    "missing from current run" if bounded else None))
                continue
            violation = (rule.check(base_leaves[key], cur_leaves[key])
                         if rule is not None else None)
            report.findings.append(GateFinding(
                key, base_leaves[key], cur_leaves[key], rule, violation))
    for name in sorted(set(current) - set(baseline)):
        for key, value in sorted(_numeric_leaves(current[name],
                                                 name).items()):
            report.findings.append(GateFinding(key, None, value, None))
    return report


def load_bench_dir(directory: str) -> dict[str, dict]:
    """Every ``BENCH_*.json`` in a directory as ``stem → payload``."""
    payloads: dict[str, dict] = {}
    if not os.path.isdir(directory):
        return payloads
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            with open(os.path.join(directory, entry)) as fh:
                payloads[entry[:-len(".json")]] = json.load(fh)
    return payloads


def run_gate(baseline_dir: str, current_dir: str = ".", top: int = 20,
             rules: "tuple[GateRule, ...]" = DEFAULT_RULES) -> int:
    """Directory-level gate: print the table, return a process exit code."""
    baseline = load_bench_dir(baseline_dir)
    if not baseline:
        print(f"bench gate: no BENCH_*.json baselines in {baseline_dir!r}; "
              "nothing to gate")
        return 0
    current = load_bench_dir(current_dir)
    report = evaluate_gate(baseline, current, rules)
    print(f"bench gate: {len(baseline)} baseline file(s) from "
          f"{baseline_dir!r} vs current run in {current_dir!r}")
    print(report.table(top))
    return 0 if report.ok else 1
