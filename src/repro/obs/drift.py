"""Estimator-drift monitoring: is the latency model still telling the truth?

Every serving decision — admission, batch growth, ladder transitions —
trusts the estimator's predicted service time. The paper quantifies
estimator error *offline* (Fig. 9); :class:`DriftMonitor` tracks it
*online*: each completed request feeds its predicted latency and observed
service time into a rolling window of signed relative errors, and when the
windowed mean absolute error exceeds a threshold a structured
:class:`DriftEvent` fires (with a cooldown so a sustained miscalibration
produces a stream of events at window granularity, not one per request).
The events are exported through metrics snapshots, traced as ``drift``
spans, and — with ``ServerConfig(online_reestimation=True)`` — consumed by
:class:`repro.netcut.online.ReestimationController`, which re-fits the
latency tables from the live observations and rebuilds the TRN ladder.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["DriftEvent", "DriftMonitor"]


@dataclass(frozen=True)
class DriftEvent:
    """One threshold crossing of the rolling estimator error."""

    time_ms: float              # virtual time of the triggering observation
    rung: str | None            # TRN serving when the drift was detected
    rel_error: float            # windowed mean |observed - predicted| / predicted
    bias: float                 # windowed mean signed error (sign = direction)
    window: int                 # observations in the window at firing time
    threshold: float

    def as_dict(self) -> dict:
        return {"time_ms": self.time_ms, "rung": self.rung,
                "rel_error": self.rel_error, "bias": self.bias,
                "window": self.window, "threshold": self.threshold}


class DriftMonitor:
    """Streaming relative-error tracker over (predicted, observed) pairs.

    Parameters
    ----------
    threshold:
        Windowed mean absolute relative error above which a
        :class:`DriftEvent` fires. The default 0.25 sits far above the
        device's run-to-run noise but well below a systematically wrong
        estimate (a 2x bias shows up as ~0.5-1.0).
    window:
        Observations in the rolling window.
    min_observations:
        Observations required before the monitor may fire (a fresh window
        of noise should not alarm).
    cooldown:
        Minimum observations between events (default: ``window``, so each
        event reflects substantially fresh evidence).
    events_capacity:
        Retained events. A sustained miscalibration on a long-running
        server fires one event per cooldown forever; only the most recent
        ``events_capacity`` are kept (``events_total`` keeps the true
        count for snapshots).
    """

    def __init__(self, threshold: float = 0.25, window: int = 64,
                 min_observations: int = 32, cooldown: int | None = None,
                 events_capacity: int = 256):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if events_capacity < 1:
            raise ValueError("events_capacity must be >= 1")
        self.threshold = threshold
        self.window = window
        self.min_observations = min(min_observations, window)
        self.cooldown = window if cooldown is None else cooldown
        self._errors: deque[float] = deque(maxlen=window)
        # running sums keep observe() O(1); recomputing over the window
        # per observation is measurable on the serving hot path
        self._abs_sum = 0.0
        self._signed_sum = 0.0
        self._observations = 0
        self._skipped = 0
        # start past the cooldown: the first event is gated only by
        # min_observations
        self._since_event = self.cooldown
        self.events: deque[DriftEvent] = deque(maxlen=events_capacity)
        self.events_total = 0

    # -- feeding -------------------------------------------------------------
    def observe(self, predicted_ms: float, observed_ms: float,
                time_ms: float = 0.0,
                rung: str | None = None) -> DriftEvent | None:
        """Feed one (prediction, observation) pair; returns an event or None.

        Degenerate pairs (non-positive or non-finite prediction,
        non-finite observation — e.g. a zero estimate out of a freshly
        re-fit estimator) are skipped and counted rather than raised:
        this runs on the serving hot path mid-request, where one bad
        estimate must not crash the server. The skip count is surfaced
        in :meth:`snapshot`.
        """
        # coerce once: callers pass numpy scalars (sampled service times),
        # and numpy-scalar arithmetic pays ufunc dispatch on every op below
        predicted_ms = float(predicted_ms)
        observed_ms = float(observed_ms)
        if (not math.isfinite(predicted_ms) or predicted_ms <= 0
                or not math.isfinite(observed_ms)):
            self._skipped += 1
            return None
        err = (observed_ms - predicted_ms) / predicted_ms
        if len(self._errors) == self.window:
            evicted = self._errors[0]
            self._abs_sum -= abs(evicted)
            self._signed_sum -= evicted
        self._errors.append(err)
        self._abs_sum += abs(err)
        self._signed_sum += err
        self._observations += 1
        self._since_event += 1
        if (len(self._errors) < self.min_observations
                or self._since_event < self.cooldown):
            return None
        err = self.rolling_error
        if err <= self.threshold:
            return None
        event = DriftEvent(time_ms, rung, err, self.bias,
                           len(self._errors), self.threshold)
        self.events.append(event)
        self.events_total += 1
        self._since_event = 0
        return event

    def reset_window(self) -> None:
        """Discard the rolling error window (the event log survives).

        Called after the estimator itself changes — e.g. an online
        re-estimation rewrote the latency tables — so stale pre-change
        errors cannot re-fire an event against predictions that no longer
        exist. The next event is again gated by ``min_observations`` of
        fresh evidence.
        """
        self._errors.clear()
        self._abs_sum = 0.0
        self._signed_sum = 0.0
        self._since_event = self.cooldown

    # -- read-out ------------------------------------------------------------
    @property
    def observations(self) -> int:
        """Total (predicted, observed) pairs fed so far."""
        return self._observations

    @property
    def skipped(self) -> int:
        """Degenerate (predicted, observed) pairs skipped so far."""
        return self._skipped

    @property
    def rolling_error(self) -> float:
        """Windowed mean absolute relative error."""
        if not self._errors:
            return float("nan")
        return self._abs_sum / len(self._errors)

    @property
    def bias(self) -> float:
        """Windowed mean signed relative error (+: estimator too low)."""
        if not self._errors:
            return float("nan")
        return self._signed_sum / len(self._errors)

    @property
    def drifting(self) -> bool:
        """Whether the current window sits above the threshold."""
        return (len(self._errors) >= self.min_observations
                and self.rolling_error > self.threshold)

    def snapshot(self) -> dict:
        """Monitor state as a plain dict (for the metrics registry)."""
        return {"observations": self._observations,
                "skipped": self._skipped,
                "rolling_error": self.rolling_error,
                "bias": self.bias,
                "threshold": self.threshold,
                "drifting": self.drifting,
                "events_total": self.events_total,
                "events": [e.as_dict() for e in self.events]}

    def report(self) -> str:
        s = self.snapshot()
        status = "DRIFTING" if s["drifting"] else "ok"
        lines = [f"estimator drift: {status}  "
                 f"(rolling error {100 * s['rolling_error']:.2f}%, "
                 f"bias {100 * s['bias']:+.2f}%, "
                 f"threshold {100 * self.threshold:.0f}%, "
                 f"{s['observations']} observations, "
                 f"{s['skipped']} skipped, "
                 f"{s['events_total']} events)"]
        for e in self.events:
            lines.append(f"  t={e.time_ms:9.2f} ms  drift on "
                         f"{e.rung or '?'}: error "
                         f"{100 * e.rel_error:.1f}% "
                         f"(bias {100 * e.bias:+.1f}%)")
        return "\n".join(lines)
