"""A persistent run store: serving/bench runs as queryable SQLite rows.

``BENCH_*.json`` files are point-in-time artifacts; the :class:`RunStore`
turns them (plus any telemetry surface) into a *trajectory*: every
serve/cluster/bench run appends one ``runs`` row with its metadata, the
final value of every metric series (``summary``), the sampled
time-series points (``series``) and any JSON payloads (``artifacts``).
CI's bench-smoke job appends each commit's BENCH files, so regressions
become a query instead of an artifact diff.

Only the standard library is used (``sqlite3``, ``json``); the schema is
created on first open and is append-only — :meth:`RunStore.compare`
diffs two runs without mutating either.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

__all__ = ["RunStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    created REAL NOT NULL,
    meta TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS summary (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    metric TEXT NOT NULL,
    labels TEXT NOT NULL DEFAULT '{}',
    value REAL
);
CREATE TABLE IF NOT EXISTS series (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    metric TEXT NOT NULL,
    labels TEXT NOT NULL DEFAULT '{}',
    t_ms REAL NOT NULL,
    value REAL
);
CREATE TABLE IF NOT EXISTS artifacts (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    name TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_summary_run ON summary(run_id);
CREATE INDEX IF NOT EXISTS idx_series_run ON series(run_id, metric);
CREATE INDEX IF NOT EXISTS idx_artifacts_run ON artifacts(run_id);
"""


def _labels_json(labels) -> str:
    if not labels:
        return "{}"
    if isinstance(labels, tuple):
        labels = dict(labels)
    return json.dumps(labels, sort_keys=True)


def _numeric_leaves(obj, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric leaf of a JSON payload to ``dotted.path``."""
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = float(obj)
    elif isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(obj[key], path))
    elif isinstance(obj, list):
        for i, item in enumerate(obj):
            out.update(_numeric_leaves(item, f"{prefix}[{i}]"))
    return out


class RunStore:
    """Append-only SQLite store of runs, final metrics, series, payloads.

    ::

        store = RunStore("RUNSTORE.sqlite")
        run_id = store.add_run("bench.serve", meta={"seed": 0},
                               telemetry=telemetry,
                               artifacts={"BENCH_serve": payload})
        for row in store.compare(run_a, run_b)[:10]:
            print(row)

    ``telemetry`` may be a :class:`repro.obs.telemetry.Telemetry` (its
    families become the summary, its store the series) or ``None``.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writing -------------------------------------------------------------
    def _summarize(self, run_id: int, telemetry) -> list[tuple]:
        rows = []
        for name, fam in sorted(telemetry.families.items()):
            for labels, child in sorted(fam.children()):
                lj = _labels_json(labels)
                if fam.kind == "histogram":
                    snap = child.snapshot()
                    for stat in ("count", "mean_ms", "p50_ms", "p99_ms"):
                        v = snap[stat]
                        rows.append((run_id, f"{name}_{stat}", lj,
                                     None if v != v else float(v)))
                else:
                    rows.append((run_id, name, lj, float(child.value)))
        return rows

    def add_run(self, kind: str, meta: dict | None = None, telemetry=None,
                artifacts: dict[str, dict] | None = None,
                summary: dict[str, float] | None = None) -> int:
        """Append one run; returns its id.

        ``summary`` adds free-form final scalars (unlabeled) on top of
        whatever ``telemetry`` contributes; ``artifacts`` maps names to
        JSON-able payloads (e.g. a BENCH_*.json dict).
        """
        cur = self._conn.cursor()
        cur.execute(
            "INSERT INTO runs (kind, created, meta) VALUES (?, ?, ?)",
            (kind, time.time(), json.dumps(meta or {}, sort_keys=True)))
        run_id = cur.lastrowid
        rows: list[tuple] = []
        if telemetry is not None:
            rows.extend(self._summarize(run_id, telemetry))
            cur.executemany(
                "INSERT INTO series (run_id, metric, labels, t_ms, value)"
                " VALUES (?, ?, ?, ?, ?)",
                [(run_id, name, _labels_json(key), t, float(v))
                 for name in telemetry.store.names()
                 for key in telemetry.store.keys(name)
                 for t, v in telemetry.store.series(name, key)])
        for metric, value in sorted((summary or {}).items()):
            rows.append((run_id, metric, "{}",
                         None if value != value else float(value)))
        if rows:
            cur.executemany(
                "INSERT INTO summary (run_id, metric, labels, value)"
                " VALUES (?, ?, ?, ?)", rows)
        for name, payload in sorted((artifacts or {}).items()):
            cur.execute(
                "INSERT INTO artifacts (run_id, name, payload)"
                " VALUES (?, ?, ?)",
                (run_id, name, json.dumps(payload, sort_keys=True)))
        self._conn.commit()
        return run_id

    # -- querying ------------------------------------------------------------
    def runs(self, kind: str | None = None) -> list[dict]:
        """Every run (newest last), optionally filtered by kind."""
        sql = "SELECT id, kind, created, meta FROM runs"
        params: tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            params = (kind,)
        sql += " ORDER BY id"
        return [{"id": rid, "kind": k, "created": created,
                 "meta": json.loads(meta)}
                for rid, k, created, meta
                in self._conn.execute(sql, params)]

    def run(self, run_id: int) -> dict | None:
        rows = self.runs()
        for row in rows:
            if row["id"] == run_id:
                return row
        return None

    def summary(self, run_id: int) -> dict[str, float]:
        """Final metric values of one run, keyed ``metric{labels}``."""
        out = {}
        for metric, labels, value in self._conn.execute(
                "SELECT metric, labels, value FROM summary"
                " WHERE run_id = ? ORDER BY metric, labels", (run_id,)):
            key = metric if labels == "{}" else f"{metric}{labels}"
            out[key] = value
        return out

    def series(self, run_id: int, metric: str,
               labels: dict | None = None) -> list[tuple[float, float]]:
        """The stored points of one series of one run."""
        sql = ("SELECT t_ms, value FROM series WHERE run_id = ?"
               " AND metric = ?")
        params: list = [run_id, metric]
        if labels is not None:
            sql += " AND labels = ?"
            params.append(_labels_json(labels))
        sql += " ORDER BY t_ms"
        return [(t, v) for t, v in self._conn.execute(sql, params)]

    def series_names(self, run_id: int) -> list[str]:
        return [m for (m,) in self._conn.execute(
            "SELECT DISTINCT metric FROM series WHERE run_id = ?"
            " ORDER BY metric", (run_id,))]

    def artifacts(self, run_id: int) -> dict[str, dict]:
        return {name: json.loads(payload)
                for name, payload in self._conn.execute(
                    "SELECT name, payload FROM artifacts WHERE run_id = ?"
                    " ORDER BY name", (run_id,))}

    def compare(self, run_a: int, run_b: int) -> list[dict]:
        """Diff two runs: summary metrics plus artifact numeric leaves.

        Returns one row per key present in either run —
        ``{key, a, b, delta, rel}`` — sorted by descending absolute
        relative change (the biggest movers first), ties and
        both-missing keys last in key order.
        """
        for rid in (run_a, run_b):
            if self.run(rid) is None:
                raise KeyError(f"run {rid} not in {self.path}")

        def surface(rid: int) -> dict[str, float]:
            out = dict(self.summary(rid))
            for name, payload in self.artifacts(rid).items():
                for path, value in _numeric_leaves(payload).items():
                    out[f"{name}:{path}"] = value
            return out

        a, b = surface(run_a), surface(run_b)
        rows = []
        for key in sorted(set(a) | set(b)):
            va, vb = a.get(key), b.get(key)
            delta = rel = None
            if va is not None and vb is not None:
                delta = vb - va
                if va:
                    rel = delta / abs(va)
                elif delta:
                    rel = float("inf") if delta > 0 else float("-inf")
                else:
                    rel = 0.0
            rows.append({"key": key, "a": va, "b": vb,
                         "delta": delta, "rel": rel})

        def order(row: dict):
            rel = row["rel"]
            if rel is None:
                return (1, 0.0, row["key"])
            mag = abs(rel) if rel == rel else 0.0
            if mag == float("inf"):
                mag = float("1e18")
            return (0, -mag, row["key"])

        rows.sort(key=order)
        return rows
