"""Labeled time-series telemetry over the serving stack's virtual clock.

This module is the canonical home of the metric primitives the rest of
the repo consumes (:class:`Counter`, :class:`Gauge`,
:class:`LatencyHistogram` — re-exported by :mod:`repro.serve.metrics`
and :mod:`repro.obs.registry` for compatibility), plus the label model
and time dimension PR-2's snapshot-only registry lacked:

- :class:`MetricFamily` — one named metric with a fixed label schema
  (``serve_requests_total{event=...,tenant=...}``); children are created
  lazily per label combination, Prometheus-style.
- :class:`TimeSeriesStore` — bounded ring buffers of ``(t_ms, value)``
  points per (metric, labels) key, sampled on the *virtual* clock so a
  run's evolution is deterministic and replayable; counters get windowed
  deltas, gauges windowed means, and any series can be merged across one
  label (how :class:`repro.cluster.ClusterMetrics` folds replicas).
- :class:`Telemetry` — the registry tying it together: family creation,
  keyed sample-time collectors (queue depth, ladder cursor, fair-share
  gauges), interval-gated :meth:`~Telemetry.maybe_sample`, and an
  optional :class:`repro.obs.alerts.AlertEngine` evaluated at every
  sample.
- :func:`to_openmetrics` / :func:`to_json` — Prometheus/OpenMetrics text
  exposition (summary-style histograms) and a JSON export of the same
  surface plus the stored series.

Everything here is deliberately serve-agnostic: the serving stack
imports telemetry, never the reverse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricFamily",
    "TimeSeriesStore",
    "Telemetry",
    "to_openmetrics",
    "to_json",
]

LabelKey = tuple[tuple[str, str], ...]


# -- primitives (canonical home; serve/cluster re-export) --------------------

@dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def increment(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """A named value that goes up and down (queue depth, current rung, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class LatencyHistogram:
    """Streaming histogram over log-spaced bins (default 1 µs .. 10 s).

    Quantiles are estimated as the geometric midpoint of the bin holding
    the requested rank, which bounds the relative error by the bin ratio
    (~12% at 20 bins/decade) without retaining samples.
    """

    def __init__(self, lo_ms: float = 1e-3, hi_ms: float = 1e4,
                 bins_per_decade: int = 20):
        self.lo_ms = lo_ms
        self.hi_ms = hi_ms
        decades = math.log10(hi_ms / lo_ms)
        self.n_bins = int(round(decades * bins_per_decade))
        self._ratio = (hi_ms / lo_ms) ** (1.0 / self.n_bins)
        # two extra bins catch under/overflow
        self.counts = [0] * (self.n_bins + 2)
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0

    def _bin(self, ms: float) -> int:
        if ms < self.lo_ms:
            return 0
        if ms >= self.hi_ms:
            return self.n_bins + 1
        return 1 + int(math.log(ms / self.lo_ms) / math.log(self._ratio))

    def observe(self, ms: float) -> None:
        """Record one latency sample (milliseconds)."""
        self.counts[self._bin(ms)] += 1
        self.count += 1
        self.total_ms += ms
        self.min_ms = min(self.min_ms, ms)
        self.max_ms = max(self.max_ms, ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else float("nan")

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one (cluster roll-up).

        Bin-exact because both histograms share the log-spaced layout;
        histograms with different bounds or resolutions cannot be merged
        without re-binning, so that is rejected.
        """
        if (other.lo_ms, other.hi_ms, other.n_bins) != \
                (self.lo_ms, self.hi_ms, self.n_bins):
            raise ValueError("cannot merge histograms with different bins")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total_ms += other.total_ms
        self.min_ms = min(self.min_ms, other.min_ms)
        self.max_ms = max(self.max_ms, other.max_ms)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) in milliseconds.

        The under/overflow bins have no geometric midpoint (their inner
        edge is the only boundary known), so they clamp to ``lo_ms`` and
        ``max_ms`` respectively — further bounded by the observed
        min/max, which keeps the estimate sane when every sample falls
        outside the binned range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * (self.count - 1)
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum > rank:
                if i == 0:                      # underflow: all < lo_ms
                    return min(self.lo_ms, self.max_ms)
                if i == self.n_bins + 1:        # overflow: clamp to max
                    return self.max_ms
                lo = self.lo_ms * self._ratio ** (i - 1)
                return min(max(lo * math.sqrt(self._ratio), self.min_ms),
                           self.max_ms)
        return self.max_ms

    def snapshot(self) -> dict:
        """Summary statistics as a plain dict."""
        empty = self.count == 0
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "min_ms": float("nan") if empty else self.min_ms,
            "max_ms": float("nan") if empty else self.max_ms,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
        }


# -- the label model ---------------------------------------------------------

class MetricFamily:
    """One named metric with a fixed label schema and lazy children.

    ``kind`` is ``"counter"``, ``"gauge"`` or ``"histogram"``; children
    are one primitive per distinct label-value combination, created on
    first touch::

        requests = telemetry.counter("serve_requests_total",
                                     "requests by life-cycle event",
                                     labelnames=("event", "tenant"))
        requests.labels(event="arrived", tenant="batch").increment()

    ``labels()`` returns the live child, so hot paths should resolve a
    child once and keep the bound handle rather than re-resolving per
    event.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "_children",
                 "_hist_kwargs")

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: tuple[str, ...] = (),
                 hist_kwargs: dict | None = None):
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], object] = {}
        self._hist_kwargs = dict(hist_kwargs or {})

    def _make(self):
        if self.kind == "counter":
            return Counter(self.name)
        if self.kind == "gauge":
            return Gauge(self.name)
        return LatencyHistogram(**self._hist_kwargs)

    def labels(self, **labelvalues):
        """The child for this label combination (created on first use)."""
        try:
            key = tuple(str(labelvalues[n]) for n in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}") from exc
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}")
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    def child(self, values: tuple[str, ...] = ()):
        """Positional-label variant of :meth:`labels` (hot-path friendly)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label "
                f"values, got {len(values)}")
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._make()
        return child

    def children(self):
        """Iterate ``(label_key, child)`` with label_key name/value pairs."""
        for values, child in self._children.items():
            yield tuple(zip(self.labelnames, values)), child

    def snapshot(self) -> dict:
        """The family as one JSON-able dict (children keyed by labels)."""
        out = {"kind": self.kind, "help": self.help,
               "labelnames": list(self.labelnames), "children": []}
        for key, child in sorted(self.children()):
            value = child.snapshot() if self.kind == "histogram" \
                else child.value
            out["children"].append({"labels": dict(key), "value": value})
        return out


# -- the time dimension ------------------------------------------------------

class TimeSeriesStore:
    """Bounded ring buffers of ``(t_ms, value)`` per (metric, labels) key.

    Appends must be in non-decreasing virtual time per key (the sampler
    guarantees this); reads never mutate. ``capacity`` bounds each
    series, so memory is O(series x capacity) no matter how long a run
    goes on.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 2:
            raise ValueError("series capacity must be >= 2")
        self.capacity = capacity
        self._series: dict[tuple[str, LabelKey], deque] = {}

    def __len__(self) -> int:
        return len(self._series)

    @staticmethod
    def _key(name: str, labels: dict | LabelKey | None) -> tuple:
        if labels is None:
            labels = ()
        if isinstance(labels, dict):
            labels = tuple(sorted((str(k), str(v))
                                  for k, v in labels.items()))
        return (name, tuple(labels))

    def record(self, name: str, labels, t_ms: float, value: float) -> None:
        """Append one point to the series (creating it on first touch)."""
        key = self._key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = deque(maxlen=self.capacity)
        series.append((t_ms, value))

    def names(self) -> list[str]:
        """Distinct metric names, sorted."""
        return sorted({name for name, _ in self._series})

    def keys(self, name: str) -> list[LabelKey]:
        """All label combinations recorded under ``name``, sorted."""
        return sorted(k for n, k in self._series if n == name)

    def series(self, name: str, labels=None) -> list[tuple[float, float]]:
        """The points of one exact (name, labels) series (empty if unknown)."""
        return list(self._series.get(self._key(name, labels), ()))

    def latest(self, name: str, labels=None) -> float | None:
        pts = self._series.get(self._key(name, labels))
        return pts[-1][1] if pts else None

    def delta(self, name: str, labels, window_ms: float,
              now_ms: float) -> float | None:
        """Counter increase over the trailing window ending at ``now_ms``.

        The baseline is the last point at or before ``now - window``; a
        series younger than the window baselines at zero (counters start
        at zero). Returns ``None`` when the series has no point inside
        the window — no evidence, not zero evidence.
        """
        pts = self._series.get(self._key(name, labels))
        if not pts:
            return None
        cutoff = now_ms - window_ms
        latest = None
        baseline = 0.0
        for t, v in pts:
            if t > now_ms:
                break
            if t <= cutoff:
                baseline = v
            else:
                latest = v
        if latest is None:
            return None
        return latest - baseline

    def window_mean(self, name: str, labels, window_ms: float,
                    now_ms: float) -> float | None:
        """Mean of the gauge points inside the trailing window."""
        pts = self._series.get(self._key(name, labels))
        if not pts:
            return None
        cutoff = now_ms - window_ms
        total, n = 0.0, 0
        for t, v in pts:
            if cutoff < t <= now_ms and v == v:   # skip NaN points
                total += v
                n += 1
        return total / n if n else None

    def merged(self, name: str, drop_label: str
               ) -> dict[LabelKey, list[tuple[float, float]]]:
        """Sum series across one label (step-function carry-forward).

        The cross-replica roll-up: every series of ``name`` that carries
        ``drop_label`` is grouped by its remaining labels, and within a
        group the values are summed at the union of all timestamps, each
        source contributing its last-known value between its own samples.
        Series without the label pass through unchanged.
        """
        groups: dict[LabelKey, list[deque]] = {}
        for (n, key), pts in self._series.items():
            if n != name:
                continue
            rest = tuple(kv for kv in key if kv[0] != drop_label)
            groups.setdefault(rest, []).append(pts)
        out: dict[LabelKey, list[tuple[float, float]]] = {}
        for rest, sources in groups.items():
            times = sorted({t for pts in sources for t, _ in pts})
            merged = []
            cursors = [0] * len(sources)
            last = [0.0] * len(sources)
            for t in times:
                for i, pts in enumerate(sources):
                    seq = list(pts)
                    while cursors[i] < len(seq) and seq[cursors[i]][0] <= t:
                        last[i] = seq[cursors[i]][1]
                        cursors[i] += 1
                merged.append((t, sum(last)))
            out[rest] = merged
        return out

    def snapshot(self) -> dict:
        """Every series as ``{name: [{labels, points}, ...]}`` (JSON-able)."""
        out: dict[str, list] = {}
        for (name, key), pts in sorted(self._series.items()):
            out.setdefault(name, []).append(
                {"labels": dict(key),
                 "points": [[t, v] for t, v in pts]})
        return out


# -- the registry ------------------------------------------------------------

class Telemetry:
    """Labeled metric families + virtual-clock sampling + alerting.

    One ``Telemetry`` instance is the monitoring surface of one serving
    stack (a server, a cluster, a benchmark run). Components create
    families idempotently (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram`), register keyed *collectors* — callables invoked
    at sample time to refresh derived gauges — and the engine drives
    :meth:`maybe_sample` on its virtual clock, which snapshots every
    family into the :class:`TimeSeriesStore` and evaluates the attached
    :class:`~repro.obs.alerts.AlertEngine`.

    Mountable on a :class:`repro.obs.MetricsRegistry` (it exposes
    ``snapshot()``/``report()``).
    """

    def __init__(self, sample_interval_ms: float = 1.0,
                 capacity: int = 2048, tracer=None):
        if sample_interval_ms <= 0:
            raise ValueError("sample_interval_ms must be positive")
        self.sample_interval_ms = sample_interval_ms
        self.store = TimeSeriesStore(capacity)
        self.tracer = tracer
        self.families: dict[str, MetricFamily] = {}
        self.alerts = None
        self._collectors: dict[str, object] = {}
        self._last_sample_ms: float | None = None
        self.samples_taken = 0

    # -- family creation (idempotent, schema-checked) ------------------------
    def _family(self, name: str, kind: str, help: str,
                labelnames: tuple[str, ...],
                hist_kwargs: dict | None = None) -> MetricFamily:
        fam = self.families.get(name)
        if fam is None:
            fam = self.families[name] = MetricFamily(
                name, kind, help, labelnames, hist_kwargs)
        elif fam.kind != kind or fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind} with "
                f"labels {fam.labelnames}; cannot re-register as {kind} "
                f"with {tuple(labelnames)}")
        return fam

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  **hist_kwargs) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, hist_kwargs)

    # -- collectors ----------------------------------------------------------
    def collector(self, key: str, fn) -> None:
        """Register (or replace) a sample-time callback ``fn(now_ms)``.

        Keyed replacement is what keeps repeated runs sane: a fresh
        engine registering under the same key supersedes the dead one
        instead of piling up stale closures.
        """
        self._collectors[key] = fn

    def remove_collector(self, key: str) -> None:
        self._collectors.pop(key, None)

    # -- alerting ------------------------------------------------------------
    def attach_alerts(self, engine) -> None:
        """Evaluate this :class:`~repro.obs.alerts.AlertEngine` per sample."""
        self.alerts = engine

    # -- sampling ------------------------------------------------------------
    def maybe_sample(self, now_ms: float) -> bool:
        """Sample iff the virtual clock advanced a full interval.

        A clock that moved *backwards* means a new run started on the
        same telemetry (every run's virtual time begins at zero), so the
        gate resets rather than going silent for the rest of the run.
        """
        last = self._last_sample_ms
        if last is not None and now_ms < last:
            self._last_sample_ms = None
            last = None
        if last is not None and now_ms - last < self.sample_interval_ms:
            return False
        self.sample(now_ms)
        return True

    def sample(self, now_ms: float) -> None:
        """Record every family into the store; collectors run first."""
        for key in sorted(self._collectors):
            self._collectors[key](now_ms)
        record = self.store.record
        for fam in self.families.values():
            if fam.kind == "histogram":
                for labels, hist in fam.children():
                    record(fam.name + "_count", labels, now_ms, hist.count)
                    record(fam.name + "_mean", labels, now_ms,
                           hist.mean_ms if hist.count else 0.0)
                    record(fam.name + "_p99", labels, now_ms,
                           hist.quantile(0.99) if hist.count else 0.0)
            else:
                for labels, child in fam.children():
                    record(fam.name, labels, now_ms, child.value)
        self._last_sample_ms = now_ms
        self.samples_taken += 1
        if self.alerts is not None:
            self.alerts.evaluate(now_ms, self.store)

    # -- read-out ------------------------------------------------------------
    def snapshot(self) -> dict:
        out = {
            "sample_interval_ms": self.sample_interval_ms,
            "samples_taken": self.samples_taken,
            "families": {name: fam.snapshot()
                         for name, fam in sorted(self.families.items())},
        }
        if self.alerts is not None:
            out["alerts"] = self.alerts.snapshot()
        return out

    def report(self) -> str:
        lines = [f"telemetry: {len(self.families)} families, "
                 f"{len(self.store)} series, "
                 f"{self.samples_taken} samples"]
        for name, fam in sorted(self.families.items()):
            for labels, child in sorted(fam.children()):
                label_str = ",".join(f"{k}={v}" for k, v in labels)
                tag = f"{name}{{{label_str}}}" if label_str else name
                if fam.kind == "histogram":
                    s = child.snapshot()
                    lines.append(
                        f"  {tag}: n={s['count']} p50 {s['p50_ms']:.3f} "
                        f"p99 {s['p99_ms']:.3f} ms")
                else:
                    lines.append(f"  {tag}: {child.value:g}")
        if self.alerts is not None:
            lines.append(self.alerts.report())
        return "\n".join(lines)


# -- exposition --------------------------------------------------------------

def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _labels_text(labels: LabelKey, extra: tuple = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _num(value: float) -> str:
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def to_openmetrics(telemetry: Telemetry) -> str:
    """Render every family in the Prometheus/OpenMetrics text format.

    Counters and gauges expose one sample per child; histograms expose
    summary-style ``quantile`` samples plus ``_sum``/``_count`` (the
    fixed-memory log-binned histogram reads out quantiles, not
    cumulative buckets). Families and children are emitted in sorted
    order, so the exposition is byte-deterministic for a given state.
    """
    lines: list[str] = []
    for name in sorted(telemetry.families):
        fam = telemetry.families[name]
        if fam.help:
            lines.append(f"# HELP {name} {fam.help}")
        kind = "summary" if fam.kind == "histogram" else fam.kind
        lines.append(f"# TYPE {name} {kind}")
        for labels, child in sorted(fam.children()):
            if fam.kind == "histogram":
                for q in (0.5, 0.95, 0.99):
                    lines.append(
                        f"{name}"
                        f"{_labels_text(labels, (('quantile', q),))} "
                        f"{_num(child.quantile(q))}")
                lines.append(f"{name}_sum{_labels_text(labels)} "
                             f"{_num(child.total_ms)}")
                lines.append(f"{name}_count{_labels_text(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{name}{_labels_text(labels)} "
                             f"{_num(child.value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_json(telemetry: Telemetry) -> dict:
    """The whole telemetry surface — families and stored series — as JSON."""
    return {"metrics": telemetry.snapshot(),
            "series": telemetry.store.snapshot()}
