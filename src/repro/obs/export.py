"""Trace exporters: JSONL and the Chrome trace-event format.

JSONL (one span per line) is the archival/diff-friendly form — two runs
with the same seed produce byte-identical files. The Chrome form follows
the Trace Event Format's ``traceEvents`` array of complete (``ph: "X"``)
and instant (``ph: "i"``) events with microsecond timestamps, so a serving
run can be dropped straight into ``chrome://tracing`` or Perfetto:
requests group by category track, batches show as duration blocks, drops
as instants.
"""

from __future__ import annotations

import json
from typing import Iterable

from .tracing import Span, Tracer

__all__ = ["to_jsonl", "write_jsonl", "chrome_trace", "write_chrome_trace"]


def _spans(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return list(source)


def _json_default(obj):
    # span args routinely carry numpy scalars (np.bool_, np.float64, ...)
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"Object of type {type(obj).__name__} "
                    "is not JSON serializable")


def _finite(obj):
    """Replace non-finite floats with None, recursively.

    ``json.dumps`` never routes floats through ``default`` — it writes the
    bare ``NaN``/``Infinity`` literals, which are not JSON and break every
    strict parser downstream. Same convention as
    :mod:`repro.workload.recording`: non-finite becomes ``null``.
    """
    if isinstance(obj, float):
        return obj if obj == obj and abs(obj) != float("inf") else None
    if isinstance(obj, dict):
        return {k: _finite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_finite(v) for v in obj]
    if hasattr(obj, "item") and isinstance(obj.item(), float):
        return _finite(obj.item())
    return obj


def to_jsonl(source: Tracer | Iterable[Span]) -> str:
    """Render spans as JSON Lines (sorted keys, NaN→null: stable bytes)."""
    return "\n".join(json.dumps(_finite(s.as_dict()), sort_keys=True,
                                default=_json_default)
                     for s in _spans(source))


def write_jsonl(source: Tracer | Iterable[Span], path: str) -> int:
    """Write a JSONL trace; returns the number of spans written."""
    spans = _spans(source)
    with open(path, "w") as fh:
        if spans:
            fh.write(to_jsonl(spans) + "\n")
    return len(spans)


def chrome_trace(source: Tracer | Iterable[Span],
                 process_name: str = "repro.serve") -> dict:
    """Build a Chrome trace-event dict (``json.dump`` it to a file).

    Virtual milliseconds map to trace microseconds; each span category
    becomes one thread track so queueing, batching and serving stack
    vertically in the viewer.
    """
    tids = {}
    events = [{"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
               "args": {"name": process_name}}]
    for span in _spans(source):
        tid = tids.setdefault(span.cat, len(tids))
        event = {"name": span.name, "cat": span.cat, "pid": 0, "tid": tid,
                 "ts": span.ts_ms * 1e3}
        args = dict(span.args)
        if span.rid is not None:
            args["rid"] = span.rid
        if args:
            event["args"] = args
        if span.dur_ms > 0:
            event["ph"] = "X"
            event["dur"] = span.dur_ms * 1e3
        else:
            event["ph"] = "i"
            event["s"] = "g"
        events.append(event)
    for cat, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": cat}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Tracer | Iterable[Span], path: str,
                       process_name: str = "repro.serve") -> int:
    """Write a ``chrome://tracing`` file; returns the span count."""
    spans = _spans(source)
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans, process_name), fh, sort_keys=True,
                  default=_json_default)
    return len(spans)
