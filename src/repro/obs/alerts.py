"""Multi-window SLO burn-rate alerting over the telemetry store.

The classic SRE burn-rate pattern, on virtual time: an alert fires only
when *both* a fast window (catches the spike quickly) and a slow window
(proves it is not a blip) show the SLO budget being consumed faster than
allowed, and resolves as soon as the fast window is clean again — so
firing is prompt, resolution is prompt, and a single stray bad sample
cannot page.

Two rule kinds cover the serving SLOs:

- ``ratio`` — an error-budget rule over two counter series (deadline
  misses over completions): the windowed miss *rate* is compared against
  ``burn_factor x objective``.
- ``gauge`` — a latency-budget rule over one gauge series (the engine's
  windowed p99): the windowed mean is compared the same way.

Everything is deterministic: rules read only the
:class:`repro.obs.telemetry.TimeSeriesStore`, which is sampled on the
virtual clock, so the same seeded run fires and resolves the same alerts
at the same virtual times, every time. Firing/resolved transitions are
recorded as :class:`AlertEvent`\\ s and traced as instant spans
(category ``alerts``) when a tracer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BurnRateRule", "AlertEvent", "AlertEngine",
           "default_slo_rules"]


@dataclass(frozen=True)
class BurnRateRule:
    """One SLO and the windows that guard it.

    ``objective`` is the budget (max acceptable miss-rate fraction, or
    p99 milliseconds); the alert fires while both windowed signals
    exceed ``burn_factor * objective``. ``labels`` restricts the rule to
    one exact label combination of the underlying series (empty = the
    unlabeled series).
    """

    name: str
    kind: str                       # "ratio" or "gauge"
    objective: float
    fast_ms: float
    slow_ms: float
    burn_factor: float = 1.0
    numerator: str = ""             # ratio: numerator counter series
    denominator: str = ""           # ratio: denominator counter series
    series: str = ""                # gauge: the series name
    numerator_labels: tuple = ()    # sorted ((k, v), ...) restrictions —
    denominator_labels: tuple = ()  # a counter family's children are
    labels: tuple = ()              # distinct store series per label set

    def __post_init__(self):
        if self.kind not in ("ratio", "gauge"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.objective <= 0:
            raise ValueError("objective must be positive")
        if self.fast_ms <= 0 or self.slow_ms < self.fast_ms:
            raise ValueError("need 0 < fast_ms <= slow_ms")
        if self.kind == "ratio" and not (self.numerator
                                         and self.denominator):
            raise ValueError("ratio rules need numerator and denominator")
        if self.kind == "gauge" and not self.series:
            raise ValueError("gauge rules need a series name")

    @property
    def threshold(self) -> float:
        return self.burn_factor * self.objective


@dataclass(frozen=True)
class AlertEvent:
    """One firing or resolved transition, in virtual time."""

    time_ms: float
    rule: str
    state: str                      # "firing" or "resolved"
    fast: float
    slow: float
    threshold: float

    def as_dict(self) -> dict:
        return {"time_ms": self.time_ms, "rule": self.rule,
                "state": self.state, "fast": self.fast, "slow": self.slow,
                "threshold": self.threshold}


@dataclass
class _RuleState:
    firing: bool = False
    since_ms: float = field(default=float("nan"))


class AlertEngine:
    """Evaluate burn-rate rules against the time-series store.

    Driven by :meth:`repro.obs.telemetry.Telemetry.sample` (attach with
    ``telemetry.attach_alerts(engine)``), or call :meth:`evaluate`
    directly after a run. State machine per rule: *fire* when fast AND
    slow windows both exceed the threshold, *resolve* when the fast
    window is back under it (the slow window is allowed to stay dirty —
    it remembers the incident, it should not prolong the page).
    """

    def __init__(self, rules: list[BurnRateRule], tracer=None):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError("alert rule names must be unique")
        self.rules = list(rules)
        self.tracer = tracer
        self.events: list[AlertEvent] = []
        self._states = {r.name: _RuleState() for r in self.rules}

    def _signal(self, rule: BurnRateRule, store, now_ms: float,
                window_ms: float) -> float | None:
        if rule.kind == "ratio":
            num = store.delta(rule.numerator, rule.numerator_labels,
                              window_ms, now_ms)
            den = store.delta(rule.denominator, rule.denominator_labels,
                              window_ms, now_ms)
            if num is None or den is None or den <= 0:
                return None
            return num / den
        return store.window_mean(rule.series, rule.labels, window_ms, now_ms)

    def evaluate(self, now_ms: float, store) -> list[AlertEvent]:
        """One evaluation pass; returns the transitions it produced."""
        produced = []
        for rule in self.rules:
            state = self._states[rule.name]
            fast = self._signal(rule, store, now_ms, rule.fast_ms)
            slow = self._signal(rule, store, now_ms, rule.slow_ms)
            thr = rule.threshold
            if not state.firing:
                if (fast is not None and slow is not None
                        and fast > thr and slow > thr):
                    state.firing = True
                    state.since_ms = now_ms
                    produced.append(AlertEvent(now_ms, rule.name, "firing",
                                               fast, slow, thr))
            elif fast is not None and fast <= thr:
                state.firing = False
                produced.append(AlertEvent(now_ms, rule.name, "resolved",
                                           fast, slow if slow is not None
                                           else float("nan"), thr))
        for event in produced:
            self.events.append(event)
            if self.tracer is not None:
                self.tracer.instant("alert", "alerts", event.time_ms,
                                    rule=event.rule, state=event.state,
                                    fast=event.fast, slow=event.slow)
        return produced

    @property
    def active(self) -> list[str]:
        """Names of the rules currently firing, sorted."""
        return sorted(name for name, s in self._states.items() if s.firing)

    def snapshot(self) -> dict:
        return {
            "rules": [{"name": r.name, "kind": r.kind,
                       "objective": r.objective, "fast_ms": r.fast_ms,
                       "slow_ms": r.slow_ms, "burn_factor": r.burn_factor}
                      for r in self.rules],
            "active": self.active,
            "events": [e.as_dict() for e in self.events],
        }

    def report(self) -> str:
        lines = [f"alerts: {len(self.rules)} rules, "
                 f"{len(self.events)} transitions, "
                 f"active: {', '.join(self.active) or 'none'}"]
        for e in self.events:
            lines.append(f"  t={e.time_ms:9.2f} ms  {e.state.upper():8s} "
                         f"{e.rule} (fast {e.fast:.4f} / slow {e.slow:.4f} "
                         f"vs {e.threshold:.4f})")
        return "\n".join(lines)


def default_slo_rules(deadline_ms: float, miss_budget: float = 0.05,
                      p99_factor: float = 1.0, fast_ms: float = 20.0,
                      slow_ms: float = 60.0, labels: dict | None = None
                      ) -> list[BurnRateRule]:
    """The canonical serving SLO rules over the engine's labeled series.

    - ``slo-miss-rate`` — deadline misses over completions above
      ``miss_budget``;
    - ``slo-p99`` — the engine's windowed p99 gauge above
      ``p99_factor x deadline_ms``.

    Windows default to fast 20 ms / slow 60 ms of *virtual* time, sized
    for the repo's canonical few-hundred-millisecond traces; production
    rules would be minutes/hours, the mechanics are identical.
    ``labels`` pins the rules to one replica's series in a cluster.
    """
    def key(**kv) -> tuple:
        merged = dict(labels or {})
        merged.update(kv)
        return tuple(sorted((str(k), str(v)) for k, v in merged.items()))

    return [
        BurnRateRule(
            "slo-miss-rate", "ratio", miss_budget, fast_ms, slow_ms,
            numerator="serve_requests_total",
            denominator="serve_requests_total",
            numerator_labels=key(event="deadline_miss"),
            denominator_labels=key(event="completed")),
        BurnRateRule(
            "slo-p99", "gauge", p99_factor * deadline_ms, fast_ms, slow_ms,
            series="serve_recent_p99_ms", labels=key()),
    ]
