"""Observability for the NetCut stack: profile, trace, and watch for drift.

NetCut's estimator is itself an observability artifact — a per-layer
latency table scaled by a removed/total ratio — and the serving stack's
control decisions all ride on that estimate. This subpackage makes the
instrumentation first-class:

- :class:`LayerProfiler` / :func:`profile_forward` — per-layer latency
  tables accumulated from live forward passes through graph hooks, with
  warm-up discard and the paper's event-overhead artefact, exported as the
  :class:`repro.device.LatencyTable` the ratio-form estimator consumes.
- :class:`Tracer` / :class:`TraceBuffer` / :class:`Span` — request spans
  (``enqueue → admit → batch → forward → respond``, ``drop``) over the
  serving engine's virtual clock, exportable as JSONL
  (:func:`write_jsonl`) or ``chrome://tracing`` files
  (:func:`write_chrome_trace`).
- :class:`DriftMonitor` — an online comparator of predicted vs. observed
  service times that raises structured :class:`DriftEvent`\\ s when the
  rolling relative error crosses a threshold.
- :class:`MetricsRegistry` — one ``snapshot()``/``report()`` namespace
  over serve metrics, trace statistics, drift state and custom gauges.
- :class:`Telemetry` — labeled metric families (:class:`Counter` /
  :class:`Gauge` / :class:`LatencyHistogram` children keyed by
  ``tenant``/``rung``/``replica``/``kernel`` labels) backed by a
  ring-buffer :class:`TimeSeriesStore` sampled on the virtual clock, with
  OpenMetrics text exposition (:func:`to_openmetrics`) and JSON export
  (:func:`to_json`).
- :class:`AlertEngine` — multi-window SLO burn-rate alerting
  (:class:`BurnRateRule`, :func:`default_slo_rules`) over the store,
  firing/resolving deterministically in virtual time.
- :class:`RunStore` — a SQLite archive of runs (metadata, final metrics,
  series, BENCH payloads) with ``runs``/``series``/``compare`` queries.
- :func:`evaluate_gate` / :class:`GateRule` — the bench-regression gate:
  fresh ``BENCH_*.json`` payloads vs committed baselines under per-metric
  tolerances, failing CI with a movers table when a number slides.

Attach to a server with plain keyword arguments::

    tracer, drift = Tracer(), DriftMonitor()
    telemetry = Telemetry(sample_interval_ms=1.0)
    telemetry.attach_alerts(AlertEngine(default_slo_rules(0.9)))
    server = Server(ladder, config, tracer=tracer, drift=drift,
                    telemetry=telemetry)
    server.run_trace(trace)
    print(to_openmetrics(telemetry))
    write_chrome_trace(tracer, "serve.trace.json")
"""

from .alerts import AlertEngine, AlertEvent, BurnRateRule, default_slo_rules
from .drift import DriftEvent, DriftMonitor
from .gate import (
    DEFAULT_RULES,
    GateFinding,
    GateReport,
    GateRule,
    evaluate_gate,
    load_bench_dir,
    run_gate,
)
from .export import chrome_trace, to_jsonl, write_chrome_trace, write_jsonl
from .profiler import LayerProfiler, profile_forward
from .registry import MetricsRegistry
from .store import RunStore
from .telemetry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricFamily,
    Telemetry,
    TimeSeriesStore,
    to_json,
    to_openmetrics,
)
from .tracing import Span, TraceBuffer, Tracer

__all__ = [
    "LayerProfiler",
    "profile_forward",
    "Span",
    "TraceBuffer",
    "Tracer",
    "to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "DriftEvent",
    "DriftMonitor",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricFamily",
    "TimeSeriesStore",
    "Telemetry",
    "to_openmetrics",
    "to_json",
    "BurnRateRule",
    "AlertEvent",
    "AlertEngine",
    "default_slo_rules",
    "MetricsRegistry",
    "RunStore",
    "GateRule",
    "GateFinding",
    "GateReport",
    "DEFAULT_RULES",
    "evaluate_gate",
    "load_bench_dir",
    "run_gate",
]
