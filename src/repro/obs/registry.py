"""A small metrics registry: one namespace over every metrics surface.

The serving stack (:class:`repro.serve.ServerMetrics`), the tracer, the
drift monitor and the layer profiler each expose ``snapshot() -> dict``
(and most a human-readable ``report() -> str``). The registry mounts any
number of such components under dotted names, adds free-standing counters
and gauges of its own, and renders everything through a single
``snapshot()``/``report()`` pair — the one monitoring surface the CLI's
``trace``/``profile`` subcommands print.

Snapshots are deep copies: mutating what a caller got back never corrupts
live metrics.
"""

from __future__ import annotations

import copy

from .telemetry import Counter, Gauge, LatencyHistogram

__all__ = ["Gauge", "MetricsRegistry"]


class MetricsRegistry:
    """Named counters, gauges, histograms and mounted components.

    ::

        reg = MetricsRegistry()
        reg.counter("serve.restarts").increment()
        reg.gauge("serve.rung").set(2)
        reg.mount("serve", result.metrics)     # anything with snapshot()
        reg.mount("trace", tracer)
        reg.mount("drift", drift_monitor)
        print(reg.report())
        data = reg.snapshot()                  # one nested, JSON-able dict
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._mounted: dict[str, object] = {}

    # -- creation ------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create a counter (idempotent by name)."""
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, **kwargs) -> LatencyHistogram:
        """Get or create a streaming latency histogram."""
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram(**kwargs)
        return self._histograms[name]

    def mount(self, name: str, component) -> None:
        """Mount any object exposing ``snapshot() -> dict`` under ``name``."""
        if not hasattr(component, "snapshot"):
            raise TypeError(
                f"component {name!r} has no snapshot() method")
        self._mounted[name] = component

    # -- read-out ------------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, deep-copied, under one nested dict."""
        out: dict = {}
        if self._counters:
            out["counters"] = {n: c.value for n, c in self._counters.items()}
        if self._gauges:
            out["gauges"] = {n: g.value for n, g in self._gauges.items()}
        if self._histograms:
            out["histograms"] = {n: h.snapshot()
                                 for n, h in self._histograms.items()}
        for name, component in self._mounted.items():
            out[name] = component.snapshot()
        return copy.deepcopy(out)

    def report(self) -> str:
        """A sectioned text block: own metrics first, then each mount."""
        lines: list[str] = []
        for name, c in sorted(self._counters.items()):
            lines.append(f"{name}: {c.value}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"{name}: {g.value:g}")
        for name, h in sorted(self._histograms.items()):
            s = h.snapshot()
            lines.append(f"{name}: n={s['count']} p50 {s['p50_ms']:.3f} "
                         f"p95 {s['p95_ms']:.3f} p99 {s['p99_ms']:.3f} ms")
        for name, component in self._mounted.items():
            lines.append(f"-- {name} --")
            if hasattr(component, "report"):
                lines.append(component.report())
            else:
                lines.append(str(component.snapshot()))
        return "\n".join(lines)
