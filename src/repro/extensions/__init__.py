"""Extensions beyond the paper: the related-work methods implemented on the
same substrates, for head-to-head comparison with layer removal.

- :mod:`repro.extensions.branchynet` — early exiting (runtime, single
  network).
- :mod:`repro.extensions.netadapt` — iterative channel pruning against a
  latency budget (design-time, single network).
"""

from .branchynet import BranchyNetwork, Exit, build_branchy
from .netadapt import NetAdaptConfig, NetAdaptResult, run_netadapt

__all__ = [
    "BranchyNetwork",
    "Exit",
    "build_branchy",
    "NetAdaptConfig",
    "NetAdaptResult",
    "run_netadapt",
]
