"""NetAdapt-style iterative channel pruning (related work, §II).

NetAdapt (Yang et al., 2018) adapts a *single* pretrained network to a
latency budget: every iteration it generates one candidate per prunable
layer (removing just enough of that layer's filters to save a fixed latency
step), short-fine-tunes each candidate, keeps the best, and repeats until
the budget is met. The NetCut paper's critique is the exploration cost —
each iteration retrains as many candidates as there are layers — which this
implementation reproduces and accounts for in simulated GPU-hours, so the
comparison benchmark can quantify it against NetCut's one-TRN-per-network
cost on the same task.

The pruning surgery supports chain topologies (MobileNetV1: stem plus
depthwise-separable blocks — the very network NetAdapt targeted). Removing
output channels of a pointwise convolution propagates through the following
batch-norm, activation, depthwise convolution and into the next pointwise
convolution's (or the head's) input dimension. The short fine-tune is
approximated by retraining the transfer head on the pruned features — the
same fast frozen-feature protocol the rest of this repository uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.k20m import TrainingCostModel
from repro.device.latency import network_latency
from repro.device.spec import DeviceSpec
from repro.metrics.angular import mean_angular_similarity
from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
)
from repro.train.features import record_gap_features
from repro.train.trainer import train_head_on_features

__all__ = ["prune_output_channels", "NetAdaptConfig", "NetAdaptResult",
           "run_netadapt"]


def _consumers(net: Network) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {name: [] for name in net.nodes}
    for node in net.nodes.values():
        for dep in node.inputs:
            out[dep].append(node.name)
    return out


def _reindex(param, idx: np.ndarray, axis: int) -> None:
    param.value = np.take(param.value, idx, axis=axis)
    param.grad = np.zeros_like(param.value)


def prune_output_channels(net: Network, conv_name: str,
                          keep: np.ndarray) -> None:
    """Remove output channels of a convolution, propagating downstream.

    ``keep`` is the sorted index array of channels to retain. The selection
    propagates through channel-wise layers (batch norm, activations,
    pooling, depthwise convolutions) until it is absorbed by the input
    dimension of the next full convolution or dense layer. Branching
    topologies are rejected — chain networks only (MobileNetV1 family).

    The network's cached shapes are refreshed afterwards.
    """
    node = net.nodes[conv_name]
    if not isinstance(node.layer, Conv2D):
        raise ValueError(f"{conv_name!r} is not a Conv2D")
    keep = np.asarray(keep, dtype=int)
    if keep.size < 1:
        raise ValueError("must keep at least one channel")
    conv = node.layer
    _reindex(conv.params["w"], keep, axis=3)
    if conv.use_bias:
        _reindex(conv.params["b"], keep, axis=0)
    conv.filters = int(keep.size)

    consumers = _consumers(net)
    current = conv_name
    while True:
        nexts = consumers[current]
        if len(nexts) != 1:
            raise ValueError(
                f"pruning requires a chain topology; {current!r} has "
                f"{len(nexts)} consumers")
        current = nexts[0]
        layer = net.nodes[current].layer
        if isinstance(layer, BatchNorm):
            for pname in ("gamma", "beta"):
                _reindex(layer.params[pname], keep, axis=0)
            layer.running_mean = layer.running_mean[keep].copy()
            layer.running_var = layer.running_var[keep].copy()
        elif isinstance(layer, DepthwiseConv2D):
            _reindex(layer.params["w"], keep, axis=2)
            if layer.use_bias:
                _reindex(layer.params["b"], keep, axis=0)
        elif isinstance(layer, Conv2D):
            _reindex(layer.params["w"], keep, axis=2)
            break
        elif isinstance(layer, Dense):
            _reindex(layer.params["w"], keep, axis=0)
            break
        # activations / pooling / GAP: channel count passes through
    net.build(0)  # refresh cached shapes; built layers are not re-initialised


def _channel_saliency(conv: Conv2D) -> np.ndarray:
    """L2 norm of each output channel's filter (magnitude pruning)."""
    w = conv.params["w"].value
    return np.sqrt(np.sum(w * w, axis=(0, 1, 2)))


@dataclass(frozen=True)
class NetAdaptConfig:
    """Hyper-parameters of the simplified NetAdapt loop."""

    step_ms: float = 0.02          # latency reduction per iteration
    min_channels: int = 2
    head_epochs_short: int = 15    # the per-candidate short fine-tune
    head_epochs_final: int = 50    # the final long fine-tune
    seed: int = 0


@dataclass
class IterationRecord:
    """One NetAdapt iteration: what was pruned and what it achieved."""

    iteration: int
    pruned_layer: str
    channels_left: int
    latency_ms: float
    proxy_accuracy: float
    candidates_evaluated: int


@dataclass
class NetAdaptResult:
    """Outcome of a NetAdapt run."""

    network: Network
    accuracy: float
    latency_ms: float
    history: list[IterationRecord] = field(default_factory=list)
    candidates_trained: int = 0
    train_hours: float = 0.0


def _head_input_node(net: Network) -> str:
    if "head_gap" in net.nodes:
        return net.nodes["head_gap"].inputs[0]
    return net.nodes["gap"].inputs[0]


def _proxy_accuracy(net: Network, train_x, train_y, test_x, test_y,
                    epochs: int, seed: int) -> float:
    node = _head_input_node(net)
    feats_train = record_gap_features(net, train_x, [node])
    feats_test = record_gap_features(net, test_x, [node])
    head = train_head_on_features(feats_train[node], train_y,
                                  train_y.shape[1], epochs=epochs,
                                  rng=seed).network
    return mean_angular_similarity(head.forward(feats_test[node]), test_y)


def run_netadapt(net: Network, budget_ms: float, device: DeviceSpec,
                 train_x: np.ndarray, train_y: np.ndarray,
                 test_x: np.ndarray, test_y: np.ndarray,
                 config: NetAdaptConfig = NetAdaptConfig(),
                 cost_model: TrainingCostModel | None = None,
                 max_iterations: int = 60) -> NetAdaptResult:
    """Adapt ``net`` (a chain-topology transfer model) to ``budget_ms``.

    The network is modified on a working copy; the input network is left
    untouched. Raises ``RuntimeError`` if the budget cannot be reached
    before every layer hits ``min_channels``.
    """
    work = net.copy()
    work.build(config.seed)
    result = NetAdaptResult(work, float("nan"),
                            network_latency(work, device).total_ms)
    prunable = [name for name, node in work.nodes.items()
                if isinstance(node.layer, Conv2D) and node.role != "head"]

    iteration = 0
    while result.latency_ms > budget_ms:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError("NetAdapt exceeded its iteration budget")
        target = result.latency_ms - config.step_ms
        # (reached_target, accuracy, latency, network, layer, channels)
        best: tuple[bool, float, float, Network, str, int] | None = None
        evaluated = 0
        for lname in prunable:
            conv = work.nodes[lname].layer
            if conv.filters <= config.min_channels:
                continue
            saliency = _channel_saliency(conv)
            order = np.argsort(saliency)  # prune smallest-norm first
            # smallest number of removals reaching the target, else the
            # deepest allowed prune of this layer (partial progress)
            candidate = None
            reached = False
            for n_remove in range(1, conv.filters - config.min_channels + 1):
                keep = np.sort(order[n_remove:])
                trial = work.copy()
                trial.build(config.seed)
                prune_output_channels(trial, lname, keep)
                ms = network_latency(trial, device).total_ms
                candidate = trial
                if ms <= target:
                    reached = True
                    break
            if candidate is None:
                continue
            ms = network_latency(candidate, device).total_ms
            if ms >= result.latency_ms - 1e-9:
                continue  # pruning this layer saves nothing
            evaluated += 1
            acc = _proxy_accuracy(candidate, train_x, train_y, test_x,
                                  test_y, config.head_epochs_short,
                                  config.seed)
            if cost_model is not None:
                result.train_hours += cost_model.train_hours_for_flops(
                    candidate.total_flops()) * (
                        config.head_epochs_short / cost_model.epochs)
            kept = candidate.nodes[lname].layer.filters
            # prefer candidates that reached the step target; among equals,
            # highest proxy accuracy (NetAdapt's selection rule)
            key = (reached, acc)
            if best is None or key > (best[0], best[1]):
                best = (reached, acc, ms, candidate, lname, kept)
        if best is None:
            raise RuntimeError(
                f"cannot reach {budget_ms} ms: no layer can be pruned "
                f"further at iteration {iteration}")
        _, acc, _, work, lname, kept = best
        result.network = work
        result.latency_ms = network_latency(work, device).total_ms
        result.candidates_trained += evaluated
        result.history.append(IterationRecord(
            iteration, lname, kept, result.latency_ms, acc, evaluated))

    result.accuracy = _proxy_accuracy(work, train_x, train_y, test_x,
                                      test_y, config.head_epochs_final,
                                      config.seed)
    if cost_model is not None:
        result.train_hours += cost_model.train_hours_for_flops(
            work.total_flops())
    return result
