"""BranchyNet-style early exiting (related work, §II).

BranchyNet (Teerapittayanon et al., 2016) attaches classifier heads at
intermediate points of a *single* network; at inference time a sample exits
at the first head whose prediction is confident enough, trading accuracy
for average latency at runtime. The NetCut paper positions layer removal as
complementary: TRNs are *static* trims selected across *multiple*
architectures at design time.

This module implements early exiting on top of the same substrates so the
two approaches can be compared head-to-head (see
``benchmarks/test_ext_branchynet.py``): a :class:`BranchyNetwork` shares
one trunk with per-exit heads trained on the trunk's frozen features, and
its runtime semantics (entropy-threshold exiting) give an
average-latency/accuracy curve parameterised by the confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.latency import network_latency
from repro.device.spec import DeviceSpec
from repro.metrics.angular import mean_angular_similarity
from repro.nn.graph import Network
from repro.train.features import record_gap_features
from repro.train.trainer import train_head_on_features
from repro.trim.blocks import block_boundaries
from repro.trim.removal import build_trn

__all__ = ["Exit", "BranchyNetwork", "build_branchy"]


def _entropy(p: np.ndarray) -> np.ndarray:
    return -np.sum(p * np.log(p + 1e-12), axis=-1)


@dataclass
class Exit:
    """One early-exit point: where it taps the trunk and its trained head."""

    node: str
    head: Network
    prefix_latency_ms: float
    head_latency_ms: float

    @property
    def exit_latency_ms(self) -> float:
        """Latency when a sample leaves through this exit."""
        return self.prefix_latency_ms + self.head_latency_ms


class BranchyNetwork:
    """A trunk network with early-exit heads and threshold-based routing."""

    def __init__(self, trunk: Network, exits: list[Exit]):
        if not exits:
            raise ValueError("need at least one exit")
        self.trunk = trunk
        self.exits = exits
        self.name = f"{trunk.name}[branchy x{len(exits)}]"

    def exit_predictions(self, x: np.ndarray,
                         batch_size: int = 128) -> list[np.ndarray]:
        """Per-exit predictions for every sample (one trunk pass)."""
        feats = record_gap_features(self.trunk, x,
                                    [e.node for e in self.exits],
                                    batch_size)
        return [e.head.forward(feats[e.node]) for e in self.exits]

    def route(self, x: np.ndarray, entropy_threshold: float
              ) -> tuple[np.ndarray, np.ndarray]:
        """Early-exit inference.

        Each sample leaves through the first exit whose prediction entropy
        falls below ``entropy_threshold``; samples that never qualify leave
        through the last exit. Returns ``(predictions, exit_indices)``.
        """
        per_exit = self.exit_predictions(x)
        n = x.shape[0]
        chosen = np.full(n, len(self.exits) - 1, dtype=int)
        preds = per_exit[-1].copy()
        undecided = np.ones(n, dtype=bool)
        for i, p in enumerate(per_exit[:-1]):
            confident = undecided & (_entropy(p) < entropy_threshold)
            chosen[confident] = i
            preds[confident] = p[confident]
            undecided &= ~confident
        return preds, chosen

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 entropy_threshold: float) -> tuple[float, float]:
        """(accuracy, mean latency in ms) at one confidence threshold."""
        preds, chosen = self.route(x, entropy_threshold)
        accuracy = mean_angular_similarity(preds, y)
        latency = float(np.mean(
            [self.exits[i].exit_latency_ms for i in chosen]))
        return accuracy, latency

    def tradeoff_curve(self, x: np.ndarray, y: np.ndarray,
                       thresholds: np.ndarray
                       ) -> list[tuple[float, float, float]]:
        """(threshold, accuracy, mean latency) for each threshold."""
        return [(float(t), *self.evaluate(x, y, float(t)))
                for t in thresholds]


def build_branchy(base: Network, device: DeviceSpec,
                  train_x: np.ndarray, train_y: np.ndarray,
                  exit_blocks: list[int] | None = None,
                  num_classes: int = 5, head_epochs: int = 50,
                  rng_seed: int = 0) -> BranchyNetwork:
    """Attach and train early exits on a pretrained base network.

    ``exit_blocks`` are indices into the base's feature blocks (default:
    quartile positions plus the final block). Exit heads use the same
    GAP + 2×FC/ReLU + FC/Softmax structure as TRN heads, trained on the
    trunk's frozen features. Exit latencies come from the device model:
    the trunk prefix up to the exit node plus that exit's head.
    """
    bounds = block_boundaries(base)
    if exit_blocks is None:
        quartiles = [len(bounds) // 4, len(bounds) // 2,
                     3 * len(bounds) // 4, len(bounds) - 1]
        exit_blocks = sorted(set(max(0, q) for q in quartiles))
    nodes = [bounds[i].output_node for i in exit_blocks]

    feats = record_gap_features(base, train_x, nodes)
    exits = []
    for node in nodes:
        head = train_head_on_features(feats[node], train_y, num_classes,
                                      epochs=head_epochs,
                                      rng=rng_seed).network
        # latency of the prefix + this head == latency of the equivalent TRN
        trn = build_trn(base, node, num_classes, rng=rng_seed)
        trn_ms = network_latency(trn, device).total_ms
        prefix_ms = network_latency(base.subgraph(node), device).total_ms
        exits.append(Exit(node, head, prefix_ms, trn_ms - prefix_ms))
    return BranchyNetwork(base, exits)
