"""High-level experiment workbench used by the examples and benchmarks.

Reproducing the paper's figures requires a handful of expensive shared
artifacts — pretrained base networks, the HANDS-like dataset, latency
measurements for every blockwise TRN, the full blockwise exploration with
retrained heads. :class:`Workbench` builds each of these once, caches them
(in memory and, for the heavyweight ones, as JSON/NPZ on disk keyed by the
experiment configuration) and exposes the paper's experiments as methods.

Typical use::

    wb = Workbench()
    exploration = wb.exploration()          # Figs 4-7 ground truth
    result = wb.netcut("profiler")          # Fig 10, profiler estimator
    result = wb.netcut("analytical")        # Fig 10, ε-SVR estimator
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.data.hands import make_hands_dataset
from repro.data.synthetic import Dataset
from repro.device.k20m import TrainingCostModel, k20m
from repro.device.runtime import measure_latency
from repro.device.spec import DeviceSpec
from repro.device.xavier import xavier
from repro.estimators.analytical import (
    AnalyticalEstimator,
    train_test_split_indices,
)
from repro.estimators.features import NetworkFeatures, extract_features
from repro.estimators.model_selection import stratified_split_indices
from repro.metrics.angular import mean_angular_similarity
from repro.netcut.adapters import AnalyticalAdapter, ProfilerAdapter
from repro.netcut.algorithm import NetCutResult, run_netcut
from repro.netcut.explorer import Exploration, explore_blockwise
from repro.nn.graph import Network
from repro.train.features import record_gap_features
from repro.train.pretrain import default_cache_dir, get_pretrained
from repro.train.trainer import train_head_on_features
from repro.trim.blocks import block_boundaries
from repro.trim.removal import build_trn
from repro.trim.search import Cutpoint, enumerate_blockwise
from repro.zoo.registry import NETWORKS

__all__ = ["ExperimentConfig", "LatencyPoint", "Workbench"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that identifies one experimental setup."""

    networks: tuple[str, ...] = tuple(NETWORKS)
    hands_images: int = 1100
    hands_seed: int = 1
    train_fraction: float = 0.75
    head_epochs: int = 50
    deadline_ms: float = 0.9
    num_classes: int = 5
    seed: int = 0

    def digest(self) -> str:
        """Stable short hash identifying this configuration on disk."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha1(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class LatencyPoint:
    """One measured TRN latency with its analytical features."""

    base_name: str
    trn_name: str
    cut_node: str
    blocks_removed: int
    measured_ms: float
    features: NetworkFeatures


class Workbench:
    """Caching facade over the full experimental pipeline."""

    def __init__(self, config: ExperimentConfig = ExperimentConfig(),
                 device: DeviceSpec | None = None,
                 cost_model: TrainingCostModel | None = None,
                 cache_dir: str | None = None,
                 pretrain_config=None):
        self.config = config
        self.device = device or xavier()
        self.cost_model = cost_model or k20m()
        self.pretrain_config = pretrain_config  # None = per-family default
        self.cache_dir = cache_dir or default_cache_dir()
        os.makedirs(self.cache_dir, exist_ok=True)
        self._bases: dict[str, Network] = {}
        self._hands: tuple[Dataset, Dataset] | None = None
        self._latency_points: list[LatencyPoint] | None = None
        self._base_latencies: dict[str, float] | None = None
        self._exploration: Exploration | None = None

    # -- shared artifacts ----------------------------------------------------
    def base(self, name: str) -> Network:
        """A pretrained base network (built, cached in memory)."""
        if name not in self._bases:
            self._bases[name] = get_pretrained(
                name, self.pretrain_config, cache_dir=self.cache_dir)
        return self._bases[name]

    def bases(self) -> list[Network]:
        """All configured pretrained base networks."""
        return [self.base(name) for name in self.config.networks]

    def hands(self) -> tuple[Dataset, Dataset]:
        """The HANDS-like dataset as a (train, test) split."""
        if self._hands is None:
            data = make_hands_dataset(self.config.hands_images,
                                      seed=self.config.hands_seed)
            self._hands = data.split(self.config.train_fraction,
                                     rng=self.config.seed)
        return self._hands

    def _cache_path(self, kind: str) -> str:
        # the device participates in the key: explorations and latency
        # datasets of different devices must not collide
        return os.path.join(
            self.cache_dir,
            f"{kind}-{self.device.name}-{self.config.digest()}.json")

    # -- latency ground truth --------------------------------------------------
    def transfer_model(self, name: str, cutpoint: Cutpoint | None = None
                       ) -> Network:
        """The transfer form of a base network, optionally trimmed.

        ``cutpoint=None`` keeps all feature blocks (the off-the-shelf
        network with the replaced classification head).
        """
        base = self.base(name)
        cut_node = (cutpoint.cut_node if cutpoint
                    else block_boundaries(base)[-1].output_node)
        return build_trn(base, cut_node, self.config.num_classes,
                         rng=self.config.seed)

    def base_latencies(self) -> dict[str, float]:
        """Measured latency of every off-the-shelf transfer model (Fig. 1)."""
        if self._base_latencies is None:
            self._base_latencies = {
                name: measure_latency(self.transfer_model(name),
                                      self.device).mean_ms
                for name in self.config.networks}
        return self._base_latencies

    def latency_dataset(self) -> list[LatencyPoint]:
        """Measured latency + analytical features of every blockwise TRN.

        Measuring does not require retraining, so this is cheap relative to
        exploration; it is the data the analytical estimator is fitted and
        evaluated on (Figs 8 and 9). Cached on disk as JSON.
        """
        if self._latency_points is not None:
            return self._latency_points
        path = self._cache_path("latency")
        if os.path.exists(path):
            with open(path) as fh:
                rows = json.load(fh)
            self._latency_points = [
                LatencyPoint(r["base_name"], r["trn_name"], r["cut_node"],
                             r["blocks_removed"], r["measured_ms"],
                             NetworkFeatures(**r["features"]))
                for r in rows]
            return self._latency_points
        base_ms = self.base_latencies()
        points: list[LatencyPoint] = []
        for name in self.config.networks:
            base = self.base(name)
            for cut in enumerate_blockwise(base):
                trn = build_trn(base, cut.cut_node, self.config.num_classes,
                                rng=self.config.seed)
                measured = measure_latency(trn, self.device).mean_ms
                points.append(LatencyPoint(
                    name, trn.name, cut.cut_node, cut.blocks_removed,
                    measured, extract_features(trn, base_ms[name])))
        with open(path, "w") as fh:
            json.dump([{
                "base_name": p.base_name, "trn_name": p.trn_name,
                "cut_node": p.cut_node, "blocks_removed": p.blocks_removed,
                "measured_ms": p.measured_ms,
                "features": asdict(p.features)} for p in points], fh)
        self._latency_points = points
        return points

    # -- estimators -------------------------------------------------------------
    def profiler_adapter(self) -> ProfilerAdapter:
        """A fresh profiler-based estimator adapter."""
        return ProfilerAdapter(self.device, self.config.num_classes)

    def analytical_model(self, kernel: str = "rbf", tune: bool = False,
                         stratified: bool = True
                         ) -> tuple[AnalyticalEstimator, np.ndarray]:
        """The paper's analytical estimator, fitted on a 20% split.

        Returns ``(fitted_model, test_indices)`` where the test indices
        select the held-out 80% of :meth:`latency_dataset`. The default
        split is stratified per base network (evenly spaced cutpoints) so
        the RBF model interpolates rather than extrapolates; pass
        ``stratified=False`` for the plain random split ablation.
        """
        points = self.latency_dataset()
        if stratified:
            train_idx, test_idx = stratified_split_indices(
                [p.base_name for p in points], 0.2)
        else:
            train_idx, test_idx = train_test_split_indices(
                len(points), 0.2, rng=self.config.seed)
        features = [points[i].features for i in train_idx]
        targets = np.array([points[i].measured_ms for i in train_idx])
        model = AnalyticalEstimator(kernel=kernel)
        if tune and kernel != "linear-ols":
            model.tune(features, targets,
                       folds=min(10, len(train_idx)), rng=self.config.seed)
        else:
            model.fit(features, targets)
        return model, test_idx

    def analytical_adapter(self, kernel: str = "rbf",
                           tune: bool = False) -> AnalyticalAdapter:
        """An analytical estimator adapter ready for :meth:`netcut`."""
        model, _ = self.analytical_model(kernel, tune)
        return AnalyticalAdapter(model, self.base_latencies(),
                                 self.config.num_classes)

    # -- retraining ----------------------------------------------------------
    def retrain_trn(self, base: Network, cutpoint: Cutpoint | None
                    ) -> tuple[Network, float]:
        """Retrain a single TRN (frozen-feature phase) and score it."""
        train_data, test_data = self.hands()
        cut_node = (cutpoint.cut_node if cutpoint
                    else block_boundaries(base)[-1].output_node)
        feats_train = record_gap_features(base, train_data.x, [cut_node])
        feats_test = record_gap_features(base, test_data.x, [cut_node])
        result = train_head_on_features(
            feats_train[cut_node], train_data.y, self.config.num_classes,
            epochs=self.config.head_epochs, rng=self.config.seed)
        pred = result.network.forward(feats_test[cut_node])
        accuracy = mean_angular_similarity(pred, test_data.y)
        trn = build_trn(base, cut_node, self.config.num_classes,
                        rng=self.config.seed)
        return trn, accuracy

    # -- the paper's experiments ------------------------------------------------
    def exploration(self, force: bool = False) -> Exploration:
        """The full blockwise exploration (148 TRNs + 7 originals).

        Cached on disk; this is the ground truth behind Figs 4-7 and the
        183-hour side of the 27× comparison.
        """
        path = self._cache_path("exploration")
        if self._exploration is None and not force and os.path.exists(path):
            self._exploration = Exploration.load(path)
        if self._exploration is None or force:
            train_data, test_data = self.hands()
            self._exploration = explore_blockwise(
                self.bases(), train_data, test_data, self.device,
                self.cost_model, self.config.head_epochs,
                rng_seed=self.config.seed)
            self._exploration.save(path)
        return self._exploration

    def iterative_exploration(self, name: str = "inception_v3",
                              force: bool = False) -> Exploration:
        """Exhaustive per-layer (iterative) exploration of one network.

        This is the Fig. 4 baseline that blockwise removal is compared
        against — every feature node of the network is a cutpoint.
        Cached on disk (per network).
        """
        path = os.path.join(
            self.cache_dir,
            f"iterative-{name}-{self.device.name}-{self.config.digest()}.json")
        if not force and os.path.exists(path):
            return Exploration.load(path)
        train_data, test_data = self.hands()
        exploration = explore_blockwise(
            [self.base(name)], train_data, test_data, self.device,
            self.cost_model, self.config.head_epochs, iterative=True,
            rng_seed=self.config.seed)
        exploration.save(path)
        return exploration

    def netcut(self, estimator: str = "profiler",
               deadline_ms: float | None = None) -> NetCutResult:
        """Run Algorithm 1 with one of the paper's estimators.

        ``estimator`` is ``"profiler"``, ``"analytical"`` or ``"linear"``
        (the ablation baseline).
        """
        if estimator == "profiler":
            adapter = self.profiler_adapter()
        elif estimator == "analytical":
            adapter = self.analytical_adapter("rbf")
        elif estimator == "linear":
            adapter = self.analytical_adapter("linear-ols")
        else:
            raise ValueError(f"unknown estimator {estimator!r}")
        return run_netcut(
            self.bases(),
            deadline_ms if deadline_ms is not None else self.config.deadline_ms,
            adapter,
            retrain=self.retrain_trn,
            measure=lambda trn: measure_latency(trn, self.device).mean_ms,
            base_latencies_ms=self.base_latencies(),
            cost_model=self.cost_model)
