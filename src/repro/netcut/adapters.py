"""Latency-estimator adapters for the NetCut algorithm.

Algorithm 1 only needs one operation from an estimator: *given a base
network and a cutpoint, predict the TRN's inference latency*. The two
estimation approaches of the paper plug in through a common interface:

- :class:`ProfilerAdapter` profiles each base network once (per-layer CUDA-
  event-style tables) and applies the ratio formula.
- :class:`AnalyticalAdapter` extracts device-agnostic features from the
  candidate TRN and queries a fitted ε-SVR (or the linear baseline).
- :class:`OracleAdapter` returns the noise-free device-model latency; it is
  not part of the paper and exists for testing and for quantifying
  estimator headroom in the ablations.
"""

from __future__ import annotations

from repro.device.latency import network_latency
from repro.device.profiler import profile_network
from repro.device.spec import DeviceSpec
from repro.estimators.analytical import AnalyticalEstimator
from repro.estimators.features import extract_features
from repro.estimators.profile_based import ProfilerEstimator
from repro.nn.graph import Network
from repro.trim.removal import build_trn, removed_node_set
from repro.trim.search import Cutpoint

__all__ = ["ProfilerAdapter", "AnalyticalAdapter", "OracleAdapter"]


class ProfilerAdapter:
    """Profiler-based estimation: one table per base network, built lazily.

    The table is profiled on the *transfer model* of the base network (all
    feature blocks kept, the new GAP/FC head attached) rather than on the
    pretraining network, so the head kernels in the table are exactly the
    ones every TRN will carry.
    """

    name = "profiler"

    def __init__(self, device: DeviceSpec, num_classes: int = 5):
        self.device = device
        self.num_classes = num_classes
        self._estimators: dict[str, ProfilerEstimator] = {}

    def _estimator_for(self, base: Network) -> ProfilerEstimator:
        if base.name not in self._estimators:
            from repro.trim.blocks import block_boundaries

            cut0 = block_boundaries(base)[-1].output_node
            transfer = build_trn(base, cut0, self.num_classes,
                                 name=base.name)
            table = profile_network(transfer, self.device)
            self._estimators[base.name] = ProfilerEstimator(transfer, table)
        return self._estimators[base.name]

    def estimate(self, base: Network, cutpoint: Cutpoint | None) -> float:
        """Estimated TRN latency in ms (``cutpoint=None`` = original net)."""
        estimator = self._estimator_for(base)
        if cutpoint is None:
            return estimator.table.end_to_end_ms
        return estimator.estimate(removed_node_set(base, cutpoint.cut_node))

    @property
    def tables_built(self) -> int:
        """How many per-network profiling tables exist so far."""
        return len(self._estimators)


class AnalyticalAdapter:
    """Analytical estimation: a fitted global model over network features."""

    def __init__(self, model: AnalyticalEstimator,
                 base_latencies_ms: dict[str, float],
                 num_classes: int = 5):
        """``base_latencies_ms`` maps base-network name to its measured
        latency (the first of the five paper features)."""
        self.model = model
        self.base_latencies_ms = dict(base_latencies_ms)
        self.num_classes = num_classes
        self.name = ("analytical" if getattr(model, "kernel", "rbf") != "linear-ols"
                     else "linear")

    def estimate(self, base: Network, cutpoint: Cutpoint | None) -> float:
        if base.name not in self.base_latencies_ms:
            raise KeyError(f"no base latency recorded for {base.name!r}")
        base_ms = self.base_latencies_ms[base.name]
        if cutpoint is None:
            return base_ms
        trn = build_trn(base, cutpoint.cut_node, self.num_classes)
        return self.model.predict_one(extract_features(trn, base_ms))


class OracleAdapter:
    """Noise-free device-model latency (testing / ablation only)."""

    name = "oracle"

    def __init__(self, device: DeviceSpec, num_classes: int = 5):
        self.device = device
        self.num_classes = num_classes

    def estimate(self, base: Network, cutpoint: Cutpoint | None) -> float:
        if cutpoint is None:
            return network_latency(base, self.device).total_ms
        trn = build_trn(base, cutpoint.cut_node, self.num_classes)
        return network_latency(trn, self.device).total_ms
