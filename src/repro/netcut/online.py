"""Online NetCut: drift-triggered re-estimation and live ladder rebuild.

NetCut's Algorithm 1 selects the deepest TRN whose *estimated* latency
meets the deadline — but in the serving stack those estimates are frozen
into the deployment artifact, while the device underneath keeps changing
(thermal throttling, contention, plain mis-profiling). The
:class:`repro.obs.DriftMonitor` already detects the divergence; this
module closes the loop:

1. every executed batch's ``(batch size, predicted, observed)`` service
   time is recorded per rung (:meth:`ReestimationController.record`);
2. when a :class:`~repro.obs.drift.DriftEvent` fires, the controller
   re-fits each rung's latency belief from the live observations — the
   same ratio form :class:`repro.estimators.ProfilerEstimator` uses over
   profiler tables, or a pooled :class:`repro.estimators.SVR` fit that
   interpolates the slowdown across the latency axis — and rewrites the
   rungs' latency tables in place (:meth:`repro.serve.ladder.TRNRung.
   recalibrate`);
3. the ladder is re-synthesised incrementally: rungs re-sorted by their
   updated estimates (:meth:`repro.serve.ladder.TRNLadder.resort`) and
   the serving rung re-selected by the same greedy rule Algorithm 1 uses
   offline (:func:`select_rung` — the deepest rung whose calibrated
   estimate meets the deadline).

Hysteresis keeps a single drift event from thrashing the ladder: a
virtual-time cooldown between applied re-estimations, a minimum count of
fresh observations per fit, and a minimum relative scale change below
which a fit is discarded as noise. Everything runs on the virtual clock
inside the serving loop and is deterministic for a fixed seed.

The module deliberately imports nothing from :mod:`repro.serve` — it
operates on the rung/ladder protocol (``estimate_ms``, ``recalibrate``,
``resort``, ``select``), so it works identically on a plain
:class:`~repro.serve.ladder.TRNLadder` and on one wrapped in
:class:`repro.faults.FaultedRung` proxies.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["OnlineFit", "ReestimationController", "fit_scales",
           "select_rung"]

# calibration scales are clamped into this band: a fit that claims a
# 100x slowdown (or speedup) is evidence of a broken fit, not a broken
# device, and must not wedge the planner into rejecting all traffic
_SCALE_FLOOR = 0.05
_SCALE_CEIL = 20.0


@dataclass(frozen=True)
class OnlineFit:
    """One applied re-estimation: what changed and where the ladder went."""

    time_ms: float
    method: str                      # "ratio" or "svr"
    scales: dict                     # rung -> new estimate_scale
    previous: dict                   # rung -> scale before this fit
    samples: int                     # observations consumed by the fit
    rebuilt: bool                    # did the serving rung change?
    from_rung: str
    to_rung: str

    def as_dict(self) -> dict:
        return {"time_ms": self.time_ms, "method": self.method,
                "scales": dict(self.scales),
                "previous": dict(self.previous),
                "samples": self.samples, "rebuilt": self.rebuilt,
                "from_rung": self.from_rung, "to_rung": self.to_rung}


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def fit_scales(samples: dict[str, list[tuple[int, float, float]]],
               current: dict[str, float],
               method: str = "ratio") -> dict[str, float]:
    """Re-fit per-rung calibration scales from live observations.

    ``samples`` maps rung name to ``(batch_size, predicted_ms,
    observed_ms)`` triples where ``predicted_ms`` already includes the
    rung's *current* scale; the returned scales therefore multiply the
    current belief (``new = current * observed/predicted``) — rewriting
    the whole latency table through one factor, exactly the ratio form
    the paper's profiler estimator uses per layer.

    ``method="ratio"`` takes the per-rung median ratio (robust to the
    device's straggler tail). ``method="svr"`` pools every observation
    into one ε-SVR of log-ratio over log-predicted latency — rungs share
    evidence, so a throttle observed on two rungs transfers to the rungs
    that were not serving while it ramped. Rungs with no observations get
    the pooled median ratio in both methods (a device-wide slowdown is
    the common case — thermal throttling hits every rung).
    """
    if method not in ("ratio", "svr"):
        raise ValueError(f"unknown re-estimation method {method!r}")
    ratios: dict[str, list[float]] = {}
    pooled: list[float] = []
    for name, triples in samples.items():
        for _batch, predicted, observed in triples:
            if predicted <= 0 or not math.isfinite(predicted) \
                    or not math.isfinite(observed) or observed <= 0:
                continue
            r = observed / predicted
            ratios.setdefault(name, []).append(r)
            pooled.append(r)
    if not pooled:
        return dict(current)
    fallback = _median(pooled)

    def clamp(scale: float) -> float:
        return min(max(scale, _SCALE_FLOOR), _SCALE_CEIL)

    if method == "svr" and len(pooled) >= 4:
        from repro.estimators.svr import SVR
        x, y, query = [], [], {}
        for name, triples in samples.items():
            logs = []
            for _batch, predicted, observed in triples:
                if predicted <= 0 or observed <= 0 \
                        or not math.isfinite(predicted) \
                        or not math.isfinite(observed):
                    continue
                lp = math.log(predicted)
                logs.append(lp)
                x.append([lp])
                y.append(math.log(observed / predicted))
            if logs:
                query[name] = sum(logs) / len(logs)
        svr = SVR(c=10.0, gamma=0.5, epsilon=1e-3, max_iter=200)
        svr.fit(np.asarray(x), np.asarray(y))
        out = {}
        for name, scale in current.items():
            if name in query:
                pred = float(svr.predict(
                    np.asarray([[query[name]]]))[0])
                ratio = math.exp(pred)
            else:
                ratio = fallback
            out[name] = clamp(scale * ratio)
        return out

    return {name: clamp(current.get(name, 1.0)
                        * _median(ratios.get(name, [fallback])))
            for name in current}


def select_rung(ladder, deadline_ms: float, margin: float = 1.0):
    """Algorithm 1's greedy selection over the ladder's live estimates.

    Walk the rungs most-accurate-first and return the first whose
    calibrated batch-1 estimate fits inside ``margin * deadline_ms`` —
    the deepest TRN the (re-estimated) latency model believes meets the
    deadline, exactly the offline loop in
    :func:`repro.netcut.algorithm.run_netcut` applied to the rungs at
    hand. Falls back to the fastest rung when nothing fits.
    """
    budget = margin * deadline_ms
    for rung in ladder.rungs:
        if rung.estimate_ms(1) <= budget:
            return rung
    return ladder.fastest


class ReestimationController:
    """Consume drift events; re-fit latency tables; rebuild the ladder.

    The serving engine feeds :meth:`record` once per executed batch and
    :meth:`maybe_reestimate` once per drift event; everything else —
    metrics counters, trace spans, resetting the drift window — stays in
    the engine, keeping this controller a pure planning component.

    Hysteresis parameters
    ---------------------
    cooldown_ms:
        Minimum virtual time between *applied* re-estimations.
    min_samples:
        Fresh observations (since the last applied fit) required before a
        fit may run.
    min_rel_change:
        A fit whose largest relative scale change is below this is
        discarded as noise — the ladder is not rebuilt over a 2% wobble.
    """

    def __init__(self, deadline_ms: float, *, cooldown_ms: float = 25.0,
                 min_samples: int = 8, method: str = "ratio",
                 margin: float = 1.0, min_rel_change: float = 0.05,
                 max_samples_per_rung: int = 64):
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if method not in ("ratio", "svr"):
            raise ValueError(f"unknown re-estimation method {method!r}")
        self.deadline_ms = float(deadline_ms)
        self.cooldown_ms = float(cooldown_ms)
        self.min_samples = int(min_samples)
        self.method = method
        self.margin = float(margin)
        self.min_rel_change = float(min_rel_change)
        self.max_samples_per_rung = int(max_samples_per_rung)
        self._samples: dict[str, deque] = {}
        self._fresh = 0
        self._last_applied_ms = -math.inf
        self.fits: list[OnlineFit] = []
        self.counters = {"reestimates": 0, "rebuilds": 0,
                         "skipped_cooldown": 0, "skipped_samples": 0,
                         "skipped_minor": 0}

    # -- feeding -------------------------------------------------------------
    def record(self, rung: str, batch_size: int, predicted_ms: float,
               observed_ms: float) -> None:
        """One executed batch's predicted vs. observed service time."""
        predicted_ms = float(predicted_ms)
        observed_ms = float(observed_ms)
        if (not math.isfinite(predicted_ms) or predicted_ms <= 0
                or not math.isfinite(observed_ms) or observed_ms <= 0):
            return
        bucket = self._samples.get(rung)
        if bucket is None:
            bucket = self._samples[rung] = \
                deque(maxlen=self.max_samples_per_rung)
        bucket.append((int(batch_size), predicted_ms, observed_ms))
        self._fresh += 1

    # -- the loop closure ----------------------------------------------------
    def maybe_reestimate(self, ladder, event, now_ms: float):
        """React to one drift event; returns an :class:`OnlineFit` or None.

        Applies the hysteresis gates, re-fits the scales, rewrites every
        rung's latency table, re-sorts the ladder and re-runs the greedy
        rung selection. ``None`` means a gate held (nothing changed).
        """
        if now_ms - self._last_applied_ms < self.cooldown_ms:
            self.counters["skipped_cooldown"] += 1
            return None
        if self._fresh < self.min_samples:
            self.counters["skipped_samples"] += 1
            return None
        current = {r.name: r.estimate_scale for r in ladder.rungs}
        samples = {name: list(bucket)
                   for name, bucket in self._samples.items()}
        scales = fit_scales(samples, current, self.method)
        change = max((abs(scales[n] / current[n] - 1.0) for n in current),
                     default=0.0)
        if change < self.min_rel_change:
            self.counters["skipped_minor"] += 1
            return None
        consumed = self._fresh
        for rung in ladder.rungs:
            rung.recalibrate(scales[rung.name])
        before = ladder.current
        ladder.resort()
        chosen = select_rung(ladder, self.deadline_ms, self.margin)
        rebuilt = chosen is not before
        if rebuilt:
            ladder.select(chosen)
        fit = OnlineFit(now_ms, self.method, scales, current, consumed,
                        rebuilt, before.name, chosen.name)
        self.fits.append(fit)
        self.counters["reestimates"] += 1
        if rebuilt:
            self.counters["rebuilds"] += 1
        self._last_applied_ms = now_ms
        self._samples.clear()
        self._fresh = 0
        return fit

    # -- read-out ------------------------------------------------------------
    def snapshot(self) -> dict:
        """Controller state as a plain dict (for the metrics registry)."""
        return {"deadline_ms": self.deadline_ms,
                "method": self.method,
                "counters": dict(self.counters),
                "pending_samples": self._fresh,
                "fits": [f.as_dict() for f in self.fits]}

    def report(self) -> str:
        c = self.counters
        lines = [f"online netcut ({self.method}): "
                 f"{c['reestimates']} re-estimations, "
                 f"{c['rebuilds']} ladder rebuilds "
                 f"(skipped: {c['skipped_cooldown']} cooldown, "
                 f"{c['skipped_samples']} samples, "
                 f"{c['skipped_minor']} minor)"]
        for f in self.fits:
            worst = max(f.scales.values())
            arrow = f"{f.from_rung} -> {f.to_rung}" if f.rebuilt \
                else f"kept {f.to_rung}"
            lines.append(f"  t={f.time_ms:9.2f} ms  refit from "
                         f"{f.samples} batches, max scale {worst:.2f}x, "
                         f"{arrow}")
        return "\n".join(lines)
