"""NetCut: the deadline-aware exploration methodology (paper §V)."""

from .accounting import CostComparison, ExplorationCost, compare_costs
from .adapters import AnalyticalAdapter, OracleAdapter, ProfilerAdapter
from .builders import (
    BUILDERS,
    DPDepthBuilder,
    FilterPruneBuilder,
    GreedyLayerRemoval,
    HALPBuilder,
    LadderBuilder,
    artifact_points,
    build_rungs,
    capacity_accuracy,
    feature_flops,
    frontier_artifacts,
)
from .deploy import DeploymentArtifact, deploy, load_artifact, save_artifact
from .algorithm import NetCutCandidate, NetCutResult, run_netcut
from .margin import MarginAdapter, violation_rate
from .explorer import Exploration, TRNRecord, explore_blockwise, explore_cutpoints
from .online import OnlineFit, ReestimationController, fit_scales, select_rung

__all__ = [
    "run_netcut",
    "deploy",
    "DeploymentArtifact",
    "save_artifact",
    "load_artifact",
    "NetCutCandidate",
    "NetCutResult",
    "ProfilerAdapter",
    "AnalyticalAdapter",
    "OracleAdapter",
    "MarginAdapter",
    "violation_rate",
    "Exploration",
    "TRNRecord",
    "explore_blockwise",
    "explore_cutpoints",
    "ExplorationCost",
    "CostComparison",
    "compare_costs",
    "OnlineFit",
    "ReestimationController",
    "fit_scales",
    "select_rung",
    "LadderBuilder",
    "GreedyLayerRemoval",
    "FilterPruneBuilder",
    "HALPBuilder",
    "DPDepthBuilder",
    "BUILDERS",
    "capacity_accuracy",
    "feature_flops",
    "build_rungs",
    "artifact_points",
    "frontier_artifacts",
]
