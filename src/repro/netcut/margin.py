"""Safety margins for deadline-aware selection (extension).

EXPERIMENTS.md documents a failure mode this repository exposes: DenseNet's
61 cutpoints are spaced ~1% apart in latency, which is *finer than the
estimator error* (~1.6% profiler, ~4.4% SVR), so Algorithm 1 can propose a
TRN whose estimate meets the deadline but whose measured latency does not.
The paper never hits this because its networks have far coarser cutpoint
grids.

The standard real-time-systems fix is a safety margin: treat every
estimate as ``estimate × (1 + margin)``. :class:`MarginAdapter` wraps any
estimator adapter that way, and :func:`violation_rate` quantifies the
trade-off (margin vs measured-deadline violations vs accuracy cost) for
the ablation benchmark.
"""

from __future__ import annotations

from repro.nn.graph import Network
from repro.trim.search import Cutpoint

__all__ = ["MarginAdapter", "violation_rate"]


class MarginAdapter:
    """Wraps an estimator adapter, inflating estimates by a safety margin.

    A margin equal to the estimator's relative error makes estimate-driven
    deadline checks conservative: candidates within one error bar of the
    deadline are rejected, so the selected TRN's *measured* latency meets
    the deadline with high probability.
    """

    def __init__(self, inner, margin: float = 0.03):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.inner = inner
        self.margin = float(margin)
        self.name = f"{getattr(inner, 'name', 'custom')}+{margin:.0%}margin"

    def estimate(self, base: Network, cutpoint: Cutpoint | None) -> float:
        return self.inner.estimate(base, cutpoint) * (1.0 + self.margin)


def violation_rate(result, deadline_ms: float) -> float:
    """Fraction of feasible candidates whose *measured* latency exceeds
    the deadline — the quantity a safety margin drives to zero."""
    feasible = [c for c in result.candidates
                if c.feasible and c.measured_latency_ms is not None]
    if not feasible:
        return float("nan")
    violations = sum(1 for c in feasible
                     if c.measured_latency_ms > deadline_ms)
    return violations / len(feasible)
