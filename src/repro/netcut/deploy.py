"""End-to-end deployment pipeline: from deadline to a shippable artifact.

This is the glue a user of the methodology actually wants: run Algorithm 1,
*validate* the winner's measured latency against the deadline (falling back
to the next-best candidate when estimator error put the winner over),
retrain its head, graft the weights into the full TRN, optionally quantize,
and serialise the result to a single ``.npz``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import Dataset
from repro.device.quantize import QuantizedNetwork
from repro.nn.graph import Network
from repro.nn.serialize import architecture_dict, network_from_dict

__all__ = ["DeploymentArtifact", "deploy", "save_artifact", "load_artifact"]


@dataclass
class DeploymentArtifact:
    """A validated, trained, optionally quantized TRN ready to ship.

    ``builder`` names the :class:`repro.netcut.builders.LadderBuilder`
    strategy that produced the rung (empty for the classic deploy
    pipeline, whose ``.npz`` format predates the tag and stays
    byte-compatible).
    """

    network: Network
    trn_name: str
    base_name: str
    measured_latency_ms: float
    accuracy: float
    deadline_ms: float
    quantized: QuantizedNetwork | None = None
    int8_accuracy: float = float("nan")
    path: str | None = None
    builder: str = ""

    @property
    def meets_deadline(self) -> bool:
        return self.measured_latency_ms <= self.deadline_ms


def deploy(workbench, deadline_ms: float | None = None,
           estimator: str = "profiler", quantize: bool = True,
           save_path: str | None = None) -> DeploymentArtifact:
    """Run the full pipeline on a :class:`repro.experiments.Workbench`.

    Steps: Algorithm 1 → measured-latency validation → head retraining on
    the full training split → weight transplant → (optional) INT8
    quantization with a 10% calibration split → (optional) serialisation.

    The pipeline itself lives on
    :meth:`repro.netcut.builders.GreedyLayerRemoval.deploy` — the paper's
    strategy behind the pluggable :class:`~repro.netcut.builders
    .LadderBuilder` interface — and this function delegates to it, so the
    historical entry point keeps producing byte-identical artifacts.

    Raises ``RuntimeError`` when no candidate's *measured* latency meets
    the deadline.
    """
    from .builders import GreedyLayerRemoval  # lazy: avoids import cycle

    return GreedyLayerRemoval().deploy(
        workbench, deadline_ms=deadline_ms, estimator=estimator,
        quantize=quantize, save_path=save_path)


def save_artifact(artifact: DeploymentArtifact, path: str) -> None:
    """Serialise an artifact (network + validation metadata) to one ``.npz``.

    The file is a superset of the :func:`repro.nn.serialize.save_network`
    format — a ``__artifact__`` JSON entry carries the measured latency,
    accuracy and deadline — so it also loads with plain ``load_network``.
    The INT8 variant is not persisted: it is a deterministic function of
    the fp32 weights and a calibration set, so it is rebuilt at load time
    when needed.
    """
    net = artifact.network
    if not net.built:
        raise RuntimeError("artifact network must be built before saving")
    meta = {
        "trn_name": artifact.trn_name,
        "base_name": artifact.base_name,
        "measured_latency_ms": artifact.measured_latency_ms,
        "accuracy": artifact.accuracy,
        "deadline_ms": artifact.deadline_ms,
        "int8_accuracy": artifact.int8_accuracy,
    }
    if artifact.builder:
        # only tagged rungs grow the key: untagged artifacts keep the
        # exact pre-builder .npz bytes
        meta["builder"] = artifact.builder
    np.savez_compressed(
        path,
        __architecture__=np.array(json.dumps(architecture_dict(net))),
        __artifact__=np.array(json.dumps(meta)),
        **net.state_dict())
    artifact.path = path


def load_artifact(path: str) -> DeploymentArtifact:
    """Round-trip counterpart of :func:`save_artifact`.

    Rebuilds the TRN and its validation metadata without re-running
    Algorithm 1 — this is how a server (or a test) gets a ready-to-serve
    :class:`DeploymentArtifact` from disk.
    """
    with np.load(path) as archive:
        if "__artifact__" not in archive.files:
            raise ValueError(
                f"{path!r} has no __artifact__ metadata; use "
                "repro.nn.serialize.load_network for plain network files")
        arch = json.loads(str(archive["__architecture__"]))
        meta = json.loads(str(archive["__artifact__"]))
        state = {k: archive[k] for k in archive.files
                 if not k.startswith("__")}
    net = network_from_dict(arch, state)
    return DeploymentArtifact(
        network=net,
        trn_name=meta["trn_name"],
        base_name=meta["base_name"],
        measured_latency_ms=meta["measured_latency_ms"],
        accuracy=meta["accuracy"],
        deadline_ms=meta["deadline_ms"],
        int8_accuracy=meta.get("int8_accuracy", float("nan")),
        path=path,
        builder=meta.get("builder", ""))


def _predict(net: Network, data: Dataset, batch_size: int = 128
             ) -> np.ndarray:
    outs = [net.forward(data.x[s:s + batch_size])
            for s in range(0, len(data), batch_size)]
    return np.concatenate(outs)
