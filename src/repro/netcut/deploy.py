"""End-to-end deployment pipeline: from deadline to a shippable artifact.

This is the glue a user of the methodology actually wants: run Algorithm 1,
*validate* the winner's measured latency against the deadline (falling back
to the next-best candidate when estimator error put the winner over),
retrain its head, graft the weights into the full TRN, optionally quantize,
and serialise the result to a single ``.npz``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import Dataset
from repro.device.quantize import QuantizedNetwork, calibration_split
from repro.device.runtime import measure_latency
from repro.metrics.angular import mean_angular_similarity
from repro.nn.graph import Network
from repro.nn.serialize import architecture_dict, network_from_dict
from repro.train.features import record_gap_features
from repro.train.trainer import train_head_on_features, transplant_head
from repro.trim.blocks import block_boundaries

__all__ = ["DeploymentArtifact", "deploy", "save_artifact", "load_artifact"]


@dataclass
class DeploymentArtifact:
    """A validated, trained, optionally quantized TRN ready to ship."""

    network: Network
    trn_name: str
    base_name: str
    measured_latency_ms: float
    accuracy: float
    deadline_ms: float
    quantized: QuantizedNetwork | None = None
    int8_accuracy: float = float("nan")
    path: str | None = None

    @property
    def meets_deadline(self) -> bool:
        return self.measured_latency_ms <= self.deadline_ms


def deploy(workbench, deadline_ms: float | None = None,
           estimator: str = "profiler", quantize: bool = True,
           save_path: str | None = None) -> DeploymentArtifact:
    """Run the full pipeline on a :class:`repro.experiments.Workbench`.

    Steps: Algorithm 1 → measured-latency validation → head retraining on
    the full training split → weight transplant → (optional) INT8
    quantization with a 10% calibration split → (optional) serialisation.

    Raises ``RuntimeError`` when no candidate's *measured* latency meets
    the deadline.
    """
    deadline = (deadline_ms if deadline_ms is not None
                else workbench.config.deadline_ms)
    result = workbench.netcut(estimator, deadline_ms=deadline)
    validated = [c for c in result.candidates
                 if c.feasible and c.measured_latency_ms is not None
                 and c.measured_latency_ms <= deadline]
    if not validated:
        raise RuntimeError(
            f"no candidate's measured latency meets {deadline} ms")
    best = max(validated, key=lambda c: c.accuracy)

    base = workbench.base(best.base_name)
    cut_node = (best.cutpoint.cut_node if best.cutpoint
                else block_boundaries(base)[-1].output_node)
    train_data, test_data = workbench.hands()
    feats_train = record_gap_features(base, train_data.x, [cut_node])
    head = train_head_on_features(
        feats_train[cut_node], train_data.y, workbench.config.num_classes,
        epochs=workbench.config.head_epochs,
        rng=workbench.config.seed).network

    trn = workbench.transfer_model(best.base_name, best.cutpoint)
    transplant_head(head, trn)
    measured = measure_latency(trn, workbench.device).mean_ms
    accuracy = mean_angular_similarity(_predict(trn, test_data),
                                       test_data.y)

    artifact = DeploymentArtifact(trn, best.trn_name, best.base_name,
                                  measured, accuracy, deadline)
    if quantize:
        calib_idx = calibration_split(len(train_data), 0.1,
                                      rng=workbench.config.seed)
        artifact.quantized = QuantizedNetwork(trn,
                                              train_data.x[calib_idx])
        q_pred = artifact.quantized.forward(test_data.x)
        artifact.int8_accuracy = mean_angular_similarity(q_pred,
                                                         test_data.y)
    if save_path is not None:
        save_artifact(artifact, save_path)
    return artifact


def save_artifact(artifact: DeploymentArtifact, path: str) -> None:
    """Serialise an artifact (network + validation metadata) to one ``.npz``.

    The file is a superset of the :func:`repro.nn.serialize.save_network`
    format — a ``__artifact__`` JSON entry carries the measured latency,
    accuracy and deadline — so it also loads with plain ``load_network``.
    The INT8 variant is not persisted: it is a deterministic function of
    the fp32 weights and a calibration set, so it is rebuilt at load time
    when needed.
    """
    net = artifact.network
    if not net.built:
        raise RuntimeError("artifact network must be built before saving")
    meta = {
        "trn_name": artifact.trn_name,
        "base_name": artifact.base_name,
        "measured_latency_ms": artifact.measured_latency_ms,
        "accuracy": artifact.accuracy,
        "deadline_ms": artifact.deadline_ms,
        "int8_accuracy": artifact.int8_accuracy,
    }
    np.savez_compressed(
        path,
        __architecture__=np.array(json.dumps(architecture_dict(net))),
        __artifact__=np.array(json.dumps(meta)),
        **net.state_dict())
    artifact.path = path


def load_artifact(path: str) -> DeploymentArtifact:
    """Round-trip counterpart of :func:`save_artifact`.

    Rebuilds the TRN and its validation metadata without re-running
    Algorithm 1 — this is how a server (or a test) gets a ready-to-serve
    :class:`DeploymentArtifact` from disk.
    """
    with np.load(path) as archive:
        if "__artifact__" not in archive.files:
            raise ValueError(
                f"{path!r} has no __artifact__ metadata; use "
                "repro.nn.serialize.load_network for plain network files")
        arch = json.loads(str(archive["__architecture__"]))
        meta = json.loads(str(archive["__artifact__"]))
        state = {k: archive[k] for k in archive.files
                 if not k.startswith("__")}
    net = network_from_dict(arch, state)
    return DeploymentArtifact(
        network=net,
        trn_name=meta["trn_name"],
        base_name=meta["base_name"],
        measured_latency_ms=meta["measured_latency_ms"],
        accuracy=meta["accuracy"],
        deadline_ms=meta["deadline_ms"],
        int8_accuracy=meta.get("int8_accuracy", float("nan")),
        path=path)


def _predict(net: Network, data: Dataset, batch_size: int = 128
             ) -> np.ndarray:
    outs = [net.forward(data.x[s:s + batch_size])
            for s in range(0, len(data), batch_size)]
    return np.concatenate(outs)
