"""Pluggable ladder builders: competing rung sources for one TRN ladder.

The paper builds its ladder a single way — greedy blockwise layer removal —
but the literature names direct competitors: filter (channel) pruning at
graded ratios, HALP-style global pruning under an explicit latency budget,
and DP-optimal depth compression. This module makes the rung source a
strategy: every :class:`LadderBuilder` emits a graded list of
:class:`~repro.netcut.deploy.DeploymentArtifact`-compatible rungs for one
base network on one device, tagged with the builder's name, and a
:class:`~repro.serve.TRNLadder` can mix rungs from any set of builders
(``TRNLadder.from_artifacts`` sorts them by latency estimate regardless of
origin).

Latency metadata comes from the analytic device model
(:func:`repro.device.latency.network_latency` — deterministic and
noise-free, so builder output is byte-stable). Accuracy metadata comes
from a pluggable ``accuracy_fn``; the default :func:`capacity_accuracy`
is a deterministic *proxy* — a concave function of retained feature
FLOPs, standing in for retrained-head accuracy so bake-offs run in
seconds — while the full :meth:`GreedyLayerRemoval.deploy` pipeline still
measures real accuracy on the hand dataset.

Builders:

- :class:`GreedyLayerRemoval` — the paper's blockwise cutpoints behind
  the interface; also hosts the end-to-end deploy pipeline that
  :func:`repro.netcut.deploy.deploy` delegates to.
- :class:`FilterPruneBuilder` — L1-norm channel pruning at graded keep
  ratios ("To Filter Prune, or to Layer Prune").
- :class:`HALPBuilder` — knapsack-style global pruning: remove the
  channel groups with the least importance per millisecond saved until
  each rung's latency budget holds (HALP's latency-aware saliency,
  solved by the LP-relaxation greedy).
- :class:`DPDepthBuilder` — a dynamic program over skippable-block
  removal choices minimising latency subject to an accuracy(-capacity)
  floor (two-stage DP depth compression).
"""

from __future__ import annotations

import numpy as np

from repro.device.latency import kernel_latency_ms, network_latency
from repro.device.spec import DeviceSpec
from repro.metrics.pareto import CandidatePoint, pareto_frontier
from repro.nn.graph import Network
from repro.trim.blocks import block_boundaries
from repro.trim.prune import (
    channel_importance,
    prunable_channel_convs,
    prune_channels,
    remove_blocks,
    skippable_blocks,
)
from repro.trim.removal import build_trn
from repro.trim.search import enumerate_blockwise

from .deploy import DeploymentArtifact

__all__ = [
    "LadderBuilder",
    "GreedyLayerRemoval",
    "FilterPruneBuilder",
    "HALPBuilder",
    "DPDepthBuilder",
    "BUILDERS",
    "capacity_accuracy",
    "feature_flops",
    "build_rungs",
    "artifact_points",
    "frontier_artifacts",
]


def feature_flops(net: Network) -> int:
    """FLOPs of the stem + feature extractor (heads excluded).

    Transfer heads are identical across rungs of one base, so comparing
    retained capacity between rungs only makes sense on the feature side.
    """
    total = 0
    for node in net.nodes.values():
        if node.role in ("stem", "feature"):
            total += node.layer.flops(net.in_shapes(node.name))
    return int(total)


def capacity_accuracy(base: Network, ceiling: float = 0.95,
                      floor: float = 0.40, gamma: float = 0.35):
    """Deterministic accuracy proxy: concave in retained feature FLOPs.

    ``accuracy(net) = floor + (ceiling - floor) * frac**gamma`` with
    ``frac`` the net's feature FLOPs over the base's. The concave exponent
    mirrors the paper's Fig. 5 shape (early removals are cheap, deep
    removals expensive). This is a *model*, not a measurement — it makes
    bake-offs run in seconds and byte-stable; the deploy pipeline measures
    real accuracy.
    """
    base_flops = max(1, feature_flops(base))

    def accuracy(net: Network) -> float:
        frac = min(1.0, feature_flops(net) / base_flops)
        return round(floor + (ceiling - floor) * frac ** gamma, 6)

    return accuracy


class LadderBuilder:
    """Strategy interface: grade one base network into deployable rungs.

    Subclasses implement :meth:`rungs`, returning artifacts sorted from
    the full (slowest, most accurate) variant down. ``max_rungs`` caps
    the grade count (endpoints kept, middles evenly subsampled);
    ``accuracy_fn`` defaults to :func:`capacity_accuracy` of the base;
    ``deadline_ms`` defaults to the device-modelled full-TRN latency and
    is stored on every artifact.
    """

    name = "?"

    def rungs(self, base: Network, spec: DeviceSpec, num_classes: int = 5,
              deadline_ms: float | None = None,
              max_rungs: int | None = None, accuracy_fn=None,
              rng: "np.random.Generator | int" = 0
              ) -> list[DeploymentArtifact]:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    def _grades(self, grades: tuple, max_rungs: int | None) -> list:
        if max_rungs is None or max_rungs >= len(grades):
            return list(grades)
        if max_rungs < 1:
            raise ValueError("max_rungs must be >= 1")
        idx = np.linspace(0, len(grades) - 1, max_rungs).round().astype(int)
        return [grades[int(i)] for i in sorted(set(idx.tolist()))]

    def _full_trn(self, base: Network, num_classes: int,
                  rng) -> Network:
        """The zero-cut transfer model every strategy grades down from."""
        cut = block_boundaries(base)[-1].output_node
        return build_trn(base, cut, num_classes, rng=rng,
                         name=f"{base.name}-{self.name}-full")

    def _artifact(self, net: Network, base: Network, spec: DeviceSpec,
                  deadline_ms: float, accuracy_fn) -> DeploymentArtifact:
        return DeploymentArtifact(
            network=net, trn_name=net.name, base_name=base.name,
            measured_latency_ms=network_latency(net, spec).total_ms,
            accuracy=float(accuracy_fn(net)), deadline_ms=deadline_ms,
            builder=self.name)

    def _defaults(self, base: Network, spec: DeviceSpec, num_classes: int,
                  deadline_ms, accuracy_fn, rng):
        trn = self._full_trn(base, num_classes, rng)
        if accuracy_fn is None:
            accuracy_fn = capacity_accuracy(base)
        if deadline_ms is None:
            deadline_ms = network_latency(trn, spec).total_ms
        return trn, float(deadline_ms), accuracy_fn


class GreedyLayerRemoval(LadderBuilder):
    """The paper's rung source: blockwise cutpoints, shallowest cut last.

    Rung 0 is the zero-cut transfer model; each further rung removes more
    trailing feature blocks (Algorithm 1's candidate set). This class
    also hosts the full deploy pipeline (Algorithm 1 → validation → head
    retraining → transplant → quantize → serialise);
    :func:`repro.netcut.deploy.deploy` delegates here, and its artifacts
    remain byte-identical to the pre-refactor path (the pipeline leaves
    the ``builder`` tag empty, keeping the ``.npz`` meta unchanged).
    """

    name = "greedy"

    def rungs(self, base, spec, num_classes=5, deadline_ms=None,
              max_rungs=None, accuracy_fn=None, rng=0):
        trn, deadline_ms, accuracy_fn = self._defaults(
            base, spec, num_classes, deadline_ms, accuracy_fn, rng)
        cuts = self._grades(tuple(enumerate_blockwise(base)), None
                            if max_rungs is None else max_rungs - 1)
        nets = [trn] + [
            build_trn(base, c.cut_node, num_classes, rng=rng,
                      name=f"{base.name}-{self.name}-cut{c.blocks_removed}")
            for c in cuts]
        return [self._artifact(net, base, spec, deadline_ms, accuracy_fn)
                for net in nets]

    def deploy(self, workbench, deadline_ms: float | None = None,
               estimator: str = "profiler", quantize: bool = True,
               save_path: str | None = None) -> DeploymentArtifact:
        """Run the full pipeline on a :class:`repro.experiments.Workbench`.

        Steps: Algorithm 1 → measured-latency validation → head retraining
        on the full training split → weight transplant → (optional) INT8
        quantization with a 10% calibration split → (optional)
        serialisation.

        Raises ``RuntimeError`` when no candidate's *measured* latency
        meets the deadline.
        """
        from repro.device.quantize import QuantizedNetwork, calibration_split
        from repro.device.runtime import measure_latency
        from repro.metrics.angular import mean_angular_similarity
        from repro.train.features import record_gap_features
        from repro.train.trainer import train_head_on_features, \
            transplant_head

        from .deploy import _predict, save_artifact

        deadline = (deadline_ms if deadline_ms is not None
                    else workbench.config.deadline_ms)
        result = workbench.netcut(estimator, deadline_ms=deadline)
        validated = [c for c in result.candidates
                     if c.feasible and c.measured_latency_ms is not None
                     and c.measured_latency_ms <= deadline]
        if not validated:
            raise RuntimeError(
                f"no candidate's measured latency meets {deadline} ms")
        best = max(validated, key=lambda c: c.accuracy)

        base = workbench.base(best.base_name)
        cut_node = (best.cutpoint.cut_node if best.cutpoint
                    else block_boundaries(base)[-1].output_node)
        train_data, test_data = workbench.hands()
        feats_train = record_gap_features(base, train_data.x, [cut_node])
        head = train_head_on_features(
            feats_train[cut_node], train_data.y,
            workbench.config.num_classes,
            epochs=workbench.config.head_epochs,
            rng=workbench.config.seed).network

        trn = workbench.transfer_model(best.base_name, best.cutpoint)
        transplant_head(head, trn)
        measured = measure_latency(trn, workbench.device).mean_ms
        accuracy = mean_angular_similarity(_predict(trn, test_data),
                                           test_data.y)

        artifact = DeploymentArtifact(trn, best.trn_name, best.base_name,
                                      measured, accuracy, deadline)
        if quantize:
            calib_idx = calibration_split(len(train_data), 0.1,
                                          rng=workbench.config.seed)
            artifact.quantized = QuantizedNetwork(trn,
                                                  train_data.x[calib_idx])
            q_pred = artifact.quantized.forward(test_data.x)
            artifact.int8_accuracy = mean_angular_similarity(q_pred,
                                                             test_data.y)
        if save_path is not None:
            save_artifact(artifact, save_path)
        return artifact


class FilterPruneBuilder(LadderBuilder):
    """L1-norm channel pruning at graded uniform ratios.

    Every prunable feature conv keeps its ``1 - ratio`` highest-L1
    channels (at least one); depth is untouched, so this is the "filter
    prune" side of the filter-vs-layer trade-off.
    """

    name = "filter-prune"

    def __init__(self, ratios: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)):
        if any(not 0.0 <= r < 1.0 for r in ratios):
            raise ValueError("prune ratios must be in [0, 1)")
        self.ratios = tuple(sorted(ratios))

    def rungs(self, base, spec, num_classes=5, deadline_ms=None,
              max_rungs=None, accuracy_fn=None, rng=0):
        trn, deadline_ms, accuracy_fn = self._defaults(
            base, spec, num_classes, deadline_ms, accuracy_fn, rng)
        importances = {conv: channel_importance(trn, conv)
                       for conv in prunable_channel_convs(trn)}
        nets = []
        for ratio in self._grades(self.ratios, max_rungs):
            if ratio == 0.0:
                nets.append(trn)
                continue
            keep = {}
            for conv, imp in importances.items():
                kept = max(1, int(np.ceil((1.0 - ratio) * imp.size)))
                order = np.argsort(imp, kind="stable")
                keep[conv] = np.sort(order[imp.size - kept:])
            nets.append(prune_channels(
                trn, keep,
                name=f"{base.name}-{self.name}-{int(round(100 * ratio))}"))
        return [self._artifact(net, base, spec, deadline_ms, accuracy_fn)
                for net in nets]


class HALPBuilder(LadderBuilder):
    """Global latency-aware pruning: keep the most importance per budget.

    Following HALP, each prunable conv's channels are split (by ascending
    L1 importance) into ``groups`` removal candidates; a group's latency
    saving is the first-order share of its conv's standalone kernel time.
    For each rung the latency budget is ``budget × full-TRN latency`` and
    the LP-relaxation greedy removes the groups with the *least importance
    per millisecond saved* until the estimate meets the budget — the
    knapsack's maximise-retained-importance solution. The top importance
    group of every conv is never removed (the layer must stay functional).
    """

    name = "halp"

    def __init__(self, budgets: tuple[float, ...] = (1.0, 0.85, 0.7, 0.55),
                 groups: int = 4):
        if any(not 0.0 < b <= 1.0 for b in budgets):
            raise ValueError("latency budgets are fractions in (0, 1]")
        if groups < 2:
            raise ValueError("need at least 2 importance groups per conv")
        self.budgets = tuple(sorted(budgets, reverse=True))
        self.groups = groups

    def _candidates(self, trn: Network, spec: DeviceSpec):
        """(conv, channel-indices, importance, saving_ms) removal items."""
        items = []
        for conv in prunable_channel_convs(trn):
            imp = channel_importance(trn, conv)
            layer = trn.nodes[conv].layer
            flops = layer.flops(trn.in_shapes(conv))
            in_elems = sum(int(np.prod(s)) for s in trn.in_shapes(conv))
            out_elems = int(np.prod(trn.shape_of(conv)))
            kernel_ms = kernel_latency_ms(
                flops, 4.0 * (in_elems + out_elems + layer.param_count()),
                spec)
            order = np.argsort(imp, kind="stable")
            bounds = np.linspace(0, imp.size, self.groups + 1)
            bounds = bounds.round().astype(int)
            # all groups but the last (most important) are removable
            for g in range(self.groups - 1):
                channels = order[bounds[g]:bounds[g + 1]]
                if channels.size == 0:
                    continue
                items.append((conv, np.sort(channels),
                              float(imp[channels].sum()),
                              kernel_ms * channels.size / imp.size))
        return items

    def rungs(self, base, spec, num_classes=5, deadline_ms=None,
              max_rungs=None, accuracy_fn=None, rng=0):
        trn, deadline_ms, accuracy_fn = self._defaults(
            base, spec, num_classes, deadline_ms, accuracy_fn, rng)
        full_ms = network_latency(trn, spec).total_ms
        items = self._candidates(trn, spec)
        # least importance per saved millisecond first; deterministic ties
        items.sort(key=lambda it: (it[2] / max(it[3], 1e-12), it[0],
                                   int(it[1][0])))
        nets = []
        for budget in self._grades(self.budgets, max_rungs):
            target = budget * full_ms
            estimate = full_ms
            removed: dict[str, list[np.ndarray]] = {}
            for conv, channels, _imp, saving in items:
                if estimate <= target:
                    break
                removed.setdefault(conv, []).append(channels)
                estimate -= saving
            if not removed:
                nets.append(trn)
                continue
            keep = {}
            for conv, parts in removed.items():
                gone = np.concatenate(parts)
                filters = trn.nodes[conv].layer.filters
                keep[conv] = np.setdiff1d(np.arange(filters), gone)
            nets.append(prune_channels(
                trn, keep,
                name=f"{base.name}-{self.name}-{int(round(100 * budget))}"))
        return [self._artifact(net, base, spec, deadline_ms, accuracy_fn)
                for net in nets]


class DPDepthBuilder(LadderBuilder):
    """DP-optimal depth compression over skippable-block removal choices.

    Stage 1 scores every shape-preserving interior block with its latency
    cost (the device model's kernel time anchored in the block) and its
    capacity cost (the block's share of feature FLOPs). Stage 2 solves,
    for each graded capacity floor, the exact 0/1 knapsack — maximise
    latency saved subject to retained capacity ≥ floor — by dynamic
    programming over quantised capacity, then rebuilds the network with
    the chosen blocks removed (consumers rewired to the block inputs).
    """

    name = "dp-depth"

    #: knapsack capacity quantisation (fractions of total feature FLOPs)
    RESOLUTION = 4096

    def __init__(self, floors: tuple[float, ...] = (1.0, 0.9, 0.75, 0.55)):
        if any(not 0.0 < f <= 1.0 for f in floors):
            raise ValueError("capacity floors are fractions in (0, 1]")
        self.floors = tuple(sorted(floors, reverse=True))

    def _block_costs(self, trn: Network, spec: DeviceSpec):
        """(block, latency_ms, capacity_fraction) per skippable block."""
        total = max(1, feature_flops(trn))
        breakdown = network_latency(trn, spec)
        costs = []
        for block in skippable_blocks(trn):
            members = {n.name for n in trn.nodes.values()
                       if n.role == "feature" and n.block_id == block}
            ms = sum(k.latency_ms
                     for k in breakdown.kernels_for_nodes(members))
            flops = sum(n.layer.flops(trn.in_shapes(n.name))
                        for n in trn.nodes.values() if n.name in members)
            costs.append((block, ms, flops / total))
        return costs

    def _knapsack(self, costs, budget_frac: float) -> list[str]:
        """Blocks maximising saved latency with total capacity ≤ budget."""
        cap = int(budget_frac * self.RESOLUTION)
        if cap <= 0 or not costs:
            return []
        weights = [min(cap + 1, int(np.ceil(frac * self.RESOLUTION)))
                   for _, _, frac in costs]
        dp = np.zeros(cap + 1)
        take = np.zeros((len(costs), cap + 1), dtype=bool)
        for i, ((_, ms, _), w) in enumerate(zip(costs, weights)):
            if w > cap:
                continue
            candidate = dp[:cap + 1 - w] + ms
            better = candidate > dp[w:]
            take[i, w:] = better
            dp[w:] = np.where(better, candidate, dp[w:])
        chosen, room = [], cap
        for i in range(len(costs) - 1, -1, -1):
            if take[i, room]:
                chosen.append(costs[i][0])
                room -= weights[i]
        return sorted(chosen)

    def rungs(self, base, spec, num_classes=5, deadline_ms=None,
              max_rungs=None, accuracy_fn=None, rng=0):
        trn, deadline_ms, accuracy_fn = self._defaults(
            base, spec, num_classes, deadline_ms, accuracy_fn, rng)
        costs = self._block_costs(trn, spec)
        nets, seen = [], set()
        for floor in self._grades(self.floors, max_rungs):
            chosen = self._knapsack(costs, 1.0 - floor)
            key = frozenset(chosen)
            if key in seen:
                continue  # a tighter floor that removed nothing new
            seen.add(key)
            if not chosen:
                nets.append(trn)
                continue
            nets.append(remove_blocks(
                trn, chosen,
                name=f"{base.name}-{self.name}-{int(round(100 * floor))}"))
        return [self._artifact(net, base, spec, deadline_ms, accuracy_fn)
                for net in nets]


#: Registry for the CLI and benchmarks: strategy name → builder class.
BUILDERS: dict[str, type[LadderBuilder]] = {
    GreedyLayerRemoval.name: GreedyLayerRemoval,
    FilterPruneBuilder.name: FilterPruneBuilder,
    HALPBuilder.name: HALPBuilder,
    DPDepthBuilder.name: DPDepthBuilder,
}


def build_rungs(base: Network, spec: DeviceSpec,
                builders: "list[LadderBuilder] | None" = None,
                num_classes: int = 5, deadline_ms: float | None = None,
                max_rungs: int | None = None, accuracy_fn=None,
                rng: "np.random.Generator | int" = 0
                ) -> dict[str, list[DeploymentArtifact]]:
    """Run several builders on one (base, device): strategy → artifacts.

    With ``accuracy_fn`` left ``None`` all strategies share one
    :func:`capacity_accuracy` of the base, so their rungs are directly
    comparable in the trade-off space.
    """
    if builders is None:
        builders = [cls() for cls in BUILDERS.values()]
    if accuracy_fn is None:
        accuracy_fn = capacity_accuracy(base)
    return {b.name: b.rungs(base, spec, num_classes=num_classes,
                            deadline_ms=deadline_ms, max_rungs=max_rungs,
                            accuracy_fn=accuracy_fn, rng=rng)
            for b in builders}


def artifact_points(artifacts) -> list[CandidatePoint]:
    """Artifacts as :class:`repro.metrics.pareto` trade-off points."""
    return [CandidatePoint(a.trn_name, a.measured_latency_ms, a.accuracy)
            for a in artifacts]


def frontier_artifacts(artifacts) -> list[DeploymentArtifact]:
    """The non-dominated artifacts, fastest last (mixed-ladder rung set).

    Mixing strategies means the union of their rungs; serving only needs
    the Pareto-optimal ones. Duplicate trade-off points (e.g. every
    builder's uncompressed full TRN) keep their first artifact in input
    order.
    """
    frontier = {(p.latency_ms, p.accuracy)
                for p in pareto_frontier(artifact_points(artifacts))}
    out, taken = [], set()
    for a in artifacts:
        point = (a.measured_latency_ms, a.accuracy)
        if point in frontier and point not in taken:
            taken.add(point)
            out.append(a)
    return sorted(out, key=lambda a: -a.measured_latency_ms)
