"""Exploration-time accounting (the paper's 95% / 27× claims).

Compares the cost of blockwise exhaustive exploration (retrain all 148
TRNs) against NetCut (retrain one TRN per base network): how many networks
each trains and how many simulated Tesla-K20m GPU-hours each spends.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algorithm import NetCutResult
from .explorer import Exploration

__all__ = ["ExplorationCost", "CostComparison", "compare_costs"]


@dataclass(frozen=True)
class ExplorationCost:
    """Cost of one exploration strategy."""

    strategy: str
    networks_trained: int
    gpu_hours: float


@dataclass(frozen=True)
class CostComparison:
    """Blockwise vs NetCut accounting."""

    blockwise: ExplorationCost
    netcut: ExplorationCost

    @property
    def network_reduction_pct(self) -> float:
        """Percent fewer networks trained by NetCut (paper: 95%)."""
        return 100.0 * (1.0 - self.netcut.networks_trained
                        / self.blockwise.networks_trained)

    @property
    def speedup(self) -> float:
        """Exploration-time speedup (paper: 27×)."""
        if self.netcut.gpu_hours <= 0:
            raise ValueError("NetCut GPU-hours must be positive")
        return self.blockwise.gpu_hours / self.netcut.gpu_hours

    def summary(self) -> str:
        """Human-readable comparison in the paper's terms."""
        return (
            f"blockwise: {self.blockwise.networks_trained} networks, "
            f"{self.blockwise.gpu_hours:.1f} GPU-h | "
            f"NetCut: {self.netcut.networks_trained} networks, "
            f"{self.netcut.gpu_hours:.1f} GPU-h | "
            f"{self.network_reduction_pct:.0f}% fewer networks, "
            f"{self.speedup:.1f}x faster")


def compare_costs(exploration: Exploration,
                  *netcut_results: NetCutResult) -> CostComparison:
    """Account blockwise exploration against one or more NetCut runs.

    Passing several NetCut runs (e.g. profiler-based and analytical, as the
    paper does — "only training 9 additional networks") sums their costs,
    counting each distinct retrained TRN once.
    """
    trained: dict[str, float] = {}
    for result in netcut_results:
        for cand in result.candidates:
            if cand.feasible:
                trained.setdefault(cand.trn_name, cand.train_hours)
    # exclude the untrimmed originals from the blockwise count: the paper's
    # 148 counts trimmed candidates (the originals exist before exploration)
    trimmed = [r for r in exploration.records if r.blocks_removed != 0]
    blockwise = ExplorationCost("blockwise", len(trimmed),
                                sum(r.train_hours for r in trimmed))
    netcut = ExplorationCost("netcut", len(trained),
                             sum(trained.values()))
    return CostComparison(blockwise, netcut)
