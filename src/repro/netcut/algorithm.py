"""NetCut: deadline-aware TRN exploration (paper Algorithm 1).

For each of the N trained off-the-shelf networks, the cutpoint is advanced
from the top of the network until the latency *estimate* first meets the
deadline; only that single TRN per network is retrained and evaluated, and
the most accurate feasible TRN wins. With 7 base networks this retrains at
most 7 networks instead of the 148 blockwise candidates — the paper's 95%
reduction and 27× exploration-time speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.device.k20m import TrainingCostModel
from repro.nn.graph import Network
from repro.trim.search import Cutpoint, enumerate_blockwise

__all__ = ["NetCutCandidate", "NetCutResult", "run_netcut"]

#: ``retrain(base, cutpoint_or_None) -> (trn_network, accuracy)``
RetrainFn = Callable[[Network, Cutpoint | None], tuple[Network, float]]
#: ``measure(trn_network) -> measured latency in ms``
MeasureFn = Callable[[Network], float]


@dataclass
class NetCutCandidate:
    """The TRN Algorithm 1 proposes for one base network."""

    base_name: str
    trn_name: str
    cutpoint: Cutpoint | None           # None = original network feasible as-is
    estimated_latency_ms: float
    accuracy: float
    measured_latency_ms: float | None = None
    train_hours: float = 0.0
    feasible: bool = True

    @property
    def blocks_removed(self) -> int:
        """Removed feature blocks (0 when the original network is kept)."""
        return self.cutpoint.blocks_removed if self.cutpoint else 0


@dataclass
class NetCutResult:
    """Full outcome of one NetCut run."""

    deadline_ms: float
    estimator_name: str
    candidates: list[NetCutCandidate] = field(default_factory=list)

    @property
    def best(self) -> NetCutCandidate:
        """The winning TRN: highest accuracy among feasible candidates."""
        feasible = [c for c in self.candidates if c.feasible]
        if not feasible:
            raise RuntimeError("no candidate meets the deadline")
        return max(feasible, key=lambda c: c.accuracy)

    @property
    def networks_trained(self) -> int:
        """How many networks Algorithm 1 retrained."""
        return sum(1 for c in self.candidates if c.feasible)

    @property
    def total_train_hours(self) -> float:
        """Simulated GPU-hours spent retraining the proposed TRNs."""
        return sum(c.train_hours for c in self.candidates)


def run_netcut(bases: list[Network], deadline_ms: float, estimator,
               retrain: RetrainFn, measure: MeasureFn | None = None,
               base_latencies_ms: dict[str, float] | None = None,
               cost_model: TrainingCostModel | None = None) -> NetCutResult:
    """Execute Algorithm 1.

    Parameters
    ----------
    bases:
        The N pretrained, built off-the-shelf networks.
    deadline_ms:
        The application deadline (0.9 ms for the robotic hand).
    estimator:
        An adapter with ``estimate(base, cutpoint_or_None) -> ms`` (see
        :mod:`repro.netcut.adapters`).
    retrain:
        Callback that retrains a TRN and returns ``(trn, accuracy)``.
        Called exactly once per base network (the point of NetCut).
    measure:
        Optional ground-truth measurement of the retrained TRN, recorded
        for the Fig. 10 analysis.
    base_latencies_ms:
        Measured latencies of the original networks (line 3 of
        Algorithm 1). When omitted, the estimator's ``cutpoint=None``
        estimate is used.
    cost_model:
        Optional training-cost model for exploration-time accounting.
    """
    result = NetCutResult(deadline_ms, getattr(estimator, "name", "custom"))
    for base in bases:
        cuts = enumerate_blockwise(base)
        if base_latencies_ms and base.name in base_latencies_ms:
            est = base_latencies_ms[base.name]
        else:
            est = estimator.estimate(base, None)
        cut_index = 0
        chosen: Cutpoint | None = None
        feasible = True
        while est > deadline_ms:                 # lines 5-9 of Algorithm 1
            if cut_index >= len(cuts):
                feasible = False                 # even the stem misses
                break
            chosen = cuts[cut_index]
            est = estimator.estimate(base, chosen)
            cut_index += 1
        if not feasible:
            result.candidates.append(NetCutCandidate(
                base.name, f"{base.name}/infeasible", chosen, est,
                accuracy=float("nan"), feasible=False))
            continue
        trn, accuracy = retrain(base, chosen)    # line 10
        candidate = NetCutCandidate(base.name, trn.name, chosen, est,
                                    accuracy)
        if measure is not None:
            candidate.measured_latency_ms = measure(trn)
        if cost_model is not None:
            candidate.train_hours = cost_model.train_hours(trn)
        result.candidates.append(candidate)
    return result
