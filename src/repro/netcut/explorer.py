"""Blockwise exhaustive exploration — the baseline NetCut accelerates.

This retrains and measures *every* blockwise TRN of every base network
(the paper's 148 candidates), producing the ground-truth trade-off data
behind Figures 4-7 and the training-time totals behind the 27× speedup
claim. Retraining uses the paper's frozen-feature phase, made fast by
recording the GAP features of every cutpoint in a single dataset pass per
base network (:mod:`repro.train.features`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


from repro.data.synthetic import Dataset
from repro.device.k20m import TrainingCostModel
from repro.device.runtime import measure_latency
from repro.device.spec import DeviceSpec
from repro.metrics.angular import mean_angular_similarity
from repro.nn.graph import Network
from repro.train.features import record_gap_features
from repro.train.trainer import train_head_on_features
from repro.trim.blocks import block_boundaries
from repro.trim.removal import build_trn
from repro.trim.search import Cutpoint, enumerate_blockwise, enumerate_iterative

__all__ = ["TRNRecord", "Exploration", "explore_cutpoints", "explore_blockwise"]


@dataclass(frozen=True)
class TRNRecord:
    """One explored TRN: identity, cost and quality."""

    base_name: str
    trn_name: str
    cut_node: str
    blocks_removed: int | None
    layers_removed: int
    latency_ms: float
    accuracy: float
    train_hours: float
    feature_dim: int
    flops: int
    params: int


@dataclass
class Exploration:
    """A set of explored TRNs with query helpers and JSON persistence."""

    records: list[TRNRecord] = field(default_factory=list)

    def for_base(self, base_name: str) -> list[TRNRecord]:
        """Records of one base network, least-removed first."""
        rows = [r for r in self.records if r.base_name == base_name]
        return sorted(rows, key=lambda r: r.layers_removed)

    def originals(self) -> list[TRNRecord]:
        """The 0-blocks-removed record of every base network."""
        return [r for r in self.records if r.blocks_removed == 0]

    @property
    def networks_trained(self) -> int:
        return len(self.records)

    @property
    def total_train_hours(self) -> float:
        return sum(r.train_hours for r in self.records)

    def save(self, path: str) -> None:
        """Serialise to JSON."""
        with open(path, "w") as fh:
            json.dump([asdict(r) for r in self.records], fh, indent=1)

    @classmethod
    def load(cls, path: str) -> "Exploration":
        """Load a previously saved exploration."""
        with open(path) as fh:
            rows = json.load(fh)
        return cls([TRNRecord(**row) for row in rows])


def _zero_cut(base: Network) -> Cutpoint:
    """The degenerate cut keeping all feature blocks (the original net)."""
    last = block_boundaries(base)[-1].output_node
    return Cutpoint(base.name, last, 0, 0)


def explore_cutpoints(base: Network, cuts: list[Cutpoint],
                      train_data: Dataset, test_data: Dataset,
                      device: DeviceSpec,
                      cost_model: TrainingCostModel | None = None,
                      head_epochs: int = 50, num_classes: int | None = None,
                      rng_seed: int = 0) -> list[TRNRecord]:
    """Retrain and measure a TRN for every cutpoint of one base network."""
    num_classes = num_classes or train_data.num_classes
    nodes = [c.cut_node for c in cuts]
    feats_train = record_gap_features(base, train_data.x, nodes)
    feats_test = record_gap_features(base, test_data.x, nodes)
    records = []
    for cut in cuts:
        head = train_head_on_features(
            feats_train[cut.cut_node], train_data.y, num_classes,
            epochs=head_epochs, rng=rng_seed)
        pred = head.network.forward(feats_test[cut.cut_node])
        accuracy = mean_angular_similarity(pred, test_data.y)
        trn = build_trn(base, cut.cut_node, num_classes, rng=rng_seed)
        latency = measure_latency(trn, device).mean_ms
        hours = cost_model.train_hours(trn) if cost_model else 0.0
        records.append(TRNRecord(
            base_name=base.name, trn_name=trn.name, cut_node=cut.cut_node,
            blocks_removed=cut.blocks_removed,
            layers_removed=cut.layers_removed, latency_ms=latency,
            accuracy=accuracy, train_hours=hours,
            feature_dim=feats_train[cut.cut_node].shape[1],
            flops=trn.total_flops(), params=trn.total_params()))
    return records


def explore_blockwise(bases: list[Network], train_data: Dataset,
                      test_data: Dataset, device: DeviceSpec,
                      cost_model: TrainingCostModel | None = None,
                      head_epochs: int = 50, include_original: bool = True,
                      iterative: bool = False,
                      rng_seed: int = 0) -> Exploration:
    """Exhaustively explore all (blockwise or iterative) cutpoints.

    With ``include_original=True`` the untrimmed transfer model of each base
    network is explored too (its record has ``blocks_removed=0``) — these
    are the off-the-shelf points of Fig. 1.
    """
    exploration = Exploration()
    for base in bases:
        cuts = (enumerate_iterative(base) if iterative
                else enumerate_blockwise(base))
        if include_original:
            cuts = [_zero_cut(base)] + list(cuts)
        exploration.records.extend(explore_cutpoints(
            base, cuts, train_data, test_data, device, cost_model,
            head_epochs, rng_seed=rng_seed))
    return exploration
