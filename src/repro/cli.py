"""Command-line interface: the paper's workflows as shell commands.

Usage (after installation, or via ``python -m repro.cli``):

    python -m repro.cli zoo                      # list the networks
    python -m repro.cli measure [--net NAME]     # Fig. 1 latencies
    python -m repro.cli explore                  # 148-TRN sweep (cached)
    python -m repro.cli netcut --deadline 0.9 --estimator profiler
    python -m repro.cli netcut online            # drift -> refit -> rebuild
    python -m repro.cli estimators               # Fig. 9 error table
    python -m repro.cli pareto                   # frontier + text scatter
    python -m repro.cli serve --deadline-ms 0.9 --trace poisson
    python -m repro.cli profile --net resnet --cutpoint 3
    python -m repro.cli trace --out serve.jsonl --chrome serve.trace.json
    python -m repro.cli faults --scenario straggler-storm --compare
    python -m repro.cli obs alerts                # SLO burn-rate timeline
    python -m repro.cli obs compare 1 2 --store RUNSTORE.sqlite

(``python -m repro ...`` is an equivalent spelling of every command.)

Heavy artifacts (pretrained weights, exploration, latency dataset) are
cached under ``~/.cache/repro-netcut`` (override with ``REPRO_CACHE_DIR``),
so repeated invocations are fast.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _workbench(args):
    from repro import ExperimentConfig, Workbench
    from repro.train import PretrainConfig

    networks = getattr(args, "networks", None)
    quick = getattr(args, "quick", False)
    hands = 60 if quick else args.hands_images
    epochs = 6 if quick else args.head_epochs
    if networks:
        config = ExperimentConfig(networks=tuple(networks),
                                  hands_images=hands, head_epochs=epochs)
    elif quick:
        config = ExperimentConfig(hands_images=hands, head_epochs=epochs)
    else:
        config = ExperimentConfig()
    pretrain = (PretrainConfig(n_images=40, epochs=1, batch_size=16)
                if quick else None)
    return Workbench(config, cache_dir=getattr(args, "cache_dir", None),
                     pretrain_config=pretrain)


def cmd_zoo(args) -> int:
    """List the seven networks with their structural statistics."""
    from repro.trim import enumerate_blockwise
    from repro.zoo import NETWORKS, build_network

    print(f"{'network':22s} {'layers':>7} {'blocks':>7} {'params':>10} "
          f"{'MFLOPs':>8}")
    for name in NETWORKS:
        net = build_network(name).build(0)
        print(f"{name:22s} {net.layer_count():>7d} "
              f"{len(enumerate_blockwise(net)):>7d} "
              f"{net.total_params():>10,d} "
              f"{net.total_flops() / 1e6:>8.2f}")
    return 0


def cmd_measure(args) -> int:
    """Measure off-the-shelf transfer models on the simulated Xavier."""
    wb = _workbench(args)
    names = [args.net] if args.net else list(wb.config.networks)
    latencies = wb.base_latencies()
    print(f"{'network':22s} {'latency_ms':>10}   (deadline "
          f"{args.deadline} ms)")
    for name in names:
        ms = latencies[name]
        verdict = "meets" if ms <= args.deadline else "misses"
        print(f"{name:22s} {ms:>10.3f}   {verdict}")
    return 0


def cmd_explore(args) -> int:
    """Run (or load) the full blockwise exploration and print a summary."""
    wb = _workbench(args)
    exploration = wb.exploration(force=args.force)
    print(f"{exploration.networks_trained} TRNs explored "
          f"({exploration.total_train_hours:.1f} simulated K20m GPU-hours)")
    for name in wb.config.networks:
        rows = exploration.for_base(name)
        best = max(rows, key=lambda r: r.accuracy)
        print(f"  {name:22s} best TRN {best.trn_name:24s} "
              f"acc={best.accuracy:.4f} lat={best.latency_ms:.3f} ms")
    return 0


def cmd_netcut(args) -> int:
    """Run Algorithm 1 and print the proposed candidates."""
    if getattr(args, "netcut_cmd", None) == "online":
        return cmd_netcut_online(args)
    if getattr(args, "netcut_cmd", None) == "build":
        return cmd_netcut_build(args)
    wb = _workbench(args)
    result = wb.netcut(args.estimator, deadline_ms=args.deadline)
    print(f"NetCut ({args.estimator}) @ deadline {args.deadline} ms")
    for c in result.candidates:
        status = "ok" if c.feasible else "infeasible"
        print(f"  {c.base_name:22s} -> {c.trn_name:26s} "
              f"blocks_removed={c.blocks_removed:2d} "
              f"est={c.estimated_latency_ms:.3f} ms acc={c.accuracy:.4f} "
              f"[{status}]")
    best = result.best
    print(f"winner: {best.trn_name} (accuracy {best.accuracy:.4f}, "
          f"measured {best.measured_latency_ms:.3f} ms)")
    return 0


def cmd_netcut_build(args) -> int:
    """Bake off the pluggable ladder builders on one zoo network.

    Runs the selected :class:`repro.netcut.LadderBuilder` strategies over
    the base network on a simulated device, prints each strategy's rungs
    and accuracy-at-deadline, then the mixed Pareto frontier the serving
    ladder would actually mount. ``--save DIR`` writes the frontier as
    deployment artifacts (builder tags included) loadable with
    ``TRNLadder.from_artifacts``.
    """
    from repro.device import DEVICE_PROFILES, network_latency
    from repro.metrics import accuracy_at_deadline
    from repro.netcut import (
        BUILDERS,
        artifact_points,
        build_rungs,
        frontier_artifacts,
        save_artifact,
    )
    from repro.zoo import build_network

    spec = DEVICE_PROFILES[args.device]()
    base = build_network(_resolve_net(args.net)).build(0)
    names = args.strategy or sorted(BUILDERS)
    per_strategy = build_rungs(base, spec,
                               builders=[BUILDERS[n]() for n in names],
                               max_rungs=args.max_rungs)
    full_ms = network_latency(base, spec).total_ms
    deadline = args.deadline_ms or round(args.deadline_frac * full_ms, 6)
    print(f"{base.name} @ {spec.name}: full model {full_ms:.4f} ms, "
          f"deadline {deadline:.4f} ms")
    for strategy in sorted(per_strategy):
        points = artifact_points(per_strategy[strategy])
        acc = accuracy_at_deadline(points, deadline)
        print(f"\n[{strategy}] {len(points)} rungs, "
              f"acc@deadline {acc:.4f}")
        for p in sorted(points, key=lambda p: -p.latency_ms):
            marker = " " if p.latency_ms <= deadline else "!"
            print(f"  {marker} {p.name:42s} {p.latency_ms:8.4f} ms  "
                  f"acc {p.accuracy:.4f}")
    mixed = [a for strategy in sorted(per_strategy)
             for a in per_strategy[strategy]]
    front = frontier_artifacts(mixed)
    acc = accuracy_at_deadline(artifact_points(mixed), deadline)
    print(f"\nmixed frontier: {len(front)} of {len(mixed)} rungs, "
          f"acc@deadline {acc:.4f}")
    for a in front:
        print(f"    {a.trn_name:42s} {a.measured_latency_ms:8.4f} ms  "
              f"acc {a.accuracy:.4f}  [{a.builder}]")
    if args.save:
        import os

        os.makedirs(args.save, exist_ok=True)
        for a in front:
            save_artifact(a, os.path.join(args.save, f"{a.trn_name}.npz"))
        print(f"saved {len(front)} frontier artifacts to {args.save}/")
    return 0


def cmd_netcut_online(args) -> int:
    """Closed-loop NetCut: drift-triggered re-estimation under throttle.

    Serves a Poisson trace through a TRN ladder while a seeded thermal
    throttle slows the device mid-trace. The same trace replays twice:
    once with the deployment artifact's latency tables frozen (Algorithm 1
    believed at deploy time) and once with ``online_reestimation`` on, so
    the drift -> re-fit -> ladder-rebuild loop's effect on the deadline-
    miss rate reads side by side.
    """
    from repro.device import xavier
    from repro.faults import FaultInjector, ThermalThrottle
    from repro.obs import DriftMonitor
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.zoo import build_network

    device = xavier()
    base = build_network(_resolve_net(args.net)).build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5,
                                 max_rungs=args.max_rungs)
    full = ladder.rungs[0].estimate_ms(1)
    deadline = args.deadline_ms if args.deadline_ms else round(1.3 * full, 3)
    rate = args.rate if args.rate else 0.4e3 / full
    trace = poisson_trace(args.requests, rate, deadline, rng=args.seed)
    span = trace[-1].arrival_ms
    print(f"device: {device.name}   ladder: {len(ladder)} rungs of "
          f"{base.name}   deadline: {deadline} ms")
    print(f"{args.requests} Poisson requests @ {rate:,.0f} req/s; thermal "
          f"throttle to {args.factor}x from t={0.1 * span:,.0f} ms "
          f"(never recovers)")
    print("\nladder (deployment artifact's estimates):")
    for rung in ladder.rungs:
        print(f"  {rung.name:28s} est {rung.estimate_ms(1):.3f} ms")

    def replay(online: bool):
        faults = FaultInjector([ThermalThrottle(
            start_ms=0.1 * span, duration_ms=10 * span,
            factor=args.factor, ramp_ms=0.03 * span)], seed=args.seed)
        drift = DriftMonitor(threshold=0.2, window=16, min_observations=8,
                             cooldown=8)
        config = ServerConfig(
            deadline_ms=deadline, execute=False, seed=args.seed,
            adaptive=False, online_reestimation=online,
            reestimate_method=args.method, reestimate_cooldown_ms=10.0,
            reestimate_min_samples=8, reestimate_max_samples=16)
        server = Server(ladder, config, drift=drift, faults=faults)
        return server.run_trace(trace), server, drift

    for label, online in (("static estimates", False),
                          ("online re-estimation", True)):
        result, server, drift = replay(online)
        print(f"\n--- {label} ---")
        print(result.metrics.report())
        if online:
            print(server.engine.reestimator.report())
            print("calibrated ladder after the run:")
            # read the engine's ladder: under fault injection it is the
            # wrapped copy whose re-sorted order the original never sees
            for rung in server.engine.ladder.rungs:
                print(f"  {rung.name:28s} est {rung.estimate_ms(1):.3f} ms "
                      f"(scale {rung.estimate_scale:.2f}x)")
        if args.verbose:
            print(drift.report())
    return 0


def cmd_estimators(args) -> int:
    """Print the Fig. 9 estimator-error table."""
    from repro.estimators import relative_error
    from repro.trim import removed_node_set

    wb = _workbench(args)
    points = wb.latency_dataset()
    truth = np.array([p.measured_ms for p in points])
    profiler = wb.profiler_adapter()
    prof = np.array([
        profiler._estimator_for(wb.base(p.base_name)).estimate(
            removed_node_set(wb.base(p.base_name), p.cut_node))
        for p in points])
    svr, _ = wb.analytical_model("rbf")
    lin, _ = wb.analytical_model("linear-ols")
    feats = [p.features for p in points]
    svr_pred, lin_pred = svr.predict(feats), lin.predict(feats)
    names = [p.base_name for p in points]
    print(f"{'network':22s} {'profiler%':>10} {'svr%':>8} {'linear%':>9}")
    for net in wb.config.networks:
        mask = np.array([n == net for n in names])
        print(f"{net:22s} "
              f"{relative_error(prof[mask], truth[mask]):>10.2f} "
              f"{relative_error(svr_pred[mask], truth[mask]):>8.2f} "
              f"{relative_error(lin_pred[mask], truth[mask]):>9.2f}")
    return 0


def cmd_pareto(args) -> int:
    """Print the TRN Pareto frontier and a terminal scatter plot."""
    from repro.metrics import CandidatePoint, pareto_frontier
    from repro.viz import scatter

    wb = _workbench(args)
    exploration = wb.exploration()
    by_family: dict[str, list[tuple[float, float]]] = {}
    for r in exploration.records:
        by_family.setdefault(r.base_name, []).append(
            (r.latency_ms, r.accuracy))
    print(scatter(by_family, xlabel="latency (ms)", ylabel="accuracy",
                  vline=args.deadline))
    frontier = pareto_frontier([
        CandidatePoint(r.trn_name, r.latency_ms, r.accuracy)
        for r in exploration.records])
    print("\nPareto frontier:")
    for p in frontier:
        print(f"  {p.name:26s} {p.latency_ms:>8.3f} ms  acc {p.accuracy:.4f}")
    return 0


def cmd_serve(args) -> int:
    """Replay a synthetic request trace through the deadline-aware server.

    Builds the TRN ladder of one zoo network (structure only — serving is
    about latency, so no pretraining is needed), offers Poisson or uniform
    traffic against the simulated Xavier, and prints the metrics report.
    By default the offered load is calibrated to overload the full TRN so
    the ladder degradation is visible; pass ``--rate`` to choose your own.
    """
    from repro.device import xavier
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace, uniform_trace
    from repro.zoo import build_network

    device = xavier()
    base = build_network(args.net).build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5,
                                 max_rungs=args.max_rungs)
    full_est = ladder.rungs[0].estimate_ms(1)
    rate = args.rate if args.rate else 1.3e3 / full_est
    maker = poisson_trace if args.trace == "poisson" else uniform_trace
    trace = maker(args.requests, rate, args.deadline_ms, rng=args.seed,
                  image_size=base.input_shape[0], render=args.execute)
    config = ServerConfig(deadline_ms=args.deadline_ms,
                          max_batch=args.max_batch,
                          adaptive=not args.no_ladder,
                          execute=args.execute, seed=args.seed)
    server = Server(ladder, config)
    result = server.run_trace(trace)

    print(f"TRN ladder for {args.net} on {device.name}:")
    print(ladder.describe())
    print(f"\n{args.trace} trace: {args.requests} requests @ "
          f"{rate:,.0f} req/s, deadline {args.deadline_ms} ms, "
          f"ladder {'off' if args.no_ladder else 'on'}")
    print("\n" + result.metrics.report())
    return 0


def _resolve_net(name: str) -> str:
    """Resolve a zoo network by exact name or unique prefix/substring."""
    from repro.zoo import NETWORKS

    if name in NETWORKS:
        return name
    matches = [n for n in NETWORKS if n.startswith(name)] \
        or [n for n in NETWORKS if name in n]
    if len(matches) != 1:
        raise SystemExit(
            f"--net {name!r} is ambiguous or unknown; zoo networks: "
            + ", ".join(NETWORKS))
    return matches[0]


def cmd_profile(args) -> int:
    """Profile one zoo network layer-by-layer through the obs hooks.

    Prints the per-layer latency table accumulated by
    :class:`repro.obs.LayerProfiler` over real (hooked) forward passes,
    and — when ``--cutpoint`` is given — reproduces the paper's ratio-form
    TRN latency estimate from that table, next to the estimate from the
    device's own profiler and the TRN's direct model latency.
    """
    from repro.device import network_latency, profile_network, xavier
    from repro.estimators import ProfilerEstimator
    from repro.obs import profile_forward
    from repro.trim import build_trn, enumerate_blockwise, removed_node_set
    from repro.zoo import build_network

    spec = xavier()
    net = build_network(_resolve_net(args.net)).build(0)
    table = profile_forward(net, spec, runs=args.runs, warmup=args.warmup,
                            rng=args.seed)
    print(table.describe(top=args.top))
    if args.cutpoint is None:
        return 0
    cuts = enumerate_blockwise(net)
    if not 0 <= args.cutpoint < len(cuts):
        raise SystemExit(f"--cutpoint {args.cutpoint} out of range; "
                         f"{net.name} has {len(cuts)} blockwise cutpoints")
    cut = cuts[args.cutpoint]
    removed = removed_node_set(net, cut.cut_node)
    est_obs = ProfilerEstimator(net, table).estimate(removed)
    est_dev = ProfilerEstimator(net, profile_network(net, spec)) \
        .estimate(removed)
    trn = build_trn(net, cut.cut_node, num_classes=5)
    direct = network_latency(trn, spec).total_ms
    print(f"\ncutpoint {args.cutpoint} ({cut.cut_node}, "
          f"{cut.blocks_removed} blocks removed) -> {trn.name}")
    print(f"ratio estimate from obs table:    {est_obs:.4f} ms")
    print(f"ratio estimate from device table: {est_dev:.4f} ms "
          f"({100 * abs(est_obs - est_dev) / est_dev:.2f}% apart)")
    print(f"TRN direct model latency:         {direct:.4f} ms "
          "(feature part estimated, fresh head replaces the old one)")
    return 0


def cmd_trace(args) -> int:
    """Replay a serve trace with full observability attached.

    Same scenario as ``serve``, plus a request tracer (JSONL and Chrome
    trace export), an estimator-drift monitor, and the unified metrics
    registry report.
    """
    from repro.device import xavier
    from repro.obs import (
        DriftMonitor,
        MetricsRegistry,
        Tracer,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.zoo import build_network

    device = xavier()
    base = build_network(_resolve_net(args.net)).build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5,
                                 max_rungs=args.max_rungs)
    full_est = ladder.rungs[0].estimate_ms(1)
    rate = args.rate if args.rate else 1.3e3 / full_est
    trace = poisson_trace(args.requests, rate, args.deadline_ms,
                          rng=args.seed)
    tracer = Tracer(capacity=args.buffer)
    drift = DriftMonitor(threshold=args.drift_threshold)
    server = Server(ladder, ServerConfig(deadline_ms=args.deadline_ms,
                                         execute=False, seed=args.seed),
                    tracer=tracer, drift=drift)
    result = server.run_trace(trace)

    registry = MetricsRegistry()
    registry.gauge("serve.final_rung").set(ladder.current_index)
    registry.mount("serve", result.metrics)
    registry.mount("trace", tracer)
    registry.mount("drift", drift)
    print(f"{args.requests} Poisson requests @ {rate:,.0f} req/s, "
          f"deadline {args.deadline_ms} ms, seed {args.seed}\n")
    print(registry.report())
    if args.out:
        n = write_jsonl(tracer, args.out)
        print(f"\nwrote {n} spans to {args.out}")
    if args.chrome:
        n = write_chrome_trace(tracer, args.chrome)
        print(f"wrote {n} spans to {args.chrome} "
              "(load in chrome://tracing)")
    return 0


def cmd_faults(args) -> int:
    """Replay a chaos scenario against the resilient serving engine.

    Same traffic as ``serve``, but the ladder is wrapped in a named fault
    scenario (see :data:`repro.faults.SCENARIOS`) and the engine runs with
    timeouts, retries and circuit breakers. With ``--compare`` the same
    scenario is also replayed with resilience off, so the deadline-miss
    rates can be read side by side; ``--no-resilience`` runs only the
    undefended engine.
    """
    from repro.device import xavier
    from repro.faults import build_scenario
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.zoo import build_network

    device = xavier()
    base = build_network(_resolve_net(args.net)).build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5,
                                 max_rungs=args.max_rungs)
    full_est = ladder.rungs[0].estimate_ms(1)
    rate = args.rate if args.rate else 1.3e3 / full_est
    trace = poisson_trace(args.requests, rate, args.deadline_ms,
                          rng=args.seed)
    span_ms = trace[-1].arrival_ms if trace else 0.0
    if args.rung:
        rungs = tuple(args.rung)
    elif args.scenario in ("rung-failure", "mixed"):
        # break the most accurate rung by default: the breaker opens and
        # traffic visibly shifts down the ladder instead of stalling
        rungs = (ladder.rungs[0].name,)
    else:
        rungs = None
    scenario = build_scenario(args.scenario, span_ms, seed=args.seed,
                              rungs=rungs)
    print(scenario.describe())
    print(f"\n{args.requests} Poisson requests @ {rate:,.0f} req/s, "
          f"deadline {args.deadline_ms} ms, seed {args.seed}")

    def replay(resilient: bool):
        injector = scenario.injector()
        config = ServerConfig(deadline_ms=args.deadline_ms,
                              execute=False, seed=args.seed,
                              resilience=resilient)
        server = Server(ladder, config, faults=injector)
        return server.run_trace(trace), injector

    runs = []
    if not args.no_resilience:
        runs.append(("resilient", True))
    if args.no_resilience or args.compare:
        runs.append(("undefended", False))
    for label, resilient in runs:
        result, injector = replay(resilient)
        print(f"\n--- {label} engine "
              f"(resilience {'on' if resilient else 'off'}) ---")
        print(result.metrics.report())
        if args.verbose:
            print(injector.report())
    return 0


def _workload_ladder(args):
    """Ladder + pinned-rung ServerConfig shared by the workload verbs."""
    from repro.device import xavier
    from repro.serve import ServerConfig, TRNLadder
    from repro.zoo import build_network

    base = build_network(_resolve_net(args.net)).build(0)
    ladder = TRNLadder.from_base(base, xavier(), num_classes=5,
                                 max_rungs=args.max_rungs)
    config = ServerConfig(deadline_ms=args.deadline_ms, execute=False,
                          adaptive=not args.no_ladder, seed=args.seed,
                          queue_capacity=args.queue_capacity)
    return ladder, config


def cmd_workload(args) -> int:
    """Production traffic: generate/record, replay, or fluid-predict.

    ``generate`` samples a named workload shape (diurnal, flash crowd,
    MMPP, superpositions) into a request trace — multi-tenant when
    ``--tenants`` is given — serves it, and optionally records the run to
    a versioned JSONL file. ``replay`` re-serves a recorded trace and
    verifies the outcomes byte-for-byte against what was recorded.
    ``fluid`` skips the event loop entirely: the analytical model
    predicts per-tenant admitted throughput and miss rate per rung, or
    sweeps fleet sizes / plans the smallest fleet for a miss target.
    """
    import repro.workload as wl
    from dataclasses import replace
    from repro.serve import Server

    ladder, config = _workload_ladder(args)
    mix = wl.default_tenants() if args.tenants else None
    policy = None
    if args.fair:
        if mix is None:
            raise SystemExit("--fair needs --tenants (weighted-fair "
                             "admission is per-tenant)")
        policy = wl.WeightedFairAdmission(mix, watermark=args.watermark)
        config = replace(config, admission_policy=policy)

    if args.workload_cmd == "replay":
        recorded = wl.load_trace(args.path)
        print(f"loaded {args.path}: {recorded.describe()}")
        result = Server(ladder, config).run_trace(recorded.requests)
        print("\n" + result.metrics.report())
        if recorded.outcomes:
            problems = wl.verify_replay(recorded, result.responses)
            if problems:
                print(f"\nreplay DIVERGED from the recording "
                      f"({len(problems)} outcomes differ):")
                for line in problems[:10]:
                    print(f"  {line}")
                return 1
            print(f"\nreplay reproduced all {len(recorded.outcomes)} "
                  "recorded outcomes exactly")
        return 0

    process = wl.make_process(args.kind, args.base_rate, args.horizon_ms)
    print(f"workload: {process.describe()} over {args.horizon_ms:.0f} ms")
    if mix is not None:
        print("tenants:\n" + mix.describe())

    if args.workload_cmd == "generate":
        trace = wl.generate_trace(process, args.horizon_ms,
                                  deadline_ms=args.deadline_ms,
                                  tenants=mix, rng=args.seed)
        rate = len(trace) * 1e3 / args.horizon_ms
        print(f"sampled {len(trace)} requests ({rate:,.0f} rps offered)")
        result = Server(ladder, config).run_trace(trace)
        print("\n" + result.metrics.report())
        if args.out:
            wl.record_run(args.out, trace, result.responses,
                          meta={"kind": args.kind, "seed": args.seed,
                                "horizon_ms": args.horizon_ms,
                                "net": args.net})
            print(f"\nrecorded run -> {args.out}")
        return 0

    # fluid: analytical predictions, no event loop
    fluid = wl.FluidModel.from_ladder(ladder, config, tenants=mix)
    if args.plan_miss is not None:
        n = fluid.plan_fleet(process, args.horizon_ms, args.plan_miss,
                             rung=ladder.rungs[args.rung].name)
        if n is None:
            print(f"no fleet up to 256 replicas holds miss rate "
                  f"<= {args.plan_miss:.2%}")
            return 1
        print(f"smallest fleet with every tenant at miss rate "
              f"<= {args.plan_miss:.2%}: {n} replica(s)")
        print(fluid.solve(process, args.horizon_ms, replicas=n,
                          rung=ladder.rungs[args.rung].name).report())
    elif args.replicas_sweep:
        counts = [int(x) for x in args.replicas_sweep.split(",")]
        preds = fluid.sweep(process, args.horizon_ms, counts,
                            rung=ladder.rungs[args.rung].name)
        for n, pred in preds.items():
            print(f"\n-- {n} replica(s) --")
            print(pred.report())
    else:
        for name, pred in fluid.solve_ladder(process, args.horizon_ms,
                                             replicas=args.replicas).items():
            print(f"\n-- rung {name} --")
            print(pred.report())
    return 0


def cmd_cluster(args) -> int:
    """Route a request trace across a fleet of serving replicas.

    Same traffic model as ``serve``, dispatched across ``--replicas``
    shards under a routing policy. ``--device`` (repeatable) builds a
    heterogeneous fleet from named device profiles; ``--kill-replica``
    hard-fails every rung of one replica over the middle of the trace
    (resilience is switched on so its breakers open and the router
    routes around it); ``--autoscale`` starts from one replica and lets
    the autoscaler grow the fleet.
    """
    from dataclasses import replace

    from repro.cluster import (
        Autoscaler,
        AutoscalerConfig,
        Replica,
        Router,
        homogeneous_replicas,
        make_policy,
    )
    from repro.device import DEVICE_PROFILES, xavier
    from repro.faults import build_scenario
    from repro.serve import ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.zoo import build_network

    base = build_network(_resolve_net(args.net)).build(0)
    config = ServerConfig(deadline_ms=args.deadline_ms,
                          max_batch=args.max_batch, execute=False,
                          seed=args.seed, queue_capacity=64, window=16,
                          min_observations=8, cooldown=8,
                          resilience=args.kill_replica is not None)
    probe = TRNLadder.from_base(base, xavier(), num_classes=5,
                                max_rungs=args.max_rungs)
    rate = args.rate if args.rate else \
        0.8e3 * args.replicas / probe.fastest.estimate_ms(1)
    trace = poisson_trace(args.requests, rate, args.deadline_ms,
                          rng=args.seed)
    span_ms = trace[-1].arrival_ms if trace else 0.0

    def build_replica(i: int, spec=None) -> Replica:
        spec = spec or xavier()
        ladder = TRNLadder.from_base(base, spec, num_classes=5,
                                     max_rungs=args.max_rungs)
        faults = None
        if args.kill_replica == i:
            faults = build_scenario("rung-failure", span_ms,
                                    seed=args.seed).injector()
        return Replica(f"r{i}", ladder,
                       replace(config, seed=config.seed + i), faults=faults)

    if args.device:
        specs = [DEVICE_PROFILES[name]() for name in args.device]
        replicas = [build_replica(i, spec) for i, spec in enumerate(specs)]
    elif args.kill_replica is not None:
        replicas = [build_replica(i) for i in range(args.replicas)]
    else:
        replicas = homogeneous_replicas(base, xavier(), args.replicas,
                                        config, max_rungs=args.max_rungs)

    autoscaler = None
    if args.autoscale:
        replicas = replicas[:1]
        autoscaler = Autoscaler(build_replica, AutoscalerConfig(
            max_replicas=args.replicas, check_interval_ms=1.0,
            cooldown_ms=2.0, up_load=4.0))

    policy = make_policy(args.policy, args.seed)
    result = Router(replicas, policy, autoscaler=autoscaler).run(trace)

    fleet = ", ".join(f"{r.name}({r.spec.name})" for r in result.replicas)
    print(f"fleet: {fleet}")
    print(f"{args.requests} Poisson requests @ {rate:,.0f} req/s, "
          f"deadline {args.deadline_ms} ms, policy {policy.name}, "
          f"seed {args.seed}")
    if args.kill_replica is not None:
        print(f"replica r{args.kill_replica} hard-fails over the middle "
              f"of the trace")
    print("\n" + result.metrics.report())
    return 0


def _default_store() -> str:
    import os

    return os.environ.get("REPRO_RUNSTORE", "RUNSTORE.sqlite")


def cmd_obs(args) -> int:
    """Telemetry workflows: exposition, burn-rate alerts, the run store.

    ``expose`` replays a serve trace with labeled telemetry attached and
    prints the OpenMetrics text exposition (pipe it to a scraper or a
    file). ``alerts`` replays a chaos scenario against an *undefended*
    pinned-rung engine with the canonical SLO burn-rate rules attached
    and prints the firing/resolved timeline — exit status 1 if any alert
    is still firing when the trace drains. ``runs`` lists the archived
    runs of a SQLite run store and ``compare`` diffs two of them, biggest
    relative movers first. ``gate`` applies the bench-regression
    tolerances (the same ones CI enforces) to fresh ``BENCH_*.json``
    files against the committed baselines — exit status 1 on any
    violation.
    """
    if args.obs_cmd == "gate":
        from repro.obs import run_gate

        return run_gate(args.baselines, args.current, top=args.top)

    from repro.obs import (
        AlertEngine,
        RunStore,
        Telemetry,
        default_slo_rules,
        to_json,
        to_openmetrics,
    )

    if args.obs_cmd == "runs":
        import os
        import time as _time

        path = args.store or _default_store()
        if not os.path.exists(path):
            raise SystemExit(
                f"run store {path!r} does not exist; record one with "
                "scripts/bench_serve.py --store or repro obs alerts --store")
        with RunStore(path) as store:
            rows = store.runs(kind=args.kind)
            if not rows:
                what = f" of kind {args.kind!r}" if args.kind else ""
                print(f"{path}: no runs{what}")
                return 0
            print(f"{path}: {len(rows)} run(s)")
            for row in rows:
                stamp = _time.strftime("%Y-%m-%d %H:%M:%S",
                                       _time.gmtime(row["created"]))
                meta = " ".join(f"{k}={v}"
                                for k, v in sorted(row["meta"].items()))
                print(f"  #{row['id']:<4d} {row['kind']:18s} {stamp}  {meta}")
        return 0

    if args.obs_cmd == "compare":
        path = args.store or _default_store()
        with RunStore(path) as store:
            try:
                rows = store.compare(args.run_a, args.run_b)
            except KeyError as exc:
                raise SystemExit(str(exc.args[0]))
        movers = [r for r in rows if r["rel"]]
        print(f"run #{args.run_a} vs run #{args.run_b}: "
              f"{len(rows)} keys, {len(movers)} moved "
              f"(top {min(args.top, len(rows))} by |relative change|)")
        print(f"{'key':52s} {'a':>12} {'b':>12} {'rel':>9}")

        def cell(v) -> str:
            return "-" if v is None else f"{v:12.4g}"

        for row in rows[:args.top]:
            rel = row["rel"]
            rel_s = "-" if rel is None else f"{100 * rel:+8.1f}%"
            print(f"{row['key'][:52]:52s} {cell(row['a']):>12} "
                  f"{cell(row['b']):>12} {rel_s:>9}")
        return 0

    # expose / alerts: one telemetered serving replay
    from repro.device import xavier
    from repro.serve import Server, ServerConfig, TRNLadder
    from repro.workload import poisson_trace
    from repro.zoo import build_network

    device = xavier()
    base = build_network(_resolve_net(args.net)).build(0)
    ladder = TRNLadder.from_base(base, device, num_classes=5,
                                 max_rungs=args.max_rungs)
    full_est = ladder.rungs[0].estimate_ms(1)
    telemetry = Telemetry(sample_interval_ms=args.sample_ms)

    if args.obs_cmd == "expose":
        rate = args.rate if args.rate else 1.3e3 / full_est
        trace = poisson_trace(args.requests, rate, args.deadline_ms,
                              rng=args.seed)
        config = ServerConfig(deadline_ms=args.deadline_ms, execute=False,
                              seed=args.seed)
        Server(ladder, config, telemetry=telemetry).run_trace(trace)
        if args.json:
            import json

            with open(args.json, "w") as fh:
                json.dump(to_json(telemetry), fh, sort_keys=True)
            print(f"wrote JSON export to {args.json}", file=sys.stderr)
        # exposition only on stdout: scrape-able / pipe-able
        sys.stdout.write(to_openmetrics(telemetry))
        return 0

    # alerts: chaos replay with the SLO burn-rate rules attached.  The
    # engine is pinned to the full rung and undefended so the storm's
    # misses actually reach the series (the calibrated defaults fire
    # both rules mid-storm and resolve them in the quiet tail).
    from repro.faults import build_scenario

    rate = args.rate if args.rate else 0.65e3 / full_est
    trace = poisson_trace(args.requests, rate, args.deadline_ms,
                          rng=args.seed)
    span_ms = trace[-1].arrival_ms if trace else 0.0
    scenario = build_scenario(args.scenario, span_ms * 0.5,
                              seed=args.fault_seed)
    engine = AlertEngine(default_slo_rules(args.deadline_ms,
                                           miss_budget=args.miss_budget,
                                           fast_ms=args.fast_ms,
                                           slow_ms=args.slow_ms))
    telemetry.attach_alerts(engine)
    config = ServerConfig(deadline_ms=args.deadline_ms, execute=False,
                          seed=args.seed, adaptive=False)
    server = Server(ladder, config, faults=scenario.injector(),
                    telemetry=telemetry)
    result = server.run_trace(trace)

    print(scenario.describe())
    print(f"\n{args.requests} Poisson requests @ {rate:,.0f} req/s, "
          f"deadline {args.deadline_ms} ms, seed {args.seed} "
          "(pinned full rung, resilience off)")
    print("\n" + engine.report())
    print("\n" + result.metrics.report())
    if args.store:
        with RunStore(args.store) as store:
            run_id = store.add_run(
                "obs.alerts", telemetry=telemetry,
                meta={"net": args.net, "scenario": args.scenario,
                      "seed": args.seed, "deadline_ms": args.deadline_ms},
                artifacts={"alerts": engine.snapshot()})
        print(f"\narchived as run #{run_id} in {args.store}")
    return 1 if engine.active else 0


def cmd_figures(args) -> int:
    """List every reproduced figure/claim and its benchmark."""
    from repro.figures import EXPERIMENTS

    for e in EXPERIMENTS:
        print(f"{e.id:10s} {e.paper_ref:22s} {e.benchmark}")
        print(f"{'':10s} {e.claim}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--networks", action="append", default=None,
                        metavar="NAME",
                        help="restrict to this zoo network (repeatable)")
    parser.add_argument("--hands-images", type=int, default=1100,
                        dest="hands_images")
    parser.add_argument("--head-epochs", type=int, default=50,
                        dest="head_epochs")
    parser.add_argument("--cache-dir", default=None, dest="cache_dir")
    parser.add_argument("--quick", action="store_true",
                        help="tiny budgets for a fast smoke run "
                             "(minutes, not paper-quality numbers)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("zoo", help="list the seven networks")

    p = sub.add_parser("measure", help="measure off-the-shelf latencies")
    p.add_argument("--net", default=None, help="measure only this network")
    p.add_argument("--deadline", type=float, default=0.9)

    p = sub.add_parser("explore", help="run the 148-TRN blockwise sweep")
    p.add_argument("--force", action="store_true",
                   help="ignore the on-disk cache")

    p = sub.add_parser("netcut", help="run Algorithm 1")
    p.add_argument("--deadline", type=float, default=0.9)
    p.add_argument("--estimator", default="profiler",
                   choices=["profiler", "analytical", "linear"])
    # nested verbs: `netcut` alone keeps running Algorithm 1 (required
    # stays False), `netcut online` closes the serving-time loop,
    # `netcut build` bakes off the pluggable ladder builders
    nsub = p.add_subparsers(dest="netcut_cmd", required=False)
    pb = nsub.add_parser(
        "build",
        help="bake off the ladder builders, print the mixed frontier")
    pb.add_argument("--net", default="mobilenet_v1_0.5",
                    help="zoo network (exact name, prefix or substring)")
    pb.add_argument("--device", default="xavier",
                    choices=["xavier", "nano", "agx_boosted"])
    pb.add_argument("--strategy", action="append", default=None,
                    choices=["greedy", "filter-prune", "halp", "dp-depth"],
                    help="builder to run (repeatable; default: all)")
    pb.add_argument("--max-rungs", type=int, default=4, dest="max_rungs",
                    help="rung budget per strategy")
    pb.add_argument("--deadline-ms", type=float, default=None,
                    dest="deadline_ms",
                    help="deadline for acc@deadline (overrides the "
                         "fraction)")
    pb.add_argument("--deadline-frac", type=float, default=0.6,
                    dest="deadline_frac",
                    help="deadline as a fraction of the full model "
                         "latency")
    pb.add_argument("--save", default=None, metavar="DIR",
                    help="write the mixed frontier as .npz artifacts")
    po = nsub.add_parser(
        "online",
        help="drift-triggered re-estimation + live ladder rebuild")
    po.add_argument("--net", default="mobilenet_v1_0.5",
                    help="zoo network (exact name, prefix or substring)")
    po.add_argument("--deadline-ms", type=float, default=None,
                    dest="deadline_ms",
                    help="serving deadline (default: 1.3x the full TRN)")
    po.add_argument("--requests", type=int, default=1000)
    po.add_argument("--rate", type=float, default=None,
                    help="offered load in requests/s (default: 0.4x the "
                         "full TRN's single-request capacity)")
    po.add_argument("--max-rungs", type=int, default=6, dest="max_rungs")
    po.add_argument("--factor", type=float, default=2.5,
                    help="thermal-throttle slowdown factor")
    po.add_argument("--method", default="ratio", choices=["ratio", "svr"],
                    help="re-estimation fit (per-rung median or pooled SVR)")
    po.add_argument("--seed", type=int, default=0)
    po.add_argument("--verbose", action="store_true",
                    help="also print the drift monitor's event report")

    sub.add_parser("estimators", help="estimator error table (Fig. 9)")

    sub.add_parser("figures", help="list the reproduced figures/claims")

    p = sub.add_parser("pareto", help="TRN Pareto frontier + scatter")
    p.add_argument("--deadline", type=float, default=0.9)

    p = sub.add_parser("serve",
                       help="deadline-aware serving on a TRN ladder")
    p.add_argument("--deadline-ms", type=float, default=0.9,
                   dest="deadline_ms")
    p.add_argument("--trace", choices=["poisson", "uniform"],
                   default="poisson")
    p.add_argument("--net", default="mobilenet_v1_0.5",
                   help="zoo network whose TRN ladder serves the traffic")
    p.add_argument("--requests", type=int, default=400)
    p.add_argument("--rate", type=float, default=None,
                   help="offered load in requests/s (default: 1.3x the "
                        "full TRN's single-request capacity)")
    p.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    p.add_argument("--max-rungs", type=int, default=6, dest="max_rungs")
    p.add_argument("--no-ladder", action="store_true", dest="no_ladder",
                   help="pin the full TRN (disable degradation)")
    p.add_argument("--execute", action="store_true",
                   help="run real forward passes on rendered images "
                        "(slower; default is timing-only simulation)")
    p.add_argument("--seed", type=int, default=0)

    from repro.faults import SCENARIOS

    p = sub.add_parser("faults",
                       help="chaos replay against the resilient engine")
    p.add_argument("--scenario", default="straggler-storm",
                   choices=sorted(SCENARIOS),
                   help="built-in chaos scenario to replay")
    p.add_argument("--net", default="mobilenet_v1_0.5",
                   help="zoo network (exact name, prefix or substring)")
    p.add_argument("--deadline-ms", type=float, default=0.9,
                   dest="deadline_ms")
    p.add_argument("--requests", type=int, default=400)
    p.add_argument("--rate", type=float, default=None,
                   help="offered load in requests/s (default: 1.3x the "
                        "full TRN's single-request capacity)")
    p.add_argument("--max-rungs", type=int, default=6, dest="max_rungs")
    p.add_argument("--rung", action="append", default=None,
                   help="rung name targeted by rung-specific faults "
                        "(repeatable; default: the most accurate rung)")
    p.add_argument("--compare", action="store_true",
                   help="also replay with resilience off, side by side")
    p.add_argument("--no-resilience", action="store_true",
                   dest="no_resilience",
                   help="replay only the undefended engine")
    p.add_argument("--verbose", action="store_true",
                   help="print the injector's fault event log")
    p.add_argument("--seed", type=int, default=0)

    from repro.cluster import POLICIES
    from repro.device import DEVICE_PROFILES

    p = sub.add_parser("cluster",
                       help="multi-replica scale-out serving")
    p.add_argument("--replicas", type=int, default=3,
                   help="fleet size (with --autoscale: the cap)")
    p.add_argument("--policy", default="p2c-deadline",
                   choices=sorted(POLICIES),
                   help="routing policy")
    p.add_argument("--device", action="append", default=None,
                   choices=sorted(DEVICE_PROFILES),
                   help="device profile per replica (repeatable; builds "
                        "a heterogeneous fleet and overrides --replicas)")
    p.add_argument("--net", default="mobilenet_v1_0.5",
                   help="zoo network (exact name, prefix or substring)")
    p.add_argument("--deadline-ms", type=float, default=3.0,
                   dest="deadline_ms")
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--rate", type=float, default=None,
                   help="offered load in requests/s (default: ~1.4x one "
                        "replica's batched capacity per fleet replica)")
    p.add_argument("--max-rungs", type=int, default=6, dest="max_rungs")
    p.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    p.add_argument("--autoscale", action="store_true",
                   help="start from one replica and let the autoscaler "
                        "grow the fleet up to --replicas")
    p.add_argument("--kill-replica", type=int, default=None,
                   dest="kill_replica", metavar="INDEX",
                   help="hard-fail this replica's rungs mid-trace "
                        "(rung-failure scenario; enables resilience)")
    p.add_argument("--seed", type=int, default=0)

    from repro.workload import WORKLOAD_KINDS

    p = sub.add_parser("workload",
                       help="production traffic: generate, replay, fluid")
    wsub = p.add_subparsers(dest="workload_cmd", required=True)

    def _workload_common(wp, with_process=True):
        wp.add_argument("--net", default="mobilenet_v1_0.5",
                        help="zoo network (exact name, prefix, substring)")
        wp.add_argument("--deadline-ms", type=float, default=3.0,
                        dest="deadline_ms",
                        help="deadline for untagged (single-class) traffic")
        wp.add_argument("--max-rungs", type=int, default=6,
                        dest="max_rungs")
        wp.add_argument("--queue-capacity", type=int, default=64,
                        dest="queue_capacity")
        wp.add_argument("--no-ladder", action="store_true",
                        dest="no_ladder",
                        help="pin the full TRN (disable degradation)")
        wp.add_argument("--tenants", action="store_true",
                        help="two-class interactive/batch tenant mix")
        wp.add_argument("--fair", action="store_true",
                        help="weighted-fair admission (needs --tenants)")
        wp.add_argument("--watermark", type=float, default=0.25,
                        help="queue fill fraction where fair shares bind")
        wp.add_argument("--seed", type=int, default=0)
        if with_process:
            wp.add_argument("--kind", default="diurnal-flash",
                            choices=list(WORKLOAD_KINDS),
                            help="workload shape")
            wp.add_argument("--base-rate", type=float, default=4000.0,
                            dest="base_rate",
                            help="base arrival rate in requests/s")
            wp.add_argument("--horizon-ms", type=float, default=300.0,
                            dest="horizon_ms")

    wp = wsub.add_parser("generate",
                         help="sample a workload, serve it, record the run")
    _workload_common(wp)
    wp.add_argument("--out", default=None, metavar="PATH",
                    help="record requests + outcomes as versioned JSONL")

    wp = wsub.add_parser("replay",
                         help="re-serve a recorded trace and verify it")
    _workload_common(wp, with_process=False)
    wp.add_argument("path", help="JSONL trace written by generate")

    wp = wsub.add_parser("fluid",
                         help="analytical throughput/miss predictions")
    _workload_common(wp)
    wp.add_argument("--replicas", type=int, default=1,
                    help="fleet size for the per-rung predictions")
    wp.add_argument("--rung", type=int, default=0,
                    help="rung index for --sweep/--plan-miss (0 = most "
                         "accurate)")
    wp.add_argument("--sweep", default=None, dest="replicas_sweep",
                    metavar="N,N,...",
                    help="comma-separated fleet sizes to sweep")
    wp.add_argument("--plan-miss", type=float, default=None,
                    dest="plan_miss", metavar="RATE",
                    help="plan the smallest fleet with every tenant at "
                         "or under this miss rate")

    p = sub.add_parser("obs",
                       help="telemetry: exposition, alerts, run store")
    osub = p.add_subparsers(dest="obs_cmd", required=True)

    def _obs_serve_common(op):
        op.add_argument("--net", default="mobilenet_v1_0.5",
                        help="zoo network (exact name, prefix, substring)")
        op.add_argument("--requests", type=int, default=400)
        op.add_argument("--rate", type=float, default=None,
                        help="offered load in requests/s")
        op.add_argument("--max-rungs", type=int, default=6,
                        dest="max_rungs")
        op.add_argument("--sample-ms", type=float, default=1.0,
                        dest="sample_ms",
                        help="telemetry sampling interval (virtual ms)")

    op = osub.add_parser("expose",
                         help="serve with telemetry, print OpenMetrics text")
    _obs_serve_common(op)
    op.add_argument("--deadline-ms", type=float, default=0.9,
                    dest="deadline_ms")
    op.add_argument("--json", default=None, metavar="PATH",
                    help="also write the JSON export (metrics + series)")
    op.add_argument("--seed", type=int, default=0)

    op = osub.add_parser("alerts",
                         help="burn-rate alert timeline on a chaos replay "
                              "(exit 1 if still firing at drain)")
    _obs_serve_common(op)
    op.set_defaults(requests=800)
    op.add_argument("--deadline-ms", type=float, default=2.5,
                    dest="deadline_ms")
    op.add_argument("--scenario", default="straggler-storm",
                    choices=sorted(SCENARIOS),
                    help="chaos scenario over the first half of the trace")
    op.add_argument("--miss-budget", type=float, default=0.05,
                    dest="miss_budget",
                    help="SLO deadline-miss budget (fraction of completions)")
    op.add_argument("--fast-ms", type=float, default=8.0, dest="fast_ms",
                    help="fast burn-rate window (virtual ms)")
    op.add_argument("--slow-ms", type=float, default=24.0, dest="slow_ms",
                    help="slow burn-rate window (virtual ms)")
    op.add_argument("--store", default=None, metavar="PATH",
                    help="archive the run in this SQLite run store")
    op.add_argument("--seed", type=int, default=2)
    op.add_argument("--fault-seed", type=int, default=0, dest="fault_seed")

    op = osub.add_parser("gate",
                         help="bench-regression gate: fresh BENCH_*.json "
                              "vs committed baselines (exit 1 on "
                              "regression)")
    op.add_argument("--baselines", default="benchmarks/baselines",
                    metavar="DIR",
                    help="directory of committed BENCH_*.json baselines")
    op.add_argument("--current", default=".", metavar="DIR",
                    help="directory with the just-produced BENCH_*.json")
    op.add_argument("--top", type=int, default=20,
                    help="movers-table rows (violations always shown)")

    op = osub.add_parser("runs", help="list runs archived in a run store")
    op.add_argument("--store", default=None, metavar="PATH",
                    help="SQLite path (default: $REPRO_RUNSTORE or "
                         "RUNSTORE.sqlite)")
    op.add_argument("--kind", default=None,
                    help="only runs of this kind (e.g. bench.serve)")

    op = osub.add_parser("compare", help="diff two archived runs")
    op.add_argument("run_a", type=int, help="baseline run id")
    op.add_argument("run_b", type=int, help="candidate run id")
    op.add_argument("--store", default=None, metavar="PATH",
                    help="SQLite path (default: $REPRO_RUNSTORE or "
                         "RUNSTORE.sqlite)")
    op.add_argument("--top", type=int, default=20,
                    help="rows to print (biggest relative movers first)")

    p = sub.add_parser("profile",
                       help="per-layer latency table via forward hooks")
    p.add_argument("--net", default="mobilenet_v1_0.5",
                   help="zoo network (exact name, prefix or substring)")
    p.add_argument("--cutpoint", type=int, default=None,
                   help="blockwise cutpoint index: also print the "
                        "ratio-form TRN estimate from the table")
    p.add_argument("--runs", type=int, default=100,
                   help="recorded forward passes")
    p.add_argument("--warmup", type=int, default=200,
                   help="discarded warm-up runs (paper protocol: 200)")
    p.add_argument("--top", type=int, default=None,
                   help="show only the N slowest kernels")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("trace",
                       help="traced serving replay with drift monitoring")
    p.add_argument("--net", default="mobilenet_v1_0.5",
                   help="zoo network (exact name, prefix or substring)")
    p.add_argument("--deadline-ms", type=float, default=0.9,
                   dest="deadline_ms")
    p.add_argument("--requests", type=int, default=400)
    p.add_argument("--rate", type=float, default=None,
                   help="offered load in requests/s (default: 1.3x the "
                        "full TRN's single-request capacity)")
    p.add_argument("--max-rungs", type=int, default=6, dest="max_rungs")
    p.add_argument("--buffer", type=int, default=65536,
                   help="trace buffer capacity (spans)")
    p.add_argument("--drift-threshold", type=float, default=0.25,
                   dest="drift_threshold",
                   help="rolling |relative error| that raises a drift event")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write spans as JSON lines")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="write a chrome://tracing JSON file")
    p.add_argument("--seed", type=int, default=0)
    return parser


_COMMANDS = {
    "zoo": cmd_zoo,
    "measure": cmd_measure,
    "explore": cmd_explore,
    "netcut": cmd_netcut,
    "estimators": cmd_estimators,
    "figures": cmd_figures,
    "pareto": cmd_pareto,
    "serve": cmd_serve,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "faults": cmd_faults,
    "cluster": cmd_cluster,
    "workload": cmd_workload,
    "obs": cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
