"""Layer implementations for the NumPy DNN framework.

Every layer follows the same contract:

- ``forward(inputs, training=False)`` takes a *list* of NHWC (or flat) arrays,
  one per graph predecessor, and returns a single output array. Single-input
  layers receive a one-element list.
- ``backward(grad)`` takes the gradient with respect to the output and
  returns a list of gradients, one per input, accumulating parameter
  gradients in ``Parameter.grad`` along the way (unless the layer is frozen).
- ``out_shape(in_shapes)`` computes the output shape (without the batch
  dimension) from the input shapes, so that networks can be shape-checked
  and their cost modelled without running data through them.
- ``flops(in_shapes)`` counts multiply-accumulate work (2 ops per MAC) for
  the device latency model and the analytical estimator features.

Layers are intentionally stateful between ``forward`` and ``backward`` (they
cache activations); a layer instance therefore belongs to exactly one
network.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .initializers import glorot_uniform, he_normal

__all__ = [
    "Parameter",
    "Layer",
    "Input",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "BatchNorm",
    "ReLU",
    "ReLU6",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "Flatten",
    "Dropout",
    "Softmax",
    "Add",
    "Concat",
]

Shape = tuple[int, ...]


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    Assignments through :attr:`value` bump :attr:`version`, which the
    compiled forward path (:mod:`repro.nn.compile`) uses to detect weight
    mutation and invalidate cached execution plans. Augmented updates
    (``p.value -= g``) go through the setter too; only raw in-place writes
    into the array (``p.value[...] = x``) escape it.
    """

    def __init__(self, value: np.ndarray):
        self.version = 0
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    @property
    def value(self) -> np.ndarray:
        return self._value

    @value.setter
    def value(self, v: np.ndarray) -> None:
        self._value = np.asarray(v, dtype=np.float32)
        self.version += 1

    @property
    def size(self) -> int:
        """Number of scalar weights in this parameter."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)


class Layer:
    """Base class for all layers.

    Attributes
    ----------
    params:
        Mapping from parameter name to :class:`Parameter`. Empty for
        parameter-free layers.
    frozen:
        When ``True``, ``backward`` still propagates input gradients but does
        not accumulate parameter gradients (transfer-learning phase 1).
    """

    #: class-level default used by the device model for fusion decisions
    fusable_activation = False

    def __init__(self) -> None:
        self.params: dict[str, Parameter] = {}
        self.frozen = False
        self.built = False

    # -- construction ------------------------------------------------------
    def build(self, in_shapes: list[Shape], rng: np.random.Generator) -> None:
        """Allocate parameters for the given input shapes (idempotent)."""
        self.built = True

    # -- execution ---------------------------------------------------------
    def forward(self, inputs: list[np.ndarray],
                training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:
        raise NotImplementedError

    # -- static analysis ---------------------------------------------------
    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        """Output shape (batch dimension excluded)."""
        raise NotImplementedError

    def flops(self, in_shapes: list[Shape]) -> int:
        """Floating-point operations for a single example."""
        return 0

    def param_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.params.values())

    def zero_grad(self) -> None:
        for p in self.params.values():
            p.zero_grad()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Input(Layer):
    """Placeholder layer holding the network input shape."""

    def __init__(self, shape: Shape):
        super().__init__()
        self.shape = tuple(shape)

    def forward(self, inputs: list[np.ndarray],
                training: bool = False) -> np.ndarray:
        return inputs[0]

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:
        return [grad]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return self.shape


class Conv2D(Layer):
    """2-D convolution with optional bias, SAME or VALID padding.

    Weight layout is ``(kh, kw, in_channels, filters)``.
    """

    fusable_activation = True

    def __init__(self, filters: int, kernel: int | tuple[int, int],
                 stride: int = 1, padding: str = "same",
                 use_bias: bool = True):
        super().__init__()
        if padding not in ("same", "valid"):
            raise ValueError(f"unknown padding {padding!r}")
        self.filters = int(filters)
        self.kernel = (kernel, kernel) if isinstance(kernel, int) else tuple(kernel)
        self.stride = int(stride)
        self.padding = padding
        self.use_bias = use_bias
        self._cache: tuple | None = None

    def build(self, in_shapes: list[Shape], rng: np.random.Generator) -> None:
        if self.built:
            return
        c_in = in_shapes[0][-1]
        kh, kw = self.kernel
        fan_in = kh * kw * c_in
        self.params["w"] = Parameter(
            he_normal((kh, kw, c_in, self.filters), fan_in, rng))
        if self.use_bias:
            self.params["b"] = Parameter(np.zeros(self.filters))
        self.built = True

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding == "same":
            return F.pad_same(x, self.kernel, (self.stride, self.stride))
        return x

    def forward(self, inputs: list[np.ndarray],
                training: bool = False) -> np.ndarray:
        x = inputs[0]
        kh, kw = self.kernel
        xp = self._pad(x)
        cols = F.im2col(xp, kh, kw, self.stride)
        w = self.params["w"].value
        out = cols @ w.reshape(-1, self.filters)
        if self.use_bias:
            out = out + self.params["b"].value
        self._cache = (x.shape, xp.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:
        x_shape, xp_shape, cols = self._cache
        kh, kw = self.kernel
        n, oh, ow, _ = grad.shape
        g2 = grad.reshape(-1, self.filters)
        if not self.frozen:
            w = self.params["w"]
            w.grad += (cols.reshape(-1, cols.shape[-1]).T @ g2).reshape(w.value.shape)
            if self.use_bias:
                self.params["b"].grad += g2.sum(axis=0)
        wflat = self.params["w"].value.reshape(-1, self.filters)
        dcols = g2 @ wflat.T
        dxp = F.col2im(dcols.reshape(n, oh, ow, -1), xp_shape, kh, kw, self.stride)
        # strip SAME padding
        ph0 = (xp_shape[1] - x_shape[1])
        pw0 = (xp_shape[2] - x_shape[2])
        if ph0 or pw0:
            hb, _ = F.same_padding(x_shape[1], kh, self.stride)
            wb, _ = F.same_padding(x_shape[2], kw, self.stride)
            dxp = dxp[:, hb:hb + x_shape[1], wb:wb + x_shape[2], :]
        return [dxp]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        h, w, _ = in_shapes[0]
        kh, kw = self.kernel
        if self.padding == "same":
            oh = -(-h // self.stride)
            ow = -(-w // self.stride)
        else:
            oh = F.conv_output_size(h, kh, self.stride, 0)
            ow = F.conv_output_size(w, kw, self.stride, 0)
        return (oh, ow, self.filters)

    def flops(self, in_shapes: list[Shape]) -> int:
        oh, ow, f = self.out_shape(in_shapes)
        kh, kw = self.kernel
        c_in = in_shapes[0][-1]
        macs = oh * ow * f * kh * kw * c_in
        return 2 * macs + (oh * ow * f if self.use_bias else 0)


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution (one filter per input channel).

    Weight layout is ``(kh, kw, channels)``; ``depth_multiplier`` other than 1
    is not needed by the networks in the zoo and is not supported.
    """

    fusable_activation = True

    def __init__(self, kernel: int | tuple[int, int], stride: int = 1,
                 padding: str = "same", use_bias: bool = False):
        super().__init__()
        if padding not in ("same", "valid"):
            raise ValueError(f"unknown padding {padding!r}")
        self.kernel = (kernel, kernel) if isinstance(kernel, int) else tuple(kernel)
        self.stride = int(stride)
        self.padding = padding
        self.use_bias = use_bias
        self._cache: tuple | None = None

    def build(self, in_shapes: list[Shape], rng: np.random.Generator) -> None:
        if self.built:
            return
        c = in_shapes[0][-1]
        kh, kw = self.kernel
        self.params["w"] = Parameter(he_normal((kh, kw, c), kh * kw, rng))
        if self.use_bias:
            self.params["b"] = Parameter(np.zeros(c))
        self.built = True

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding == "same":
            return F.pad_same(x, self.kernel, (self.stride, self.stride))
        return x

    def forward(self, inputs: list[np.ndarray],
                training: bool = False) -> np.ndarray:
        x = inputs[0]
        kh, kw = self.kernel
        xp = self._pad(x)
        cols = F.im2col(xp, kh, kw, self.stride)  # (N,OH,OW,kh*kw*C)
        n, oh, ow, _ = cols.shape
        c = x.shape[-1]
        cols = cols.reshape(n, oh, ow, kh * kw, c)
        w = self.params["w"].value.reshape(kh * kw, c)
        out = np.einsum("nhwkc,kc->nhwc", cols, w)
        if self.use_bias:
            out = out + self.params["b"].value
        self._cache = (x.shape, xp.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:
        x_shape, xp_shape, cols = self._cache
        kh, kw = self.kernel
        n, oh, ow, _, c = cols.shape
        if not self.frozen:
            wgrad = np.einsum("nhwkc,nhwc->kc", cols, grad)
            self.params["w"].grad += wgrad.reshape(kh, kw, c)
            if self.use_bias:
                self.params["b"].grad += grad.sum(axis=(0, 1, 2))
        w = self.params["w"].value.reshape(kh * kw, c)
        dcols = np.einsum("nhwc,kc->nhwkc", grad, w)
        dxp = F.col2im(dcols.reshape(n, oh, ow, -1), xp_shape, kh, kw, self.stride)
        if xp_shape != x_shape:
            hb, _ = F.same_padding(x_shape[1], kh, self.stride)
            wb, _ = F.same_padding(x_shape[2], kw, self.stride)
            dxp = dxp[:, hb:hb + x_shape[1], wb:wb + x_shape[2], :]
        return [dxp]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        h, w, c = in_shapes[0]
        kh, kw = self.kernel
        if self.padding == "same":
            return (-(-h // self.stride), -(-w // self.stride), c)
        return (F.conv_output_size(h, kh, self.stride, 0),
                F.conv_output_size(w, kw, self.stride, 0), c)

    def flops(self, in_shapes: list[Shape]) -> int:
        oh, ow, c = self.out_shape(in_shapes)
        kh, kw = self.kernel
        macs = oh * ow * c * kh * kw
        return 2 * macs + (oh * ow * c if self.use_bias else 0)


class Dense(Layer):
    """Fully connected layer over the last axis. Weight layout ``(in, out)``."""

    fusable_activation = True

    def __init__(self, units: int, use_bias: bool = True):
        super().__init__()
        self.units = int(units)
        self.use_bias = use_bias
        self._cache: np.ndarray | None = None

    def build(self, in_shapes: list[Shape], rng: np.random.Generator) -> None:
        if self.built:
            return
        d = in_shapes[0][-1]
        self.params["w"] = Parameter(glorot_uniform((d, self.units), d, self.units, rng))
        if self.use_bias:
            self.params["b"] = Parameter(np.zeros(self.units))
        self.built = True

    def forward(self, inputs: list[np.ndarray],
                training: bool = False) -> np.ndarray:
        x = inputs[0]
        self._cache = x
        out = x @ self.params["w"].value
        if self.use_bias:
            out = out + self.params["b"].value
        return out

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:
        x = self._cache
        if not self.frozen:
            g2 = grad.reshape(-1, self.units)
            x2 = x.reshape(-1, x.shape[-1])
            self.params["w"].grad += x2.T @ g2
            if self.use_bias:
                self.params["b"].grad += g2.sum(axis=0)
        return [grad @ self.params["w"].value.T]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return in_shapes[0][:-1] + (self.units,)

    def flops(self, in_shapes: list[Shape]) -> int:
        lead = int(np.prod(in_shapes[0][:-1])) if len(in_shapes[0]) > 1 else 1
        macs = lead * in_shapes[0][-1] * self.units
        return 2 * macs + (lead * self.units if self.use_bias else 0)


class BatchNorm(Layer):
    """Batch normalization over the channel (last) axis.

    Tracks running statistics with exponential moving averages for inference.
    """

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        self.momentum = momentum
        self.eps = eps
        self.running_mean: np.ndarray | None = None
        self.running_var: np.ndarray | None = None
        #: bumped whenever the running statistics move (plan invalidation)
        self.stats_version = 0
        self._cache: tuple | None = None

    def build(self, in_shapes: list[Shape], rng: np.random.Generator) -> None:
        if self.built:
            return
        c = in_shapes[0][-1]
        self.params["gamma"] = Parameter(np.ones(c))
        self.params["beta"] = Parameter(np.zeros(c))
        self.running_mean = np.zeros(c, dtype=np.float32)
        self.running_var = np.ones(c, dtype=np.float32)
        self.built = True

    def forward(self, inputs: list[np.ndarray],
                training: bool = False) -> np.ndarray:
        x = inputs[0]
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
            self.stats_version += 1
        else:
            mean, var = self.running_mean, self.running_var
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv
        self._cache = (xhat, inv, x.shape, axes, training)
        return self.params["gamma"].value * xhat + self.params["beta"].value

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:
        xhat, inv, shape, axes, training = self._cache
        gamma = self.params["gamma"].value
        if not self.frozen:
            self.params["gamma"].grad += (grad * xhat).sum(axis=axes)
            self.params["beta"].grad += grad.sum(axis=axes)
        if not training:
            return [grad * gamma * inv]
        m = float(np.prod([shape[a] for a in axes]))
        dxhat = grad * gamma
        dx = (inv / m) * (m * dxhat - dxhat.sum(axis=axes)
                          - xhat * (dxhat * xhat).sum(axis=axes))
        return [dx]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: list[Shape]) -> int:
        return 2 * int(np.prod(in_shapes[0]))


class _Activation(Layer):
    """Shared machinery for element-wise activations."""

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: list[Shape]) -> int:
        return int(np.prod(in_shapes[0]))


class ReLU(_Activation):
    """Rectified linear unit."""

    def forward(self, inputs, training=False):
        self._x = inputs[0]
        return F.relu(inputs[0])

    def backward(self, grad):
        return [F.relu_grad(self._x, grad)]


class ReLU6(_Activation):
    """ReLU clipped at 6 (MobileNet family)."""

    def forward(self, inputs, training=False):
        self._x = inputs[0]
        return F.relu6(inputs[0])

    def backward(self, grad):
        return [F.relu6_grad(self._x, grad)]


class _Pool2D(Layer):
    """Shared geometry for spatial pooling layers."""

    def __init__(self, pool: int = 2, stride: int | None = None,
                 padding: str = "valid"):
        super().__init__()
        self.pool = int(pool)
        self.stride = int(stride) if stride is not None else int(pool)
        if padding not in ("same", "valid"):
            raise ValueError(f"unknown padding {padding!r}")
        self.padding = padding

    def _pad(self, x: np.ndarray, fill: float) -> tuple[np.ndarray, tuple[int, int]]:
        if self.padding == "valid":
            return x, (0, 0)
        ph = F.same_padding(x.shape[1], self.pool, self.stride)
        pw = F.same_padding(x.shape[2], self.pool, self.stride)
        if ph == (0, 0) and pw == (0, 0):
            return x, (0, 0)
        xp = np.pad(x, ((0, 0), ph, pw, (0, 0)), constant_values=fill)
        return xp, (ph[0], pw[0])

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        h, w, c = in_shapes[0]
        if self.padding == "same":
            return (-(-h // self.stride), -(-w // self.stride), c)
        return (F.conv_output_size(h, self.pool, self.stride, 0),
                F.conv_output_size(w, self.pool, self.stride, 0), c)

    def flops(self, in_shapes: list[Shape]) -> int:
        oh, ow, c = self.out_shape(in_shapes)
        return oh * ow * c * self.pool * self.pool


class MaxPool2D(_Pool2D):
    """Max pooling."""

    def forward(self, inputs, training=False):
        x = inputs[0]
        xp, offsets = self._pad(x, fill=-np.inf)
        cols = F.im2col(xp, self.pool, self.pool, self.stride)
        n, oh, ow, _ = cols.shape
        c = x.shape[-1]
        cols = cols.reshape(n, oh, ow, self.pool * self.pool, c)
        self._argmax = cols.argmax(axis=3)
        self._geom = (x.shape, xp.shape, offsets)
        return cols.max(axis=3)

    def backward(self, grad):
        x_shape, xp_shape, offsets = self._geom
        n, oh, ow, c = grad.shape
        k2 = self.pool * self.pool
        dcols = np.zeros((n, oh, ow, k2, c), dtype=grad.dtype)
        idx = self._argmax
        n_i, oh_i, ow_i, c_i = np.ogrid[:n, :oh, :ow, :c]
        dcols[n_i, oh_i, ow_i, idx, c_i] = grad
        dxp = F.col2im(dcols.reshape(n, oh, ow, -1), xp_shape,
                       self.pool, self.pool, self.stride)
        hb, wb = offsets
        return [dxp[:, hb:hb + x_shape[1], wb:wb + x_shape[2], :]]


class AvgPool2D(_Pool2D):
    """Average pooling."""

    def forward(self, inputs, training=False):
        x = inputs[0]
        xp, offsets = self._pad(x, fill=0.0)
        cols = F.im2col(xp, self.pool, self.pool, self.stride)
        n, oh, ow, _ = cols.shape
        c = x.shape[-1]
        self._geom = (x.shape, xp.shape, offsets)
        return cols.reshape(n, oh, ow, self.pool * self.pool, c).mean(axis=3)

    def backward(self, grad):
        x_shape, xp_shape, offsets = self._geom
        n, oh, ow, c = grad.shape
        k2 = self.pool * self.pool
        dcols = np.repeat(grad[:, :, :, None, :] / k2, k2, axis=3)
        dxp = F.col2im(dcols.reshape(n, oh, ow, -1), xp_shape,
                       self.pool, self.pool, self.stride)
        hb, wb = offsets
        return [dxp[:, hb:hb + x_shape[1], wb:wb + x_shape[2], :]]


class GlobalAvgPool(Layer):
    """Global average pooling: NHWC → NC."""

    def forward(self, inputs, training=False):
        x = inputs[0]
        self._shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad):
        n, h, w, c = self._shape
        return [np.broadcast_to(grad[:, None, None, :] / (h * w),
                                self._shape).copy()]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return (in_shapes[0][-1],)

    def flops(self, in_shapes: list[Shape]) -> int:
        return int(np.prod(in_shapes[0]))


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def forward(self, inputs, training=False):
        x = inputs[0]
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return [grad.reshape(self._shape)]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return (int(np.prod(in_shapes[0])),)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, inputs, training=False):
        x = inputs[0]
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return [grad]
        return [grad * self._mask]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return in_shapes[0]


class Softmax(Layer):
    """Softmax over the last axis.

    The backward pass implements the full softmax Jacobian so the layer can
    be combined with any loss; the trainer pairs it with
    :func:`repro.nn.losses.softmax_cross_entropy` which bypasses it for
    numerical stability.
    """

    def forward(self, inputs, training=False):
        self._out = F.softmax(inputs[0])
        return self._out

    def backward(self, grad):
        s = self._out
        return [s * (grad - np.sum(grad * s, axis=-1, keepdims=True))]

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: list[Shape]) -> int:
        return 3 * int(np.prod(in_shapes[0]))


class Add(Layer):
    """Element-wise sum of all inputs (residual connections)."""

    def forward(self, inputs, training=False):
        self._n = len(inputs)
        out = inputs[0].copy()
        for x in inputs[1:]:
            out += x
        return out

    def backward(self, grad):
        return [grad] * self._n

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        first = in_shapes[0]
        for s in in_shapes[1:]:
            if tuple(s) != tuple(first):
                raise ValueError(f"Add inputs disagree: {in_shapes}")
        return first

    def flops(self, in_shapes: list[Shape]) -> int:
        return (len(in_shapes) - 1) * int(np.prod(in_shapes[0]))


class Concat(Layer):
    """Concatenation along the channel (last) axis."""

    def forward(self, inputs, training=False):
        self._splits = np.cumsum([x.shape[-1] for x in inputs])[:-1]
        return np.concatenate(inputs, axis=-1)

    def backward(self, grad):
        return np.split(grad, self._splits, axis=-1)

    def out_shape(self, in_shapes: list[Shape]) -> Shape:
        base = in_shapes[0][:-1]
        for s in in_shapes[1:]:
            if tuple(s[:-1]) != tuple(base):
                raise ValueError(f"Concat spatial shapes disagree: {in_shapes}")
        return base + (sum(s[-1] for s in in_shapes),)
