"""Network graphs: directed acyclic graphs of named layers.

A :class:`Network` is built by adding named nodes in topological order. Each
node wraps a :class:`~repro.nn.layers.Layer` and lists its input nodes by
name, which supports the residual (``Add``) and concatenation (``Concat``)
topologies used by the model zoo.

Nodes carry metadata used throughout the repository:

- ``block_id`` groups layers into the architectural blocks (residual blocks,
  inception modules, ...) that blockwise layer removal operates on.
- ``role`` is one of ``"stem"``, ``"feature"`` or ``"head"``; layer removal
  only ever removes ``"feature"`` blocks and replaces the ``"head"``.

Networks also support *forward hooks* — callables fired around every node
during :meth:`Network.forward` (and therefore :meth:`Network.forward_batch`).
They are the substrate :mod:`repro.obs` builds its per-layer profiler on:
observers see execution without the network knowing who is watching.

Execution has two paths. The default is the interpreted node-by-node walk
below; :meth:`Network.compile` freezes the graph into a fused static
schedule (:mod:`repro.nn.compile`) that ``forward``/``forward_batch``
route through transparently whenever no hooks are attached and neither
``training`` nor ``capture`` is requested. The plan invalidates itself on
structural edits and weight mutation, and ``copy()``/``subgraph()``
clones always start uncompiled.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from .layers import Input, Layer

__all__ = ["Node", "Network"]

Shape = tuple[int, ...]


@dataclass
class Node:
    """A named layer instance inside a :class:`Network`."""

    name: str
    layer: Layer
    inputs: list[str] = field(default_factory=list)
    block_id: str | None = None
    role: str = "feature"


class Network:
    """A DAG of layers with forward/backward execution and static analysis.

    Nodes must be added in topological order (inputs before consumers); the
    zoo constructors do this naturally. The last node added is the network
    output unless :attr:`output_name` is reassigned.
    """

    def __init__(self, name: str, input_shape: Shape):
        self.name = name
        self.input_shape = tuple(input_shape)
        self.nodes: dict[str, Node] = {}
        self.output_name: str | None = None
        self._shapes: dict[str, Shape] = {}
        self._pre_hooks: dict[int, object] = {}
        self._post_hooks: dict[int, object] = {}
        self._next_hook_id = 0
        self._mutation_version = 0
        self._compiled = None
        self.add("input", Input(self.input_shape), inputs=[], role="stem")

    # -- construction ------------------------------------------------------
    def add(self, name: str, layer: Layer, inputs: list[str] | str | None = None,
            block_id: str | None = None, role: str = "feature") -> str:
        """Add a node and return its name.

        ``inputs`` defaults to the previously added node, which makes
        sequential construction concise.
        """
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        if role not in ("stem", "feature", "head"):
            raise ValueError(f"unknown role {role!r}")
        if inputs is None:
            if not self.nodes:
                inputs = []
            else:
                inputs = [self.output_name]
        elif isinstance(inputs, str):
            inputs = [inputs]
        for dep in inputs:
            if dep not in self.nodes:
                raise ValueError(f"node {name!r} depends on unknown node {dep!r}")
        self.nodes[name] = Node(name, layer, list(inputs), block_id, role)
        self.output_name = name
        self._mutation_version += 1
        return name

    def build(self, rng: np.random.Generator | int = 0) -> "Network":
        """Infer shapes and allocate all parameters. Returns ``self``."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self._shapes = {}
        for node in self.nodes.values():
            in_shapes = [self._shapes[d] for d in node.inputs]
            if not isinstance(node.layer, Input):
                node.layer.build(in_shapes, rng)
            self._shapes[node.name] = node.layer.out_shape(
                in_shapes if in_shapes else [self.input_shape])
        self._mutation_version += 1
        return self

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return bool(self._shapes)

    def shape_of(self, name: str) -> Shape:
        """Output shape (batch excluded) of a node; requires :meth:`build`."""
        if not self._shapes:
            raise RuntimeError("network is not built; call build() first")
        return self._shapes[name]

    # -- hooks -------------------------------------------------------------
    def register_forward_pre_hook(self, fn) -> int:
        """Register ``fn(network, node, inputs)`` to fire before each node.

        ``inputs`` is the list of input activations about to be consumed.
        Returns an integer handle for :meth:`remove_hook`. Hooks fire in
        registration order, for every node of every :meth:`forward` /
        :meth:`forward_batch` call, and must not mutate the activations.
        """
        handle = self._next_hook_id
        self._next_hook_id += 1
        self._pre_hooks[handle] = fn
        return handle

    def register_forward_hook(self, fn) -> int:
        """Register ``fn(network, node, inputs, output)`` after each node.

        Same contract as :meth:`register_forward_pre_hook`, fired once the
        node's output activation exists.
        """
        handle = self._next_hook_id
        self._next_hook_id += 1
        self._post_hooks[handle] = fn
        return handle

    def remove_hook(self, handle: int) -> None:
        """Detach a hook by the handle its registration returned."""
        self._pre_hooks.pop(handle, None)
        self._post_hooks.pop(handle, None)

    @property
    def has_hooks(self) -> bool:
        """Whether any forward hook is currently attached."""
        return bool(self._pre_hooks or self._post_hooks)

    # -- compilation -------------------------------------------------------
    def compile(self, force: bool = False):
        """Freeze the graph into a fused static schedule; returns the plan.

        The returned :class:`~repro.nn.compile.CompiledNetwork` is cached;
        :meth:`forward` and :meth:`forward_batch` route through it
        automatically whenever no hooks are attached and neither
        ``training`` nor ``capture`` is requested. A stale plan (weights
        reassigned, structure edited) is rebuilt transparently. Raw
        in-place writes into a parameter's array bypass version tracking —
        call ``compile(force=True)`` (or :meth:`uncompile`) after those.
        """
        from .compile import compile_network
        if force or self._compiled is None or not self._compiled.valid:
            self._compiled = compile_network(self)
        return self._compiled

    def uncompile(self) -> None:
        """Drop the cached plan; forwards use the interpreted walk again."""
        self._compiled = None

    @property
    def compiled(self) -> bool:
        """Whether a compiled plan is cached (it may still be stale)."""
        return self._compiled is not None

    def _active_plan(self, training: bool, capture):
        """The compiled plan to route through, or None for the interpreter."""
        if (self._compiled is None or training or capture is not None
                or self._pre_hooks or self._post_hooks):
            return None
        if not self._compiled.valid:
            from .compile import compile_network
            self._compiled = compile_network(self)
        return self._compiled

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False,
                capture: list[str] | None = None):
        """Run the network on a batch.

        Parameters
        ----------
        x:
            Input batch, shape ``(N,) + input_shape``, or one un-batched
            sample of shape ``input_shape`` (a serving request), which is
            expanded to a batch of one and squeezed back on return.
        training:
            Propagated to layers (batch-norm statistics, dropout).
        capture:
            Optional list of node names whose activations to also return.

        Returns
        -------
        The output activation, or ``(output, {name: activation})`` when
        ``capture`` is given.
        """
        if not self._shapes:
            raise RuntimeError("network is not built; call build() first")
        single = x.shape == self.input_shape
        plan = self._active_plan(training, capture)
        if plan is not None:
            out = plan.run(x[None] if single else x)
            return out[0] if single else out
        if single:
            x = x[None]
        acts: dict[str, np.ndarray] = {}
        consumers = self._consumer_counts()
        wanted = set(capture or [])
        for node in self.nodes.values():
            ins = [acts[d] for d in node.inputs] if node.inputs else [x]
            for fn in self._pre_hooks.values():
                fn(self, node, ins)
            acts[node.name] = node.layer.forward(ins, training=training)
            for fn in self._post_hooks.values():
                fn(self, node, ins, acts[node.name])
            # free activations no longer needed to bound memory
            for d in node.inputs:
                consumers[d] -= 1
                if consumers[d] == 0 and d not in wanted and d != self.output_name:
                    acts.pop(d, None)
        out = acts[self.output_name]
        if single:
            out = out[0]
            if capture is not None:
                return out, {k: acts[k][0] for k in capture}
            return out
        if capture is not None:
            return out, {k: acts[k] for k in capture}
        return out

    def forward_one(self, x: np.ndarray, training: bool = False,
                    capture: list[str] | None = None):
        """Run the network on exactly one un-batched sample.

        The explicit single-sample API: ``x`` must have shape
        ``input_shape`` (no batch axis) or a ``ValueError`` is raised,
        unlike :meth:`forward`'s implicit shape sniffing, which cannot
        distinguish a single sample from a batch whose leading dimension
        happens to match. Returns the un-batched output (and un-batched
        captured activations when ``capture`` is given).
        """
        x = np.asarray(x)
        if x.shape != self.input_shape:
            raise ValueError(
                f"forward_one expects one sample of shape "
                f"{self.input_shape}, got {x.shape}")
        return self.forward(x, training=training, capture=capture)

    def forward_batch(self, samples, training: bool = False) -> np.ndarray:
        """Run many single samples as ONE stacked forward pass.

        This is the micro-batching hot path: instead of a per-sample Python
        loop over :meth:`forward` (paying the full interpreter and
        layer-dispatch overhead N times), the samples are stacked into a
        single ``(N,) + input_shape`` batch and pushed through the vectorised
        layers once. Returns the batched output; row ``i`` is the output for
        ``samples[i]``.
        """
        if not samples:
            raise ValueError("forward_batch needs at least one sample")
        return self.forward(np.stack([np.asarray(s) for s in samples]),
                            training=training)

    def _consumer_counts(self) -> dict[str, int]:
        counts = {name: 0 for name in self.nodes}
        for node in self.nodes.values():
            for d in node.inputs:
                counts[d] += 1
        return counts

    def forward_backward(self, x: np.ndarray, grad_out: np.ndarray | None = None,
                         loss_fn=None, y: np.ndarray | None = None,
                         training: bool = True):
        """Full forward pass followed by backpropagation.

        Either supply ``grad_out`` (gradient of the loss w.r.t. the network
        output) directly, or a ``loss_fn(pred, y) -> (loss, grad)`` pair.

        Returns ``(output, loss)`` where ``loss`` is ``None`` when
        ``grad_out`` was supplied.
        """
        if not self._shapes:
            raise RuntimeError("network is not built; call build() first")
        acts: dict[str, np.ndarray] = {}
        order = list(self.nodes.values())
        for node in order:
            ins = [acts[d] for d in node.inputs] if node.inputs else [x]
            acts[node.name] = node.layer.forward(ins, training=training)
        out = acts[self.output_name]
        loss = None
        if grad_out is None:
            if loss_fn is None or y is None:
                raise ValueError("need grad_out or (loss_fn, y)")
            loss, grad_out = loss_fn(out, y)
        grads: dict[str, np.ndarray] = {self.output_name: grad_out}
        for node in reversed(order):
            g = grads.pop(node.name, None)
            if g is None:
                continue
            in_grads = node.layer.backward(g)
            for dep, dg in zip(node.inputs, in_grads):
                if dep in grads:
                    grads[dep] = grads[dep] + dg
                else:
                    grads[dep] = dg
        return out, loss

    # -- parameters ---------------------------------------------------------
    def parameters(self, trainable_only: bool = True):
        """Yield ``(qualified_name, Parameter)`` pairs."""
        for node in self.nodes.values():
            if trainable_only and node.layer.frozen:
                continue
            for pname, p in node.layer.params.items():
                yield f"{node.name}.{pname}", p

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for node in self.nodes.values():
            node.layer.zero_grad()

    def freeze(self, predicate=None) -> None:
        """Freeze layers matched by ``predicate(node) -> bool`` (default all)."""
        for node in self.nodes.values():
            if predicate is None or predicate(node):
                node.layer.frozen = True

    def unfreeze(self, predicate=None) -> None:
        """Unfreeze layers matched by ``predicate`` (default all)."""
        for node in self.nodes.values():
            if predicate is None or predicate(node):
                node.layer.frozen = False

    # -- static analysis ----------------------------------------------------
    def in_shapes(self, name: str) -> list[Shape]:
        """Input shapes of a node (the network input shape for the root)."""
        node = self.nodes[name]
        if not node.inputs:
            return [self.input_shape]
        return [self.shape_of(d) for d in node.inputs]

    def total_flops(self) -> int:
        """Per-example forward FLOPs of the whole network."""
        return sum(node.layer.flops(self.in_shapes(node.name))
                   for node in self.nodes.values())

    def total_params(self) -> int:
        """Total trainable scalar count."""
        return sum(node.layer.param_count() for node in self.nodes.values())

    def layer_count(self, roles: tuple[str, ...] = ("stem", "feature", "head")) -> int:
        """Number of weighted layers (conv/dense), the paper's depth metric."""
        count = 0
        for node in self.nodes.values():
            if node.role in roles and type(node.layer).__name__ in (
                    "Conv2D", "DepthwiseConv2D", "Dense"):
                count += 1
        return count

    def block_ids(self) -> list[str]:
        """Distinct feature block ids in topological order."""
        seen: list[str] = []
        for node in self.nodes.values():
            if node.role == "feature" and node.block_id is not None \
                    and node.block_id not in seen:
                seen.append(node.block_id)
        return seen

    def describe(self) -> str:
        """Human-readable layer table (name, type, block, shape, params)."""
        lines = [f"Network {self.name!r}  input={self.input_shape}",
                 f"{'name':28s} {'type':16s} {'block':12s} {'out shape':16s} {'params':>10s}"]
        for node in self.nodes.values():
            shape = str(self.shape_of(node.name)) if self._shapes else "?"
            lines.append(
                f"{node.name:28s} {type(node.layer).__name__:16s} "
                f"{str(node.block_id):12s} {shape:16s} "
                f"{node.layer.param_count():>10d}")
        lines.append(f"total params: {self.total_params():,}  "
                     f"flops/example: {self.total_flops():,}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT source of the network's topology.

        Nodes are grouped into clusters by ``block_id``; stem, feature and
        head roles get distinct fill colours. Render with
        ``dot -Tsvg net.dot -o net.svg``.
        """
        colors = {"stem": "lightblue", "feature": "white",
                  "head": "lightyellow"}
        lines = [f'digraph "{self.name}" {{',
                 "  rankdir=TB;",
                 "  node [shape=box, style=filled];"]
        by_block: dict[str, list[Node]] = {}
        loose: list[Node] = []
        for node in self.nodes.values():
            if node.block_id is not None:
                by_block.setdefault(node.block_id, []).append(node)
            else:
                loose.append(node)

        def node_line(node: Node) -> str:
            shape = (f"\\n{self.shape_of(node.name)}"
                     if self._shapes else "")
            return (f'    "{node.name}" '
                    f'[label="{node.name}\\n{type(node.layer).__name__}'
                    f'{shape}", fillcolor={colors[node.role]}];')

        for block, nodes in by_block.items():
            lines.append(f'  subgraph "cluster_{block}" {{')
            lines.append(f'    label="{block}";')
            lines.extend(node_line(n) for n in nodes)
            lines.append("  }")
        lines.extend("  " + node_line(n).strip() for n in loose)
        for node in self.nodes.values():
            for dep in node.inputs:
                lines.append(f'  "{dep}" -> "{node.name}";')
        lines.append("}")
        return "\n".join(lines)

    # -- structural edits & persistence --------------------------------------
    def copy(self) -> "Network":
        """Deep copy: new layer objects, independent parameters.

        Hooks are observers of one network instance, not part of its
        structure, so the clone starts with none attached.
        """
        clone = Network.__new__(Network)
        clone.name = self.name
        clone.input_shape = self.input_shape
        clone.output_name = self.output_name
        clone._shapes = dict(self._shapes)
        clone._pre_hooks, clone._post_hooks = {}, {}
        clone._next_hook_id = 0
        clone._mutation_version = 0
        clone._compiled = None
        clone.nodes = {}
        for name, node in self.nodes.items():
            clone.nodes[name] = Node(node.name, copy.deepcopy(node.layer),
                                     list(node.inputs), node.block_id, node.role)
        return clone

    def subgraph(self, upto: str, name: str | None = None) -> "Network":
        """Deep-copied prefix of the network ending at node ``upto``.

        Only nodes that ``upto`` (transitively) depends on are retained. Used
        by layer removal to build trimmed feature extractors.
        """
        if upto not in self.nodes:
            raise KeyError(f"no node named {upto!r}")
        needed: set[str] = set()
        stack = [upto]
        while stack:
            cur = stack.pop()
            if cur in needed:
                continue
            needed.add(cur)
            stack.extend(self.nodes[cur].inputs)
        clone = Network.__new__(Network)
        clone.name = name or f"{self.name}[:{upto}]"
        clone.input_shape = self.input_shape
        clone._pre_hooks, clone._post_hooks = {}, {}
        clone._next_hook_id = 0
        clone._mutation_version = 0
        clone._compiled = None
        clone.nodes = {}
        for nname, node in self.nodes.items():
            if nname in needed:
                clone.nodes[nname] = Node(node.name, copy.deepcopy(node.layer),
                                          list(node.inputs), node.block_id,
                                          node.role)
        clone.output_name = upto
        clone._shapes = {k: v for k, v in self._shapes.items() if k in needed}
        return clone

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of every parameter and batch-norm running statistic."""
        state: dict[str, np.ndarray] = {}
        for node in self.nodes.values():
            for pname, p in node.layer.params.items():
                state[f"{node.name}.{pname}"] = p.value.copy()
            if hasattr(node.layer, "running_mean") and node.layer.running_mean is not None:
                state[f"{node.name}.running_mean"] = node.layer.running_mean.copy()
                state[f"{node.name}.running_var"] = node.layer.running_var.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray],
                        strict: bool = True) -> None:
        """Load parameters saved by :meth:`state_dict`.

        With ``strict=False``, keys that do not exist in this network are
        ignored (used when loading pretrained weights into a trimmed net).
        """
        self._mutation_version += 1
        for node in self.nodes.values():
            for pname, p in node.layer.params.items():
                key = f"{node.name}.{pname}"
                if key in state:
                    if p.value.shape != state[key].shape:
                        raise ValueError(
                            f"shape mismatch for {key}: "
                            f"{p.value.shape} vs {state[key].shape}")
                    p.value = state[key].astype(np.float32).copy()
                elif strict:
                    raise KeyError(f"missing parameter {key}")
            if hasattr(node.layer, "running_mean") and node.layer.running_mean is not None:
                mkey = f"{node.name}.running_mean"
                if mkey in state:
                    node.layer.running_mean = state[mkey].copy()
                    node.layer.running_var = state[f"{node.name}.running_var"].copy()
                elif strict:
                    raise KeyError(f"missing statistic {mkey}")
