"""Loss functions.

Each loss returns ``(scalar_loss, grad)`` where ``grad`` is the gradient with
respect to the *first* argument, averaged over the batch, so it can be fed
straight into :meth:`repro.nn.graph.Network.forward_backward`.

The HANDS-style datasets use *probabilistic* labels (a distribution over
grasp types rather than a one-hot vector), so the primary training loss is
the soft-label cross-entropy.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax

__all__ = [
    "softmax_cross_entropy",
    "cross_entropy_from_probs",
    "kl_divergence",
    "mse",
]

_EPS = 1e-12


def softmax_cross_entropy(logits: np.ndarray,
                          targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Cross-entropy between softmax(logits) and soft targets.

    Combines the softmax with the loss so the gradient is the numerically
    stable ``(p - y) / N``. ``targets`` rows must sum to 1 but need not be
    one-hot.
    """
    p = softmax(logits)
    n = logits.shape[0]
    loss = float(-np.sum(targets * np.log(p + _EPS)) / n)
    return loss, (p - targets) / n


def cross_entropy_from_probs(probs: np.ndarray,
                             targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Cross-entropy when the model already outputs probabilities."""
    n = probs.shape[0]
    loss = float(-np.sum(targets * np.log(probs + _EPS)) / n)
    return loss, -(targets / (probs + _EPS)) / n


def kl_divergence(probs: np.ndarray,
                  targets: np.ndarray) -> tuple[float, np.ndarray]:
    """KL(targets || probs) for probability outputs."""
    n = probs.shape[0]
    loss = float(np.sum(targets * (np.log(targets + _EPS)
                                   - np.log(probs + _EPS))) / n)
    return loss, -(targets / (probs + _EPS)) / n


def mse(pred: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error."""
    diff = pred - targets
    n = pred.shape[0]
    return float(np.sum(diff * diff) / n), 2.0 * diff / n
