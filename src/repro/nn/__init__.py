"""A compact NumPy deep-learning framework.

This subpackage is the substrate that stands in for PyTorch/TensorFlow in
this reproduction: NHWC convolutional layers with full backpropagation,
DAG-structured networks (residual/concat topologies), soft-label losses and
first-order optimizers. It is deliberately small but complete enough to
pretrain, trim and fine-tune every architecture in :mod:`repro.zoo`.
"""

from . import functional
from .compile import CompiledNetwork, ExecutionPlan, compile_network
from .graph import Network, Node
from .layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
    ReLU6,
    Softmax,
)
from .losses import cross_entropy_from_probs, kl_divergence, mse, softmax_cross_entropy
from .optim import SGD, Adam, ConstantLR, StepDecay

__all__ = [
    "functional",
    "Network",
    "Node",
    "CompiledNetwork",
    "ExecutionPlan",
    "compile_network",
    "Layer",
    "Parameter",
    "Input",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "BatchNorm",
    "ReLU",
    "ReLU6",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "Flatten",
    "Dropout",
    "Softmax",
    "Add",
    "Concat",
    "softmax_cross_entropy",
    "cross_entropy_from_probs",
    "kl_divergence",
    "mse",
    "SGD",
    "Adam",
    "ConstantLR",
    "StepDecay",
]
