"""Numerical gradient checking utilities.

When extending :mod:`repro.nn` with new layers, the backward pass is the
part that silently goes wrong. These helpers compare analytic gradients
against central finite differences through a random scalar probe loss and
report the worst mismatch, for single layers and for whole networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Network
from .layers import Layer

__all__ = ["GradCheckReport", "check_layer", "check_network"]


@dataclass(frozen=True)
class GradCheckReport:
    """Worst-case gradient mismatch found by a check."""

    max_abs_error: float
    max_rel_error: float
    checked: int

    @property
    def passed(self) -> bool:
        """True when the worst relative error is within tolerance."""
        return self.max_rel_error < 5e-2 or self.max_abs_error < 1e-4

    def __str__(self) -> str:
        return (f"gradcheck: {self.checked} entries, max abs "
                f"{self.max_abs_error:.2e}, max rel "
                f"{self.max_rel_error:.2e} "
                f"({'ok' if self.passed else 'FAILED'})")


def _probe_loss(out: np.ndarray, probe: np.ndarray) -> float:
    return float(np.sum(out * probe))


def _compare(analytic: np.ndarray, flat_values: np.ndarray, recompute,
             positions: np.ndarray, eps: float) -> tuple[float, float]:
    max_abs = max_rel = 0.0
    for pos in positions:
        orig = flat_values[pos]
        flat_values[pos] = orig + eps
        up = recompute()
        flat_values[pos] = orig - eps
        down = recompute()
        flat_values[pos] = orig
        numeric = (up - down) / (2 * eps)
        a = float(analytic.reshape(-1)[pos])
        abs_err = abs(a - numeric)
        # the denominator floor absorbs float32 finite-difference noise on
        # (near-)zero gradients, e.g. conv biases followed by batch norm
        rel_err = abs_err / max(abs(numeric), abs(a), 1e-2)
        max_abs = max(max_abs, abs_err)
        max_rel = max(max_rel, rel_err)
    return max_abs, max_rel


def check_layer(layer: Layer, inputs: list[np.ndarray],
                training: bool = False, eps: float = 1e-3,
                samples: int = 8, seed: int = 0) -> GradCheckReport:
    """Gradient-check one layer's parameter and input gradients.

    The layer must already be built. Returns the worst mismatch over
    ``samples`` randomly chosen entries of every parameter and input.
    """
    rng = np.random.default_rng(seed)
    out = layer.forward([x.copy() for x in inputs], training=training)
    probe = rng.normal(size=out.shape)
    layer.zero_grad()
    in_grads = layer.backward(probe)

    max_abs = max_rel = 0.0
    checked = 0

    def recompute():
        return _probe_loss(layer.forward([x.copy() for x in inputs],
                                         training=training), probe)

    for pname, param in layer.params.items():
        flat = param.value.reshape(-1)
        positions = rng.choice(flat.size, size=min(samples, flat.size),
                               replace=False)
        a, r = _compare(param.grad, flat, recompute, positions, eps)
        max_abs, max_rel = max(max_abs, a), max(max_rel, r)
        checked += len(positions)
    for x, grad in zip(inputs, in_grads):
        flat = x.reshape(-1)
        positions = rng.choice(flat.size, size=min(samples, flat.size),
                               replace=False)
        a, r = _compare(grad, flat, recompute, positions, eps)
        max_abs, max_rel = max(max_abs, a), max(max_rel, r)
        checked += len(positions)
    return GradCheckReport(max_abs, max_rel, checked)


def check_network(net: Network, x: np.ndarray, loss_fn, y: np.ndarray,
                  parameters: list[str] | None = None, eps: float = 1e-3,
                  samples: int = 4, seed: int = 0) -> GradCheckReport:
    """Gradient-check a whole network end to end through a loss.

    ``parameters`` optionally restricts the check to qualified parameter
    names (``"node.param"``); by default every trainable parameter is
    sampled.
    """
    rng = np.random.default_rng(seed)
    net.zero_grad()
    net.forward_backward(x, loss_fn=loss_fn, y=y, training=True)
    params = dict(net.parameters())
    if parameters is not None:
        params = {k: params[k] for k in parameters}

    max_abs = max_rel = 0.0
    checked = 0
    for name, param in params.items():
        flat = param.value.reshape(-1)
        positions = rng.choice(flat.size, size=min(samples, flat.size),
                               replace=False)

        def recompute():
            loss, _ = loss_fn(net.forward(x, training=True), y)
            return loss

        a, r = _compare(param.grad, flat, recompute, positions, eps)
        max_abs, max_rel = max(max_abs, a), max(max_rel, r)
        checked += len(positions)
    return GradCheckReport(max_abs, max_rel, checked)
