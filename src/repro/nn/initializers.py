"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
network construction is fully deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "glorot_uniform", "lecun_normal"]


def he_normal(shape: tuple[int, ...], fan_in: int,
              rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform initialization, suited to linear/softmax heads."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def lecun_normal(shape: tuple[int, ...], fan_in: int,
                 rng: np.random.Generator) -> np.ndarray:
    """LeCun normal initialization (variance 1/fan_in)."""
    std = np.sqrt(1.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)
