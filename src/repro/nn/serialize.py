"""Whole-network serialization: architecture + weights in one ``.npz``.

The weight cache in :mod:`repro.train.pretrain` only stores parameters and
relies on the code to rebuild the architecture; this module additionally
persists the *structure* (layer types, constructor arguments, graph edges,
block tags), so a trimmed-and-trained TRN can be shipped as a single file
and reloaded without the code that produced it — the deployment story for
the robotic hand.

Format: a NumPy ``.npz`` whose ``__architecture__`` entry is a JSON string
describing the graph and whose remaining entries are the parameter and
batch-norm-statistic arrays keyed exactly as in
:meth:`repro.nn.graph.Network.state_dict`.
"""

from __future__ import annotations

import json

import numpy as np

from .graph import Network
from .layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    MaxPool2D,
    ReLU,
    ReLU6,
    Softmax,
)

__all__ = ["save_network", "load_network", "architecture_dict",
           "network_from_dict"]


def _conv_config(layer: Conv2D) -> dict:
    return {"filters": layer.filters, "kernel": list(layer.kernel),
            "stride": layer.stride, "padding": layer.padding,
            "use_bias": layer.use_bias}


def _dw_config(layer: DepthwiseConv2D) -> dict:
    return {"kernel": list(layer.kernel), "stride": layer.stride,
            "padding": layer.padding, "use_bias": layer.use_bias}


def _dense_config(layer: Dense) -> dict:
    return {"units": layer.units, "use_bias": layer.use_bias}


def _bn_config(layer: BatchNorm) -> dict:
    return {"momentum": layer.momentum, "eps": layer.eps}


def _pool_config(layer) -> dict:
    return {"pool": layer.pool, "stride": layer.stride,
            "padding": layer.padding}


def _dropout_config(layer: Dropout) -> dict:
    return {"rate": layer.rate}


_CONFIG_EXTRACTORS = {
    Conv2D: _conv_config,
    DepthwiseConv2D: _dw_config,
    Dense: _dense_config,
    BatchNorm: _bn_config,
    MaxPool2D: _pool_config,
    AvgPool2D: _pool_config,
    Dropout: _dropout_config,
}

_PARAMLESS = {cls.__name__: cls for cls in
              (ReLU, ReLU6, GlobalAvgPool, Flatten, Softmax, Add, Concat)}


def _build_layer(type_name: str, config: dict):
    if type_name in _PARAMLESS:
        return _PARAMLESS[type_name]()
    if type_name == "Conv2D":
        return Conv2D(config["filters"], tuple(config["kernel"]),
                      config["stride"], config["padding"],
                      config["use_bias"])
    if type_name == "DepthwiseConv2D":
        return DepthwiseConv2D(tuple(config["kernel"]), config["stride"],
                               config["padding"], config["use_bias"])
    if type_name == "Dense":
        return Dense(config["units"], config["use_bias"])
    if type_name == "BatchNorm":
        return BatchNorm(config["momentum"], config["eps"])
    if type_name == "MaxPool2D":
        return MaxPool2D(config["pool"], config["stride"], config["padding"])
    if type_name == "AvgPool2D":
        return AvgPool2D(config["pool"], config["stride"], config["padding"])
    if type_name == "Dropout":
        return Dropout(config["rate"])
    raise ValueError(f"unknown layer type {type_name!r}")


def architecture_dict(net: Network) -> dict:
    """JSON-serialisable description of a network's structure."""
    nodes = []
    for node in net.nodes.values():
        if isinstance(node.layer, Input):
            continue
        type_name = type(node.layer).__name__
        extractor = _CONFIG_EXTRACTORS.get(type(node.layer))
        if extractor is None and type_name not in _PARAMLESS:
            raise ValueError(
                f"layer type {type_name!r} is not serialisable")
        nodes.append({
            "name": node.name,
            "type": type_name,
            "config": extractor(node.layer) if extractor else {},
            "inputs": list(node.inputs),
            "block_id": node.block_id,
            "role": node.role,
        })
    return {"name": net.name, "input_shape": list(net.input_shape),
            "output": net.output_name, "nodes": nodes}


def save_network(net: Network, path: str) -> None:
    """Persist a built network (structure + weights) to ``path``."""
    if not net.built:
        raise RuntimeError("network must be built before saving")
    arch = json.dumps(architecture_dict(net))
    state = net.state_dict()
    np.savez_compressed(path, __architecture__=np.array(arch), **state)


def network_from_dict(arch: dict, state: dict[str, np.ndarray]) -> Network:
    """Rebuild a network from an :func:`architecture_dict` and a state dict.

    The inverse of ``(architecture_dict(net), net.state_dict())``; used by
    :func:`load_network` and by archives that store extra metadata next to
    the architecture (e.g. deployment artifacts).
    """
    net = Network(arch["name"], tuple(arch["input_shape"]))
    for spec in arch["nodes"]:
        net.add(spec["name"], _build_layer(spec["type"], spec["config"]),
                inputs=spec["inputs"], block_id=spec["block_id"],
                role=spec["role"])
    net.output_name = arch["output"]
    net.build(0)
    net.load_state_dict(state)
    return net


def load_network(path: str) -> Network:
    """Reconstruct a network saved by :func:`save_network`."""
    with np.load(path) as archive:
        arch = json.loads(str(archive["__architecture__"]))
        state = {k: archive[k] for k in archive.files
                 if not k.startswith("__")}
    return network_from_dict(arch, state)
