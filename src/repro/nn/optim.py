"""Optimizers and learning-rate schedules.

Optimizers operate on the ``(name, Parameter)`` pairs yielded by
:meth:`repro.nn.graph.Network.parameters`; per-parameter state is keyed by
the qualified name so freezing/unfreezing layers between phases (the paper's
two-phase fine-tuning) does not lose momentum for layers that stay trainable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "StepDecay", "ConstantLR"]


class ConstantLR:
    """A constant learning rate."""

    def __init__(self, lr: float):
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class StepDecay:
    """Learning rate decayed by ``factor`` every ``every`` steps."""

    def __init__(self, lr: float, every: int, factor: float = 0.1):
        if every <= 0:
            raise ValueError("`every` must be positive")
        self.lr = float(lr)
        self.every = int(every)
        self.factor = float(factor)

    def __call__(self, step: int) -> float:
        return self.lr * (self.factor ** (step // self.every))


class _Optimizer:
    """Shared bookkeeping: step counter, schedule, weight decay."""

    def __init__(self, lr, weight_decay: float = 0.0):
        self.schedule = lr if callable(lr) else ConstantLR(lr)
        self.weight_decay = float(weight_decay)
        self.step_count = 0

    @property
    def lr(self) -> float:
        """The learning rate that the *next* step will use."""
        return self.schedule(self.step_count)

    def set_lr(self, lr: float) -> None:
        """Replace the schedule with a constant rate (phase switches)."""
        self.schedule = ConstantLR(lr)

    def step(self, params) -> None:
        """Apply one update to every ``(name, Parameter)`` in ``params``."""
        lr = self.schedule(self.step_count)
        for name, p in params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            self._update(name, p, g, lr)
        self.step_count += 1

    def _update(self, name, p, g, lr):  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        super().__init__(lr, weight_decay)
        self.momentum = float(momentum)
        self._velocity: dict[str, np.ndarray] = {}

    def _update(self, name, p, g, lr):
        if self.momentum:
            v = self._velocity.get(name)
            if v is None or v.shape != g.shape:
                v = np.zeros_like(g)
            v = self.momentum * v - lr * g
            self._velocity[name] = v
            p.value += v
        else:
            p.value -= lr * g


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(lr, weight_decay)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def _update(self, name, p, g, lr):
        m = self._m.get(name)
        if m is None or m.shape != g.shape:
            m = np.zeros_like(g)
            self._v[name] = np.zeros_like(g)
            self._t[name] = 0
        v = self._v[name]
        self._t[name] += 1
        t = self._t[name]
        m = self.beta1 * m + (1 - self.beta1) * g
        v = self.beta2 * v + (1 - self.beta2) * (g * g)
        self._m[name], self._v[name] = m, v
        mhat = m / (1 - self.beta1 ** t)
        vhat = v / (1 - self.beta2 ** t)
        p.value -= lr * mhat / (np.sqrt(vhat) + self.eps)
