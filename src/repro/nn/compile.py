"""The compiled forward path: fusion rules, static schedule, arenas.

This module is the single source of truth for *layer fusion*: the grouping
of graph nodes into the kernels a runtime launches. The device latency
model (:mod:`repro.device.fusion` re-exports :func:`fuse_kernels` from
here) and the compiled executor below both consume the same
:class:`KernelGroup` partition, so what the latency model *prices* as one
fused kernel is exactly what the compute path *runs* as one fused kernel.

Compilation (:func:`compile_network`, or :meth:`Network.compile
<repro.nn.graph.Network.compile>`) happens once per network state:

1. the graph is partitioned into kernel groups (conv+BN+ReLU chains fuse,
   batch norms behind conv/dense anchors fold into the weights),
2. the groups are laid out as a flat :class:`ExecutionPlan` — a static
   schedule with precomputed consumer counts and a liveness-based *arena*
   assignment, so activation buffers are reused both across steps (a slot
   freed by its last consumer is recycled for a later output of the same
   shape) and across calls (per-batch-size arenas persist between
   forwards),
3. every step gets a fused kernel from :mod:`repro.nn.kernels`.

The plan is validated against a cheap state signature (structure version +
parameter/batch-norm-statistic version counters) on every use; weight
mutation through ``Parameter.value`` or ``load_state_dict`` triggers a
transparent recompile, and ``copy()``/``subgraph()`` clones start
uncompiled. Forward passes with hooks attached, ``training=True`` or
``capture=`` fall back to the interpreted node walk, which observers
(:mod:`repro.obs`) and gradient checks rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .kernels import Kernel, build_kernel
from .layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    MaxPool2D,
    ReLU,
    ReLU6,
    Softmax,
)

__all__ = [
    "ANCHOR_TYPES",
    "FUSABLE_TYPES",
    "KernelGroup",
    "fuse_kernels",
    "state_signature",
    "ExecutionPlan",
    "CompiledNetwork",
    "compile_network",
]

Shape = tuple[int, ...]

#: Layer types that start a new kernel.
ANCHOR_TYPES = (Conv2D, DepthwiseConv2D, Dense, MaxPool2D, AvgPool2D,
                GlobalAvgPool, Concat, Add, Softmax, Flatten)

#: Element-wise layer types that fuse into the preceding anchor kernel.
FUSABLE_TYPES = (BatchNorm, ReLU, ReLU6, Dropout)


@dataclass
class KernelGroup:
    """A set of graph nodes executed as one device kernel."""

    node_names: list[str] = field(default_factory=list)

    @property
    def anchor(self) -> str:
        """The node that determines the kernel's compute cost."""
        return self.node_names[0]

    def __contains__(self, name: str) -> bool:
        return name in self.node_names


def fuse_kernels(net, enabled: bool = True) -> list[KernelGroup]:
    """Partition a network's nodes into kernel groups.

    With ``enabled=False`` every non-input node is its own kernel (the
    unfused baseline used by the deployment-optimizations ablation).

    Fusion is greedy and chain-safe: an element-wise node joins the group
    of its single producer as long as that producer's output has no other
    consumer (otherwise the intermediate tensor must be materialised
    anyway).
    """
    consumers: dict[str, int] = {name: 0 for name in net.nodes}
    for node in net.nodes.values():
        for dep in node.inputs:
            consumers[dep] += 1

    groups: list[KernelGroup] = []
    group_of: dict[str, KernelGroup] = {}
    for node in net.nodes.values():
        if isinstance(node.layer, Input):
            continue
        if (enabled and isinstance(node.layer, FUSABLE_TYPES)
                and len(node.inputs) == 1
                and node.inputs[0] in group_of
                and consumers[node.inputs[0]] == 1):
            group = group_of[node.inputs[0]]
            group.node_names.append(node.name)
            group_of[node.name] = group
            continue
        group = KernelGroup([node.name])
        groups.append(group)
        group_of[node.name] = group
    return groups


def state_signature(net) -> tuple:
    """A cheap fingerprint of everything a compiled plan snapshots.

    Changes whenever the structure is edited (``add``/``build``/
    ``load_state_dict`` bump the network's mutation counter), a parameter
    is reassigned through ``Parameter.value``, or a batch norm updates its
    running statistics. In-place writes into a parameter's array
    (``p.value[...] = x``) are invisible to the signature — use
    ``Network.compile(force=True)`` after such edits.
    """
    params = 0
    stats = 0
    for node in net.nodes.values():
        layer = node.layer
        for p in layer.params.values():
            params += p.version
        stats += getattr(layer, "stats_version", 0)
    return (net._mutation_version, len(net.nodes), net.output_name,
            params, stats)


@dataclass
class _Step:
    """One scheduled kernel launch."""

    kernel: Kernel
    node_names: list[str]
    input_ids: list[int]
    out_id: int
    slot: int | None          # arena slot for the output (None = fallback)
    out_shape: Shape          # per-sample

    @property
    def name(self) -> str:
        return self.node_names[0]


class _Arena:
    """One batch size's bound execution program: slots, states, buffers.

    Binding resolves, once, everything ``run`` would otherwise look up per
    step: each step's output arena slot, its per-batch kernel state
    (padding borders, patch matrices), and its input buffer list — every
    input that lives in an arena slot is wired in directly, so the hot
    loop only patches in dynamic values (the network input, fallback-
    kernel outputs).
    """

    def __init__(self, batch: int, plan: "ExecutionPlan"):
        self.batch = batch
        self._slots = {sid: np.empty((batch,) + shape, dtype=np.float32)
                       for sid, shape in plan.slot_shapes.items()}
        value_buf = {vid: self._slots[sid]
                     for vid, sid in plan.value_slot.items()}
        self.program = []
        self._states = []
        for step in plan.steps:
            state = step.kernel.make_state(batch)
            self._states.append(state)
            out = None if step.slot is None else self._slots[step.slot]
            ins: list = [value_buf.get(vid) for vid in step.input_ids]
            dynamic = tuple((pos, vid)
                            for pos, vid in enumerate(step.input_ids)
                            if vid not in value_buf)
            self.program.append(
                (step.kernel, ins, dynamic, out, state, step.out_id))

    @property
    def nbytes(self) -> int:
        total = sum(b.nbytes for b in self._slots.values())
        seen = set()
        for state in self._states:
            bufs = state if isinstance(state, tuple) else (state,)
            for buf in bufs:
                if (isinstance(buf, np.ndarray) and buf.base is None
                        and id(buf) not in seen):
                    seen.add(id(buf))
                    total += buf.nbytes
        return total


class ExecutionPlan:
    """A flat, topologically ordered schedule of fused kernel steps."""

    def __init__(self, net):
        if not net.built:
            raise RuntimeError("network is not built; call build() first")
        self.input_shape = net.input_shape
        groups = fuse_kernels(net, enabled=True)
        produced = {g.node_names[-1] for g in groups}
        # external references may only target a group's *last* node; the
        # fusion rule guarantees this for everything except the network
        # output, which forward() must return as-is
        if net.output_name != "input" and net.output_name not in produced:
            raise ValueError(
                f"output node {net.output_name!r} is fused mid-group; "
                "compiled execution cannot expose its activation")

        node_value = {"input": 0}
        self.steps: list[_Step] = []
        self.num_values = 1
        for i, group in enumerate(groups):
            anchor = net.nodes[group.anchor]
            tail = [net.nodes[name].layer for name in group.node_names[1:]]
            in_shape = net.in_shapes(anchor.name)[0]
            out_shape = net.shape_of(group.node_names[-1])
            kernel = build_kernel(i, anchor.layer, tail, in_shape, out_shape)
            input_ids = [node_value[d] for d in anchor.inputs] or [0]
            out_id = self.num_values
            self.num_values += 1
            node_value[group.node_names[-1]] = out_id
            self.steps.append(_Step(kernel, list(group.node_names),
                                    input_ids, out_id, None, out_shape))
        self.out_value = node_value.get(net.output_name, 0)
        self._assign_slots()

    def _assign_slots(self) -> None:
        """Liveness-based arena assignment: recycle freed same-shape slots."""
        refs = {self.out_value: 1}  # the output stays live to the end
        for step in self.steps:
            for vid in step.input_ids:
                refs[vid] = refs.get(vid, 0) + 1
        value_slot: dict[int, int] = {}
        slot_shapes: dict[int, Shape] = {}
        free: dict[Shape, list[int]] = {}
        next_slot = 0
        for step in self.steps:
            if step.kernel.fused:
                pool = free.get(step.out_shape)
                if pool:
                    sid = pool.pop()
                else:
                    sid = next_slot
                    next_slot += 1
                    slot_shapes[sid] = step.out_shape
                step.slot = sid
                value_slot[step.out_id] = sid
            for vid in step.input_ids:
                refs[vid] -= 1
                if refs[vid] == 0 and vid in value_slot:
                    sid = value_slot[vid]
                    free.setdefault(slot_shapes[sid], []).append(sid)
        self.slot_shapes = slot_shapes
        self.value_slot = value_slot

    def describe(self) -> str:
        """One line per step: kernel type, fused nodes, slot, shape."""
        lines = [f"{len(self.steps)} steps, {len(self.slot_shapes)} arena "
                 f"slots for {self.num_values} values"]
        for step in self.steps:
            lines.append(
                f"  [{step.slot if step.slot is not None else '-':>3}] "
                f"{type(step.kernel).__name__:22s} "
                f"{'+'.join(step.node_names)}")
        return "\n".join(lines)


class CompiledNetwork:
    """A network frozen into an :class:`ExecutionPlan` plus its arenas.

    Call it (or :meth:`run`) with a batched input; the underlying
    :class:`~repro.nn.graph.Network` routes ``forward``/``forward_batch``
    here automatically while the plan is valid. Arenas are cached per
    batch size (bounded LRU), so steady-state inference allocates nothing
    but the returned output copy.
    """

    MAX_ARENAS = 8

    def __init__(self, net):
        self.net = net
        self.plan = ExecutionPlan(net)
        self.signature = state_signature(net)
        self._arenas: dict[int, _Arena] = {}
        self._times: dict[str, list] | None = None
        self._step_names = tuple(step.name for step in self.plan.steps)

    @property
    def valid(self) -> bool:
        """Whether the plan still matches the network's weights/structure."""
        return self.signature == state_signature(self.net)

    def _arena(self, batch: int) -> _Arena:
        arena = self._arenas.get(batch)
        if arena is None:
            if len(self._arenas) >= self.MAX_ARENAS:
                self._arenas.pop(next(iter(self._arenas)))
            arena = _Arena(batch, self.plan)
            self._arenas[batch] = arena
        return arena

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on a batch ``(N,) + input_shape``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.shape[1:] != self.plan.input_shape:
            raise ValueError(
                f"expected batched input (N,)+{self.plan.input_shape}, "
                f"got {x.shape}")
        arena = self._arena(x.shape[0])
        values: list = [None] * self.plan.num_values
        values[0] = x
        if self._times is not None:
            return self._run_timed(arena, values)
        for kernel, ins, dynamic, out, state, out_id in arena.program:
            for pos, vid in dynamic:
                ins[pos] = values[vid]
            values[out_id] = kernel.run(ins, out, state)
        # the output lives in a reused arena slot; hand the caller a copy
        # so the next forward cannot overwrite it behind their back
        return values[self.out_value].copy()

    __call__ = run

    def _run_timed(self, arena: _Arena, values: list) -> np.ndarray:
        """The instrumented twin of the hot loop: one clock read per step.

        Numerically identical to :meth:`run` (same kernels, same arenas);
        the only extra work is two ``perf_counter`` calls and a dict
        update per step, accumulated into ``{step name: [calls,
        total_ms]}`` until :meth:`drain_kernel_times` collects them.
        """
        perf = time.perf_counter
        times = self._times
        names = self._step_names
        for i, (kernel, ins, dynamic, out, state, out_id) \
                in enumerate(arena.program):
            for pos, vid in dynamic:
                ins[pos] = values[vid]
            t0 = perf()
            values[out_id] = kernel.run(ins, out, state)
            dt_ms = (perf() - t0) * 1e3
            rec = times.get(names[i])
            if rec is None:
                times[names[i]] = [1, dt_ms]
            else:
                rec[0] += 1
                rec[1] += dt_ms
        return values[self.out_value].copy()

    # -- per-kernel timing ---------------------------------------------------
    @property
    def timing_enabled(self) -> bool:
        return self._times is not None

    def enable_timing(self) -> None:
        """Time every kernel launch (wall clock) until disabled.

        Opt-in because even two clock reads per step are measurable on
        sub-millisecond networks; the untimed hot loop is untouched.
        """
        if self._times is None:
            self._times = {}

    def disable_timing(self) -> None:
        self._times = None

    def kernel_times_ms(self) -> dict[str, tuple[int, float]]:
        """Accumulated ``{step name: (calls, total_ms)}`` since last drain."""
        if not self._times:
            return {}
        return {name: (calls, total) for name, (calls, total)
                in self._times.items()}

    def drain_kernel_times(self) -> dict[str, tuple[int, float]]:
        """Like :meth:`kernel_times_ms`, but resets the accumulators."""
        out = self.kernel_times_ms()
        if self._times:
            self._times.clear()
        return out

    def latency_table(self, device: str = "wall-clock"):
        """The accumulated timings as a :class:`repro.device.LatencyTable`.

        One :class:`~repro.device.profiler.LayerRecord` per timed step
        (mean ms per launch, anchored at the step's first node), in plan
        order — the same shape the :class:`repro.obs.LayerProfiler`
        produces, so drift monitoring and ladder rebuilds can consume
        measurements from the *compiled* path too. ``end_to_end_ms`` is
        the per-kernel mean total (launch gaps are not observable here).
        """
        from repro.device.profiler import LatencyTable, LayerRecord
        times = self.kernel_times_ms()
        records = []
        for step in self.plan.steps:
            rec = times.get(step.name)
            if rec is None:
                continue
            calls, total = rec
            records.append(LayerRecord(step.name, tuple(step.node_names),
                                       total / calls))
        return LatencyTable(
            network=getattr(self.net, "name", "network"),
            device=device, records=tuple(records),
            end_to_end_ms=sum(r.recorded_ms for r in records))

    @property
    def out_value(self) -> int:
        return self.plan.out_value

    @property
    def arena_bytes(self) -> int:
        """Total bytes currently held across all batch-size arenas."""
        return sum(a.nbytes for a in self._arenas.values())

    def describe(self) -> str:
        return self.plan.describe()


def compile_network(net) -> CompiledNetwork:
    """Compile a built network into a :class:`CompiledNetwork`."""
    return CompiledNetwork(net)
