"""Fused NumPy compute kernels for the compiled forward path.

Each kernel executes one :class:`~repro.nn.compile.KernelGroup` — an anchor
layer plus the element-wise layers fused behind it — as a single call with
no per-layer Python dispatch and (almost) no allocation:

- Convolutions run as im2col/GEMM with the patch matrix written into a
  preallocated scratch buffer and the GEMM accumulating straight into the
  output arena slot. 1x1 convolutions skip im2col entirely (a reshape is
  already the GEMM operand). When a bias exists (or a batch norm folded
  into one), the patch matrix grows a constant ones column and the bias
  becomes an extra weight row, so the GEMM emits ``x @ w + b`` in one call.
- Depthwise convolutions pick their algorithm per layer at compile time:
  narrow layers (few channels) run as an im2col GEMM against a
  block-diagonal weight matrix — more FLOPs, but BLAS-speed FLOPs — while
  wide layers run a per-tap einsum over the patch tensor.
- Batch-norm layers that directly follow a conv/dense anchor are *folded
  into the weights* at compile time (``w' = w * gamma/sqrt(var+eps)``,
  ``b' = beta + (b - mean) * gamma/sqrt(var+eps)``), so inference pays
  nothing for them. Batch norms that cannot fold (after pools, adds,
  concats, or behind an activation) become a two-pass in-place affine.
- Activations (ReLU/ReLU6) are applied in place on the output buffer;
  inference-time dropout disappears.
- Pooling runs as a short tap loop of ``np.maximum``/``np.add`` over
  shifted views — several times faster than an axis reduction over the
  strided patch tensor.

Kernels are *stateless across batch sizes*: all scratch (padding borders,
patch matrices) lives in the per-batch-size state object built once by
:meth:`Kernel.make_state` and owned by the arena, so a steady-state
forward pass performs no heap allocation and no cache lookups. Kernels
never mutate their inputs — only the output buffer and their own state —
so arena slots can be shared between steps safely. All buffers are
float32; the compiled path is an inference path.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    ReLU6,
    Softmax,
)

__all__ = ["Kernel", "KERNEL_TYPES", "build_kernel"]

Shape = tuple[int, ...]

#: Channel cutoff below which a depthwise convolution runs as a
#: block-diagonal GEMM instead of a patch einsum. The GEMM does ``C``
#: times the FLOPs but runs at BLAS speed; empirically it wins while the
#: channel count is small (the early, large-spatial layers where depthwise
#: time concentrates).
DEPTHWISE_GEMM_MAX_CHANNELS = 8


# -- post-ops (element-wise tails applied in place on the output) -----------

def _relu_op(out: np.ndarray) -> None:
    np.maximum(out, 0.0, out=out)


def _relu6_op(out: np.ndarray) -> None:
    np.clip(out, 0.0, 6.0, out=out)


def _make_affine_op(scale: np.ndarray, shift: np.ndarray):
    def op(out: np.ndarray) -> None:
        out *= scale
        out += shift
    return op


def _bn_affine(layer: BatchNorm) -> tuple[np.ndarray, np.ndarray]:
    """Inference batch-norm as a per-channel (scale, shift) pair."""
    inv = 1.0 / np.sqrt(layer.running_var + layer.eps)
    scale = (layer.params["gamma"].value * inv).astype(np.float32)
    shift = (layer.params["beta"].value
             - layer.running_mean * scale).astype(np.float32)
    return scale, shift


def _tail_ops(layers: list, foldable: bool):
    """Split a group's element-wise tail into (folded BN, runtime post-ops).

    ``foldable`` anchors (conv/dense) absorb any leading batch norms into
    their weights; everything else becomes an in-place runtime op, in
    order. Returns ``(scale, shift, postops)`` where ``scale``/``shift``
    are ``None`` when nothing folded.
    """
    scale = shift = None
    postops = []
    for lay in layers:
        if isinstance(lay, BatchNorm):
            s, t = _bn_affine(lay)
            if foldable and not postops:
                if scale is None:
                    scale, shift = s, t
                else:
                    scale, shift = scale * s, shift * s + t
            else:
                postops.append(_make_affine_op(s, t))
        elif isinstance(lay, ReLU):
            postops.append(_relu_op)
        elif isinstance(lay, ReLU6):
            postops.append(_relu6_op)
        elif isinstance(lay, Dropout):
            continue  # identity at inference
        else:  # pragma: no cover - fuse_kernels only groups known types
            raise TypeError(f"no fused post-op for {type(lay).__name__}")
    return scale, shift, postops


def _fold_bias(layer, scale, shift):
    """The effective bias after folding a batch norm into the anchor."""
    bias = layer.params["b"].value if layer.use_bias else None
    if scale is not None:
        bias = shift if bias is None else bias * scale + shift
    return None if bias is None else bias.astype(np.float32)


# -- geometry helpers --------------------------------------------------------

def _patch_view(x: np.ndarray, kh: int, kw: int, stride: int,
                oh: int, ow: int) -> np.ndarray:
    """Zero-copy sliding-window view ``(N, OH, OW, kh, kw, C)``."""
    s0, s1, s2, s3 = x.strides
    return np.lib.stride_tricks.as_strided(
        x, shape=(x.shape[0], oh, ow, kh, kw, x.shape[-1]),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3))


def _cols_view(cols2d: np.ndarray, n: int, oh: int, ow: int,
               kh: int, kw: int, c: int) -> np.ndarray:
    """A writable 6-D patch view over the first ``kh*kw*c`` columns of a
    row-padded patch matrix (the trailing ones column is left alone)."""
    pitch = cols2d.strides[0]
    return np.lib.stride_tricks.as_strided(
        cols2d, shape=(n, oh, ow, kh, kw, c),
        strides=(oh * ow * pitch, ow * pitch, pitch, kw * c * 4, c * 4, 4))


class _PadPlan:
    """SAME-padding geometry shared by the conv/pool kernels."""

    def __init__(self, in_shape: Shape, kernel: tuple[int, int], stride: int,
                 padding: str):
        h, w, c = in_shape
        kh, kw = kernel
        if padding == "same":
            self.ph = F.same_padding(h, kh, stride)
            self.pw = F.same_padding(w, kw, stride)
        else:
            self.ph = self.pw = (0, 0)
        self.needed = self.ph != (0, 0) or self.pw != (0, 0)
        self.in_hw = (h, w)
        self.padded_shape = (h + sum(self.ph), w + sum(self.pw), c)
        hp, wp, _ = self.padded_shape
        self.out_hw = ((hp - kh) // stride + 1, (wp - kw) // stride + 1)

    def make_buf(self, n: int, fill: float) -> np.ndarray | None:
        if not self.needed:
            return None
        return np.full((n,) + self.padded_shape, fill, dtype=np.float32)

    def apply(self, x: np.ndarray, buf: np.ndarray | None) -> np.ndarray:
        if buf is None:
            return x
        h, w = self.in_hw
        buf[:, self.ph[0]:self.ph[0] + h, self.pw[0]:self.pw[0] + w, :] = x
        return buf


# -- kernels -----------------------------------------------------------------

class Kernel:
    """One compiled execution step: anchor + fused element-wise tail."""

    #: whether the whole group runs as fused compute (False = generic
    #: per-layer fallback, used only for layer types outside the zoo set)
    fused = True

    def __init__(self, step: int, out_shape: Shape):
        self.step = step
        self.out_shape = out_shape

    def make_state(self, n: int):
        """Per-batch-size scratch, built once per arena. Default: none."""
        return None

    def run(self, ins: list[np.ndarray], out: np.ndarray, state):
        raise NotImplementedError


class _GemmConvBase(Kernel):
    """Shared im2col/GEMM machinery for dense and depthwise convolutions.

    Subclasses set ``self.wf`` (the ``(K[+1], F)`` weight matrix),
    ``self.bias`` and ``self.fold_bias`` (True = bias rides in the GEMM as
    a ones column / extra weight row). ``state`` is
    ``(padbuf, cols2d, cols6)``.
    """

    def __init__(self, step: int, out_shape: Shape, layer, in_shape: Shape):
        super().__init__(step, out_shape)
        self.kh, self.kw = layer.kernel
        self.stride = layer.stride
        self.cin = in_shape[-1]
        self.pad = _PadPlan(in_shape, layer.kernel, layer.stride,
                            layer.padding)

    def make_state(self, n: int):
        oh, ow, _ = self.out_shape
        k = self.kh * self.kw * self.cin
        cols2d = np.empty((n * oh * ow, k + 1 if self.fold_bias else k),
                          dtype=np.float32)
        if self.fold_bias:
            cols2d[:, k] = 1.0
        cols6 = _cols_view(cols2d, n, oh, ow, self.kh, self.kw, self.cin)
        return (self.pad.make_buf(n, 0.0), cols2d, cols6)

    def run(self, ins, out, state):
        x = ins[0]
        oh, ow, f = self.out_shape
        padbuf, cols2d, cols6 = state
        xs = self.pad.apply(x, padbuf)
        np.copyto(cols6, _patch_view(xs, self.kh, self.kw, self.stride,
                                     oh, ow))
        np.matmul(cols2d, self.wf, out=out.reshape(-1, f))
        if self.bias is not None and not self.fold_bias:
            out += self.bias
        for op in self.postops:
            op(out)
        return out


class ConvKernel(_GemmConvBase):
    """Conv2D anchor: im2col/GEMM with folded BN and in-place activation."""

    def __init__(self, step: int, out_shape: Shape, layer: Conv2D,
                 in_shape: Shape, tail: list):
        _GemmConvBase.__init__(self, step, out_shape, layer, in_shape)
        self.filters = layer.filters
        scale, shift, self.postops = _tail_ops(tail, foldable=True)
        w = layer.params["w"].value.reshape(-1, self.filters)
        wf = np.ascontiguousarray(w if scale is None else w * scale,
                                  dtype=np.float32)
        self.bias = _fold_bias(layer, scale, shift)
        # a 1x1 kernel needs no patch matrix: the input *is* the GEMM
        # operand (strided row subsampling when stride > 1)
        self.fast_1x1 = (self.kh, self.kw) == (1, 1) and not self.pad.needed
        self.fold_bias = self.bias is not None and not self.fast_1x1
        self.wf = (np.vstack([wf, self.bias[None]])
                   if self.fold_bias else wf)

    def make_state(self, n: int):
        if not self.fast_1x1:
            return _GemmConvBase.make_state(self, n)
        if self.stride > 1:
            oh, ow, _ = self.out_shape
            return np.empty((n, oh, ow, self.cin), dtype=np.float32)
        return None

    def run(self, ins, out, state):
        if not self.fast_1x1:
            return _GemmConvBase.run(self, ins, out, state)
        x = ins[0]
        _, _, f = self.out_shape
        src = x
        if self.stride > 1:
            np.copyto(state, x[:, ::self.stride, ::self.stride, :])
            src = state
        np.matmul(src.reshape(-1, self.cin), self.wf, out=out.reshape(-1, f))
        if self.bias is not None:
            out += self.bias
        for op in self.postops:
            op(out)
        return out


class DepthwiseConvKernel(Kernel):
    """DepthwiseConv2D anchor, algorithm chosen per layer at compile time.

    Narrow layers (``C <= DEPTHWISE_GEMM_MAX_CHANNELS``) run the patch
    matrix against a block-diagonal ``(kh*kw*C, C)`` weight — a ``C``-fold
    FLOP blow-up that BLAS still wins on. Wide layers contract the patch
    tensor with an einsum.
    """

    def __init__(self, step: int, out_shape: Shape, layer: DepthwiseConv2D,
                 in_shape: Shape, tail: list):
        super().__init__(step, out_shape)
        self.kh, self.kw = layer.kernel
        self.stride = layer.stride
        self.cin = self.channels = c = in_shape[-1]
        self.pad = _PadPlan(in_shape, layer.kernel, layer.stride,
                            layer.padding)
        scale, shift, self.postops = _tail_ops(tail, foldable=True)
        w = layer.params["w"].value.reshape(self.kh * self.kw, c)
        wf = np.ascontiguousarray(w if scale is None else w * scale,
                                  dtype=np.float32)
        self.bias = _fold_bias(layer, scale, shift)
        self.as_gemm = c <= DEPTHWISE_GEMM_MAX_CHANNELS
        self.fold_bias = self.as_gemm and self.bias is not None
        if self.as_gemm:
            k2 = self.kh * self.kw
            bd = np.zeros((k2 * c, c), dtype=np.float32)
            idx = np.arange(c)
            for t in range(k2):
                bd[t * c + idx, idx] = wf[t]
            self.wf = (np.vstack([bd, self.bias[None]])
                       if self.fold_bias else bd)
        else:
            self.wf = wf

    def make_state(self, n: int):
        if self.as_gemm:
            return _GemmConvBase.make_state(self, n)
        oh, ow, c = self.out_shape
        cols = np.empty((n, oh, ow, self.kh * self.kw, c), dtype=np.float32)
        return (self.pad.make_buf(n, 0.0), cols)

    def run(self, ins, out, state):
        if self.as_gemm:
            return _GemmConvBase.run(self, ins, out, state)
        x = ins[0]
        oh, ow, c = self.out_shape
        padbuf, cols = state
        xs = self.pad.apply(x, padbuf)
        n = x.shape[0]
        np.copyto(cols.reshape(n, oh, ow, self.kh, self.kw, c),
                  _patch_view(xs, self.kh, self.kw, self.stride, oh, ow))
        np.einsum("nhwkc,kc->nhwc", cols, self.wf, out=out)
        if self.bias is not None:
            out += self.bias
        for op in self.postops:
            op(out)
        return out


class DenseKernel(Kernel):
    """Dense anchor: GEMM with folded BN and in-place activation."""

    def __init__(self, step: int, out_shape: Shape, layer: Dense,
                 in_shape: Shape, tail: list):
        super().__init__(step, out_shape)
        self.units = layer.units
        self.d = in_shape[-1]
        scale, shift, self.postops = _tail_ops(tail, foldable=True)
        w = layer.params["w"].value
        self.wf = np.ascontiguousarray(w if scale is None else w * scale,
                                       dtype=np.float32)
        self.bias = _fold_bias(layer, scale, shift)

    def run(self, ins, out, state):
        x = ins[0]
        np.matmul(x.reshape(-1, self.d), self.wf,
                  out=out.reshape(-1, self.units))
        if self.bias is not None:
            out += self.bias
        for op in self.postops:
            op(out)
        return out


class PoolKernel(Kernel):
    """Max/average pooling as a tap loop over shifted strided views."""

    def __init__(self, step: int, out_shape: Shape, layer, in_shape: Shape,
                 tail: list):
        super().__init__(step, out_shape)
        self.pool = layer.pool
        self.stride = layer.stride
        self.is_max = isinstance(layer, MaxPool2D)
        self.pad = _PadPlan(in_shape, (layer.pool, layer.pool), layer.stride,
                            layer.padding)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def make_state(self, n: int):
        return self.pad.make_buf(n, -np.inf if self.is_max else 0.0)

    def run(self, ins, out, state):
        xs = self.pad.apply(ins[0], state)
        oh, ow, _ = self.out_shape
        p, s = self.pool, self.stride
        he, we = (oh - 1) * s + 1, (ow - 1) * s + 1
        np.copyto(out, xs[:, 0:he:s, 0:we:s, :])
        reduce = np.maximum if self.is_max else np.add
        for i in range(p):
            for j in range(p):
                if i == 0 and j == 0:
                    continue
                reduce(out, xs[:, i:i + he:s, j:j + we:s, :], out=out)
        if not self.is_max:
            out *= 1.0 / (p * p)
        for op in self.postops:
            op(out)
        return out


class GlobalAvgPoolKernel(Kernel):
    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        ins[0].mean(axis=(1, 2), out=out)
        for op in self.postops:
            op(out)
        return out


class FlattenKernel(Kernel):
    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        n = ins[0].shape[0]
        np.copyto(out.reshape(n, -1), ins[0].reshape(n, -1))
        for op in self.postops:
            op(out)
        return out


class SoftmaxKernel(Kernel):
    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        x = ins[0]
        np.subtract(x, x.max(axis=-1, keepdims=True), out=out)
        np.exp(out, out=out)
        out /= out.sum(axis=-1, keepdims=True)
        for op in self.postops:
            op(out)
        return out


class AddKernel(Kernel):
    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        if len(ins) == 1:
            np.copyto(out, ins[0])
        else:
            np.add(ins[0], ins[1], out=out)
            for extra in ins[2:]:
                out += extra
        for op in self.postops:
            op(out)
        return out


class ConcatKernel(Kernel):
    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        np.concatenate(ins, axis=-1, out=out)
        for op in self.postops:
            op(out)
        return out


class BatchNormKernel(Kernel):
    """A batch norm that anchors its own group (producer has fan-out)."""

    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        self.scale, self.shift = _bn_affine(layer)
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        np.multiply(ins[0], self.scale, out=out)
        out += self.shift
        for op in self.postops:
            op(out)
        return out


class ActivationKernel(Kernel):
    """A ReLU/ReLU6/Dropout that anchors its own group."""

    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        if isinstance(layer, ReLU6):
            self.mode = "relu6"
        elif isinstance(layer, ReLU):
            self.mode = "relu"
        else:
            self.mode = "copy"  # inference-time dropout
        _, _, self.postops = _tail_ops(tail, foldable=False)

    def run(self, ins, out, state):
        x = ins[0]
        if self.mode == "relu":
            np.maximum(x, 0.0, out=out)
        elif self.mode == "relu6":
            np.clip(x, 0.0, 6.0, out=out)
        else:
            np.copyto(out, x)
        for op in self.postops:
            op(out)
        return out


class FallbackKernel(Kernel):
    """Generic per-layer execution for types without a fused kernel.

    Only single-node groups can take this path (``fuse_kernels`` never
    groups unknown layer types), so interpreted and compiled execution
    remain node-for-node identical for exotic layers.
    """

    fused = False

    def __init__(self, step, out_shape, layer, in_shape, tail):
        super().__init__(step, out_shape)
        if tail:  # pragma: no cover - fusion rules prevent this
            raise TypeError("cannot fuse a tail behind an unknown anchor")
        self.layer = layer

    def run(self, ins, out, state):
        return np.asarray(self.layer.forward(list(ins), training=False),
                          dtype=np.float32)


#: anchor layer type -> kernel class (the compute half of the fusion
#: rules; :mod:`repro.nn.compile` holds the grouping half)
KERNEL_TYPES: dict[type, type] = {
    Conv2D: ConvKernel,
    DepthwiseConv2D: DepthwiseConvKernel,
    Dense: DenseKernel,
    MaxPool2D: PoolKernel,
    AvgPool2D: PoolKernel,
    GlobalAvgPool: GlobalAvgPoolKernel,
    Flatten: FlattenKernel,
    Softmax: SoftmaxKernel,
    Add: AddKernel,
    Concat: ConcatKernel,
    BatchNorm: BatchNormKernel,
    ReLU: ActivationKernel,
    ReLU6: ActivationKernel,
    Dropout: ActivationKernel,
}


def build_kernel(step: int, anchor_layer, tail_layers: list,
                 in_shape: Shape, out_shape: Shape) -> Kernel:
    """Construct the fused kernel for one group (fallback for unknowns)."""
    cls = KERNEL_TYPES.get(type(anchor_layer), FallbackKernel)
    return cls(step, out_shape, anchor_layer, in_shape, tail_layers)
