"""Low-level numerical primitives for the NumPy DNN framework.

All image tensors use the NHWC layout: ``(batch, height, width, channels)``.
Convolutions are implemented with the im2col/col2im transformation so that the
inner loop is a single large matrix multiply, which is the only way to make a
pure-NumPy CNN fast enough for the sweep experiments in this repository.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad_same",
    "conv_output_size",
    "im2col",
    "col2im",
    "relu",
    "relu_grad",
    "relu6",
    "relu6_grad",
    "softmax",
    "sigmoid",
]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window.

    Parameters mirror the standard formula ``(size + 2*pad - kernel)//stride + 1``.
    """
    return (size + 2 * pad - kernel) // stride + 1


def same_padding(size: int, kernel: int, stride: int) -> tuple[int, int]:
    """Asymmetric SAME padding (TensorFlow convention) for one dimension.

    Returns ``(pad_before, pad_after)`` such that the output size equals
    ``ceil(size / stride)``.
    """
    out = -(-size // stride)
    total = max(0, (out - 1) * stride + kernel - size)
    before = total // 2
    return before, total - before


def pad_same(x: np.ndarray, kernel: tuple[int, int],
             stride: tuple[int, int]) -> np.ndarray:
    """Apply SAME padding to an NHWC tensor for the given kernel and stride."""
    ph = same_padding(x.shape[1], kernel[0], stride[0])
    pw = same_padding(x.shape[2], kernel[1], stride[1])
    if ph == (0, 0) and pw == (0, 0):
        return x
    return np.pad(x, ((0, 0), ph, pw, (0, 0)))


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract sliding patches from an NHWC tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, H, W, C)``; the caller is responsible for padding.
    kh, kw:
        Kernel height and width.
    stride:
        Stride, applied to both spatial dimensions.

    Returns
    -------
    Array of shape ``(N, OH, OW, kh * kw * C)`` where ``OH`` and ``OW`` are
    the convolution output sizes for VALID padding.
    """
    n, h, w, c = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    shape = (n, oh, ow, kh, kw, c)
    strides = (s0, s1 * stride, s2 * stride, s1, s2, s3)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return np.ascontiguousarray(patches).reshape(n, oh, ow, kh * kw * c)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kh: int, kw: int, stride: int) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patches back to an image.

    Parameters
    ----------
    cols:
        Patch gradients of shape ``(N, OH, OW, kh * kw * C)``.
    x_shape:
        Shape of the (padded) input tensor the patches were extracted from.
    kh, kw, stride:
        Window geometry used by the forward :func:`im2col`.

    Returns
    -------
    Gradient with respect to the (padded) input, shape ``x_shape``.
    """
    n, h, w, c = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = cols.reshape(n, oh, ow, kh, kw, c)
    out = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, i:i + stride * oh:stride, j:j + stride * ow:stride, :] += \
                cols[:, :, :, i, j, :]
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """Gradient of ReLU given the pre-activation ``x``."""
    return grad * (x > 0)


def relu6(x: np.ndarray) -> np.ndarray:
    """ReLU clipped at 6, as used by the MobileNet family."""
    return np.clip(x, 0.0, 6.0)


def relu6_grad(x: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """Gradient of ReLU6 given the pre-activation ``x``."""
    return grad * ((x > 0) & (x < 6.0))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
