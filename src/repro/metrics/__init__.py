"""Evaluation metrics: angular similarity and Pareto-frontier analysis."""

from .angular import (
    angular_distance,
    angular_similarity,
    bhattacharyya_angle,
    mean_angular_similarity,
)
from .pareto import (
    CandidatePoint,
    accuracy_at_deadline,
    accuracy_gap,
    best_under_deadline,
    dominates,
    frontier_dominates,
    pareto_frontier,
    relative_improvement,
)

__all__ = [
    "angular_distance",
    "angular_similarity",
    "bhattacharyya_angle",
    "mean_angular_similarity",
    "CandidatePoint",
    "dominates",
    "pareto_frontier",
    "best_under_deadline",
    "accuracy_at_deadline",
    "accuracy_gap",
    "relative_improvement",
    "frontier_dominates",
]
