"""Angular similarity between probability distributions.

Because the HANDS labels are distributions rather than one-hot vectors,
top-1 accuracy is meaningless; the paper (following Zandigohar et al., 2020)
scores the visual classifier with *angular similarity*: the cosine angle
between predicted and target distributions mapped to [0, 1], where 1 means
identical direction and 0 means orthogonal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["angular_distance", "angular_similarity", "mean_angular_similarity",
           "bhattacharyya_angle"]

_EPS = 1e-12


def angular_distance(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Normalised angle between distribution vectors, in [0, 1].

    ``0`` means identical direction; ``1`` means the maximal angle (π/2 for
    non-negative vectors, normalised by it).
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    num = np.sum(p * q, axis=-1)
    den = np.linalg.norm(p, axis=-1) * np.linalg.norm(q, axis=-1) + _EPS
    cos = np.clip(num / den, -1.0, 1.0)
    return np.arccos(cos) / (np.pi / 2)


def angular_similarity(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``1 - angular_distance``: 1 for identical distributions."""
    return 1.0 - angular_distance(p, q)


def mean_angular_similarity(pred: np.ndarray, target: np.ndarray) -> float:
    """Batch-mean angular similarity — the paper's accuracy metric."""
    return float(np.mean(angular_similarity(pred, target)))


def bhattacharyya_angle(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Bhattacharyya angle ``arccos(Σ√(p·q))`` normalised to [0, 1].

    An alternative distribution-aware distance, provided for ablation; it is
    more sensitive to mass in small-probability classes than the cosine
    angle.
    """
    p = np.clip(np.asarray(p, dtype=np.float64), 0.0, None)
    q = np.clip(np.asarray(q, dtype=np.float64), 0.0, None)
    bc = np.clip(np.sum(np.sqrt(p * q), axis=-1), 0.0, 1.0)
    return np.arccos(bc) / (np.pi / 2)
