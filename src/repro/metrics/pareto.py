"""Pareto-frontier analysis of the latency/accuracy trade-off.

This implements the machinery behind the paper's Figures 1, 6 and 7: which
candidate networks are dominated, what the frontier looks like, how large
the accuracy gap at a deadline is, and by how much trimmed networks improve
on the best off-the-shelf network under the same deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CandidatePoint", "dominates", "pareto_frontier",
           "best_under_deadline", "accuracy_at_deadline", "accuracy_gap",
           "relative_improvement", "frontier_dominates"]


@dataclass(frozen=True)
class CandidatePoint:
    """One network in the trade-off space."""

    name: str
    latency_ms: float
    accuracy: float

    def meets(self, deadline_ms: float) -> bool:
        """Whether this candidate meets the deadline."""
        return self.latency_ms <= deadline_ms


def dominates(a: CandidatePoint, b: CandidatePoint) -> bool:
    """True when ``a`` is at least as fast and as accurate as ``b`` and
    strictly better in at least one dimension."""
    return (a.latency_ms <= b.latency_ms and a.accuracy >= b.accuracy
            and (a.latency_ms < b.latency_ms or a.accuracy > b.accuracy))


def pareto_frontier(points: list[CandidatePoint]) -> list[CandidatePoint]:
    """Non-dominated subset, sorted by latency ascending.

    Ties in latency keep only the most accurate candidate.
    """
    ordered = sorted(points, key=lambda p: (p.latency_ms, -p.accuracy))
    frontier: list[CandidatePoint] = []
    best_acc = -np.inf
    for p in ordered:
        if p.accuracy > best_acc:
            frontier.append(p)
            best_acc = p.accuracy
    return frontier


def best_under_deadline(points: list[CandidatePoint],
                        deadline_ms: float) -> CandidatePoint | None:
    """Most accurate candidate meeting the deadline, or ``None``."""
    feasible = [p for p in points if p.meets(deadline_ms)]
    if not feasible:
        return None
    return max(feasible, key=lambda p: (p.accuracy, -p.latency_ms))


def accuracy_at_deadline(points: list[CandidatePoint],
                         deadline_ms: float) -> float:
    """Accuracy of the best feasible candidate (``nan`` when none meets).

    The bake-off's headline scalar: what a strategy actually delivers
    when the deadline binds.
    """
    best = best_under_deadline(points, deadline_ms)
    return best.accuracy if best is not None else float("nan")


def frontier_dominates(a: list[CandidatePoint],
                       b: list[CandidatePoint]) -> bool:
    """Whether frontier ``a`` dominates-or-ties frontier ``b`` everywhere.

    True when every point of ``b`` is matched by some point of ``a`` that
    is at least as fast *and* at least as accurate — i.e. ``a``'s
    frontier is nowhere below ``b``'s. A mixed-strategy ladder must
    satisfy this against each of its constituent single-strategy ladders.
    """
    front_a = pareto_frontier(a)
    return all(any(p.latency_ms <= q.latency_ms and p.accuracy >= q.accuracy
                   for p in front_a)
               for q in pareto_frontier(b))


def accuracy_gap(points: list[CandidatePoint], deadline_ms: float) -> float:
    """The paper's Fig. 1 "gap": accuracy lost by having to pick the best
    feasible candidate instead of the best candidate overall."""
    best = best_under_deadline(points, deadline_ms)
    if best is None:
        return float("nan")
    return max(p.accuracy for p in points) - best.accuracy


def relative_improvement(baseline: CandidatePoint,
                         improved: CandidatePoint) -> float:
    """Relative accuracy improvement in percent (the paper's 10.43%)."""
    if baseline.accuracy <= 0:
        raise ValueError("baseline accuracy must be positive")
    return 100.0 * (improved.accuracy - baseline.accuracy) / baseline.accuracy
