"""The experiment manifest: every paper figure and where it lives here.

A machine-readable version of DESIGN.md's per-experiment index, used by the
CLI (``repro figures``) and the test suite to guarantee the mapping between
the paper's evaluation and this repository's benchmarks stays complete.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "experiment"]


@dataclass(frozen=True)
class Experiment:
    """One paper figure/claim and its reproduction assets."""

    id: str
    paper_ref: str
    claim: str
    modules: tuple[str, ...]
    benchmark: str
    results_files: tuple[str, ...]


EXPERIMENTS: list[Experiment] = [
    Experiment(
        "fig01", "Figure 1",
        "Off-the-shelf latency/accuracy trade-off; only MobileNetV1 "
        "variants meet the 0.9 ms deadline; an accuracy gap remains.",
        ("repro.zoo", "repro.train", "repro.device", "repro.metrics.pareto"),
        "benchmarks/test_fig01_tradeoff.py",
        ("fig01_tradeoff.txt",)),
    Experiment(
        "fig04", "Figure 4",
        "Blockwise removal matches exhaustive per-layer removal within "
        "0.03 accuracy on InceptionV3.",
        ("repro.trim.search", "repro.netcut.explorer"),
        "benchmarks/test_fig04_blockwise.py",
        ("fig04_blockwise_vs_iterative.txt",)),
    Experiment(
        "fig05", "Figure 5",
        "Accuracy vs removed layers for all 148 TRNs: MobileNets fragile, "
        "DenseNet/Inception flat past 100 layers.",
        ("repro.trim", "repro.train.features", "repro.netcut.explorer"),
        "benchmarks/test_fig05_removal_effects.py",
        ("fig05_accuracy_vs_removal.txt",)),
    Experiment(
        "sec4b2", "Section IV-B2",
        "Latency decreases almost linearly with removed layers.",
        ("repro.device.runtime",),
        "benchmarks/test_fig05_removal_effects.py",
        ("sec4b2_latency_linearity.txt",)),
    Experiment(
        "fig06", "Figure 6",
        "TRN scatter: ResNet fills the gap before MobileNetV2(1.4); "
        "trimmed MobileNetV1(0.5) dominates off-the-shelf 0.25.",
        ("repro.metrics.pareto", "repro.netcut.explorer"),
        "benchmarks/test_fig06_trn_tradeoff.py",
        ("fig06_trn_tradeoff.txt",)),
    Experiment(
        "fig07", "Figure 7",
        "The expanded Pareto frontier: up to +10.43% relative accuracy at "
        "the deadline, ~5% average.",
        ("repro.metrics.pareto",),
        "benchmarks/test_fig07_pareto.py",
        ("fig07_pareto_frontier.txt", "fig07_deadline_gain.txt",
         "fig07_average_gain.txt")),
    Experiment(
        "fig08", "Figure 8",
        "Estimates vs ground truth on ResNet cutpoints; the RBF-SVR "
        "captures the non-linearity.",
        ("repro.estimators",),
        "benchmarks/test_fig08_resnet_estimates.py",
        ("fig08_resnet_estimates.txt",)),
    Experiment(
        "fig09", "Figure 9",
        "Estimator error per network: profiler 3.5%, SVR 4.28%, linear "
        "23.81% in the paper.",
        ("repro.estimators",),
        "benchmarks/test_fig09_estimator_error.py",
        ("fig09_estimator_error.txt", "fig09_averages.txt")),
    Experiment(
        "fig10", "Figure 10 / Algorithm 1",
        "NetCut's final selections; 95% fewer networks trained; 27x "
        "faster exploration.",
        ("repro.netcut",),
        "benchmarks/test_fig10_netcut.py",
        ("fig10_selected_networks.txt", "fig10_accounting.txt")),
    Experiment(
        "deploy", "Section III-B4",
        "Deployment optimizations: layer fusion and INT8 post-training "
        "quantization.",
        ("repro.device.fusion", "repro.device.quantize"),
        "benchmarks/test_deploy_optimizations.py",
        ("deploy_fusion.txt", "deploy_int8.txt",
         "deploy_quantization_drift.txt",
         "deploy_quantization_accuracy.txt")),
    Experiment(
        "serve", "Beyond the paper",
        "Deadline-aware serving: EDF queueing, micro-batching and "
        "TRN-ladder degradation hold the miss rate under overload.",
        ("repro.serve",),
        "benchmarks/test_serve_throughput.py",
        ("serve_throughput.txt",)),
    Experiment(
        "faults", "Beyond the paper",
        "Serving resilience: under a seeded straggler storm the "
        "timeout/retry/breaker engine holds misses under 5% where the "
        "undefended engine exceeds 20%; replays are byte-identical "
        "across PYTHONHASHSEED values.",
        ("repro.faults",),
        "benchmarks/test_faults_chaos.py",
        ("faults_chaos.txt",)),
    Experiment(
        "cluster", "Beyond the paper",
        "Multi-replica scale-out: deadline-aware power-of-two routing "
        "over 3 replicas sustains >=2x the saturated single replica's "
        "admitted throughput at <5% misses, and routes around a killed "
        "replica via the circuit breakers.",
        ("repro.cluster",),
        "benchmarks/test_cluster_scaleout.py",
        ("cluster_scaleout.txt", "cluster_replica_kill.txt")),
    Experiment(
        "workload", "Beyond the paper",
        "Multi-tenant workloads: under a seeded diurnal+flash-crowd "
        "overload, weighted-fair admission holds the interactive "
        "tenant's miss rate under 5% where plain EDF exceeds 20%, and "
        "the fluid analytical model matches the discrete simulator "
        "within 10% while sizing 100-replica fleets in milliseconds.",
        ("repro.workload",),
        "benchmarks/test_workload_slo.py",
        ("workload_slo.txt", "workload_fluid_validation.txt",
         "workload_fluid_sweep.txt")),
    Experiment(
        "related", "Section II",
        "Related-work positioning vs BranchyNet, Edgent and NetAdapt, "
        "implemented on the same substrates.",
        ("repro.extensions", "repro.estimators.layerwise"),
        "benchmarks/test_ext_related_work.py",
        ("ext_branchynet.txt", "ext_netadapt.txt", "ablation_edgent.txt")),
    Experiment(
        "ablations", "Design choices",
        "Ratio vs raw-sum formula, head correction, kernels, search "
        "strategies, split strategies.",
        ("repro.estimators",),
        "benchmarks/test_ablations.py",
        ("ablation_ratio_formula.txt", "ablation_head_correction.txt",
         "ablation_kernels.txt", "ablation_search.txt",
         "ablation_split.txt")),
]

_BY_ID = {e.id: e for e in EXPERIMENTS}


def experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by its id (e.g. ``"fig07"``)."""
    try:
        return _BY_ID[experiment_id]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"available: {sorted(_BY_ID)}") from None
