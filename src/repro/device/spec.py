"""Device specifications for the embedded-GPU latency model.

A :class:`DeviceSpec` captures the handful of parameters the analytic
latency model needs: peak arithmetic throughput, effective memory bandwidth,
per-kernel launch overhead, an occupancy ramp that penalises small kernels,
and the measurement artefacts (run-to-run noise, warm-up behaviour,
CUDA-event profiling overhead) that the paper's estimation methodology has
to cope with.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["DeviceSpec", "stable_seed"]


def stable_seed(*parts) -> int:
    """A 32-bit RNG seed derived *stably* from the given parts.

    ``hash()`` on strings is randomized per interpreter process
    (PYTHONHASHSEED), so hash-derived "reproducible" default seeds silently
    differ across runs. This helper is the one place default seeds come
    from: a CRC-32 over the stringified parts, identical in every process,
    on every platform, under every hash seed.
    """
    joined = "\x1f".join(str(p) for p in parts)
    return zlib.crc32(joined.encode("utf-8"))


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a simulated accelerator.

    Attributes
    ----------
    name:
        Human-readable device name.
    peak_gflops:
        Peak fp32 arithmetic throughput in GFLOP/s at full occupancy.
    bandwidth_gbps:
        Effective DRAM bandwidth in GB/s.
    launch_overhead_us:
        Fixed cost per kernel launch in microseconds.
    occupancy_flops:
        FLOP count at which a kernel reaches ~63% of peak throughput;
        smaller kernels underutilise the device (the source of the
        non-linearity the paper's RBF-SVR captures and linear regression
        does not).
    int8_speedup:
        Arithmetic-throughput multiplier for INT8 kernels
        (post-training quantization, paper §III-B4).
    noise_std:
        Relative run-to-run latency noise (standard deviation).
    straggler_prob / straggler_scale:
        Probability and relative magnitude of occasional slow runs
        (scheduler preemption), motivating the paper's 200-run warm-up +
        800-run averaging protocol.
    warmup_factor / warmup_decay_runs:
        The first run is ``1 + warmup_factor`` slower; the excess decays
        exponentially over ``warmup_decay_runs`` runs (clock ramp-up).
    event_overhead_us:
        Extra time recorded per layer when profiling with CUDA events —
        the reason the per-layer sum exceeds the end-to-end latency and
        the paper's profiler-based estimator uses a ratio.
    weight_cache_factor:
        Fraction of weight bytes charged as DRAM traffic per inference.
        The networks here are small enough that most weights stay resident
        in the last-level cache, so only a fraction is re-fetched.
    """

    name: str
    peak_gflops: float
    bandwidth_gbps: float
    launch_overhead_us: float
    occupancy_flops: float
    int8_speedup: float = 2.0
    noise_std: float = 0.01
    straggler_prob: float = 0.01
    straggler_scale: float = 0.25
    warmup_factor: float = 0.8
    warmup_decay_runs: int = 40
    event_overhead_us: float = 1.5
    weight_cache_factor: float = 0.15

    def launch_overhead_ms(self) -> float:
        """Kernel launch overhead in milliseconds."""
        return self.launch_overhead_us * 1e-3

    def event_overhead_ms(self) -> float:
        """Per-event profiling overhead in milliseconds."""
        return self.event_overhead_us * 1e-3
