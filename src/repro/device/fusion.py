"""Layer fusion: grouping graph nodes into the kernels a runtime would launch.

Embedded inference runtimes (TensorRT on the paper's Jetson Xavier) fuse
element-wise operations — batch norm, activations, residual adds — into the
preceding convolution so that one kernel launch covers the whole group and
the intermediate tensor never travels to DRAM. The latency model operates on
these fused kernels; the paper notes its coarse-grained estimator is
compatible with such fusion, unlike per-layer-type regression (Edgent).

The fusion rules themselves live in :mod:`repro.nn.compile`, which is the
single source of truth shared with the *compiled compute path*: every
pattern this latency model prices as one fused kernel is executed as one
fused NumPy kernel by :meth:`repro.nn.Network.compile`. This module
re-exports the grouping API so existing device-model callers keep working.
"""

from __future__ import annotations

from repro.nn.compile import (  # noqa: F401
    ANCHOR_TYPES,
    FUSABLE_TYPES,
    KernelGroup,
    fuse_kernels,
)

__all__ = ["KernelGroup", "fuse_kernels", "ANCHOR_TYPES", "FUSABLE_TYPES"]
