"""Layer fusion: grouping graph nodes into the kernels a runtime would launch.

Embedded inference runtimes (TensorRT on the paper's Jetson Xavier) fuse
element-wise operations — batch norm, activations, residual adds — into the
preceding convolution so that one kernel launch covers the whole group and
the intermediate tensor never travels to DRAM. The latency model operates on
these fused kernels; the paper notes its coarse-grained estimator is
compatible with such fusion, unlike per-layer-type regression (Edgent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.graph import Network
from repro.nn.layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    MaxPool2D,
    ReLU,
    ReLU6,
    Softmax,
)

__all__ = ["KernelGroup", "fuse_kernels"]

#: Layer types that start a new kernel.
_ANCHORS = (Conv2D, DepthwiseConv2D, Dense, MaxPool2D, AvgPool2D,
            GlobalAvgPool, Concat, Add, Softmax, Flatten)

#: Element-wise layer types that fuse into the preceding anchor kernel.
_FUSABLE = (BatchNorm, ReLU, ReLU6, Dropout)


@dataclass
class KernelGroup:
    """A set of graph nodes executed as one device kernel."""

    node_names: list[str] = field(default_factory=list)

    @property
    def anchor(self) -> str:
        """The node that determines the kernel's compute cost."""
        return self.node_names[0]

    def __contains__(self, name: str) -> bool:
        return name in self.node_names


def fuse_kernels(net: Network, enabled: bool = True) -> list[KernelGroup]:
    """Partition a network's nodes into kernel groups.

    With ``enabled=False`` every non-input node is its own kernel (the
    unfused baseline used by the deployment-optimizations ablation).

    Fusion is greedy and chain-safe: an element-wise node joins the group of
    its single producer as long as that producer's output has no other
    consumer (otherwise the intermediate tensor must be materialised anyway).
    """
    consumers: dict[str, int] = {name: 0 for name in net.nodes}
    for node in net.nodes.values():
        for dep in node.inputs:
            consumers[dep] += 1

    groups: list[KernelGroup] = []
    group_of: dict[str, KernelGroup] = {}
    for node in net.nodes.values():
        if isinstance(node.layer, Input):
            continue
        if (enabled and isinstance(node.layer, _FUSABLE)
                and len(node.inputs) == 1
                and node.inputs[0] in group_of
                and consumers[node.inputs[0]] == 1):
            group = group_of[node.inputs[0]]
            group.node_names.append(node.name)
            group_of[node.name] = group
            continue
        group = KernelGroup([node.name])
        groups.append(group)
        group_of[node.name] = group
    return groups
