"""Analytic per-kernel latency model.

Each fused kernel's latency follows a roofline with launch overhead and an
occupancy ramp:

    t = launch + max(flops / (peak · occ(flops)),  bytes / bandwidth)

where ``occ(flops) = 1 − exp(−flops / occupancy_flops)`` penalises small
kernels. Early CNN layers (large spatial extent, few channels) tend to be
memory-bound and late layers compute-bound, so latency as a function of the
cutpoint is mildly non-linear — the behaviour the paper's RBF-SVR estimator
captures and its linear-regression baseline does not.

The model is *deterministic*; measurement noise and warm-up effects are
layered on top by :mod:`repro.device.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network
from repro.nn.layers import Input

from .fusion import KernelGroup, fuse_kernels
from .spec import DeviceSpec

__all__ = ["KernelCost", "LatencyBreakdown", "kernel_latency_ms",
           "network_latency"]


@dataclass(frozen=True)
class KernelCost:
    """Cost summary of one fused kernel."""

    anchor: str
    node_names: tuple[str, ...]
    flops: int
    bytes_moved: int
    latency_ms: float


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-kernel latencies of a network on a device."""

    network: str
    device: str
    kernels: tuple[KernelCost, ...]

    @property
    def total_ms(self) -> float:
        """End-to-end (noise-free) inference latency."""
        return sum(k.latency_ms for k in self.kernels)

    def kernels_for_nodes(self, names: set[str]) -> list[KernelCost]:
        """Kernels whose anchor node belongs to ``names``."""
        return [k for k in self.kernels if k.anchor in names]


def _dtype_bytes(precision: str) -> float:
    if precision == "fp32":
        return 4.0
    if precision == "fp16":
        return 2.0
    if precision == "int8":
        return 1.0
    raise ValueError(f"unknown precision {precision!r}")


def kernel_latency_ms(flops: float, bytes_moved: float, spec: DeviceSpec,
                      precision: str = "fp32") -> float:
    """Latency of a single kernel under the roofline-with-occupancy model."""
    _dtype_bytes(precision)  # validate the precision name
    peak = spec.peak_gflops * 1e9
    if precision == "int8":
        peak *= spec.int8_speedup
    occupancy = 1.0 - np.exp(-max(flops, 1.0) / spec.occupancy_flops)
    t_compute = flops / (peak * max(occupancy, 1e-6))
    t_memory = bytes_moved / (spec.bandwidth_gbps * 1e9)
    return spec.launch_overhead_ms() + 1e3 * max(t_compute, t_memory)


def _group_cost(net: Network, group: KernelGroup, precision: str,
                weight_cache_factor: float = 1.0,
                batch_size: int = 1) -> tuple[int, int]:
    """(flops, bytes) of a fused kernel group.

    The group reads its external inputs and weights and writes its final
    output; intermediate tensors within the group stay on-chip (that is the
    point of fusion). FLOPs of all member nodes are summed. Weight traffic
    is discounted by ``weight_cache_factor`` (cache residency).

    ``batch_size`` scales arithmetic and activation traffic; weights are
    read once per kernel regardless of batch, which (together with the
    amortised launch overhead and the occupancy ramp) is why micro-batching
    raises throughput on launch-bound embedded GPUs.
    """
    db = _dtype_bytes(precision)
    member = set(group.node_names)
    flops = 0
    weight_elems = 0
    in_elems = 0
    for name in group.node_names:
        node = net.nodes[name]
        flops += node.layer.flops(net.in_shapes(name))
        weight_elems += node.layer.param_count()
        for dep in node.inputs:
            if dep not in member:
                dep_shape = (net.input_shape
                             if isinstance(net.nodes[dep].layer, Input)
                             else net.shape_of(dep))
                in_elems += int(np.prod(dep_shape))
    out_elems = int(np.prod(net.shape_of(group.node_names[-1])))
    bytes_moved = int(db * batch_size * (in_elems + out_elems)
                      + db * weight_cache_factor * weight_elems)
    return batch_size * flops, bytes_moved


def network_latency(net: Network, spec: DeviceSpec, fused: bool = True,
                    precision: str = "fp32",
                    batch_size: int = 1) -> LatencyBreakdown:
    """Noise-free latency breakdown of a built network on a device.

    ``batch_size`` models one batched inference: each kernel processes the
    whole batch per launch, so latency grows sub-linearly in the batch
    (launch overhead and weight traffic are paid once, occupancy improves).
    """
    if not net.built:
        raise RuntimeError(f"network {net.name!r} must be built first")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    kernels = []
    for group in fuse_kernels(net, enabled=fused):
        flops, bytes_moved = _group_cost(net, group, precision,
                                         spec.weight_cache_factor,
                                         batch_size)
        ms = kernel_latency_ms(flops, bytes_moved, spec, precision)
        kernels.append(KernelCost(group.anchor, tuple(group.node_names),
                                  flops, bytes_moved, ms))
    return LatencyBreakdown(net.name, spec.name, tuple(kernels))
