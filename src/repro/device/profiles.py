"""Additional embedded-device profiles.

The paper evaluates on one platform (Jetson Xavier). A key promise of the
NetCut methodology is *portability*: rerunning the (cheap) latency
estimation on a different device re-selects the right TRN for it without
retraining everything. These profiles span the embedded spectrum around the
calibrated Xavier model so that portability can be demonstrated
(``benchmarks/test_ext_device_portability.py``):

- ``nano()`` — a much weaker device (lower bandwidth and clocks, higher
  launch overhead): deadlines force deeper cuts.
- ``agx_boosted()`` — a stronger device (MAXN-style power mode): the same
  deadline admits bigger networks.

All three share measurement character (noise, warm-up, event overhead)
with :func:`repro.device.xavier.xavier`.
"""

from __future__ import annotations

from .spec import DeviceSpec
from .xavier import xavier

__all__ = ["nano", "agx_boosted", "DEVICE_PROFILES"]


def nano() -> DeviceSpec:
    """A Jetson-Nano-class device: ~3× weaker than the Xavier profile."""
    base = xavier()
    return DeviceSpec(
        name="jetson-nano-sim",
        peak_gflops=base.peak_gflops / 4.0,
        bandwidth_gbps=base.bandwidth_gbps / 3.0,
        launch_overhead_us=base.launch_overhead_us * 2.0,
        occupancy_flops=base.occupancy_flops,
        int8_speedup=base.int8_speedup,
        noise_std=base.noise_std,
        straggler_prob=base.straggler_prob,
        straggler_scale=base.straggler_scale,
        warmup_factor=base.warmup_factor,
        warmup_decay_runs=base.warmup_decay_runs,
        event_overhead_us=base.event_overhead_us,
        weight_cache_factor=base.weight_cache_factor,
    )


def agx_boosted() -> DeviceSpec:
    """The Xavier profile in a boosted power mode: ~2× faster."""
    base = xavier()
    return DeviceSpec(
        name="jetson-agx-boosted-sim",
        peak_gflops=base.peak_gflops * 2.0,
        bandwidth_gbps=base.bandwidth_gbps * 2.0,
        launch_overhead_us=base.launch_overhead_us / 2.0,
        occupancy_flops=base.occupancy_flops,
        int8_speedup=base.int8_speedup,
        noise_std=base.noise_std,
        straggler_prob=base.straggler_prob,
        straggler_scale=base.straggler_scale,
        warmup_factor=base.warmup_factor,
        warmup_decay_runs=base.warmup_decay_runs,
        event_overhead_us=base.event_overhead_us,
        weight_cache_factor=base.weight_cache_factor,
    )


#: All device profiles by name.
DEVICE_PROFILES = {
    "xavier": xavier,
    "nano": nano,
    "agx_boosted": agx_boosted,
}
