"""Training-cost model for the NVIDIA Tesla K20m.

The paper's exploration-time numbers (183 hours to retrain all 148
blockwise TRNs vs 6.7 hours for NetCut's candidates — the 27× speedup) are
wall-clock training times on a Tesla K20m. This module converts a network's
per-example FLOPs into simulated K20m GPU-hours so the repository can report
the same accounting.

Two conversion factors matter:

- ``scale_factor`` maps this repository's width- and resolution-scaled
  networks back to original scale: widths are divided by 4 (FLOPs scale
  quadratically in width → 16×) and resolution by 224/32 = 7 (→ 49×),
  giving 16 × 49 = 784. Sanity check: the scaled ResNet-50's ~12 MFLOPs
  maps to ~10 GFLOPs, matching the real network's ~8 GFLOPs at 224².
- ``effective_gflops`` is the K20m's sustained training throughput
  (3.52 TFLOP/s fp32 peak at ~15% end-to-end training efficiency).

A training run costs ``3 × forward_flops`` per example (forward + backward
≈ 2× forward) for ``images × epochs`` examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.graph import Network

__all__ = ["TrainingCostModel", "k20m"]


@dataclass(frozen=True)
class TrainingCostModel:
    """Converts network FLOPs into simulated training GPU-hours."""

    name: str
    effective_gflops: float
    scale_factor: float
    images: int
    epochs: int
    backward_factor: float = 3.0

    def train_hours(self, net: Network) -> float:
        """Simulated hours to retrain ``net`` for the standard recipe."""
        return self.train_hours_for_flops(net.total_flops())

    def train_hours_for_flops(self, forward_flops: float) -> float:
        """Simulated hours for a network with the given per-example FLOPs."""
        full_scale = forward_flops * self.scale_factor
        total = self.backward_factor * full_scale * self.images * self.epochs
        return total / (self.effective_gflops * 1e9) / 3600.0


def k20m() -> TrainingCostModel:
    """The calibrated Tesla K20m training-cost model.

    ``images=4160`` and ``epochs=55`` reflect the paper's recipe: a HANDS-
    scale training set fine-tuned for 50 epochs after a short frozen phase.
    """
    return TrainingCostModel(
        name="tesla-k20m-sim",
        effective_gflops=530.0,
        scale_factor=784.0,
        images=4160,
        epochs=55,
    )
