"""Post-training INT8 quantization (paper §III-B4).

Follows the Krishnamoorthi (2018) recipe the paper cites: weights are
quantized offline *per output feature* (symmetric, int8), activations are
quantized *per tensor* with percentile scales collected from a calibration
set (the paper uses a random 10% of the training set and picks scales that
"minimize the information loss"). Quantization is simulated
("fake quant": quantize → dequantize in float), which is the standard way to
evaluate accuracy impact; the latency benefit is modelled by
:mod:`repro.device.latency` via the ``precision="int8"`` kernel mode.
"""

from __future__ import annotations


import numpy as np

from repro.nn.graph import Network
from repro.nn.layers import Conv2D, Dense, DepthwiseConv2D, Input

__all__ = ["quantize_tensor", "calibration_split", "QuantizedNetwork"]

_QMAX = 127  # symmetric int8


def quantize_tensor(x: np.ndarray, scale: np.ndarray | float) -> np.ndarray:
    """Fake-quantize: round to int8 grid defined by ``scale``, dequantize."""
    q = np.clip(np.round(x / scale), -_QMAX, _QMAX)
    return (q * scale).astype(np.float32)


def _weight_scales(w: np.ndarray) -> np.ndarray:
    """Per-output-feature symmetric scales (last axis = output features)."""
    axes = tuple(range(w.ndim - 1))
    max_abs = np.maximum(np.abs(w).max(axis=axes), 1e-8)
    return max_abs / _QMAX


def calibration_split(n_train: int, fraction: float = 0.1,
                      rng: np.random.Generator | int = 0) -> np.ndarray:
    """Indices of the calibration subset (paper: random 10% of train)."""
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    k = max(1, int(round(n_train * fraction)))
    return rng.choice(n_train, size=k, replace=False)


class QuantizedNetwork:
    """A network executed with simulated INT8 weights and activations.

    Construction quantizes the weights of every convolution and dense layer
    per-feature and runs the calibration images through the float network to
    choose per-tensor activation scales that cover the observed dynamic
    range (max-abs calibration, which minimises clipping loss for the
    roughly symmetric activations these networks produce).
    """

    def __init__(self, net: Network, calibration_x: np.ndarray,
                 percentile: float = 99.9):
        if not net.built:
            raise RuntimeError("network must be built before quantization")
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        self.float_net = net
        self.net = net.copy()
        self.name = f"{net.name}[int8]"
        self.percentile = percentile
        self._weight_scales: dict[str, np.ndarray] = {}
        self._act_scales: dict[str, float] = {}
        self._quantize_weights()
        self._calibrate(calibration_x)

    def _quantize_weights(self) -> None:
        for node in self.net.nodes.values():
            if isinstance(node.layer, (Conv2D, Dense, DepthwiseConv2D)):
                w = node.layer.params["w"]
                scales = _weight_scales(w.value)
                self._weight_scales[node.name] = scales
                w.value = quantize_tensor(w.value, scales)

    def _calibrate(self, calibration_x: np.ndarray) -> None:
        quant_nodes = [n.name for n in self.net.nodes.values()
                       if isinstance(n.layer, (Conv2D, Dense, DepthwiseConv2D))]
        _, acts = self.float_net.forward(calibration_x, capture=quant_nodes)
        for name, act in acts.items():
            # percentile calibration: the paper selects "scaling factors
            # which minimize the information loss", i.e. clips the extreme
            # tail rather than stretching the grid to cover it
            bound = float(np.percentile(np.abs(act), self.percentile))
            self._act_scales[name] = max(bound, 1e-8) / _QMAX

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Inference with fake-quantized activations after each conv/dense.

        ``x`` is a batch ``(N,) + input_shape``; use :meth:`forward_one`
        for a single un-batched sample (mirroring
        :meth:`repro.nn.Network.forward_one`'s explicit API).
        """
        acts: dict[str, np.ndarray] = {}
        for node in self.net.nodes.values():
            if isinstance(node.layer, Input):
                acts[node.name] = x
                continue
            ins = [acts[d] for d in node.inputs]
            out = node.layer.forward(ins, training=False)
            scale = self._act_scales.get(node.name)
            if scale is not None:
                out = quantize_tensor(out, scale)
            acts[node.name] = out
        return acts[self.net.output_name]

    def forward_one(self, x: np.ndarray) -> np.ndarray:
        """Quantized inference on exactly one un-batched sample."""
        x = np.asarray(x)
        if x.shape != self.net.input_shape:
            raise ValueError(
                f"forward_one expects one sample of shape "
                f"{self.net.input_shape}, got {x.shape}")
        return self.forward(x[None])[0]
