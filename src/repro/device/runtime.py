"""Simulated latency *measurement*: the paper's warm-up + averaging protocol.

The paper reports inference latency on the Jetson Xavier as the average of
800 runs after 200 warm-up runs. This module layers run-to-run noise, rare
stragglers and a warm-up ramp on top of the deterministic model in
:mod:`repro.device.latency`, and implements exactly that protocol, so the
"ground truth" the estimators are scored against has realistic measurement
character.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network

from .latency import LatencyBreakdown, network_latency
from .spec import DeviceSpec, stable_seed

__all__ = ["MeasurementResult", "sample_runs", "measure_latency",
           "ServiceTimeSampler"]


@dataclass(frozen=True)
class MeasurementResult:
    """Outcome of a latency measurement session."""

    network: str
    device: str
    mean_ms: float
    std_ms: float
    runs: int
    warmup: int

    def __str__(self) -> str:
        return (f"{self.network} on {self.device}: "
                f"{self.mean_ms:.4f} ± {self.std_ms:.4f} ms "
                f"({self.runs} runs, {self.warmup} warm-up)")


def sample_runs(base_ms: float, n: int, spec: DeviceSpec,
                rng: np.random.Generator,
                start_run: int = 0) -> np.ndarray:
    """Sample ``n`` consecutive run latencies starting at ``start_run``.

    Run ``k`` carries a warm-up multiplier
    ``1 + warmup_factor * exp(-k / warmup_decay_runs)``, multiplicative
    Gaussian noise, and an occasional straggler spike.
    """
    k = np.arange(start_run, start_run + n)
    warm = 1.0 + spec.warmup_factor * np.exp(-k / spec.warmup_decay_runs)
    noise = rng.normal(1.0, spec.noise_std, size=n)
    straggler = np.where(rng.random(n) < spec.straggler_prob,
                         1.0 + spec.straggler_scale * rng.random(n), 1.0)
    return base_ms * warm * np.clip(noise, 0.5, None) * straggler


def measure_latency(net: Network, spec: DeviceSpec,
                    rng: np.random.Generator | int | None = None,
                    warmup: int = 200, runs: int = 800,
                    fused: bool = True, precision: str = "fp32",
                    breakdown: LatencyBreakdown | None = None
                    ) -> MeasurementResult:
    """Measure a network with the paper's protocol (200 warm-up + 800 runs).

    A precomputed ``breakdown`` can be passed to avoid re-deriving the
    deterministic model when measuring many variants of the same network.
    The RNG defaults to a seed derived from the network name so repeated
    measurements of the same network are reproducible but different
    networks see independent noise.
    """
    if rng is None:
        rng = stable_seed(net.name, spec.name)
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    if breakdown is None:
        breakdown = network_latency(net, spec, fused=fused, precision=precision)
    base = breakdown.total_ms
    _ = sample_runs(base, warmup, spec, rng, start_run=0)
    samples = sample_runs(base, runs, spec, rng, start_run=warmup)
    return MeasurementResult(net.name, spec.name,
                             float(samples.mean()), float(samples.std()),
                             runs, warmup)


class ServiceTimeSampler:
    """Per-request measurement hook for the serving stack.

    Where :func:`measure_latency` aggregates a whole benchmarking session
    into one mean, a server needs the latency of *each individual* batched
    inference, with the device's warm-up ramp and straggler behaviour
    carried across consecutive requests. This class keeps a persistent run
    counter (so the first requests after a cold start really are slower),
    caches the deterministic per-batch-size baseline, and hands out one
    noisy sample per call.
    """

    def __init__(self, net: Network, spec: DeviceSpec,
                 rng: np.random.Generator | int = 0,
                 fused: bool = True, precision: str = "fp32"):
        self.net = net
        self.spec = spec
        self.fused = fused
        self.precision = precision
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self._rng = rng
        self._base_ms: dict[int, float] = {}
        self._runs = 0

    @property
    def runs(self) -> int:
        """How many inferences this sampler has timed so far."""
        return self._runs

    def base_ms(self, batch_size: int = 1) -> float:
        """Noise-free latency of one batched inference (cached)."""
        if batch_size not in self._base_ms:
            self._base_ms[batch_size] = network_latency(
                self.net, self.spec, fused=self.fused,
                precision=self.precision, batch_size=batch_size).total_ms
        return self._base_ms[batch_size]

    def sample_ms(self, batch_size: int = 1) -> float:
        """Draw the measured latency of the next batched inference."""
        sample = sample_runs(self.base_ms(batch_size), 1, self.spec,
                             self._rng, start_run=self._runs)
        self._runs += 1
        return float(sample[0])

    def warm_up(self, runs: int = 50) -> None:
        """Advance past the cold-start ramp without recording samples."""
        self._runs += int(runs)
