"""The simulated NVIDIA Jetson Xavier inference device.

The constants below were calibrated (see DESIGN.md) so that the seven
width-scaled zoo networks land on the latency ordering the paper reports on
the real Xavier:

- MobileNetV1(0.5) runs in ≈0.4 ms, comfortably inside the robotic hand's
  0.9 ms deadline (paper: 0.36 ms), with MobileNetV1(0.25) slightly faster;
- every other off-the-shelf network misses the deadline (MobileNetV2(1.0)
  just barely, ResNet-50 by ~2x, DenseNet-121 and InceptionV3 by ~3-4x),
  creating the Fig. 1 accuracy gap that layer removal fills.

In this sub-millisecond regime the real device is dominated by kernel-launch
overhead and DRAM traffic rather than arithmetic, which the spec reflects.
"""

from __future__ import annotations

from .spec import DeviceSpec

__all__ = ["xavier"]


def xavier() -> DeviceSpec:
    """Return the calibrated Jetson Xavier-like device specification."""
    return DeviceSpec(
        name="jetson-xavier-sim",
        peak_gflops=20.0,
        bandwidth_gbps=1.6,
        launch_overhead_us=4.0,
        occupancy_flops=1e4,
        int8_speedup=2.0,
        noise_std=0.01,
        straggler_prob=0.01,
        straggler_scale=0.25,
        warmup_factor=0.8,
        warmup_decay_runs=40,
        event_overhead_us=0.5,
        weight_cache_factor=0.1,
    )
