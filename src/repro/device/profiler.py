"""CUDA-event-style per-layer profiler.

The paper's profiler-based estimator builds one per-layer latency table per
original network by wrapping every layer in CUDA events. Recording an event
is not free: the paper observes that "in all cases, the summation of layers
is slightly more than the actual measured inference delay", which is why its
estimator works with the *ratio* of removed-layer time to total layer time
rather than raw sums. This module reproduces that artefact: every recorded
kernel latency includes the event overhead, so the table total exceeds the
end-to-end measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network

from .latency import network_latency
from .runtime import measure_latency
from .spec import DeviceSpec, stable_seed

__all__ = ["LayerRecord", "LatencyTable", "profile_network"]


@dataclass(frozen=True)
class LayerRecord:
    """One row of a profiling table: a fused kernel and its recorded time."""

    anchor: str
    node_names: tuple[str, ...]
    recorded_ms: float


@dataclass(frozen=True)
class LatencyTable:
    """Per-layer profile of one network plus its end-to-end measurement."""

    network: str
    device: str
    records: tuple[LayerRecord, ...]
    end_to_end_ms: float

    @property
    def recorded_total_ms(self) -> float:
        """Sum of per-layer recorded latencies (exceeds ``end_to_end_ms``)."""
        return sum(r.recorded_ms for r in self.records)

    def recorded_for_nodes(self, names: set[str]) -> float:
        """Total recorded time of kernels anchored at the given nodes."""
        return sum(r.recorded_ms for r in self.records if r.anchor in names)

    def describe(self, top: int | None = None) -> str:
        """Human-readable per-layer table (what ``repro profile`` prints).

        One row per recorded kernel in execution order — anchor node,
        fused member count, recorded latency and its share of the recorded
        total — followed by the total-vs-end-to-end line that motivates
        the paper's ratio formula. ``top`` keeps only the slowest kernels.
        """
        total = self.recorded_total_ms
        rows = list(self.records)
        if top is not None:
            rows = sorted(rows, key=lambda r: -r.recorded_ms)[:top]
        lines = [f"{self.network} on {self.device}",
                 f"{'kernel (anchor)':28s} {'fused':>5s} "
                 f"{'recorded_ms':>12s} {'share':>7s}"]
        for r in rows:
            lines.append(f"{r.anchor:28s} {len(r.node_names):>5d} "
                         f"{r.recorded_ms:>12.5f} "
                         f"{100 * r.recorded_ms / total:>6.2f}%")
        lines.append(f"recorded total {total:.4f} ms  >  end-to-end "
                     f"{self.end_to_end_ms:.4f} ms "
                     f"(event overhead x{len(self.records)} kernels; "
                     "the ratio formula cancels it)")
        return "\n".join(lines)


def profile_network(net: Network, spec: DeviceSpec,
                    rng: np.random.Generator | int | None = None,
                    fused: bool = True, precision: str = "fp32",
                    profile_runs: int = 100) -> LatencyTable:
    """Profile a network: per-kernel table + end-to-end measurement.

    Each kernel's recorded latency is its true model latency plus the
    CUDA-event overhead, averaged over ``profile_runs`` noisy runs.
    """
    if rng is None:
        rng = stable_seed("profile", net.name, spec.name)
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    breakdown = network_latency(net, spec, fused=fused, precision=precision)
    records = []
    overhead = spec.event_overhead_ms()
    for kernel in breakdown.kernels:
        noise = rng.normal(1.0, spec.noise_std, size=profile_runs).mean()
        recorded = (kernel.latency_ms + overhead) * max(noise, 0.5)
        records.append(LayerRecord(kernel.anchor, kernel.node_names,
                                   float(recorded)))
    measured = measure_latency(net, spec, rng=rng, fused=fused,
                               precision=precision, breakdown=breakdown)
    return LatencyTable(net.name, spec.name, tuple(records),
                        measured.mean_ms)
