"""Embedded-platform simulation: latency model, profiler, fusion, quantization.

This subpackage stands in for the paper's NVIDIA Jetson Xavier (inference
measurements) and Tesla K20m (training-time accounting). See DESIGN.md for
the calibration rationale.
"""

from .fusion import KernelGroup, fuse_kernels
from .k20m import TrainingCostModel, k20m
from .latency import KernelCost, LatencyBreakdown, kernel_latency_ms, network_latency
from .profiles import DEVICE_PROFILES, agx_boosted, nano
from .profiler import LatencyTable, LayerRecord, profile_network
from .quantize import QuantizedNetwork, calibration_split, quantize_tensor
from .runtime import (
    MeasurementResult,
    ServiceTimeSampler,
    measure_latency,
    sample_runs,
)
from .spec import DeviceSpec, stable_seed
from .xavier import xavier

__all__ = [
    "DeviceSpec",
    "stable_seed",
    "xavier",
    "nano",
    "agx_boosted",
    "DEVICE_PROFILES",
    "k20m",
    "TrainingCostModel",
    "KernelGroup",
    "fuse_kernels",
    "KernelCost",
    "LatencyBreakdown",
    "kernel_latency_ms",
    "network_latency",
    "LatencyTable",
    "LayerRecord",
    "profile_network",
    "MeasurementResult",
    "ServiceTimeSampler",
    "measure_latency",
    "sample_runs",
    "QuantizedNetwork",
    "calibration_split",
    "quantize_tensor",
]
