"""Actuation dynamics of the prosthetic hand.

The paper's control loop ends in an actuation unit that must form the
decided grasp *before contact with the object*; the time it needs is what
(together with fusion) tightens the visual classifier's deadline. This
module models the fingers as first-order servo joints so reach episodes can
be simulated all the way to the grasp posture: given a grasp-probability
decision at some time before contact, did the hand close in time, and how
far from the target posture was it at contact?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grasps import GRASP_TYPES, joint_targets

__all__ = ["ActuationModel", "ActuationOutcome"]


@dataclass(frozen=True)
class ActuationOutcome:
    """Result of driving the hand toward a grasp posture."""

    final_joints: np.ndarray
    target_joints: np.ndarray
    settle_time_ms: float
    completed: bool

    @property
    def posture_error(self) -> float:
        """Mean absolute joint error at contact, in closure units [0, 1]."""
        return float(np.mean(np.abs(self.final_joints - self.target_joints)))


class ActuationModel:
    """First-order joint servos with rate limits.

    Each joint approaches its target exponentially with time constant
    ``tau_ms``, subject to a maximum closure rate — the standard coarse
    model for tendon-driven prosthetic fingers.
    """

    def __init__(self, tau_ms: float = 90.0,
                 max_rate_per_ms: float = 0.006,
                 settle_tolerance: float = 0.05,
                 dt_ms: float = 1.0):
        if tau_ms <= 0 or max_rate_per_ms <= 0 or dt_ms <= 0:
            raise ValueError("time constants and rates must be positive")
        self.tau_ms = tau_ms
        self.max_rate_per_ms = max_rate_per_ms
        self.settle_tolerance = settle_tolerance
        self.dt_ms = dt_ms

    def drive(self, decision: np.ndarray, available_ms: float,
              start_joints: np.ndarray | None = None) -> ActuationOutcome:
        """Drive the hand toward the decision's expected posture.

        Parameters
        ----------
        decision:
            Grasp-probability distribution; the target posture is the
            probability-weighted mixture of per-grasp joint targets.
        available_ms:
            Time between the decision and object contact.
        start_joints:
            Initial joint closures (defaults to fully open).
        """
        decision = np.asarray(decision, dtype=np.float64)
        if decision.shape != (len(GRASP_TYPES),):
            raise ValueError(
                f"decision must have {len(GRASP_TYPES)} probabilities")
        if available_ms < 0:
            raise ValueError("available time must be non-negative")
        target = joint_targets(decision)
        joints = (np.zeros_like(target) if start_joints is None
                  else np.asarray(start_joints, dtype=np.float64).copy())

        settle_time = float("inf")
        steps = int(available_ms / self.dt_ms)
        alpha = 1.0 - np.exp(-self.dt_ms / self.tau_ms)
        max_step = self.max_rate_per_ms * self.dt_ms
        for step in range(steps):
            delta = np.clip((target - joints) * alpha, -max_step, max_step)
            joints = np.clip(joints + delta, 0.0, 1.0)
            if (settle_time == float("inf")
                    and np.max(np.abs(joints - target))
                    < self.settle_tolerance):
                settle_time = (step + 1) * self.dt_ms
        completed = settle_time <= available_ms
        return ActuationOutcome(joints, target,
                                settle_time if completed else float("inf"),
                                completed)

    def required_time_ms(self, decision: np.ndarray,
                         start_joints: np.ndarray | None = None,
                         horizon_ms: float = 2000.0) -> float:
        """Time the hand needs to settle on the decision's posture."""
        outcome = self.drive(decision, horizon_ms, start_joints)
        if not outcome.completed:
            return float("inf")
        return outcome.settle_time_ms
