"""Control-loop timing of the robotic prosthetic hand (paper §III).

The paper states that "given all the system constraints and design
parameters, the visual classifier needs to predict within 0.9 ms of
receiving a frame and preprocessing it prior to writing back to the main
memory". This module makes those constraints explicit: each camera frame
period must accommodate preprocessing, EMG-window processing, fusion, the
actuation update and the result write-back on the shared memory bus; what
remains is the visual classifier's inference budget. With the default
parameters that budget comes out to the paper's 0.9 ms.

It also simulates whole reach episodes — camera frames fused over the
course of reaching for an object, a final grasp decision before contact —
so the examples can demonstrate the end-to-end system with a real (trimmed)
visual classifier in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.angular import angular_similarity

from .fusion import fuse_product, fuse_sequence
from .grasps import GRASP_TYPES, joint_targets

__all__ = ["ControlLoopSpec", "DEFAULT_DEADLINE_MS", "ReachOutcome",
           "simulate_reach"]


@dataclass(frozen=True)
class ControlLoopSpec:
    """Timing parameters of the hand's per-frame processing pipeline.

    All times are in milliseconds. The camera frame period is shared by
    every stage that must complete before the next frame arrives.
    """

    camera_fps: float = 120.0
    preprocess_ms: float = 3.13        # resize/normalise + host→device copy
    writeback_ms: float = 1.90         # device→host copy of the prediction
    emg_processing_ms: float = 1.50    # EMG window features + classifier
    fusion_ms: float = 0.40            # probability fusion + decision logic
    safety_margin_ms: float = 0.50     # jitter headroom
    reach_duration_ms: float = 800.0   # motion onset → object contact
    actuation_ms: float = 350.0        # time the hand needs to close
    fusion_frames: int = 5             # consecutive predictions fused

    @property
    def frame_period_ms(self) -> float:
        """Camera frame period."""
        return 1000.0 / self.camera_fps

    def visual_deadline_ms(self) -> float:
        """Inference budget left for the visual classifier each frame."""
        budget = (self.frame_period_ms - self.preprocess_ms
                  - self.writeback_ms - self.emg_processing_ms
                  - self.fusion_ms - self.safety_margin_ms)
        if budget <= 0:
            raise ValueError("control loop is infeasible: no inference budget")
        return budget

    def decision_budget_ms(self) -> float:
        """Time available for sensing before actuation must begin."""
        return self.reach_duration_ms - self.actuation_ms

    def frames_available(self) -> int:
        """Camera frames that fit into the decision budget."""
        return int(self.decision_budget_ms() // self.frame_period_ms)


#: The paper's visual-classifier deadline, implied by the default loop spec.
DEFAULT_DEADLINE_MS = 0.9


@dataclass
class ReachOutcome:
    """Result of one simulated reach episode."""

    fused_distribution: np.ndarray
    true_distribution: np.ndarray
    per_frame_latency_ms: float
    deadline_met: bool
    frames_used: int
    joint_command: np.ndarray = field(default=None)

    @property
    def decision_quality(self) -> float:
        """Angular similarity of the fused decision to the true label."""
        return float(angular_similarity(self.fused_distribution,
                                        self.true_distribution))

    @property
    def top_grasp(self) -> str:
        """Name of the most probable fused grasp."""
        return GRASP_TYPES[int(np.argmax(self.fused_distribution))].name


def simulate_reach(visual_predictions: np.ndarray,
                   emg_prediction: np.ndarray,
                   true_distribution: np.ndarray,
                   classifier_latency_ms: float,
                   spec: ControlLoopSpec = ControlLoopSpec()) -> ReachOutcome:
    """Simulate one reach: fuse per-frame visual predictions with EMG.

    Parameters
    ----------
    visual_predictions:
        Per-frame grasp distributions from the visual classifier,
        shape (frames, 5). Only the frames that fit in the decision budget
        are used.
    emg_prediction:
        The EMG classifier's grasp distribution for this reach.
    true_distribution:
        Ground-truth probabilistic label of the target object.
    classifier_latency_ms:
        The visual classifier's measured inference latency; the episode's
        ``deadline_met`` flag compares it against the loop's budget.
    """
    frames = min(spec.frames_available(), spec.fusion_frames,
                 visual_predictions.shape[0])
    if frames < 1:
        raise ValueError("reach too short for even one camera frame")
    visual = fuse_sequence(visual_predictions[:frames])
    fused = fuse_product(visual, emg_prediction)
    outcome = ReachOutcome(
        fused_distribution=fused,
        true_distribution=np.asarray(true_distribution, dtype=np.float64),
        per_frame_latency_ms=float(classifier_latency_ms),
        deadline_met=classifier_latency_ms <= spec.visual_deadline_ms(),
        frames_used=frames,
    )
    outcome.joint_command = joint_targets(fused)
    return outcome
