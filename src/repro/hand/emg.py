"""Synthetic EMG signals and the EMG intent classifier.

The robotic hand (paper §III-A) fuses a camera-based classifier with an EMG
classifier driven by a Myo armband (8 surface-EMG channels on the forearm).
Neither the armband nor recorded EMG is available, so this module generates
synthetic 8-channel EMG with the standard structure of such data — per-grasp
muscle-activation envelopes modulating band-limited noise — and classifies
it with the classic time-domain feature set (mean absolute value, zero
crossings, waveform length, slope-sign changes) feeding a small dense
network. The paper's observation that EMG alone "lacks robustness and
yields poor results" is reproduced by construction: activation patterns of
different grasps overlap substantially.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.angular import mean_angular_similarity
from repro.nn import Adam, Dense, Network, ReLU, Softmax
from repro.nn.losses import softmax_cross_entropy

from .grasps import GRASP_TYPES

__all__ = ["EMG_CHANNELS", "EMGWindow", "synth_emg_window", "make_emg_dataset",
           "emg_features", "EMGClassifier"]

#: Myo armband channel count.
EMG_CHANNELS = 8

#: Per-grasp muscle synergy: mean activation of each channel in [0, 1].
#: Rows overlap deliberately — EMG alone cannot separate the grasps well.
_SYNERGY = np.array([
    [0.15, 0.2, 0.15, 0.2, 0.15, 0.2, 0.15, 0.2],   # open palm (low tone)
    [0.7, 0.75, 0.6, 0.65, 0.5, 0.55, 0.6, 0.65],   # medium wrap
    [0.65, 0.7, 0.65, 0.6, 0.55, 0.5, 0.65, 0.6],   # power sphere
    [0.4, 0.35, 0.45, 0.4, 0.35, 0.4, 0.35, 0.45],  # parallel extension
    [0.5, 0.65, 0.3, 0.25, 0.2, 0.25, 0.55, 0.6],   # palmar pinch
])


@dataclass(frozen=True)
class EMGWindow:
    """One analysis window of raw EMG: ``signal`` is (samples, channels)."""

    signal: np.ndarray
    grasp_index: int


def synth_emg_window(grasp_index: int, rng: np.random.Generator,
                     samples: int = 64, noise: float = 0.35) -> EMGWindow:
    """Generate one synthetic EMG window for a grasp.

    The signal is zero-mean band-limited noise whose per-channel envelope
    follows the grasp's muscle synergy with multiplicative trial-to-trial
    variability.
    """
    if not 0 <= grasp_index < len(GRASP_TYPES):
        raise ValueError(f"grasp_index out of range: {grasp_index}")
    envelope = _SYNERGY[grasp_index] * rng.uniform(0.7, 1.3, EMG_CHANNELS)
    raw = rng.normal(size=(samples + 2, EMG_CHANNELS))
    smooth = (raw[:-2] + raw[1:-1] + raw[2:]) / 3.0  # crude band-limiting
    signal = smooth * envelope + noise * rng.normal(
        size=(samples, EMG_CHANNELS)) * 0.2
    return EMGWindow(signal.astype(np.float32), grasp_index)


def emg_features(signal: np.ndarray) -> np.ndarray:
    """Classic time-domain EMG features, concatenated across channels.

    Per channel: mean absolute value (MAV), zero-crossing count (ZC),
    waveform length (WL) and slope-sign changes (SSC) — 4 × 8 = 32 features.
    """
    mav = np.abs(signal).mean(axis=0)
    zc = (np.diff(np.signbit(signal), axis=0) != 0).sum(axis=0) / len(signal)
    wl = np.abs(np.diff(signal, axis=0)).sum(axis=0) / len(signal)
    d = np.diff(signal, axis=0)
    ssc = (np.diff(np.signbit(d), axis=0) != 0).sum(axis=0) / len(signal)
    return np.concatenate([mav, zc, wl, ssc]).astype(np.float32)


def make_emg_dataset(n: int, rng: np.random.Generator | int = 0,
                     samples: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Balanced EMG feature dataset: ``(features (n, 32), one-hot labels)``."""
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    k = len(GRASP_TYPES)
    x = np.empty((n, 4 * EMG_CHANNELS), dtype=np.float32)
    y = np.zeros((n, k), dtype=np.float32)
    for i in range(n):
        g = i % k
        window = synth_emg_window(g, rng, samples)
        x[i] = emg_features(window.signal)
        y[i, g] = 1.0
    order = rng.permutation(n)
    return x[order], y[order]


class EMGClassifier:
    """A small dense network over EMG features, outputting grasp probabilities."""

    def __init__(self, hidden: int = 24, rng: np.random.Generator | int = 0):
        self.net = Network("emg_classifier", (4 * EMG_CHANNELS,))
        self.net.add("fc1", Dense(hidden))
        self.net.add("relu1", ReLU())
        self.net.add("logits", Dense(len(GRASP_TYPES)))
        self.net.add("probs", Softmax())
        self.net.build(rng)

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 40,
            lr: float = 1e-2, batch_size: int = 32,
            rng: np.random.Generator | int = 1) -> "EMGClassifier":
        """Train on EMG features with one-hot grasp labels."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        optimizer = Adam(lr)
        self.net.output_name = "logits"
        try:
            for _ in range(epochs):
                order = rng.permutation(x.shape[0])
                for start in range(0, x.shape[0], batch_size):
                    idx = order[start:start + batch_size]
                    self.net.zero_grad()
                    self.net.forward_backward(
                        x[idx], loss_fn=softmax_cross_entropy, y=y[idx],
                        training=True)
                    optimizer.step(self.net.parameters())
        finally:
            self.net.output_name = "probs"
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Grasp-probability distributions for EMG feature rows."""
        return self.net.forward(x)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean angular similarity against (one-hot or soft) labels."""
        return mean_angular_similarity(self.predict(x), y)
