"""The robotic prosthetic hand application (paper §III)."""

from .actuation import ActuationModel, ActuationOutcome
from .control import DEFAULT_DEADLINE_MS, ControlLoopSpec, ReachOutcome, simulate_reach
from .emg import (
    EMG_CHANNELS,
    EMGClassifier,
    EMGWindow,
    emg_features,
    make_emg_dataset,
    synth_emg_window,
)
from .fusion import entropy, fuse_product, fuse_sequence, fuse_weighted
from .grasps import GRASP_TYPES, GraspType, grasp_by_name, joint_targets

__all__ = [
    "ActuationModel",
    "ActuationOutcome",
    "ControlLoopSpec",
    "DEFAULT_DEADLINE_MS",
    "ReachOutcome",
    "simulate_reach",
    "EMG_CHANNELS",
    "EMGClassifier",
    "EMGWindow",
    "emg_features",
    "make_emg_dataset",
    "synth_emg_window",
    "entropy",
    "fuse_product",
    "fuse_weighted",
    "fuse_sequence",
    "GRASP_TYPES",
    "GraspType",
    "grasp_by_name",
    "joint_targets",
]
