"""Grasp-type definitions for the robotic prosthetic hand.

The five grasp types of the HANDS dataset, in the paper's order, plus the
finger-joint actuation targets used by the control-loop simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GRASP_TYPES", "GraspType", "grasp_by_name", "joint_targets"]


@dataclass(frozen=True)
class GraspType:
    """One grasp posture with a coarse 5-DoF joint target.

    Joint values are normalised closures in [0, 1] for
    (thumb, index, middle, ring, pinky).
    """

    index: int
    name: str
    joints: tuple[float, float, float, float, float]


GRASP_TYPES: list[GraspType] = [
    GraspType(0, "open_palm", (0.0, 0.0, 0.0, 0.0, 0.0)),
    GraspType(1, "medium_wrap", (0.6, 0.7, 0.7, 0.7, 0.7)),
    GraspType(2, "power_sphere", (0.5, 0.5, 0.5, 0.5, 0.5)),
    GraspType(3, "parallel_extension", (0.3, 0.2, 0.2, 0.2, 0.2)),
    GraspType(4, "palmar_pinch", (0.8, 0.8, 0.1, 0.0, 0.0)),
]

_BY_NAME = {g.name: g for g in GRASP_TYPES}


def grasp_by_name(name: str) -> GraspType:
    """Look up a grasp type by its canonical name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown grasp {name!r}; "
                       f"available: {sorted(_BY_NAME)}") from None


def joint_targets(distribution: np.ndarray) -> np.ndarray:
    """Expected joint closure under a grasp-probability distribution.

    The actuation unit drives toward the probability-weighted mixture of
    the per-grasp joint targets, which is how probabilistic fusion output
    turns into a single motor command.
    """
    dist = np.asarray(distribution, dtype=np.float64)
    if dist.shape[-1] != len(GRASP_TYPES):
        raise ValueError(f"expected {len(GRASP_TYPES)} grasp probabilities")
    joints = np.array([g.joints for g in GRASP_TYPES])
    return dist @ joints
