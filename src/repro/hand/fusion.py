"""Probability fusion of the EMG and visual classifiers (paper §III-A).

Both classifiers emit probability distributions over the five grasp types
(rather than one-hot decisions) precisely so they can be fused; the robot
additionally fuses *several consecutive* predictions during the reach to
add reliability, which is what tightens the visual classifier's deadline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fuse_product", "fuse_weighted", "fuse_sequence", "entropy"]

_EPS = 1e-12


def entropy(p: np.ndarray) -> np.ndarray:
    """Shannon entropy of distributions along the last axis (nats)."""
    p = np.asarray(p, dtype=np.float64)
    return -np.sum(p * np.log(p + _EPS), axis=-1)


def fuse_product(*distributions: np.ndarray) -> np.ndarray:
    """Independent-evidence (product) fusion with renormalisation.

    The standard Bayesian combination for conditionally independent
    classifiers with uniform priors.
    """
    if not distributions:
        raise ValueError("need at least one distribution")
    log_sum = sum(np.log(np.asarray(d, dtype=np.float64) + _EPS)
                  for d in distributions)
    log_sum -= log_sum.max(axis=-1, keepdims=True)
    out = np.exp(log_sum)
    return out / out.sum(axis=-1, keepdims=True)


def fuse_weighted(distributions: list[np.ndarray],
                  weights: list[float]) -> np.ndarray:
    """Convex (mixture) fusion — robust when one source is unreliable."""
    if len(distributions) != len(weights):
        raise ValueError("one weight per distribution required")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    out = sum(w / total * np.asarray(d, dtype=np.float64)
              for d, w in zip(distributions, weights))
    return out / out.sum(axis=-1, keepdims=True)


def fuse_sequence(predictions: np.ndarray,
                  discount: float = 1.0) -> np.ndarray:
    """Fuse consecutive per-frame predictions of one reach.

    ``predictions`` is (frames, classes); older frames can be discounted
    geometrically (``discount < 1``) to favour recent evidence as the hand
    closes in on the object. Returns the fused distribution.
    """
    p = np.asarray(predictions, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError("predictions must be (frames, classes)")
    n = p.shape[0]
    weights = discount ** np.arange(n - 1, -1, -1)
    log_sum = (weights[:, None] * np.log(p + _EPS)).sum(axis=0)
    log_sum -= log_sum.max()
    out = np.exp(log_sum)
    return out / out.sum()
