"""The analytical latency estimator (paper §V-B2).

A single global regression model maps the five device-agnostic network
features (:mod:`repro.estimators.features`) to inference latency. The
paper's configuration is an ε-SVR with RBF kernel, γ = 0.1 and C = 1e6,
tuned by 10-fold cross-validated grid search on a 20% training split and
evaluated on the remaining 80%; this module reproduces that protocol and
also exposes the linear-regression baseline for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .features import NetworkFeatures
from .linear import LinearRegression
from .model_selection import GridSearchResult, grid_search
from .svr import SVR

__all__ = ["AnalyticalEstimator", "PAPER_GAMMA", "PAPER_C",
           "train_test_split_indices"]

#: The paper's tuned hyper-parameters.
PAPER_GAMMA = 0.1
PAPER_C = 1e6


def train_test_split_indices(n: int, train_fraction: float = 0.2,
                             rng: np.random.Generator | int = 0
                             ) -> tuple[np.ndarray, np.ndarray]:
    """The paper's split: tune/fit on 20%, test on the remaining 80%."""
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    order = rng.permutation(n)
    k = max(2, int(round(n * train_fraction)))
    return order[:k], order[k:]


@dataclass
class AnalyticalEstimator:
    """SVR-based (or linear-baseline) latency predictor over network features."""

    kernel: str = "rbf"
    gamma: float = PAPER_GAMMA
    c: float = PAPER_C
    epsilon: float = 1e-3
    model: object | None = None
    search_result: GridSearchResult | None = None

    @staticmethod
    def design_matrix(features: list[NetworkFeatures]) -> np.ndarray:
        """Feature matrix with heavy-tailed counts on a log scale.

        FLOPs, parameter and filter-size counts span two orders of
        magnitude across the zoo; the RBF kernel (and its single γ) behaves
        far better when those axes are log-compressed before the internal
        standardisation.
        """
        x = np.stack([f.as_array() for f in features])
        for col in (1, 2, 4):  # total_flops, total_params, total_filter_size
            x[:, col] = np.log10(np.maximum(x[:, col], 1.0))
        return x

    def fit(self, features: list[NetworkFeatures],
            latencies_ms: np.ndarray) -> "AnalyticalEstimator":
        """Fit on feature/latency pairs with the configured hyper-parameters."""
        x = self.design_matrix(features)
        y = np.asarray(latencies_ms, dtype=np.float64)
        if self.kernel == "linear-ols":
            self.model = LinearRegression().fit(x, y)
        else:
            self.model = SVR(c=self.c, gamma=self.gamma,
                             epsilon=self.epsilon,
                             kernel=self.kernel).fit(x, y)
        return self

    def tune(self, features: list[NetworkFeatures],
             latencies_ms: np.ndarray,
             gammas: tuple[float, ...] = (1e-3, 1e-2, 1e-1, 1.0),
             cs: tuple[float, ...] = (1e2, 1e4, 1e6),
             folds: int = 10,
             rng: np.random.Generator | int = 0) -> "AnalyticalEstimator":
        """10-fold cross-validated grid search, then refit on all data."""
        if self.kernel == "linear-ols":
            return self.fit(features, latencies_ms)
        x = self.design_matrix(features)
        y = np.asarray(latencies_ms, dtype=np.float64)
        self.search_result = grid_search(
            lambda gamma, c: SVR(c=c, gamma=gamma, epsilon=self.epsilon,
                                 kernel=self.kernel),
            {"gamma": list(gammas), "c": list(cs)}, x, y, k=folds, rng=rng)
        self.gamma = self.search_result.best_params["gamma"]
        self.c = self.search_result.best_params["c"]
        return self.fit(features, latencies_ms)

    def predict(self, features: list[NetworkFeatures]) -> np.ndarray:
        """Predicted latencies (ms) for a list of feature vectors."""
        if self.model is None:
            raise RuntimeError("estimator is not fitted")
        return self.model.predict(self.design_matrix(features))

    def predict_one(self, features: NetworkFeatures) -> float:
        """Predicted latency of a single network."""
        return float(self.predict([features])[0])
