"""Edgent-style per-layer-type latency regression (related work, §II).

Edgent (Li, Zhou, Chen; 2018) predicts a network's latency by fitting one
linear regression *per layer type* (convolution, pooling, dense, ...) over
simple size features, then summing the per-layer predictions. The NetCut
paper argues against this granularity: a per-layer-type model is blind to
runtime optimizations such as layer fusion — it prices every batch-norm and
activation as a standalone kernel even though the deployed engine folds
them into the preceding convolution — whereas NetCut's coarse,
whole-network estimators remain valid.

This module implements the Edgent-style estimator faithfully so the
ablation benchmark can reproduce that argument quantitatively: trained on
*unfused* measurements it carries a large systematic overestimate on the
fused engine, and even retrained on fused end-to-end latencies it cannot
attribute the fusion savings to the right layers.
"""

from __future__ import annotations

import numpy as np

from repro.device.latency import network_latency
from repro.device.spec import DeviceSpec
from repro.nn.graph import Network
from repro.nn.layers import Input

__all__ = ["layer_type_features", "LayerwiseEstimator"]

#: Feature length per layer: [flops, in_elems, out_elems, params, 1]
_N_FEATURES = 5


def layer_type_features(net: Network, name: str) -> tuple[str, np.ndarray]:
    """(layer_type, feature_vector) of one node, Edgent-style.

    Features are the quantities a per-layer-type regression can know
    without running the network: FLOPs, input/output element counts and
    parameter count, plus an intercept term.
    """
    node = net.nodes[name]
    in_shapes = net.in_shapes(name)
    in_elems = float(sum(int(np.prod(s)) for s in in_shapes))
    out_elems = float(np.prod(net.shape_of(name)))
    return type(node.layer).__name__, np.array([
        float(node.layer.flops(in_shapes)),
        in_elems,
        out_elems,
        float(node.layer.param_count()),
        1.0,
    ])


class LayerwiseEstimator:
    """Per-layer-type linear regression over layer features.

    ``fit`` consumes per-layer latency observations — the natural way to
    train it is against *unfused* per-kernel timings, which is exactly what
    a profiler that wraps every framework layer produces. ``estimate``
    sums per-layer predictions over a network's nodes.
    """

    def __init__(self, ridge: float = 1e-6):
        self.ridge = float(ridge)
        self._coef: dict[str, np.ndarray] = {}
        self._fallback: np.ndarray | None = None

    def fit_from_device(self, nets: list[Network], spec: DeviceSpec
                        ) -> "LayerwiseEstimator":
        """Train on unfused per-kernel latencies of the given networks.

        This mirrors Edgent's methodology: run each layer standalone and
        regress its latency on its size features, per layer type.
        """
        samples: dict[str, list[tuple[np.ndarray, float]]] = {}
        for net in nets:
            breakdown = network_latency(net, spec, fused=False)
            by_anchor = {k.anchor: k.latency_ms for k in breakdown.kernels}
            for name, node in net.nodes.items():
                if isinstance(node.layer, Input) or name not in by_anchor:
                    continue
                ltype, feats = layer_type_features(net, name)
                samples.setdefault(ltype, []).append(
                    (feats, by_anchor[name]))
        return self._fit(samples)

    def _fit(self, samples) -> "LayerwiseEstimator":
        all_rows: list[tuple[np.ndarray, float]] = []
        for ltype, rows in samples.items():
            x = np.stack([r[0] for r in rows])
            y = np.array([r[1] for r in rows])
            self._coef[ltype] = self._solve(x, y)
            all_rows.extend(rows)
        x = np.stack([r[0] for r in all_rows])
        y = np.array([r[1] for r in all_rows])
        self._fallback = self._solve(x, y)
        return self

    def _solve(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        return np.linalg.solve(gram, x.T @ y)

    def estimate(self, net: Network) -> float:
        """Predicted end-to-end latency: sum of per-layer predictions."""
        if self._fallback is None:
            raise RuntimeError("LayerwiseEstimator is not fitted")
        total = 0.0
        for name, node in net.nodes.items():
            if isinstance(node.layer, Input):
                continue
            ltype, feats = layer_type_features(net, name)
            coef = self._coef.get(ltype, self._fallback)
            total += float(feats @ coef)
        return total

    @property
    def layer_types(self) -> list[str]:
        """Layer types with a dedicated regression model."""
        return sorted(self._coef)
