"""Ordinary least-squares baseline for the analytical estimator ablation.

The paper reports that replacing the RBF-kernel SVR with linear regression
raises the average relative latency-estimation error from 4.28% to an
"unacceptable" 23.81% — the latency of a trimmed network is not an affine
function of the coarse network features across architectures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression"]


class LinearRegression:
    """OLS on standardised features, mirroring the :class:`~repro.estimators.svr.SVR` API."""

    def __init__(self) -> None:
        self._coef: np.ndarray | None = None
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit on feature rows ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._x_mean = x.mean(axis=0)
        self._x_std = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        xs = (x - self._x_mean) / self._x_std
        design = np.column_stack([xs, np.ones(xs.shape[0])])
        self._coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for feature rows ``x``."""
        if self._coef is None:
            raise RuntimeError("LinearRegression is not fitted")
        xs = (np.asarray(x, dtype=np.float64) - self._x_mean) / self._x_std
        design = np.column_stack([xs, np.ones(xs.shape[0])])
        return design @ self._coef
