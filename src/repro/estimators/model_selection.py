"""Model selection: k-fold cross-validation, grid search and random search.

The paper tunes the SVR hyper-parameters (γ = 0.1, C = 1e6) with 10-fold
cross-validated *grid* search on a 20% training split, noting that grid
search outperformed random search at this small sample size. Both searches
are implemented so the ablation benchmark can reproduce that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["kfold_indices", "cross_val_error", "GridSearchResult",
           "grid_search", "random_search", "relative_error",
           "stratified_split_indices"]


def relative_error(pred: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute relative error in percent (the paper's error metric)."""
    truth = np.asarray(truth, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    return float(100.0 * np.mean(np.abs(pred - truth)
                                 / np.maximum(np.abs(truth), 1e-12)))


def stratified_split_indices(groups: list[str], train_fraction: float = 0.2
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Per-group evenly spaced train/test split.

    For latency estimation, the training sample must cover each base
    network's whole cutpoint range: a purely random 20% can leave a
    network's shallow cuts unobserved, and the RBF kernel extrapolates
    poorly outside the observed range. This split takes, within each group
    (base network), evenly spaced members — always including the first and
    last — as training points.
    """
    groups = list(groups)
    by_group: dict[str, list[int]] = {}
    for i, g in enumerate(groups):
        by_group.setdefault(g, []).append(i)
    train: list[int] = []
    for members in by_group.values():
        k = max(2, int(round(len(members) * train_fraction)))
        k = min(k, len(members))
        picks = np.unique(np.linspace(0, len(members) - 1, k).round()
                          .astype(int))
        train.extend(members[p] for p in picks)
    train_arr = np.array(sorted(train))
    test_arr = np.array([i for i in range(len(groups))
                         if i not in set(train)])
    return train_arr, test_arr


def kfold_indices(n: int, k: int,
                  rng: np.random.Generator | int = 0
                  ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train_idx, val_idx) pairs covering ``range(n)``."""
    if not 2 <= k <= n:
        raise ValueError(f"need 2 <= k <= n, got k={k}, n={n}")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    pairs = []
    for i, val in enumerate(folds):
        train = np.concatenate([f for j, f in enumerate(folds) if j != i])
        pairs.append((train, val))
    return pairs


def cross_val_error(model_factory: Callable[[], object], x: np.ndarray,
                    y: np.ndarray, k: int = 10,
                    rng: np.random.Generator | int = 0) -> float:
    """Mean k-fold relative error of models from ``model_factory``."""
    errors = []
    for train_idx, val_idx in kfold_indices(x.shape[0], min(k, x.shape[0]),
                                            rng):
        model = model_factory()
        model.fit(x[train_idx], y[train_idx])
        errors.append(relative_error(model.predict(x[val_idx]), y[val_idx]))
    return float(np.mean(errors))


@dataclass(frozen=True)
class GridSearchResult:
    """Best hyper-parameters and the full evaluation table."""

    best_params: dict[str, float]
    best_error: float
    table: tuple[tuple[dict[str, float], float], ...]


def _evaluate(model_factory, candidates, x, y, k, rng) -> GridSearchResult:
    table = []
    for params in candidates:
        err = cross_val_error(lambda: model_factory(**params), x, y, k, rng)
        table.append((params, err))
    best_params, best_error = min(table, key=lambda t: t[1])
    return GridSearchResult(best_params, best_error, tuple(table))


def grid_search(model_factory: Callable[..., object],
                param_grid: dict[str, list[float]], x: np.ndarray,
                y: np.ndarray, k: int = 10,
                rng: np.random.Generator | int = 0) -> GridSearchResult:
    """Exhaustive cross-validated search over the Cartesian grid."""
    names = list(param_grid)
    candidates: list[dict[str, float]] = [{}]
    for name in names:
        candidates = [dict(c, **{name: v}) for c in candidates
                      for v in param_grid[name]]
    return _evaluate(model_factory, candidates, x, y, k, rng)


def random_search(model_factory: Callable[..., object],
                  param_ranges: dict[str, tuple[float, float]],
                  x: np.ndarray, y: np.ndarray, n_samples: int = 20,
                  k: int = 10,
                  rng: np.random.Generator | int = 0) -> GridSearchResult:
    """Cross-validated search over log-uniform random samples.

    ``param_ranges`` maps each hyper-parameter to ``(low, high)`` bounds;
    samples are drawn log-uniformly, the usual choice for scale parameters
    like C and γ.
    """
    sampler = (np.random.default_rng(int(rng))
               if isinstance(rng, (int, np.integer)) else rng)
    candidates = []
    for _ in range(n_samples):
        params = {name: float(np.exp(sampler.uniform(np.log(lo), np.log(hi))))
                  for name, (lo, hi) in param_ranges.items()}
        candidates.append(params)
    return _evaluate(model_factory, candidates, x, y, k, rng=0)
