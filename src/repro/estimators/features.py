"""Device-agnostic network features for the analytical latency estimator.

The paper (§V-B2): "for a given network, the original network's latency,
the total number of: floating-point operations, parameters, layers, and
filter sizes will yield an accurate enough model to estimate the inference
latency." These five quantities are exactly what this module extracts. The
coarse granularity is deliberate — the paper contrasts it with Edgent's
per-layer-type regression, noting that a whole-network model stays valid
under optimizations like layer fusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.graph import Network
from repro.nn.layers import Conv2D, Dense, DepthwiseConv2D

__all__ = ["FEATURE_NAMES", "NetworkFeatures", "extract_features"]

#: Order of the feature vector components.
FEATURE_NAMES = ["base_latency_ms", "total_flops", "total_params",
                 "weighted_layers", "total_filter_size"]


@dataclass(frozen=True)
class NetworkFeatures:
    """The analytical estimator's feature vector for one (trimmed) network."""

    name: str
    base_latency_ms: float
    total_flops: int
    total_params: int
    weighted_layers: int
    total_filter_size: int

    def as_array(self) -> np.ndarray:
        """The feature vector in :data:`FEATURE_NAMES` order."""
        return np.array([self.base_latency_ms, self.total_flops,
                         self.total_params, self.weighted_layers,
                         self.total_filter_size], dtype=np.float64)


def _filter_size(layer) -> int:
    """Total filter entries of a weighted layer (kh·kw·filters flavour)."""
    if isinstance(layer, Conv2D):
        return layer.kernel[0] * layer.kernel[1] * layer.filters
    if isinstance(layer, DepthwiseConv2D):
        return layer.kernel[0] * layer.kernel[1]
    if isinstance(layer, Dense):
        return layer.units
    return 0


def extract_features(net: Network, base_latency_ms: float) -> NetworkFeatures:
    """Extract the five paper features from a built network.

    ``base_latency_ms`` is the measured latency of the *original* network
    the TRN was derived from (constant across all TRNs of one base network;
    it is what lets a single global model serve all seven architectures).
    """
    weighted = 0
    filter_size = 0
    for node in net.nodes.values():
        if isinstance(node.layer, (Conv2D, DepthwiseConv2D, Dense)):
            weighted += 1
            filter_size += _filter_size(node.layer)
    return NetworkFeatures(
        name=net.name,
        base_latency_ms=float(base_latency_ms),
        total_flops=net.total_flops(),
        total_params=net.total_params(),
        weighted_layers=weighted,
        total_filter_size=filter_size,
    )
