"""Latency estimators: profiler-based, analytical (ε-SVR), and baselines."""

from .analytical import (
    PAPER_C,
    PAPER_GAMMA,
    AnalyticalEstimator,
    train_test_split_indices,
)
from .features import FEATURE_NAMES, NetworkFeatures, extract_features
from .layerwise import LayerwiseEstimator, layer_type_features
from .linear import LinearRegression
from .model_selection import (
    GridSearchResult,
    cross_val_error,
    grid_search,
    kfold_indices,
    random_search,
    stratified_split_indices,
    relative_error,
)
from .profile_based import ProfilerEstimator
from .svr import SVR, rbf_kernel

__all__ = [
    "SVR",
    "rbf_kernel",
    "LinearRegression",
    "LayerwiseEstimator",
    "layer_type_features",
    "FEATURE_NAMES",
    "NetworkFeatures",
    "extract_features",
    "ProfilerEstimator",
    "AnalyticalEstimator",
    "PAPER_GAMMA",
    "PAPER_C",
    "train_test_split_indices",
    "GridSearchResult",
    "grid_search",
    "random_search",
    "cross_val_error",
    "kfold_indices",
    "relative_error",
    "stratified_split_indices",
]
