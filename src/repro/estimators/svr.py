"""ε-Support Vector Regression with an RBF kernel, implemented from scratch.

The paper's analytical latency estimator is an ε-SVR with a Radial Basis
Function kernel (γ = 0.1, C = 1e6, tuned by 10-fold cross-validated grid
search). No SVM library is available offline, so this module solves the
SVR dual directly.

Formulation: with β_i = α_i − α_i* ∈ [−C, C], the dual problem is

    min_β  ½ βᵀ K̃ β − yᵀ β + ε ‖β‖₁

where ``K̃ = K + 1`` absorbs the bias into the kernel (the standard
penalised-intercept trick, which removes the equality constraint Σβ = 0 and
makes exact coordinate descent applicable; the recovered intercept is
``b = Σ_i β_i``). Each coordinate update is a closed-form soft-threshold
followed by clipping to the box, so the solver converges quickly for the
problem sizes that occur here (≤ a few hundred TRNs).

Inputs are standardised internally (zero mean, unit variance per feature,
and centred targets) because the RBF kernel is scale-sensitive and the
latency features span many orders of magnitude (FLOPs vs. layer counts).
"""

from __future__ import annotations

import numpy as np

__all__ = ["rbf_kernel", "SVR"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gram matrix ``exp(-γ‖a_i − b_j‖²)`` for row-vector inputs."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    sq = (np.sum(a * a, axis=1)[:, None] + np.sum(b * b, axis=1)[None, :]
          - 2.0 * a @ b.T)
    return np.exp(-gamma * np.maximum(sq, 0.0))


class SVR:
    """ε-SVR with RBF (or linear) kernel solved by dual coordinate descent.

    Parameters
    ----------
    c:
        Box constraint (regularisation); the paper uses 1e6.
    gamma:
        RBF kernel coefficient; the paper uses 0.1.
    epsilon:
        Width of the ε-insensitive tube.
    kernel:
        ``"rbf"`` or ``"linear"`` (the paper's weak baseline).
    max_iter / tol:
        Solver limits: full passes over the coordinates and the KKT
        violation threshold for early stopping.
    """

    def __init__(self, c: float = 1e6, gamma: float = 0.1,
                 epsilon: float = 1e-3, kernel: str = "rbf",
                 max_iter: int = 400, tol: float = 1e-6):
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.c = float(c)
        self.gamma = float(gamma)
        self.epsilon = float(epsilon)
        self.kernel = kernel
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._x: np.ndarray | None = None
        self._beta: np.ndarray | None = None
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None
        self._y_mean: float = 0.0

    # -- internals ----------------------------------------------------------
    def _gram(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(a, b, self.gamma) + 1.0
        return a @ b.T + 1.0

    def _standardise(self, x: np.ndarray) -> np.ndarray:
        return (x - self._x_mean) / self._x_std

    # -- API ----------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVR":
        """Fit on feature rows ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) and y must be (n,)")
        self._x_mean = x.mean(axis=0)
        self._x_std = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        xs = self._standardise(x)
        self._y_mean = float(y.mean())
        yc = y - self._y_mean

        n = xs.shape[0]
        k = self._gram(xs, xs)
        diag = np.maximum(np.diag(k), 1e-12)
        beta = np.zeros(n)
        kbeta = np.zeros(n)  # K̃ @ beta, maintained incrementally
        for _ in range(self.max_iter):
            max_delta = 0.0
            for i in range(n):
                g = kbeta[i] - yc[i]              # gradient sans |.| term
                b_aff = g - diag[i] * beta[i]     # affine coefficient
                # closed-form minimiser of ½a t² + b t + ε|t| on [-C, C]:
                # soft-threshold of -b/a at ε/a
                if b_aff > self.epsilon:
                    cand = -(b_aff - self.epsilon) / diag[i]
                elif b_aff < -self.epsilon:
                    cand = -(b_aff + self.epsilon) / diag[i]
                else:
                    cand = 0.0
                new = float(np.clip(cand, -self.c, self.c))
                delta = new - beta[i]
                if delta != 0.0:
                    beta[i] = new
                    kbeta += delta * k[:, i]
                    max_delta = max(max_delta, abs(delta))
            if max_delta < self.tol * max(1.0, float(np.abs(yc).max())):
                break
        self._x = xs
        self._beta = beta
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for feature rows ``x``."""
        if self._beta is None:
            raise RuntimeError("SVR is not fitted")
        xs = self._standardise(np.asarray(x, dtype=np.float64))
        k = self._gram(xs, self._x)
        return k @ self._beta + self._y_mean

    @property
    def support_count(self) -> int:
        """Number of support vectors (non-zero dual coefficients)."""
        if self._beta is None:
            raise RuntimeError("SVR is not fitted")
        return int(np.sum(np.abs(self._beta) > 1e-10))
