"""Profiler-based latency estimation (paper §V-B1).

Given the per-layer latency table of an *original* network (profiled once
with CUDA-event-style instrumentation), the latency of any TRN derived from
it is estimated as

    Latency(TRN_n) = Latency(Net_0) · (1 − Σ_removed t_i / Σ_all t_i)

i.e. the measured end-to-end latency scaled by the fraction of per-layer
time that survives the cut. The paper uses the *ratio* rather than the raw
difference of sums because event instrumentation inflates every per-layer
record, so the sum of layers exceeds the true end-to-end time; the ratio
cancels that bias. Sums run over feature and stem layers only —
classification (head) layers are excluded, since transfer learning replaces
them anyway.

One refinement over the verbatim paper formula: the classification head is
a *fixed* cost that every TRN keeps, so the default :meth:`estimate` scales
only the feature portion of the end-to-end latency and adds the head share
back unscaled. At the paper's scale the head is negligible against 100+
feature layers; at this repository's scale (launch-overhead-dominated
sub-millisecond networks) ignoring it biases deep-cut estimates low by up
to ~50%. ``estimate_paper`` keeps the verbatim formula for the ablation
benchmark.
"""

from __future__ import annotations

from repro.device.profiler import LatencyTable
from repro.nn.graph import Network

__all__ = ["ProfilerEstimator"]


class ProfilerEstimator:
    """Estimates TRN latency from the base network's profiling table."""

    def __init__(self, base: Network, table: LatencyTable):
        if table.network != base.name:
            raise ValueError(
                f"table was profiled on {table.network!r}, "
                f"not {base.name!r}")
        self.base = base
        self.table = table
        head = {n.name for n in base.nodes.values() if n.role == "head"}
        self._records = [r for r in table.records if r.anchor not in head]
        self._total = sum(r.recorded_ms for r in self._records)
        if self._total <= 0:
            raise ValueError("profiling table has no feature-layer records")
        head_recorded = table.recorded_total_ms - self._total
        # split the unbiased end-to-end measurement proportionally to the
        # recorded shares: the head share is a fixed cost every TRN keeps
        self._head_ms = (table.end_to_end_ms * head_recorded
                         / table.recorded_total_ms)
        self._feature_ms = table.end_to_end_ms - self._head_ms

    def estimate(self, removed_nodes: set[str]) -> float:
        """Estimated latency (ms) of the TRN missing ``removed_nodes``.

        ``removed_nodes`` are base-network node names; kernels whose anchor
        is removed count as removed (their fused element-wise companions go
        with them). The head share of the end-to-end latency is added back
        unscaled (see the module docstring).
        """
        removed_ms = sum(r.recorded_ms for r in self._records
                         if r.anchor in removed_nodes)
        return (self._head_ms
                + self._feature_ms * (1.0 - removed_ms / self._total))

    def estimate_paper(self, removed_nodes: set[str]) -> float:
        """The verbatim paper formula: scale the whole end-to-end latency."""
        removed_ms = sum(r.recorded_ms for r in self._records
                         if r.anchor in removed_nodes)
        return self.table.end_to_end_ms * (1.0 - removed_ms / self._total)

    def estimate_raw_difference(self, removed_nodes: set[str]) -> float:
        """Ablation variant: subtract removed per-layer records directly.

        This is the naive formula the paper rejects; it inherits the event
        overhead of every *kept* layer and therefore overestimates.
        """
        removed_ms = sum(r.recorded_ms for r in self._records
                         if r.anchor in removed_nodes)
        return self.table.recorded_total_ms - removed_ms
