"""repro — a reproduction of *NetCut: Real-Time DNN Inference Using Layer
Removal* (Zandigohar, Erdoğmuş, Schirner; DATE 2021).

The package is organised bottom-up:

- :mod:`repro.nn` — a NumPy DNN framework (the PyTorch stand-in).
- :mod:`repro.zoo` — the seven pretrained architectures the paper studies.
- :mod:`repro.data` — synthetic pretraining and HANDS-like grasp datasets.
- :mod:`repro.device` — the simulated Jetson Xavier (latency model,
  profiler, fusion, INT8 quantization) and Tesla K20m training-cost model.
- :mod:`repro.metrics` — angular similarity and Pareto-frontier analysis.
- :mod:`repro.trim` — layer removal and TRN construction.
- :mod:`repro.train` — transfer learning (feature recording, fine-tuning,
  pretraining with caching).
- :mod:`repro.estimators` — profiler-based and analytical (ε-SVR) latency
  estimators with model selection.
- :mod:`repro.netcut` — Algorithm 1, the blockwise-exploration baseline
  and exploration-cost accounting.
- :mod:`repro.hand` — the robotic prosthetic hand application (EMG,
  fusion, control-loop timing).
- :mod:`repro.experiments` — a caching workbench exposing each of the
  paper's experiments.
"""

from repro.experiments import ExperimentConfig, Workbench

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "Workbench", "__version__"]
