"""Emit the workload-layer perf trajectory as machine-readable JSON.

Runs the canonical multi-tenant scenario (the same seeded diurnal plus
flash-crowd overload as benchmarks/test_workload_slo.py) and writes
``BENCH_workload.json`` at the repo root: per-tenant admitted throughput
and deadline-miss rate under plain EDF admission and under weighted-fair
admission, plus the fluid model's cross-validation error against the
discrete simulator. Everything is virtual-time and seeded, so two
commits produce different JSON only when workload behaviour changed.

Run via scripts/bench.sh, or directly:

    PYTHONPATH=src python scripts/bench_workload.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.cluster import (  # noqa: E402
    Router,
    homogeneous_replicas,
    make_policy,
)
from repro.device import xavier  # noqa: E402
from repro.serve import Server, ServerConfig, TRNLadder  # noqa: E402
from repro.workload import (  # noqa: E402
    DiurnalCycle,
    FlashCrowd,
    FluidModel,
    Superposition,
    TenantClass,
    TenantMix,
    WeightedFairAdmission,
    generate_trace,
)
from repro.zoo import build_network  # noqa: E402

HORIZON_MS = 300.0
SEED = 0

CONFIG_KWARGS = dict(deadline_ms=3.0, execute=False, seed=SEED,
                     queue_capacity=64, adaptive=False, window=16,
                     min_observations=8, cooldown=8)


def make_mix() -> TenantMix:
    return TenantMix([
        TenantClass("interactive", deadline_ms=3.0, weight=3.0,
                    share=0.10, priority=1),
        TenantClass("batch", deadline_ms=12.0, weight=1.0,
                    share=0.90, priority=0),
    ])


def make_scenario() -> Superposition:
    return Superposition(
        DiurnalCycle(3000, amplitude=0.3, period_ms=HORIZON_MS),
        FlashCrowd(1000, peak_multiplier=8.0, start_ms=0.3 * HORIZON_MS,
                   ramp_ms=0.05 * HORIZON_MS, hold_ms=0.25 * HORIZON_MS,
                   decay_ms=0.1 * HORIZON_MS))


def per_tenant(result) -> dict:
    snap = result.metrics.snapshot()
    out = {}
    for name, b in snap["tenants"].items():
        out[name] = {
            "admitted_rps": round(b["admitted"] * 1e3 / HORIZON_MS, 1),
            "rejected": b["rejected"],
            "miss_rate": round(b["miss_rate"], 6),
        }
    return out


def main() -> None:
    base = build_network("mobilenet_v1_0.5").build(0)
    ladder = TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)
    mix = make_mix()
    process = make_scenario()
    trace = generate_trace(process, HORIZON_MS, tenants=mix, rng=SEED)

    plain = Server(ladder, ServerConfig(**CONFIG_KWARGS)).run_trace(trace)
    policy = WeightedFairAdmission(mix, watermark=0.25)
    fair_config = ServerConfig(admission_policy=policy, **CONFIG_KWARGS)
    fair = Server(ladder, fair_config).run_trace(trace)

    # fluid cross-validation on the single-class 3-replica fleet
    config = ServerConfig(**CONFIG_KWARGS)
    flat = generate_trace(process, HORIZON_MS, deadline_ms=3.0, rng=1)
    replicas = homogeneous_replicas(base, xavier(), 3, config,
                                    num_classes=5, max_rungs=6)
    discrete = Router(replicas, make_policy("round-robin", SEED)).run(flat)
    d_admit = discrete.metrics.aggregate().counters["admitted"].value \
        * 1e3 / HORIZON_MS
    pred = FluidModel.from_ladder(ladder, config).solve(
        process, HORIZON_MS, replicas=3)

    payload = {
        "benchmark": "workload-multi-tenant-slo",
        "scenario": {
            "network": "mobilenet_v1_0.5",
            "device": "xavier",
            "workload": process.describe(),
            "requests": len(trace),
            "horizon_ms": HORIZON_MS,
            "tenants": {t.name: {"deadline_ms": t.deadline_ms,
                                 "weight": t.weight,
                                 "share": round(float(s), 4)}
                        for t, s in zip(mix.tenants, mix.shares)},
            "watermark": 0.25,
            "seed": SEED,
        },
        "results": {
            "plain_edf": per_tenant(plain),
            "weighted_fair": per_tenant(fair),
        },
        "fluid_validation": {
            "replicas": 3,
            "discrete_admitted_rps": round(d_admit, 1),
            "fluid_admitted_rps": round(pred.admitted_rps, 1),
            "discrete_miss_rate": round(discrete.miss_rate, 6),
            "fluid_miss_rate": round(pred.miss_rate, 6),
            "admitted_rel_error": round(
                abs(pred.admitted_rps - d_admit) / d_admit, 4),
            "miss_rel_error": round(
                abs(pred.miss_rate - discrete.miss_rate)
                / discrete.miss_rate, 4),
        },
    }

    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_workload.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
