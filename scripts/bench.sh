#!/usr/bin/env sh
# Benchmark smoke: the fast (virtual-time, no-Workbench) benchmark subset
# plus the machine-readable perf trajectory.
#
# The figure-reproduction benchmarks rebuild the pretrained zoo and the
# 148-TRN exploration — minutes of work with tight tolerances — so they
# stay out of the smoke run; this covers the serve, cluster, obs and
# faults and workload benchmarks, all seeded and wall-clock-independent,
# then emits BENCH_serve.json, BENCH_workload.json and BENCH_forward.json
# at the repo root so the perf trajectory accumulates commit over commit.
# (BENCH_forward.json is real wall-clock NumPy compute — its speedup and
# parity columns are the stable signals, not the absolute samples/sec.)
#
# Every BENCH payload is also appended to RUNSTORE.sqlite (override with
# REPRO_RUNSTORE), so two bench runs can be diffed with
# `python -m repro obs compare A B --store RUNSTORE.sqlite`.
#
# Heavy rung construction (bench_builders.py) reuses the same on-disk
# workbench cache examples_smoke.sh warms — ~/.cache/repro-netcut,
# override with REPRO_CACHE_DIR — so CI's cache step makes reruns cheap.
set -eu

cd "$(dirname "$0")/.."

REPRO_RUNSTORE="${REPRO_RUNSTORE:-RUNSTORE.sqlite}"
export REPRO_RUNSTORE
REPRO_CACHE_DIR="${REPRO_CACHE_DIR:-$HOME/.cache/repro-netcut}"
export REPRO_CACHE_DIR

PYTHONHASHSEED=random PYTHONPATH=src python -m pytest \
    benchmarks/test_serve_throughput.py \
    benchmarks/test_cluster_scaleout.py \
    benchmarks/test_obs_overhead.py \
    benchmarks/test_faults_chaos.py \
    benchmarks/test_netcut_online.py \
    benchmarks/test_workload_slo.py \
    benchmarks/test_builder_bakeoff.py \
    -q --benchmark-disable "$@"

PYTHONPATH=src python scripts/bench_serve.py --store "$REPRO_RUNSTORE"
PYTHONPATH=src python scripts/bench_workload.py
PYTHONPATH=src python scripts/bench_forward.py
PYTHONPATH=src python scripts/bench_builders.py

# archive every BENCH payload as one run-store row: regressions become a
# `repro obs compare` query instead of a JSON diff
PYTHONPATH=src python - <<'EOF'
import glob
import json
import os

from repro.obs import RunStore

payloads = {os.path.basename(path)[:-5]: json.load(open(path))
            for path in sorted(glob.glob("BENCH_*.json"))}
with RunStore(os.environ["REPRO_RUNSTORE"]) as store:
    run_id = store.add_run("bench.smoke",
                           meta={"files": ",".join(sorted(payloads))},
                           artifacts=payloads)
print(f"archived {len(payloads)} BENCH payloads as run #{run_id} "
      f"in {os.environ['REPRO_RUNSTORE']}")
EOF
