"""The ladder-builder Pareto bake-off, as machine-readable JSON.

Runs every registered :class:`repro.netcut.LadderBuilder` strategy
(greedy layer removal, filter pruning, HALP global channel selection,
DP depth selection) over the zoo nets and device profiles, and writes
``BENCH_builders.json`` at the repo root: per-strategy Pareto frontiers,
accuracy-at-deadline per strategy, whether the mixed-strategy frontier
dominates-or-ties each single-strategy one, and a seeded Poisson
overload served through the mixed ladder. Everything is analytic or
virtual-time and seeded, so the JSON is byte-identical across machines
and ``PYTHONHASHSEED`` values — two commits differ only when builder
behaviour changed.

Rung construction (the expensive part: each pruned/cut rung is a full
network rebuild) is cached per ``(net, device, max_rungs)`` under the
same ``~/.cache/repro-netcut`` workbench cache ``examples_smoke.sh``
warms (override with ``REPRO_CACHE_DIR``), as round-trippable
deployment artifacts — a CI cache hit skips straight to the frontier
math and the serve replay.

Run via scripts/bench.sh, or directly:

    PYTHONPATH=src python scripts/bench_builders.py \
        [--nets mobilenet_v1_0.5 resnet50] [--devices xavier nano] \
        [--max-rungs N] [--out PATH] [--no-cache]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.device import DEVICE_PROFILES, network_latency  # noqa: E402
from repro.metrics import accuracy_at_deadline, frontier_dominates  # noqa: E402
from repro.netcut import (  # noqa: E402
    BUILDERS,
    artifact_points,
    build_rungs,
    frontier_artifacts,
    load_artifact,
    save_artifact,
)
from repro.serve import Server, ServerConfig, TRNLadder  # noqa: E402
from repro.train.pretrain import default_cache_dir  # noqa: E402
from repro.workload import poisson_trace  # noqa: E402
from repro.zoo import build_network  # noqa: E402

NETS = ["mobilenet_v1_0.5", "resnet50"]
DEVICES = ["xavier", "nano"]
MAX_RUNGS = 4           # per strategy; the mixed ladder draws on all of them
DEADLINE_FRAC = 0.6     # deadline = 0.6x the full network's model latency
REQUESTS = 600
SEED = 0


def _point_dict(p) -> dict:
    return {"name": p.name, "latency_ms": round(p.latency_ms, 6),
            "accuracy": round(p.accuracy, 6)}


def build_or_load_rungs(name, device, max_rungs, cache_dir):
    """Per-strategy artifacts for one (net, device), via the rung cache.

    The cache key folds in everything the rungs depend on; a stale layout
    (e.g. a renamed strategy) misses and rebuilds rather than erroring.
    """
    spec = DEVICE_PROFILES[device]()
    slot = None
    if cache_dir:
        slot = os.path.join(cache_dir, "builders",
                            f"{name}-{device}-r{max_rungs}")
        manifest = os.path.join(slot, "manifest.json")
        if os.path.exists(manifest):
            try:
                with open(manifest) as fh:
                    listing = json.load(fh)
                if sorted(listing) == sorted(BUILDERS):
                    return {strategy: [load_artifact(os.path.join(slot, f))
                                       for f in files]
                            for strategy, files in listing.items()}, spec
            except (OSError, ValueError, KeyError):
                pass

    base = build_network(name).build(0)
    per_strategy = build_rungs(base, spec, max_rungs=max_rungs)
    if slot is not None:
        os.makedirs(slot, exist_ok=True)
        listing = {}
        for strategy, artifacts in per_strategy.items():
            listing[strategy] = []
            for artifact in artifacts:
                fname = f"{artifact.trn_name}.npz"
                save_artifact(artifact, os.path.join(slot, fname))
                listing[strategy].append(fname)
        with open(os.path.join(slot, "manifest.json"), "w") as fh:
            json.dump(listing, fh, sort_keys=True, indent=2)
    return per_strategy, spec


def serve_mixed(artifacts, spec, deadline_ms) -> dict:
    """Replay the seeded overload through the mixed-frontier ladder."""
    ladder = TRNLadder.from_artifacts(artifacts, spec)
    full_ms = max(r.estimate_ms(1) for r in ladder.rungs)
    config = ServerConfig(deadline_ms=deadline_ms, execute=False, seed=SEED,
                          queue_capacity=64, window=16, min_observations=8,
                          cooldown=8)
    trace = poisson_trace(REQUESTS, 1.2e3 / full_ms, deadline_ms, rng=SEED)
    result = Server(ladder, config).run_trace(trace)
    snapshot = result.metrics.snapshot()
    span_s = (trace[-1].arrival_ms - trace[0].arrival_ms) / 1e3
    return {
        "miss_rate": round(result.metrics.miss_rate, 6),
        "admitted_rps": round(
            snapshot["counters"]["admitted"] / span_s, 1),
        "completed": snapshot["counters"]["completed"],
        "rung_share": {
            rung: round(count / max(snapshot["counters"]["completed"], 1), 6)
            for rung, count in sorted(snapshot["per_rung"].items())},
    }


def bake_off(name, device, max_rungs, cache_dir) -> dict:
    per_strategy, spec = build_or_load_rungs(name, device, max_rungs,
                                             cache_dir)
    full_ms = network_latency(build_network(name).build(0), spec).total_ms
    deadline_ms = round(DEADLINE_FRAC * full_ms, 6)

    # flatten in sorted-strategy order so frontier tie-breaks between
    # equal points are identical on the fresh-build and cache-load paths
    mixed = [a for strategy in sorted(per_strategy)
             for a in per_strategy[strategy]]
    mixed_points = artifact_points(mixed)
    strategies = {}
    dominance = {}
    for strategy in sorted(per_strategy):
        points = artifact_points(per_strategy[strategy])
        strategies[strategy] = {
            "rungs": len(points),
            "frontier": [_point_dict(p) for p in artifact_points(
                frontier_artifacts(per_strategy[strategy]))],
            "accuracy_at_deadline": round(
                accuracy_at_deadline(points, deadline_ms), 6),
        }
        dominance[strategy] = frontier_dominates(mixed_points, points)

    front = frontier_artifacts(mixed)
    return {
        "full_latency_ms": round(full_ms, 6),
        "deadline_ms": deadline_ms,
        "strategies": strategies,
        "mixed": {
            "rungs": len(mixed),
            "frontier": [_point_dict(p) for p in artifact_points(front)],
            "frontier_builders": sorted({a.builder for a in front}),
            "accuracy_at_deadline": round(
                accuracy_at_deadline(mixed_points, deadline_ms), 6),
            "dominates": dominance,
        },
        "serve": serve_mixed(front, spec, deadline_ms),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nets", nargs="+", default=NETS)
    parser.add_argument("--devices", nargs="+", default=DEVICES,
                        choices=sorted(DEVICE_PROFILES))
    parser.add_argument("--max-rungs", type=int, default=MAX_RUNGS)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_builders.json"))
    parser.add_argument("--no-cache", action="store_true",
                        help="always rebuild rungs (skip the workbench "
                             "cache)")
    args = parser.parse_args(argv)
    cache_dir = None if args.no_cache else default_cache_dir()

    nets = {}
    for name in args.nets:
        nets[name] = {}
        for device in args.devices:
            nets[name][device] = bake_off(name, device, args.max_rungs,
                                          cache_dir)
            mixed = nets[name][device]["mixed"]
            print(f"{name} @ {device}: mixed frontier "
                  f"{mixed['rungs']} rungs -> "
                  f"{len(mixed['frontier'])} points "
                  f"(acc@deadline {mixed['accuracy_at_deadline']}), "
                  f"dominates {mixed['dominates']}")

    payload = {
        "benchmark": "builder-bakeoff",
        "scenario": {
            "builders": sorted(BUILDERS),
            "deadline_frac": DEADLINE_FRAC,
            "max_rungs_per_strategy": args.max_rungs,
            "requests": REQUESTS,
            "seed": SEED,
        },
        "nets": nets,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
