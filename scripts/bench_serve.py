"""Emit the serving-layer perf trajectory as machine-readable JSON.

Runs the canonical serve/cluster scenario (the same seeded Poisson
overload as benchmarks/test_cluster_scaleout.py) and writes
``BENCH_serve.json`` at the repo root: latency quantiles, deadline-miss
rate and admitted throughput for one replica and for the 3-replica
p2c-deadline cluster. Everything is virtual-time and seeded, so the
numbers are a property of the code, not of the machine running CI —
two commits produce different JSON only when serving behaviour changed.

With ``--store PATH`` (default: the ``REPRO_RUNSTORE`` environment
variable) the run is also appended to a :class:`repro.obs.RunStore`
SQLite archive — telemetry series from the cluster run plus the BENCH
payload — so two invocations across commits can be diffed with
``python -m repro obs compare A B --store PATH``.

Run via scripts/bench.sh, or directly:

    PYTHONPATH=src python scripts/bench_serve.py [--store RUNSTORE.sqlite]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.cluster import Router, homogeneous_replicas, make_policy  # noqa: E402
from repro.device import xavier  # noqa: E402
from repro.faults import FaultInjector, ThermalThrottle  # noqa: E402
from repro.obs import DriftMonitor, RunStore, Telemetry  # noqa: E402
from repro.serve import Server, ServerConfig, TRNLadder  # noqa: E402
from repro.workload import poisson_trace  # noqa: E402
from repro.zoo import build_network  # noqa: E402

REQUESTS = 2000
DEADLINE_MS = 3.0
RATE_RPS = 44e3
SEED = 0

ONLINE_REQUESTS = 1000
ONLINE_THROTTLE = 2.5


def measure(result, trace):
    agg = result.metrics.aggregate()
    span_s = (trace[-1].arrival_ms - trace[0].arrival_ms) / 1e3
    counters = agg.counters
    return {
        "p50_ms": round(agg.latency.quantile(0.50), 6),
        "p95_ms": round(agg.latency.quantile(0.95), 6),
        "p99_ms": round(agg.latency.quantile(0.99), 6),
        "miss_rate": round(result.miss_rate, 6),
        "admitted_rps": round(counters["admitted"].value / span_s, 1),
        "completed": counters["completed"].value,
        "dropped": counters["dropped"].value,
        "rejected": counters["rejected"].value,
    }


def run_online_netcut(base):
    """Closed-loop vs. static estimates under an unending thermal throttle.

    The acceptance scenario of benchmarks/test_netcut_online.py: the
    deployment artifact's latency tables go stale 10% into the trace and
    the drift -> re-fit -> ladder-rebuild loop must win back the deadline.
    """
    ladder = TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)
    full = ladder.rungs[0].estimate_ms(1)
    deadline_ms = round(1.3 * full, 3)
    trace = poisson_trace(ONLINE_REQUESTS, 0.4e3 / full, deadline_ms,
                          rng=SEED)
    span = trace[-1].arrival_ms

    def replay(online, method):
        faults = FaultInjector([ThermalThrottle(
            start_ms=0.1 * span, duration_ms=10 * span,
            factor=ONLINE_THROTTLE, ramp_ms=0.03 * span)], seed=SEED)
        drift = DriftMonitor(threshold=0.2, window=16, min_observations=8,
                             cooldown=8)
        config = ServerConfig(
            deadline_ms=deadline_ms, execute=False, seed=SEED,
            adaptive=False, online_reestimation=online,
            reestimate_method=method, reestimate_cooldown_ms=10.0,
            reestimate_min_samples=8, reestimate_max_samples=16)
        result = Server(ladder, config, drift=drift,
                        faults=faults).run_trace(trace)
        counters = result.metrics.counters
        return {
            "miss_rate": round(result.metrics.miss_rate, 6),
            "completed": counters["completed"].value,
            "rejected": counters["rejected"].value,
            "reestimates": counters["reestimates"].value,
            "ladder_rebuilds": counters["ladder_rebuilds"].value,
            "final_rung": result.final_rung,
        }

    return {
        "scenario": {
            "requests": ONLINE_REQUESTS,
            "deadline_ms": deadline_ms,
            "throttle_factor": ONLINE_THROTTLE,
            "seed": SEED,
        },
        "static": replay(False, "ratio"),
        "online_ratio": replay(True, "ratio"),
        "online_svr": replay(True, "svr"),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=os.environ.get("REPRO_RUNSTORE"),
                        metavar="PATH",
                        help="append the run (telemetry + payload) to this "
                             "SQLite run store (default: $REPRO_RUNSTORE)")
    args = parser.parse_args(argv)

    base = build_network("mobilenet_v1_0.5").build(0)
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=False, seed=SEED,
                          queue_capacity=64, window=16, min_observations=8,
                          cooldown=8)
    trace = poisson_trace(REQUESTS, RATE_RPS, DEADLINE_MS, rng=SEED)

    runs = {}
    telemetries = {}
    for name, n in (("serve_1x", 1), ("cluster_3x_p2c", 3)):
        # telemetry observes the run without perturbing it (sampling is
        # read-only), so the BENCH payload is --store-independent
        telemetry = Telemetry(sample_interval_ms=1.0) if args.store else None
        replicas = homogeneous_replicas(base, xavier(), n, config,
                                        num_classes=5, max_rungs=6,
                                        telemetry=telemetry)
        result = Router(replicas, make_policy("p2c-deadline", SEED),
                        telemetry=telemetry).run(trace)
        runs[name] = measure(result, trace)
        telemetries[name] = telemetry

    payload = {
        "benchmark": "serve-cluster-scaleout",
        "scenario": {
            "network": "mobilenet_v1_0.5",
            "device": "xavier",
            "requests": REQUESTS,
            "rate_rps": RATE_RPS,
            "deadline_ms": DEADLINE_MS,
            "policy": "p2c-deadline",
            "seed": SEED,
        },
        "results": runs,
        "scaleout_admitted_ratio": round(
            runs["cluster_3x_p2c"]["admitted_rps"]
            / runs["serve_1x"]["admitted_rps"], 4),
        "online_netcut": run_online_netcut(base),
    }

    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_serve.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    print(json.dumps(payload, indent=2, sort_keys=True))

    if args.store:
        with RunStore(args.store) as store:
            run_id = store.add_run(
                "bench.serve", meta=dict(payload["scenario"]),
                telemetry=telemetries["cluster_3x_p2c"],
                artifacts={"BENCH_serve": payload})
        print(f"archived as run #{run_id} in {args.store} "
              f"(diff runs: python -m repro obs compare A B "
              f"--store {args.store})")


if __name__ == "__main__":
    main()
