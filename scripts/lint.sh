#!/usr/bin/env sh
# Lint + format gate (ruff).
#
# ruff ships as a binary wheel that is not part of the minimal runtime
# image, so this script degrades gracefully: when ruff is missing it
# reports and exits 0 rather than failing environments that only carry
# the runtime dependencies. CI installs the `test` extra (which includes
# ruff) and therefore always runs the real checks.
set -eu

cd "$(dirname "$0")/.."

if ! command -v ruff >/dev/null 2>&1; then
    echo "lint: ruff not installed (pip install -e '.[test]'); skipping"
    exit 0
fi

ruff check .
ruff format --check .
echo "lint: ok"
