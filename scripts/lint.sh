#!/usr/bin/env sh
# Lint + format gate (ruff).
#
# ruff ships as a binary wheel that is not part of the minimal runtime
# image, so this script degrades gracefully: when ruff is missing it
# reports and exits 0 rather than failing environments that only carry
# the runtime dependencies. CI installs the `test` extra (which pins
# ruff) and therefore always runs the real checks.
#
# `scripts/lint.sh --fix` applies ruff's autofixes and reformats in
# place instead of checking — the local pre-commit convenience for the
# same rule set CI enforces.
set -eu

cd "$(dirname "$0")/.."

if ! command -v ruff >/dev/null 2>&1; then
    echo "lint: ruff not installed (pip install -e '.[test]'); skipping"
    exit 0
fi

if [ "${1:-}" = "--fix" ]; then
    ruff check --fix .
    ruff format .
    echo "lint: fixed"
    exit 0
fi

ruff check .
ruff format --check .
echo "lint: ok"
