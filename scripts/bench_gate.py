"""Fail CI when a BENCH_*.json payload regresses past its baseline.

Compares every ``BENCH_*.json`` in the current directory against the
committed baselines in ``benchmarks/baselines/`` under the tolerances in
:data:`repro.obs.DEFAULT_RULES` (miss rates within +2pp absolute,
throughput and compiled speedups at >= 0.85x baseline, bake-off
accuracy-at-deadline at >= 0.98x) and exits nonzero with a movers table
when anything slides. Wired into the bench-smoke CI job directly after
scripts/bench.sh; also reachable as ``python -m repro obs gate``.

Run via:

    PYTHONPATH=src python scripts/bench_gate.py [--baselines DIR] [--current DIR]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.obs import run_gate  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baselines",
        default=os.path.join(REPO_ROOT, "benchmarks", "baselines"),
        help="directory of committed BENCH_*.json baselines")
    parser.add_argument(
        "--current", default=".",
        help="directory holding the just-produced BENCH_*.json files")
    parser.add_argument(
        "--top", type=int, default=20,
        help="movers-table rows to print (violations always shown)")
    args = parser.parse_args()
    return run_gate(args.baselines, args.current, top=args.top)


if __name__ == "__main__":
    raise SystemExit(main())
