#!/usr/bin/env sh
# Tier-1 verification: the full test suite under a randomized hash seed.
#
# PYTHONHASHSEED=random makes Python's per-process string-hash
# randomization explicit for the run (it is also the interpreter default,
# but an exported PYTHONHASHSEED=0 in the environment would silently pin
# it). Any "deterministic" seed that secretly depends on hash() — the bug
# class fixed by repro.device.stable_seed — changes between two runs of
# this script and fails the determinism tests instead of passing by
# accident.
set -eu

cd "$(dirname "$0")/.."
PYTHONHASHSEED=random PYTHONPATH=src exec python -m pytest tests/ -q "$@"
