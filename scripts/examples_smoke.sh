#!/usr/bin/env sh
# Examples smoke: every demo script must run headless and exit 0.
#
# The examples are the repo's front door — they rot silently when an API
# they demonstrate changes shape, because nothing else imports them. This
# runs each examples/*.py start to finish (virtual-time simulation, no
# GPU, no display) under a per-example wall-clock budget, and fails if
# any example crashes, hangs past the budget, or exists on disk without
# being listed here (so a new demo cannot dodge the smoke).
#
# Ordering matters for speed, not correctness: quickstart runs first to
# warm the Workbench cache (~/.cache/repro-netcut, override with
# REPRO_CACHE_DIR), so the heavier report/pipeline demos reuse its
# pretrained weights and exploration instead of rebuilding them.
#
# Budget override: EXAMPLE_TIMEOUT=1200 scripts/examples_smoke.sh
set -eu

cd "$(dirname "$0")/.."

EXAMPLE_TIMEOUT="${EXAMPLE_TIMEOUT:-900}"

EXAMPLES="
examples/quickstart.py
examples/chaos_serving.py
examples/cluster_serving.py
examples/deadline_sweep.py
examples/deploy_pipeline.py
examples/deployment_optimizations.py
examples/estimator_comparison.py
examples/generate_report.py
examples/online_netcut.py
examples/profile_layers.py
examples/prosthetic_hand.py
examples/related_work.py
examples/serve_trace.py
examples/telemetry_dashboard.py
examples/visualize_networks.py
examples/workload_replay.py
"

# completeness guard: an example on disk but missing from the list above
# would never be smoked
for path in examples/*.py; do
    case "$EXAMPLES" in
        *"$path"*) ;;
        *) echo "ERROR: $path is not listed in scripts/examples_smoke.sh"
           exit 1 ;;
    esac
done

failed=0
for path in $EXAMPLES; do
    if [ ! -f "$path" ]; then
        echo "ERROR: listed example $path does not exist"
        exit 1
    fi
    echo "=== $path (budget ${EXAMPLE_TIMEOUT}s)"
    start=$(date +%s)
    if PYTHONPATH=src timeout "$EXAMPLE_TIMEOUT" python "$path" \
            > /tmp/example_smoke.log 2>&1; then
        echo "    ok ($(($(date +%s) - start))s)"
    else
        status=$?
        echo "    FAILED (exit $status) — last 30 lines:"
        tail -30 /tmp/example_smoke.log | sed 's/^/    /'
        failed=1
    fi
done

exit $failed
