"""Emit the compiled-forward perf trajectory as machine-readable JSON.

Runs every zoo network through both forward paths — the interpreted
node walk and the compiled fused schedule (``Network.compile()``) — and
writes ``BENCH_forward.json`` at the repo root: samples/sec per network
and batch size for each path, the compiled/interpreted speedup, a
numerical-parity verdict (``allclose``) per network, and — at batch 1,
via the plan's opt-in timing hooks — the mean wall-clock latency of
every fused kernel (``kernels_ms``), so a kernel-level regression shows
up as one moved key instead of a diffuse slowdown.

Unlike the serving benchmarks this one is real wall-clock compute
(NumPy kernels), so absolute numbers vary across machines; the
*speedup* column and the parity verdicts are the stable signals. The
headline ``speedup`` per network is batch 1 — the paper's real-time
serving regime, where per-layer dispatch overhead dominates and the
fused static schedule pays off most.

Run via scripts/bench.sh, or directly:

    PYTHONPATH=src python scripts/bench_forward.py
"""

import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

import numpy as np  # noqa: E402

from repro.zoo import NETWORKS, build_network  # noqa: E402

BATCHES = (1, 8, 32)
WARMUP = 5
MIN_REPS = 5
MIN_SECONDS = 0.25
WINDOWS = 4
KERNEL_REPS = 32            # timed forwards for the per-kernel breakdown
SEED = 0


def _time_sps(fn, x, batch: int) -> float:
    """Samples/sec for ``fn(x)``: warm up, then best of WINDOWS windows.

    Each window repeats the call for at least MIN_SECONDS; taking the
    fastest window filters out scheduler noise (the slow windows measure
    the machine, the fast one measures the code).
    """
    for _ in range(WARMUP):
        fn(x)
    best = 0.0
    gc.disable()
    for _ in range(WINDOWS):
        reps = 0
        start = time.perf_counter()
        while True:
            fn(x)
            reps += 1
            elapsed = time.perf_counter() - start
            if reps >= MIN_REPS and elapsed >= MIN_SECONDS:
                break
        best = max(best, reps * batch / elapsed)
    gc.enable()
    return best


def bench_network(name: str) -> dict:
    net = build_network(name).build(0)
    rng = np.random.default_rng(SEED)
    out: dict = {"batches": {}}
    allclose = True
    for batch in BATCHES:
        x = rng.standard_normal((batch,) + net.input_shape,
                                dtype=np.float32)
        net.uncompile()
        interp_out = net.forward(x)
        interp_sps = _time_sps(net.forward, x, batch)
        plan = net.compile()
        compiled_out = net.forward(x)
        compiled_sps = _time_sps(net.forward, x, batch)
        # float32 accumulation order differs between the paths (BN folding,
        # fused post-ops); on softmax outputs 1e-4 absolute is parity
        allclose &= bool(np.allclose(compiled_out, interp_out,
                                     rtol=1e-3, atol=1e-4))
        out["batches"][str(batch)] = {
            "interpreted_sps": round(interp_sps, 2),
            "compiled_sps": round(compiled_sps, 2),
            "speedup": round(compiled_sps / interp_sps, 3),
        }
        if batch == 1:
            # per-fused-kernel breakdown in the real-time regime: opt-in
            # plan timing, mean wall-clock per step over KERNEL_REPS runs
            plan.enable_timing()
            for _ in range(KERNEL_REPS):
                net.forward(x)
            table = plan.latency_table()
            plan.disable_timing()
            out["kernels_ms"] = {r.anchor: round(r.recorded_ms, 6)
                                 for r in table.records}
            out["kernel_total_ms"] = round(table.end_to_end_ms, 6)
    out["allclose"] = allclose
    out["speedup"] = out["batches"]["1"]["speedup"]   # real-time headline
    out["plan_steps"] = len(plan.plan.steps)
    out["arena_slots"] = len(plan.plan.slot_shapes)
    return out


def main() -> None:
    nets = {}
    for name in NETWORKS:
        nets[name] = bench_network(name)
        b1 = nets[name]["batches"]["1"]
        print(f"{name:22s} b1 {b1['interpreted_sps']:>8.1f} -> "
              f"{b1['compiled_sps']:>8.1f} sps  ({b1['speedup']:.2f}x)  "
              f"allclose={nets[name]['allclose']}")

    payload = {
        "kind": "repro.bench.forward",
        "batches": list(BATCHES),
        "networks": nets,
    }
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_forward.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")

    bad = [n for n, r in nets.items() if not r["allclose"]]
    if bad:
        print(f"PARITY FAILURE: {', '.join(bad)}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
