"""Fig. 6 — the accuracy/performance trade-off of all 148 TRNs.

The paper's observations on this scatter plot:

- ResNet contributes accurate TRNs that fill the latency range before
  MobileNetV2(1.4);
- trimming MobileNetV1(0.5) expands the frontier at the fast end and even
  *dominates* the off-the-shelf MobileNetV1(0.25);
- layer removal extends the trade-off to the lower (faster) extreme.
"""

import pytest

from repro.metrics import CandidatePoint, dominates

from conftest import emit


@pytest.fixture(scope="module")
def all_points(exploration):
    return [CandidatePoint(r.trn_name, r.latency_ms, r.accuracy)
            for r in exploration.records]


def test_fig06_scatter(exploration, wb, benchmark):
    rows = benchmark(lambda: sorted(exploration.records,
                                    key=lambda r: r.latency_ms))
    lines = [f"{'trn':26s} {'latency_ms':>10} {'accuracy':>9}"]
    for r in rows:
        lines.append(f"{r.trn_name:26s} {r.latency_ms:>10.3f} "
                     f"{r.accuracy:>9.4f}")
    emit("fig06_trn_tradeoff", lines)
    assert len(rows) == 155


def test_fig06_resnet_fills_gap_before_mnv2_14(exploration, originals,
                                               benchmark):
    """ResNet TRNs occupy the deadline region below MobileNetV2(1.4) with
    accuracy at least on par with the feasible off-the-shelf networks."""
    mnv2_lat = originals["mobilenet_v2_1.4"].latency_ms
    best_fast_offshelf = originals["mobilenet_v1_0.5"].accuracy

    def resnet_gap_points():
        return [r for r in exploration.for_base("resnet50")
                if r.blocks_removed and 0.6 < r.latency_ms < mnv2_lat]

    in_gap = benchmark(resnet_gap_points)
    assert in_gap, "no ResNet TRNs in the gap region"
    assert max(r.accuracy for r in in_gap) >= best_fast_offshelf - 0.02


def test_fig06_trimmed_mnv1_05_dominates_offshelf_mnv1_025(
        exploration, originals, benchmark):
    """A TRN of MobileNetV1(0.5) dominates the off-the-shelf 0.25 variant."""
    small = originals["mobilenet_v1_0.25"]
    small_pt = CandidatePoint(small.trn_name, small.latency_ms,
                              small.accuracy)

    def dominated():
        for r in exploration.for_base("mobilenet_v1_0.5"):
            if r.blocks_removed == 0:
                continue
            trn_pt = CandidatePoint(r.trn_name, r.latency_ms, r.accuracy)
            if dominates(trn_pt, small_pt):
                return trn_pt
        return None

    winner = benchmark(dominated)
    assert winner is not None


def test_fig06_removal_extends_lower_extreme(exploration, originals,
                                             benchmark):
    """TRNs reach latencies below the fastest off-the-shelf network."""
    fastest_offshelf = min(r.latency_ms for r in originals.values())
    fastest_trn = benchmark(
        lambda: min(r.latency_ms for r in exploration.records
                    if r.blocks_removed))
    assert fastest_trn < 0.6 * fastest_offshelf
