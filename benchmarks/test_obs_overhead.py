"""Observability overhead benchmark — what does tracing cost the server?

The tracer and drift monitor sit on the serving hot path (one span per
request life-cycle step, one drift observation per executed batch),
guarded by ``if tracer is not None`` so the untraced path is untouched.
This benchmark replays the PR-1 serve-throughput scenario
(MobileNetV1(0.5) TRN ladder on the simulated Xavier, Poisson overload at
1.3x capacity) with and without observability attached, in two regimes:

- **Inference serving** (``execute=True``): every batch runs a real
  forward pass, as a deployed server would. This is where the
  "observability is cheap enough to leave on" claim lives, and the traced
  run must stay within 10% of the untraced wall-clock.
- **Simulator-only** (``execute=False``): the PR-1 timing regime, where a
  request costs ~75µs of pure bookkeeping. Tracing's few spans per
  request are measurable against a denominator that small (~5-10% here,
  by design of the simulator, not of the tracer), so the ratio is
  reported for transparency and guarded only against gross regressions
  in per-span cost.

Both regimes take the *minimum* over several runs per variant in
seeded-random order: minima converge to the noise-free cost on a shared
machine, and shuffling keeps load drift from landing on one variant.
Garbage is collected and the trace buffer cleared outside the timed
region so each timing sees only the serving work itself.
"""

import gc
import random
import time

import pytest

from repro.device import xavier
from repro.obs import DriftMonitor, Telemetry, Tracer
from repro.serve import Server, ServerConfig, TRNLadder, poisson_trace
from repro.zoo import build_network

from conftest import emit

REQUESTS = 400
DEADLINE_MS = 0.9
OVERHEAD_BUDGET = 0.10      # traced inference serving: at most 10% more
SIM_OVERHEAD_CEILING = 0.40  # simulator-only regime: gross-regression guard
SIM_TELEMETRY_CEILING = 0.80  # telemetry maintains the whole labeled
                              # surface (family mirrors + per-virtual-ms
                              # store samples), so against the simulator's
                              # ~75µs/request denominator it reads ~50%;
                              # the ceiling only catches gross regressions
EXEC_RUNS = 8               # runs per variant, execute=True (~0.4 s each)
MEASURE_ATTEMPTS = 3        # re-measure on a budget violation: a machine
                            # load spike flakes one attempt, a genuine
                            # per-span cost regression fails all of them
SIM_RUNS = 16               # runs per variant, simulator-only (~40 ms each)


@pytest.fixture(scope="module")
def ladder():
    base = build_network("mobilenet_v1_0.5").build(0)
    return TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)


@pytest.fixture(scope="module")
def trace(ladder):
    rate_rps = 1.3e3 / ladder.rungs[0].estimate_ms(1)
    return poisson_trace(REQUESTS, rate_rps, DEADLINE_MS, rng=0,
                         render=True)


def _min_ratio(plain_run, traced_run, tracer, runs):
    """Min wall-clock per variant over a seeded-random run order."""

    def timed(fn):
        tracer.clear()
        gc.collect()
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    plain_run(), traced_run()           # warm both paths
    schedule = [plain_run] * runs + [traced_run] * runs
    random.Random(0).shuffle(schedule)
    times = {plain_run: [], traced_run: []}
    for fn in schedule:
        times[fn].append(timed(fn))
    return min(times[plain_run]), min(times[traced_run])


def _measured_overhead(plain_run, traced_run, tracer, runs, budget):
    for _ in range(MEASURE_ATTEMPTS):
        base_s, obs_s = _min_ratio(plain_run, traced_run, tracer, runs)
        overhead = obs_s / base_s - 1.0
        if overhead < budget:
            break
    return base_s, obs_s, overhead


def _servers(ladder, execute):
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=execute, seed=0)
    tracer, drift = Tracer(), DriftMonitor()
    return (Server(ladder, config),
            Server(ladder, config, tracer=tracer, drift=drift),
            tracer, drift)


@pytest.mark.obs
def test_bench_tracing_overhead(ladder, trace, benchmark):
    """Full observability (tracer + drift) adds <10% to inference serving."""
    plain, observed, tracer, drift = _servers(ladder, execute=True)

    def plain_run():
        return plain.run_trace(trace)

    def traced_run():
        return observed.run_trace(trace)

    base_s, obs_s, overhead = _measured_overhead(
        plain_run, traced_run, tracer, EXEC_RUNS, OVERHEAD_BUDGET)

    # the simulator-only regime: tiny denominator, reported + sanity-bound
    sim_plain, sim_obs, sim_tracer, _ = _servers(ladder, execute=False)
    sim_base_s, sim_obs_s, sim_overhead = _measured_overhead(
        lambda: sim_plain.run_trace(trace),
        lambda: sim_obs.run_trace(trace), sim_tracer, SIM_RUNS,
        SIM_OVERHEAD_CEILING)

    result = benchmark(traced_run)
    spans = len(tracer.spans()) + tracer.buffer.dropped
    lines = [f"{'regime':16s} {'untraced s':>11} {'traced s':>9} "
             f"{'overhead':>9}",
             f"{'inference':16s} {base_s:>11.4f} {obs_s:>9.4f} "
             f"{100 * overhead:>+8.2f}% (budget "
             f"{100 * OVERHEAD_BUDGET:.0f}%)",
             f"{'simulator-only':16s} {sim_base_s:>11.4f} {sim_obs_s:>9.4f} "
             f"{100 * sim_overhead:>+8.2f}% (ceiling "
             f"{100 * SIM_OVERHEAD_CEILING:.0f}%)",
             f"{spans} spans/run, {drift.observations} drift observations",
             f"{REQUESTS} Poisson requests, deadline {DEADLINE_MS} ms, "
             f"min over {EXEC_RUNS}/{SIM_RUNS} runs per variant in "
             f"seeded-random order, seed 0"]
    emit("obs_overhead", lines)

    # tracing must not change the serving outcome, only observe it
    untraced = plain.run_trace(trace)
    assert result.metrics.snapshot() == untraced.metrics.snapshot()
    assert overhead < OVERHEAD_BUDGET
    assert sim_overhead < SIM_OVERHEAD_CEILING


@pytest.mark.obs
def test_bench_telemetry_overhead(ladder, trace):
    """Labeled telemetry (families + sampling) adds <10% to inference.

    Same protocol as the tracing benchmark: the telemetry path mirrors
    every ``ServerMetrics`` event into labeled families, updates gauges
    through registered collectors and samples the series store once per
    virtual millisecond — all behind one ``if tele is not None`` guard,
    so the unmetered path is untouched.
    """
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=True, seed=0)
    plain = Server(ladder, config)
    telemetry = Telemetry(sample_interval_ms=1.0)
    metered = Server(ladder, config, telemetry=telemetry)

    def plain_run():
        return plain.run_trace(trace)

    def metered_run():
        return metered.run_trace(trace)

    # telemetry's ring-buffer store is self-bounding, so there is nothing
    # to clear between runs; hand the helper an unused placeholder tracer
    base_s, tel_s, overhead = _measured_overhead(
        plain_run, metered_run, Tracer(), EXEC_RUNS, OVERHEAD_BUDGET)

    sim_config = ServerConfig(deadline_ms=DEADLINE_MS, execute=False, seed=0)
    sim_plain = Server(ladder, sim_config)
    sim_metered = Server(ladder, sim_config,
                         telemetry=Telemetry(sample_interval_ms=1.0))
    sim_base_s, sim_tel_s, sim_overhead = _measured_overhead(
        lambda: sim_plain.run_trace(trace),
        lambda: sim_metered.run_trace(trace), Tracer(), SIM_RUNS,
        SIM_TELEMETRY_CEILING)

    samples = telemetry.samples_taken
    lines = [f"{'regime':16s} {'plain s':>11} {'metered s':>9} "
             f"{'overhead':>9}",
             f"{'inference':16s} {base_s:>11.4f} {tel_s:>9.4f} "
             f"{100 * overhead:>+8.2f}% (budget "
             f"{100 * OVERHEAD_BUDGET:.0f}%)",
             f"{'simulator-only':16s} {sim_base_s:>11.4f} {sim_tel_s:>9.4f} "
             f"{100 * sim_overhead:>+8.2f}% (ceiling "
             f"{100 * SIM_TELEMETRY_CEILING:.0f}%)",
             f"{len(telemetry.families)} metric families, "
             f"{samples} store samples",
             f"{REQUESTS} Poisson requests, deadline {DEADLINE_MS} ms, "
             f"min over {EXEC_RUNS}/{SIM_RUNS} runs per variant in "
             f"seeded-random order, seed 0"]
    emit("obs_telemetry_overhead", lines)

    # telemetry must not change the serving outcome, only observe it
    assert metered_run().metrics.snapshot() == plain_run().metrics.snapshot()
    assert overhead < OVERHEAD_BUDGET
    assert sim_overhead < SIM_TELEMETRY_CEILING


@pytest.mark.obs
def test_bench_trace_buffer_stays_bounded(ladder, trace):
    """A tiny buffer drops old spans instead of growing or crashing."""
    tracer = Tracer(capacity=64)
    server = Server(ladder, ServerConfig(deadline_ms=DEADLINE_MS,
                                         execute=False, seed=0),
                    tracer=tracer)
    result = server.run_trace(trace)
    assert len(tracer.spans()) == 64
    assert tracer.buffer.dropped > 0
    # counts still see every span ever recorded
    assert tracer.count("respond") \
        == result.metrics.counters["completed"].value
