"""Fig. 10 and Algorithm 1 — the networks NetCut finally selects.

The paper's end result: with the 0.9 ms deadline, the profiler-based run
proposes ResNet/114 and the analytical run ResNet/94, improving accuracy
over the off-the-shelf choice by 2.2% and 5.7% respectively, while training
only ~9 networks instead of 148 (95% reduction) and cutting exploration
time from 183 h to 6.7 h (27×) on the Tesla K20m.

Our reproduction keeps every structural property (one retrained TRN per
base network, the accuracy win at the deadline, the 95% reduction, an
order-of-magnitude speedup); the winning *family* differs (DenseNet rather
than ResNet) because the synthetic transfer task favours DenseNet's
concatenated features — see EXPERIMENTS.md.
"""

import pytest

from repro.hand import DEFAULT_DEADLINE_MS
from repro.netcut import compare_costs

from conftest import emit


@pytest.fixture(scope="module")
def profiler_result(wb):
    return wb.netcut("profiler")


@pytest.fixture(scope="module")
def analytical_result(wb):
    return wb.netcut("analytical")


def test_fig10_selected_networks(profiler_result, analytical_result,
                                 originals, benchmark):
    benchmark(lambda: profiler_result.best)
    lines = [f"{'estimator':12s} {'candidate':26s} {'blocks':>6} "
             f"{'est_ms':>8} {'meas_ms':>8} {'accuracy':>9}"]
    for label, result in (("profiler", profiler_result),
                          ("analytical", analytical_result)):
        for c in result.candidates:
            lines.append(
                f"{label:12s} {c.trn_name:26s} {c.blocks_removed:>6d} "
                f"{c.estimated_latency_ms:>8.3f} "
                f"{c.measured_latency_ms:>8.3f} {c.accuracy:>9.4f}")
        best = result.best
        lines.append(f"{label:12s} WINNER: {best.trn_name} "
                     f"acc={best.accuracy:.4f}")
    emit("fig10_selected_networks", lines)

    baseline = originals["mobilenet_v1_0.5"].accuracy
    for result in (profiler_result, analytical_result):
        best = result.best
        # the winner is a trimmed network, not an off-the-shelf one
        assert best.blocks_removed > 0
        # and it beats the best feasible off-the-shelf network
        gain = 100 * (best.accuracy - baseline) / baseline
        assert gain > 2.0


def test_fig10_one_trn_per_network(profiler_result, analytical_result,
                                   wb, benchmark):
    """Algorithm 1 retrains exactly one TRN per base network."""
    count = benchmark(lambda: profiler_result.networks_trained)
    assert count == len(wb.config.networks)
    assert analytical_result.networks_trained == len(wb.config.networks)


def test_fig10_estimates_meet_deadline(profiler_result, analytical_result,
                                       benchmark):
    """Every proposed TRN meets the deadline according to its estimate,
    and the measured latency is within estimator error of it."""
    cands = benchmark(lambda: [c for r in (profiler_result,
                                           analytical_result)
                               for c in r.candidates if c.feasible])
    for c in cands:
        assert c.estimated_latency_ms <= DEFAULT_DEADLINE_MS + 1e-9
        assert c.measured_latency_ms <= DEFAULT_DEADLINE_MS * 1.08


def test_fig10_exploration_cost_accounting(profiler_result,
                                           analytical_result, exploration,
                                           benchmark):
    """The 95% / 27× claims: networks-trained reduction and GPU-hour
    speedup of NetCut vs blockwise exhaustive exploration."""
    cmp_single = benchmark(compare_costs, exploration, profiler_result)
    cmp_both = compare_costs(exploration, profiler_result,
                             analytical_result)
    emit("fig10_accounting", [
        "profiler run only:   " + cmp_single.summary()
        + "   [paper: 95% fewer, 27x]",
        "both estimator runs: " + cmp_both.summary()])

    assert cmp_single.blockwise.networks_trained == 148
    assert cmp_single.network_reduction_pct >= 95.0
    assert cmp_single.speedup > 10.0
    # running both estimators still trains ~9-11 distinct networks
    assert cmp_both.netcut.networks_trained <= 14
    assert cmp_both.speedup > 8.0


def test_bench_netcut_end_to_end(wb, benchmark):
    """Benchmark: a full Algorithm-1 run (profiler estimator, 7 networks),
    with warm caches — the marginal cost of re-running the methodology."""
    result = benchmark.pedantic(lambda: wb.netcut("profiler"), rounds=1,
                                iterations=1)
    assert result.networks_trained == 7
