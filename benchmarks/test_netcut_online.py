"""Online NetCut benchmark — drift-triggered re-estimation under throttle.

The acceptance scenario for closing Algorithm 1's loop at serving time: a
seeded thermal throttle ramps the simulated Xavier to 2.5x its profiled
latency early in a Poisson trace and never recovers, so the deployment
artifact's latency tables are wrong for ~90% of the run. The closed-loop
server (DriftMonitor -> ReestimationController -> ladder rebuild) must
recover to under 5% deadline misses where the same server with static
estimates stays above 20% — both with the hysteresis ladder controller
off, so the whole recovery is attributable to estimate maintenance.

The determinism benchmark replays the closed-loop scenario in two
subprocesses started with different ``PYTHONHASHSEED`` values and asserts
the metrics snapshots are byte-identical: the re-fit path (median ratios,
SVR queries, greedy re-selection) must introduce no ordering or hashing
nondeterminism.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.device import xavier
from repro.faults import FaultInjector, ThermalThrottle
from repro.obs import DriftMonitor
from repro.serve import Server, ServerConfig, TRNLadder, poisson_trace
from repro.zoo import build_network

from conftest import emit

REQUESTS = 1000
SEED = 0
THROTTLE = 2.5

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def ladder():
    base = build_network("mobilenet_v1_0.5").build(0)
    return TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)


@pytest.fixture(scope="module")
def setting(ladder):
    """(deadline_ms, trace): the full TRN healthy, hopeless throttled."""
    full = ladder.rungs[0].estimate_ms(1)
    deadline_ms = round(1.3 * full, 3)
    trace = poisson_trace(REQUESTS, 0.4e3 / full, deadline_ms, rng=SEED)
    return deadline_ms, trace


def _run(ladder, setting, online, method="ratio"):
    deadline_ms, trace = setting
    span = trace[-1].arrival_ms
    faults = FaultInjector([ThermalThrottle(
        start_ms=0.1 * span, duration_ms=10 * span, factor=THROTTLE,
        ramp_ms=0.03 * span)], seed=SEED)
    drift = DriftMonitor(threshold=0.2, window=16, min_observations=8,
                         cooldown=8)
    config = ServerConfig(
        deadline_ms=deadline_ms, execute=False, seed=SEED, adaptive=False,
        online_reestimation=online, reestimate_method=method,
        reestimate_cooldown_ms=10.0, reestimate_min_samples=8,
        reestimate_max_samples=16)
    server = Server(ladder, config, drift=drift, faults=faults)
    return server.run_trace(trace), server


def test_bench_online_reestimation(ladder, setting, benchmark):
    """Closed loop recovers <5% misses; static estimates stay >20%."""
    closed, server = benchmark(_run, ladder, setting, True)
    # read the calibration before the other arms run: their fresh engines
    # restore every shared rung's scale to 1.0
    scales = [r.estimate_scale for r in server.engine.ladder.rungs]
    svr, _ = _run(ladder, setting, True, method="svr")
    static, _ = _run(ladder, setting, False)

    lines = [f"{'estimates':16s} {'miss%':>8} {'refits':>7} "
             f"{'rebuilds':>9} {'final rung':>24}"]
    for name, res in (("online-ratio", closed), ("online-svr", svr),
                      ("static", static)):
        c = res.metrics.counters
        lines.append(
            f"{name:16s} {100 * res.metrics.miss_rate:>8.2f} "
            f"{c['reestimates'].value:>7d} {c['ladder_rebuilds'].value:>9d} "
            f"{res.final_rung:>24s}")
    lines.append(f"thermal throttle to {THROTTLE}x (never recovers), "
                 f"{REQUESTS} Poisson requests, deadline "
                 f"{setting[0]} ms, seed {SEED}")
    emit("netcut_online", lines)

    assert closed.metrics.miss_rate < 0.05
    assert svr.metrics.miss_rate < 0.05
    assert static.metrics.miss_rate > 0.20
    # the loop actually closed: fits applied, ladder rebuilt, and the
    # serving rung moved off the profiled-optimal choice
    c = closed.metrics.counters
    assert c["reestimates"].value > 0
    assert c["ladder_rebuilds"].value > 0
    assert closed.final_rung != ladder.rungs[0].name
    # the re-fit converged on the throttle's true slowdown
    assert max(scales) == pytest.approx(THROTTLE, rel=0.15)
    # nothing is lost to the rebuild: every admitted request is accounted
    assert c["completed"].value + c["dropped"].value == c["admitted"].value


def test_bench_online_deterministic_across_hashseeds(benchmark):
    """Two interpreters with different hash seeds -> identical snapshots.

    The re-fit path iterates dicts of per-rung sample buffers and feeds
    pooled observations to the SVR; any hash-order dependence would make
    the "deterministic" recovery differ between processes.
    """
    code = (
        "import json, sys\n"
        "sys.path.insert(0, %r)\n"
        "from repro.device import xavier\n"
        "from repro.faults import FaultInjector, ThermalThrottle\n"
        "from repro.obs import DriftMonitor\n"
        "from repro.serve import (Server, ServerConfig, TRNLadder,\n"
        "                         poisson_trace)\n"
        "from repro.zoo import build_network\n"
        "base = build_network('mobilenet_v1_0.5').build(0)\n"
        "ladder = TRNLadder.from_base(base, xavier(), num_classes=5,\n"
        "                             max_rungs=6)\n"
        "full = ladder.rungs[0].estimate_ms(1)\n"
        "deadline = round(1.3 * full, 3)\n"
        "trace = poisson_trace(%d, 0.4e3 / full, deadline, rng=%d)\n"
        "span = trace[-1].arrival_ms\n"
        "faults = FaultInjector([ThermalThrottle(start_ms=0.1 * span,\n"
        "    duration_ms=10 * span, factor=%r, ramp_ms=0.03 * span)],\n"
        "    seed=%d)\n"
        "drift = DriftMonitor(threshold=0.2, window=16,\n"
        "                     min_observations=8, cooldown=8)\n"
        "server = Server(ladder, ServerConfig(deadline_ms=deadline,\n"
        "    execute=False, seed=%d, adaptive=False,\n"
        "    online_reestimation=True, reestimate_method='svr',\n"
        "    reestimate_cooldown_ms=10.0, reestimate_min_samples=8,\n"
        "    reestimate_max_samples=16), drift=drift, faults=faults)\n"
        "result = server.run_trace(trace)\n"
        "print(json.dumps(result.metrics.snapshot(), sort_keys=True))\n"
    ) % (os.path.join(REPO, "src"), REQUESTS, SEED, THROTTLE, SEED, SEED)

    def replay(hashseed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout

    first = benchmark.pedantic(replay, args=("0",), rounds=1)
    second = replay("31337")
    assert first == second
    snap = json.loads(first)
    assert snap["counters"]["reestimates"] > 0
    assert snap["counters"]["completed"] > 0
