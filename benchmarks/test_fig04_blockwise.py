"""Fig. 4 — blockwise vs iterative (exhaustive) layer removal, InceptionV3.

The paper compares removing whole inception modules against exhaustively
cutting after every layer and finds that keeping partial blocks buys at
most ~0.03 accuracy — the justification for the blockwise search space.
"""

import numpy as np
import pytest

from conftest import emit


@pytest.fixture(scope="module")
def iterative(wb):
    return wb.iterative_exploration("inception_v3")


@pytest.fixture(scope="module")
def blockwise(exploration):
    return exploration.for_base("inception_v3")


def test_fig04_blockwise_vs_iterative(iterative, blockwise, benchmark):
    it_rows = benchmark(iterative.for_base, "inception_v3")
    lines = [f"{'cut kind':10s} {'layers_removed':>14} {'latency_ms':>11} "
             f"{'accuracy':>9}"]
    for r in blockwise:
        lines.append(f"{'block':10s} {r.layers_removed:>14d} "
                     f"{r.latency_ms:>11.3f} {r.accuracy:>9.4f}")
    for r in it_rows[:: max(1, len(it_rows) // 40)]:
        lines.append(f"{'iterative':10s} {r.layers_removed:>14d} "
                     f"{r.latency_ms:>11.3f} {r.accuracy:>9.4f}")
    emit("fig04_blockwise_vs_iterative", lines)

    # the iterative space is an order of magnitude larger
    assert len(it_rows) > 10 * len([r for r in blockwise
                                    if r.blocks_removed != 0])

    # paper claim: intra-block cutpoints gain little accuracy over the
    # nearest block boundary that removes at least as many layers
    block_pts = [(r.layers_removed, r.accuracy) for r in blockwise]
    gains = []
    for r in it_rows:
        if r.blocks_removed is not None:
            continue  # this IS a block boundary
        # deepest block cut that removes no more layers than this cutpoint
        candidates = [acc for layers, acc in block_pts
                      if layers >= r.layers_removed]
        if not candidates:
            continue
        gains.append(r.accuracy - max(candidates))
    gains = np.array(gains)
    # median intra-block gain is negligible (paper: < 0.03)
    assert np.median(gains) < 0.03


def test_fig04_blockwise_spans_same_latency_range(iterative, blockwise,
                                                  benchmark):
    it_rows = benchmark(iterative.for_base, "inception_v3")
    it_lat = [r.latency_ms for r in it_rows]
    bw_lat = [r.latency_ms for r in blockwise]
    # blockwise endpoints cover the full latency range of iterative removal
    assert min(bw_lat) <= min(it_lat) * 1.1
    assert max(bw_lat) >= max(it_lat) * 0.9
