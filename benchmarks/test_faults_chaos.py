"""Chaos benchmark — serving resilience under injected device faults.

Not a paper figure: NetCut's evaluation assumes a well-behaved device;
this measures what happens when the device misbehaves. A seeded
straggler-storm scenario (repro.faults) hits every rung of the
MobileNetV1(0.5) TRN ladder with 7-13x latency spikes on 35% of
inferences over the middle 60% of a Poisson trace. The resilient engine
(timeouts + retry-on-a-faster-rung + circuit breakers) must hold the
deadline-miss rate under 5% where the undefended engine exceeds 20%.

The determinism benchmark additionally replays the same scenario in two
subprocesses started with different ``PYTHONHASHSEED`` values and asserts
the metrics snapshots are byte-identical — the regression guard for the
hash-randomized-seed bug this PR fixed.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.device import xavier
from repro.faults import build_scenario
from repro.serve import Server, ServerConfig, TRNLadder, poisson_trace
from repro.zoo import build_network

from conftest import emit

REQUESTS = 400
DEADLINE_MS = 3.0
SEED = 0
TIMEOUT_FACTOR = 1.5
MAX_RETRIES = 4

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def ladder():
    base = build_network("mobilenet_v1_0.5").build(0)
    return TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)


@pytest.fixture(scope="module")
def trace(ladder):
    # the full TRN's single-request capacity: feasible when healthy,
    # hopeless once a third of inferences straggle by an order of magnitude
    rate_rps = 1e3 / ladder.rungs[0].estimate_ms(1)
    return poisson_trace(REQUESTS, rate_rps, DEADLINE_MS, rng=SEED)


def _run(ladder, trace, resilient: bool):
    scenario = build_scenario("straggler-storm", trace[-1].arrival_ms,
                              seed=SEED)
    config = ServerConfig(deadline_ms=DEADLINE_MS, execute=False, seed=SEED,
                          resilience=resilient,
                          exec_timeout_factor=TIMEOUT_FACTOR,
                          max_retries=MAX_RETRIES)
    server = Server(ladder, config, faults=scenario.injector())
    return server.run_trace(trace)


def test_bench_straggler_storm(ladder, trace, benchmark):
    """Resilience holds <5% misses where the undefended engine blows up."""
    resilient = benchmark(_run, ladder, trace, True)
    undefended = _run(ladder, trace, False)

    lines = [f"{'engine':12s} {'miss%':>8} {'timeouts':>9} {'retries':>8} "
             f"{'breaker':>8} {'dropped':>8}"]
    for name, res in (("resilient", resilient), ("undefended", undefended)):
        c = res.metrics.counters
        lines.append(
            f"{name:12s} {100 * res.metrics.miss_rate:>8.2f} "
            f"{c['timeouts'].value:>9d} {c['retries'].value:>8d} "
            f"{c['breaker_opens'].value:>8d} {c['dropped'].value:>8d}")
    lines.append(f"straggler-storm seed {SEED}, {REQUESTS} Poisson "
                 f"requests, deadline {DEADLINE_MS} ms, "
                 f"timeout {TIMEOUT_FACTOR}x predicted, "
                 f"max {MAX_RETRIES} retries")
    emit("faults_chaos", lines)

    assert resilient.metrics.miss_rate < 0.05
    assert undefended.metrics.miss_rate > 0.20
    # resilience never loses requests, it re-routes them
    c = resilient.metrics.counters
    assert c["completed"].value + c["dropped"].value == c["admitted"].value
    assert c["timeouts"].value > 0


def test_bench_chaos_deterministic_across_hashseeds(benchmark):
    """Two interpreters with different hash seeds -> identical snapshots.

    Before the stable_seed fix, the samplers were seeded from
    ``hash((name, spec))``, so the whole chaos replay differed between
    processes — "reproducible" numbers that changed on every run.
    """
    code = (
        "import json, sys\n"
        "sys.path.insert(0, %r)\n"
        "from repro.device import xavier\n"
        "from repro.faults import build_scenario\n"
        "from repro.serve import (Server, ServerConfig, TRNLadder,\n"
        "                         poisson_trace)\n"
        "from repro.zoo import build_network\n"
        "base = build_network('mobilenet_v1_0.5').build(0)\n"
        "ladder = TRNLadder.from_base(base, xavier(), num_classes=5,\n"
        "                             max_rungs=6)\n"
        "trace = poisson_trace(%d, 1e3 / ladder.rungs[0].estimate_ms(1),\n"
        "                      %r, rng=%d)\n"
        "sc = build_scenario('straggler-storm', trace[-1].arrival_ms,\n"
        "                    seed=%d)\n"
        "server = Server(ladder, ServerConfig(deadline_ms=%r,\n"
        "    execute=False, seed=%d, resilience=True,\n"
        "    exec_timeout_factor=%r, max_retries=%d),\n"
        "    faults=sc.injector())\n"
        "result = server.run_trace(trace)\n"
        "print(json.dumps(result.metrics.snapshot(), sort_keys=True))\n"
    ) % (os.path.join(REPO, "src"), REQUESTS, DEADLINE_MS, SEED, SEED,
         DEADLINE_MS, SEED, TIMEOUT_FACTOR, MAX_RETRIES)

    def replay(hashseed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout

    first = benchmark.pedantic(replay, args=("0",), rounds=1)
    second = replay("31337")
    assert first == second
    assert json.loads(first)["counters"]["completed"] > 0
