"""Serving benchmark — throughput and deadline behaviour of repro.serve.

Not a paper figure: NetCut ends at deployment, this measures what the
deployed TRNs buy at serving time. A fixed seeded Poisson trace overloads
the full TRN of MobileNetV1(0.5) on the simulated Xavier; the benchmark
reports simulated requests/s and the deadline-miss rate with the ladder
pinned (full TRN only) versus adaptive (degrading to shorter TRNs under
pressure), plus the wall-clock cost of the simulator itself.
"""

import pytest

from repro.device import xavier
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import poisson_trace
from repro.zoo import build_network

from conftest import emit

REQUESTS = 600
DEADLINE_MS = 0.9


@pytest.fixture(scope="module")
def ladder():
    base = build_network("mobilenet_v1_0.5").build(0)
    return TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)


@pytest.fixture(scope="module")
def trace(ladder):
    # 1.3x the full TRN's single-request capacity: unstable without help
    rate_rps = 1.3e3 / ladder.rungs[0].estimate_ms(1)
    return poisson_trace(REQUESTS, rate_rps, DEADLINE_MS, rng=0)


def _throughput_rps(result):
    span_ms = max(r.finish_ms for r in result.completed)
    return len(result.completed) / span_ms * 1e3


def test_bench_serve_ladder(ladder, trace, benchmark):
    """Adaptive serving: the ladder absorbs the overload."""
    server = Server(ladder, ServerConfig(deadline_ms=DEADLINE_MS,
                                         execute=False, seed=0))
    result = benchmark(server.run_trace, trace)
    pinned = Server(ladder, ServerConfig(
        deadline_ms=DEADLINE_MS, execute=False, seed=0,
        adaptive=False, admission_control=False)).run_trace(trace)

    lines = [f"{'policy':12s} {'req/s':>10} {'miss%':>8} {'rejected':>9} "
             f"{'transitions':>12}"]
    for name, res in (("ladder", result), ("pinned-full", pinned)):
        c = res.metrics.counters
        lines.append(
            f"{name:12s} {_throughput_rps(res):>10.0f} "
            f"{100 * res.metrics.miss_rate:>8.2f} "
            f"{c['rejected'].value:>9d} "
            f"{c['degrade_events'].value + c['upgrade_events'].value:>12d}")
    lines.append(f"deadline {DEADLINE_MS} ms, {REQUESTS} Poisson requests, "
                 f"seed 0")
    emit("serve_throughput", lines)

    assert result.metrics.miss_rate < 0.05
    assert pinned.metrics.miss_rate >= 0.20
    assert _throughput_rps(result) > _throughput_rps(pinned)


def test_bench_serve_admission_only(ladder, trace, benchmark):
    """Admission control without the ladder: rejects instead of degrading."""
    server = Server(ladder, ServerConfig(
        deadline_ms=DEADLINE_MS, execute=False, seed=0, adaptive=False))
    result = benchmark(server.run_trace, trace)
    c = result.metrics.counters
    assert c["rejected"].value + c["admitted"].value == REQUESTS
