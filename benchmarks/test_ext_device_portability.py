"""Device portability: NetCut re-selects per platform (extension).

The methodology's promise is that adapting to a new device only requires
re-running the cheap latency estimation — no new training sweep. This
benchmark runs Algorithm 1 against three device profiles spanning the
embedded spectrum and checks the expected monotonicity: weaker devices
force deeper cuts (or infeasibility), stronger devices admit bigger TRNs.
"""

import pytest

from repro.device import agx_boosted, nano, xavier
from repro.experiments import Workbench

from conftest import emit


@pytest.fixture(scope="module")
def results(wb):
    out = {}
    for spec in (nano(), xavier(), agx_boosted()):
        bench = Workbench(wb.config, device=spec, cache_dir=wb.cache_dir)
        bench._bases = wb._bases  # share the pretrained networks
        bench._hands = wb._hands
        out[spec.name] = bench.netcut("profiler")
    return out


def test_portability_selections_differ(results, benchmark):
    rows = benchmark(lambda: {
        name: (r.best.trn_name, r.best.accuracy,
               sum(c.blocks_removed for c in r.candidates if c.feasible))
        for name, r in results.items()})
    lines = [f"{'device':26s} {'winner':26s} {'accuracy':>9} "
             f"{'total_blocks_removed':>21}"]
    for name, (winner, acc, blocks) in rows.items():
        lines.append(f"{name:26s} {winner:26s} {acc:>9.4f} {blocks:>21d}")
    emit("ext_device_portability", lines)

    # weaker device -> more blocks removed across the portfolio
    nano_blocks = rows["jetson-nano-sim"][2]
    xavier_blocks = rows["jetson-xavier-sim"][2]
    agx_blocks = rows["jetson-agx-boosted-sim"][2]
    assert nano_blocks > xavier_blocks > agx_blocks


def test_portability_stronger_device_higher_accuracy(results, benchmark):
    """A faster device admits larger TRNs, so the winner's accuracy is
    monotone in device strength."""
    accs = benchmark(lambda: [results[n].best.accuracy
                              for n in ("jetson-nano-sim",
                                        "jetson-xavier-sim",
                                        "jetson-agx-boosted-sim")])
    assert accs[0] <= accs[1] + 0.01
    assert accs[1] <= accs[2] + 0.01


def test_portability_every_device_finds_feasible_trns(results, benchmark):
    feasible = benchmark(lambda: {
        name: sum(1 for c in r.candidates if c.feasible)
        for name, r in results.items()})
    for name, count in feasible.items():
        assert count >= 5, name
