"""Performance benchmarks of the NumPy DNN substrate itself.

Not a paper figure — these track the cost of the framework primitives the
reproduction's wall-clock depends on: per-architecture forward passes,
training steps, feature recording, TRN construction and the device model.
Useful for catching performance regressions when modifying the framework.
"""

import numpy as np
import pytest

from repro.device import network_latency, xavier
from repro.nn.losses import softmax_cross_entropy
from repro.train import record_gap_features
from repro.trim import build_trn, enumerate_blockwise
from repro.zoo import build_network


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(0).normal(size=(16, 32, 32, 3)).astype(
        np.float32)


@pytest.mark.parametrize("name", ["mobilenet_v1_0.5", "resnet50",
                                  "densenet121", "inception_v3"])
def test_bench_forward(name, batch, benchmark):
    net = build_network(name).build(0)
    out = benchmark(net.forward, batch)
    assert out.shape == (16, 20)


def test_bench_training_step(batch, benchmark):
    net = build_network("mobilenet_v1_0.5").build(0)
    net.output_name = "logits"
    y = np.full((16, 20), 0.05, dtype=np.float32)

    def step():
        net.zero_grad()
        _, loss = net.forward_backward(batch, loss_fn=softmax_cross_entropy,
                                       y=y, training=True)
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_bench_feature_recording(batch, benchmark):
    net = build_network("densenet121").build(0)
    nodes = [c.cut_node for c in enumerate_blockwise(net)]
    feats = benchmark(record_gap_features, net, batch, nodes)
    assert len(feats) == len(set(nodes))


def test_bench_trn_construction(benchmark):
    net = build_network("densenet121").build(0)
    cut = enumerate_blockwise(net)[10]
    trn = benchmark(build_trn, net, cut.cut_node, 5)
    assert trn.built


def test_bench_latency_model(benchmark):
    net = build_network("inception_v3").build(0)
    spec = xavier()
    ms = benchmark(lambda: network_latency(net, spec).total_ms)
    assert ms > 0


@pytest.fixture(scope="module")
def samples32():
    rng = np.random.default_rng(1)
    return [rng.normal(size=(32, 32, 3)).astype(np.float32)
            for _ in range(32)]


def test_bench_forward_batch1_loop(samples32, benchmark):
    """Baseline for micro-batching: 32 per-sample forward passes."""
    net = build_network("mobilenet_v1_0.5").build(0)
    outs = benchmark(lambda: [net.forward(x) for x in samples32])
    assert len(outs) == 32 and outs[0].shape == (20,)


def test_bench_forward_batch32(samples32, benchmark):
    """The micro-batching hot path: the same 32 samples as one stacked
    forward. Compare mean time against the batch-1 loop above — the gap is
    the amortised interpreter/dispatch overhead the serving batcher wins."""
    net = build_network("mobilenet_v1_0.5").build(0)
    out = benchmark(net.forward_batch, samples32)
    assert out.shape == (32, 20)


def test_batch32_beats_batch1_loop(samples32):
    """The throughput claim itself, asserted (not just benchmarked)."""
    import time

    net = build_network("mobilenet_v1_0.5").build(0)
    net.forward_batch(samples32)            # warm both code paths
    [net.forward(x) for x in samples32]

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    batched = best_of(lambda: net.forward_batch(samples32))
    looped = best_of(lambda: [net.forward(x) for x in samples32])
    assert batched < looped


def test_bench_im2col(benchmark):
    from repro.nn import functional as F

    x = np.random.default_rng(0).normal(size=(16, 32, 32, 16)).astype(
        np.float32)
    cols = benchmark(F.im2col, x, 3, 3, 1)
    assert cols.shape == (16, 30, 30, 144)
