"""Scale-out benchmark — multi-replica serving under overload.

Not a paper figure: NetCut evaluates one device, this measures the
cluster layer built on top of it. A seeded Poisson trace arrives faster
than one Xavier-class replica can serve even on its fastest TRN, so the
single-replica baseline saturates (queue-full rejections plus deadline
misses on nearly everything it admits). The same trace routed across a
3-replica fleet with deadline-aware power-of-two-choices must admit at
least twice as much work and hold the deadline-miss rate under 5%.

The replica-kill benchmark layers repro.faults on top: a rung-failure
scenario kills every rung of one replica over the middle of the trace;
its breakers open, the router routes around it, and the fleet-wide
conservation law ``completed + dropped == admitted`` must still hold at
drain with the cluster miss rate under 10%.

The determinism benchmark replays the scale-out run in two subprocesses
started with different ``PYTHONHASHSEED`` values and asserts the cluster
snapshots are byte-identical — routing (including the P2C sampler) must
draw nothing from Python's randomized hashing.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cluster import Router, homogeneous_replicas, make_policy
from repro.device import xavier
from repro.faults import build_scenario
from repro.serve import ServerConfig
from repro.workload import poisson_trace
from repro.zoo import build_network

from conftest import emit

REQUESTS = 2000
DEADLINE_MS = 3.0
RATE_RPS = 44e3        # ~1.4x the fastest rung's batched capacity per replica
KILL_RATE_RPS = 30e3   # two surviving replicas can absorb this
SEED = 0

# a controller tuned for short traces: react within a handful of batches
CONFIG_KWARGS = dict(deadline_ms=DEADLINE_MS, execute=False, seed=SEED,
                     queue_capacity=64, window=16, min_observations=8,
                     cooldown=8)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def base():
    return build_network("mobilenet_v1_0.5").build(0)


@pytest.fixture(scope="module")
def trace():
    return poisson_trace(REQUESTS, RATE_RPS, DEADLINE_MS, rng=SEED)


def _run_cluster(base, trace, n_replicas, faults=None, resilience=False):
    config = ServerConfig(resilience=resilience, **CONFIG_KWARGS)
    replicas = homogeneous_replicas(base, xavier(), n_replicas, config,
                                    num_classes=5, max_rungs=6, faults=faults)
    router = Router(replicas, make_policy("p2c-deadline", SEED))
    return router.run(trace)


def _throughput_rps(result, trace):
    span_s = (trace[-1].arrival_ms - trace[0].arrival_ms) / 1e3
    admitted = result.metrics.aggregate().counters["admitted"].value
    return admitted / span_s


def test_bench_cluster_scaleout(base, trace, benchmark):
    """3 replicas under p2c-deadline: >=2x admitted throughput, <5% miss."""
    cluster = benchmark(_run_cluster, base, trace, 3)
    single = _run_cluster(base, trace, 1)

    lines = [f"{'fleet':12s} {'miss%':>8} {'admit/s':>10} {'p50ms':>8} "
             f"{'p95ms':>8} {'p99ms':>8} {'rejected':>9}"]
    for name, res in (("1 replica", single), ("3 replicas", cluster)):
        agg = res.metrics.aggregate()
        lines.append(
            f"{name:12s} {100 * res.miss_rate:>8.2f} "
            f"{_throughput_rps(res, trace):>10.0f} "
            f"{agg.latency.quantile(0.50):>8.3f} "
            f"{agg.latency.quantile(0.95):>8.3f} "
            f"{agg.latency.quantile(0.99):>8.3f} "
            f"{len(res.rejected):>9d}")
    lines.append(f"p2c-deadline routing, {REQUESTS} Poisson requests at "
                 f"{RATE_RPS:.0f} rps, deadline {DEADLINE_MS} ms, seed "
                 f"{SEED}")
    emit("cluster_scaleout", lines)

    # the single replica is saturated; the 3-replica fleet is healthy
    assert single.miss_rate > 0.20
    assert cluster.miss_rate < 0.05
    ratio = _throughput_rps(cluster, trace) / _throughput_rps(single, trace)
    assert ratio >= 2.0
    # every request is accounted for at cluster level
    counters = cluster.metrics.counters
    assert counters["arrived"].value == REQUESTS
    assert (counters["routed"].value
            + counters["no_replica"].value) == REQUESTS


def test_bench_cluster_replica_kill(base, benchmark):
    """Killing one replica mid-run: routed around, nothing unaccounted."""
    trace = poisson_trace(REQUESTS, KILL_RATE_RPS, DEADLINE_MS, rng=SEED)

    def run():
        kill = build_scenario("rung-failure", trace[-1].arrival_ms,
                              seed=SEED)
        return _run_cluster(base, trace, 3, faults={0: kill.injector()},
                            resilience=True)

    result = benchmark(run)
    agg = result.metrics.aggregate()
    c = agg.counters

    lines = [f"cluster miss% {100 * result.miss_rate:.2f}  "
             f"breaker_opens {c['breaker_opens'].value}  "
             f"dropped {c['dropped'].value}"]
    for replica in result.replicas:
        rc = replica.metrics.counters
        lines.append(f"{replica.name}: routed "
                     f"{result.metrics.per_replica.get(replica.name, 0):>5d}"
                     f"  completed {rc['completed'].value:>5d}"
                     f"  dropped {rc['dropped'].value:>4d}")
    lines.append(f"rung-failure on r0, {REQUESTS} Poisson requests at "
                 f"{KILL_RATE_RPS:.0f} rps, deadline {DEADLINE_MS} ms, "
                 f"seed {SEED}")
    emit("cluster_replica_kill", lines)

    assert result.miss_rate < 0.10
    # the dead replica's breakers opened and traffic shifted away from it
    assert c["breaker_opens"].value > 0
    dead, healthy = result.replicas[0], result.replicas[1:]
    assert all(result.metrics.per_replica[r.name]
               > result.metrics.per_replica[dead.name] for r in healthy)
    # conservation at drain, fleet-wide
    assert c["completed"].value + c["dropped"].value == c["admitted"].value


def test_bench_cluster_deterministic_across_hashseeds(benchmark):
    """Two interpreters with different hash seeds -> identical snapshots."""
    code = (
        "import json, sys\n"
        "sys.path.insert(0, %r)\n"
        "from repro.cluster import Router, homogeneous_replicas, "
        "make_policy\n"
        "from repro.device import xavier\n"
        "from repro.serve import ServerConfig\n"
        "from repro.workload import poisson_trace\n"
        "from repro.zoo import build_network\n"
        "base = build_network('mobilenet_v1_0.5').build(0)\n"
        "trace = poisson_trace(%d, %r, %r, rng=%d)\n"
        "config = ServerConfig(deadline_ms=%r, execute=False, seed=%d,\n"
        "    queue_capacity=64, window=16, min_observations=8, cooldown=8)\n"
        "replicas = homogeneous_replicas(base, xavier(), 3, config,\n"
        "                                num_classes=5, max_rungs=6)\n"
        "router = Router(replicas, make_policy('p2c-deadline', %d))\n"
        "result = router.run(trace)\n"
        "print(json.dumps(result.metrics.snapshot(), sort_keys=True))\n"
    ) % (os.path.join(REPO, "src"), REQUESTS, RATE_RPS, DEADLINE_MS, SEED,
         DEADLINE_MS, SEED, SEED)

    def replay(hashseed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout

    first = benchmark.pedantic(replay, args=("0",), rounds=1)
    second = replay("31337")
    assert first == second
    snapshot = json.loads(first)
    assert snapshot["aggregate"]["counters"]["completed"] > 0
    assert set(snapshot["replicas"]) == {"r0", "r1", "r2"}
