"""Related-work comparisons (paper §II), implemented on the same substrates.

The paper positions NetCut against BranchyNet (runtime early exiting on a
single network) and NetAdapt (iterative per-network pruning with retraining
every step). These benchmarks quantify the positioning claims:

- TRNs are static, so their latency is a *hard* bound; BranchyNet's
  threshold tuning trades accuracy against *average* latency, which is the
  wrong guarantee for a control loop with a deadline — and at the deadline
  its accuracy does not beat the NetCut TRN.
- NetAdapt retrains one candidate per prunable layer per iteration, so its
  exploration cost for a *single* network rivals NetCut's cost for all
  seven; and on launch-overhead-dominated hardware channel pruning cannot
  remove kernels, so it recovers less latency per accuracy point than
  layer removal.
"""

import numpy as np
import pytest

from repro.device.latency import network_latency
from repro.extensions import NetAdaptConfig, build_branchy, run_netadapt
from repro.hand import DEFAULT_DEADLINE_MS

from conftest import emit


@pytest.fixture(scope="module")
def hands(wb):
    return wb.hands()


def test_ext_branchynet_vs_trns(wb, exploration, hands, benchmark):
    train, test = hands
    base = wb.base("densenet121")

    def build_and_sweep():
        branchy = build_branchy(base, wb.device, train.x, train.y,
                                head_epochs=wb.config.head_epochs)
        return branchy.tradeoff_curve(
            test.x, test.y, np.linspace(0.2, 1.6, 8))

    curve = benchmark.pedantic(build_and_sweep, rounds=1, iterations=1)
    lines = [f"{'threshold':>9} {'accuracy':>9} {'mean_latency_ms':>16}"]
    for t, acc, lat in curve:
        lines.append(f"{t:>9.2f} {acc:>9.4f} {lat:>16.3f}")

    # the best TRN under the hard deadline
    feasible = [r for r in exploration.records
                if r.latency_ms <= DEFAULT_DEADLINE_MS]
    best_trn = max(feasible, key=lambda r: r.accuracy)
    lines.append(f"best TRN at hard {DEFAULT_DEADLINE_MS} ms: "
                 f"{best_trn.trn_name} acc={best_trn.accuracy:.4f}")
    emit("ext_branchynet", lines)

    # early exiting does trade latency for accuracy ...
    lats = [lat for _, _, lat in curve]
    assert max(lats) > min(lats) * 1.2
    # ... but where its AVERAGE latency meets the deadline, its accuracy
    # does not beat the static TRN that meets the deadline on EVERY frame
    at_deadline = [acc for _, acc, lat in curve
                   if lat <= DEFAULT_DEADLINE_MS]
    if at_deadline:  # reachable only at aggressive thresholds
        assert max(at_deadline) <= best_trn.accuracy + 0.01


def test_ext_netadapt_vs_netcut(wb, exploration, hands, benchmark):
    """Same budget, same network (MobileNetV1(0.5), NetAdapt's own target
    architecture): compare the adapted network and its exploration cost
    against the NetCut TRN of that network."""
    train, test = hands
    trn0 = wb.transfer_model("mobilenet_v1_0.5")
    start_ms = network_latency(trn0, wb.device).total_ms
    budget = 0.9 * start_ms

    def adapt():
        return run_netadapt(
            trn0, budget, wb.device, train.x, train.y, test.x, test.y,
            NetAdaptConfig(step_ms=0.012, head_epochs_short=10,
                           head_epochs_final=wb.config.head_epochs),
            cost_model=wb.cost_model)

    result = benchmark.pedantic(adapt, rounds=1, iterations=1)

    # NetCut's TRN of the same base at the same budget
    rows = [r for r in exploration.for_base("mobilenet_v1_0.5")
            if r.latency_ms <= budget]
    netcut_trn = max(rows, key=lambda r: r.accuracy)

    emit("ext_netadapt", [
        f"budget: {budget:.3f} ms (from {start_ms:.3f} ms)",
        f"netadapt: acc={result.accuracy:.4f} lat={result.latency_ms:.3f} "
        f"candidates_trained={result.candidates_trained} "
        f"simulated_hours={result.train_hours:.2f}",
        f"netcut TRN: {netcut_trn.trn_name} acc={netcut_trn.accuracy:.4f} "
        f"lat={netcut_trn.latency_ms:.3f} "
        f"simulated_hours={netcut_trn.train_hours:.2f}",
    ])

    # the paper's claim: NetAdapt needs many retrained candidates for ONE
    # network, while NetCut retrains one TRN per network
    assert result.candidates_trained >= 5
    assert result.train_hours > 2 * netcut_trn.train_hours
    # and on launch-dominated hardware, layer removal reaches the budget
    # with at least comparable accuracy
    assert netcut_trn.accuracy >= result.accuracy - 0.02
