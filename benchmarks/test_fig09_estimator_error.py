"""Fig. 9 — estimation accuracy of both methods across all networks.

Paper numbers: the profiler-based estimator averages 3.5% relative error
(0.024 ms), the analytical RBF-SVR 4.28% (0.029 ms), and linear regression
an unacceptable 23.81% (0.092 ms). The analytical model beats the profiler
on 2 networks (ResNet-50 and DenseNet-121).
"""

import numpy as np
import pytest

from repro.estimators import relative_error
from repro.trim import removed_node_set

from conftest import emit


@pytest.fixture(scope="module")
def predictions(wb, latency_points):
    truth = np.array([p.measured_ms for p in latency_points])
    profiler = wb.profiler_adapter()
    prof = np.array([
        profiler._estimator_for(wb.base(p.base_name)).estimate(
            removed_node_set(wb.base(p.base_name), p.cut_node))
        for p in latency_points])
    svr_model, test_idx = wb.analytical_model("rbf")
    lin_model, _ = wb.analytical_model("linear-ols")
    feats = [p.features for p in latency_points]
    return truth, prof, svr_model.predict(feats), lin_model.predict(feats), \
        test_idx


def test_fig09_per_network_errors(predictions, latency_points, wb,
                                  benchmark):
    truth, prof, svr, lin, _ = predictions
    names = [p.base_name for p in latency_points]

    def per_network():
        table = {}
        for net in wb.config.networks:
            mask = np.array([n == net for n in names])
            table[net] = (relative_error(prof[mask], truth[mask]),
                          relative_error(svr[mask], truth[mask]),
                          relative_error(lin[mask], truth[mask]))
        return table

    table = benchmark(per_network)
    lines = [f"{'network':20s} {'profiler%':>10} {'svr%':>8} {'linear%':>9}"]
    for net, (pe, se, le) in table.items():
        lines.append(f"{net:20s} {pe:>10.2f} {se:>8.2f} {le:>9.2f}")
    emit("fig09_estimator_error", lines)

    for net, (pe, se, le) in table.items():
        assert pe < 8.0, net          # profiler is accurate everywhere
        assert le > se, net           # linear is always worse than the SVR


def test_fig09_average_errors_match_paper_scale(predictions, benchmark):
    truth, prof, svr, lin, test_idx = predictions
    hold = np.zeros(len(truth), dtype=bool)
    hold[test_idx] = True

    prof_err = benchmark(relative_error, prof, truth)
    svr_err = relative_error(svr[hold], truth[hold])
    lin_err = relative_error(lin[hold], truth[hold])
    prof_abs = float(np.abs(prof - truth).mean())
    svr_abs = float(np.abs(svr[hold] - truth[hold]).mean())
    lin_abs = float(np.abs(lin[hold] - truth[hold]).mean())
    emit("fig09_averages", [
        f"profiler: {prof_err:.2f}% ({prof_abs:.4f} ms)   "
        f"[paper: 3.5% / 0.024 ms]",
        f"svr:      {svr_err:.2f}% ({svr_abs:.4f} ms)   "
        f"[paper: 4.28% / 0.029 ms]",
        f"linear:   {lin_err:.2f}% ({lin_abs:.4f} ms)   "
        f"[paper: 23.81% / 0.092 ms]"])

    # paper-scale assertions: both estimators are a few percent, the
    # profiler is at least as good, linear is several times worse
    assert prof_err < 6.0
    assert svr_err < 8.0
    assert prof_err <= svr_err
    assert lin_err > 2 * svr_err


def test_fig09_svr_competitive_with_profiler(predictions, latency_points,
                                             wb, benchmark):
    """The paper finds the analytical model ahead of the profiler on 2 of
    7 networks. Our profiler is more accurate than the paper's (1.6% vs
    3.5% average), so we assert the corresponding shape property: the
    device-agnostic SVR comes within 3 percentage points of the profiler
    on at least 2 networks — it is competitive despite never touching the
    device."""
    truth, prof, svr, _, _ = predictions
    names = [p.base_name for p in latency_points]

    def close_networks():
        close = 0
        for net in wb.config.networks:
            mask = np.array([n == net for n in names])
            gap = (relative_error(svr[mask], truth[mask])
                   - relative_error(prof[mask], truth[mask]))
            if gap < 3.0:
                close += 1
        return close

    assert benchmark(close_networks) >= 2
