"""Ladder-builder Pareto bake-off — acceptance for the builder subsystem.

Every registered :class:`repro.netcut.LadderBuilder` strategy (greedy
layer removal, filter pruning, HALP global channel selection, DP depth
selection) builds rungs for the same zoo nets on the same simulated
device, and the bake-off asserts the contract the serving stack relies
on: every rung is a valid, servable network (forwards, round-trips
through the deployment artifact format with its builder tag intact,
loads into a TRN ladder); and the mixed-strategy ladder's Pareto
frontier dominates-or-ties each single-strategy ladder — both
geometrically (:func:`repro.metrics.frontier_dominates`) and under the
seeded Poisson overload, where serving the mixed frontier must miss no
more deadlines than serving any single strategy's frontier.

Fast path: everything here is analytic/virtual-time over rng-0 weights —
no Workbench, no pretraining — so it belongs to the bench-smoke subset.
"""

import numpy as np
import pytest

from repro.device import xavier
from repro.metrics import accuracy_at_deadline, frontier_dominates
from repro.netcut import (
    BUILDERS,
    artifact_points,
    build_rungs,
    frontier_artifacts,
    load_artifact,
    save_artifact,
)
from repro.serve import Server, ServerConfig, TRNLadder, poisson_trace
from repro.zoo import build_network

from conftest import emit

NETS = ["mobilenet_v1_0.5", "resnet50"]
MAX_RUNGS = 4
DEADLINE_FRAC = 0.6
REQUESTS = 400
SEED = 0


@pytest.fixture(scope="module", params=NETS)
def bakeoff(request):
    """(net name, per-strategy artifacts, deadline) for one zoo net."""
    spec = xavier()
    base = build_network(request.param).build(0)
    per_strategy = build_rungs(base, spec, max_rungs=MAX_RUNGS)
    full_ms = max(p.latency_ms
                  for p in artifact_points(per_strategy["greedy"]))
    return request.param, per_strategy, spec, DEADLINE_FRAC * full_ms


def _serve(artifacts, spec, deadline_ms, trace):
    """Accuracy-weighted on-time goodput of one ladder on a shared trace.

    Goodput is the bake-off's serving-level objective: accuracy actually
    delivered before the deadline, per offered request — it charges both
    misses and rejections, so ladders that reject everything score 0
    instead of showing a flattering 0% miss rate.
    """
    accuracy = {a.trn_name: a.accuracy for a in artifacts}
    ladder = TRNLadder.from_artifacts(artifacts, spec)
    config = ServerConfig(deadline_ms=deadline_ms, execute=False, seed=SEED,
                          queue_capacity=64, window=16, min_observations=8,
                          cooldown=8)
    result = Server(ladder, config).run_trace(trace)
    on_time = [r for r in result.completed if r.deadline_met]
    return sum(accuracy[r.rung] for r in on_time) / len(trace), result


def test_every_strategy_emits_valid_servable_rungs(bakeoff, tmp_path):
    name, per_strategy, spec, deadline_ms = bakeoff
    assert sorted(per_strategy) == sorted(BUILDERS)
    x = np.zeros((2, 32, 32, 3), dtype=np.float64)
    for strategy, artifacts in per_strategy.items():
        assert artifacts, f"{strategy} emitted no rungs for {name}"
        names = [a.trn_name for a in artifacts]
        assert len(set(names)) == len(names)
        for artifact in artifacts:
            assert artifact.builder == strategy
            assert artifact.measured_latency_ms > 0
            assert 0.0 <= artifact.accuracy <= 1.0
            out = artifact.network.forward(x)
            assert out.shape[0] == 2 and np.all(np.isfinite(out))
            # servable end to end: artifact -> disk -> ladder rung
            path = str(tmp_path / f"{artifact.trn_name}.npz")
            save_artifact(artifact, path)
            loaded = load_artifact(path)
            assert loaded.builder == strategy
            assert loaded.measured_latency_ms == artifact.measured_latency_ms
        ladder = TRNLadder.from_artifacts(artifacts, spec)
        assert len(ladder.rungs) == len(artifacts)
        assert all(r.estimate_ms(1) > 0 for r in ladder.rungs)


def test_mixed_frontier_dominates_every_single_strategy(bakeoff):
    name, per_strategy, spec, deadline_ms = bakeoff
    mixed = [a for strategy in sorted(per_strategy)
             for a in per_strategy[strategy]]
    mixed_points = artifact_points(mixed)
    rows = [f"# builder bake-off: {name} @ {spec.name}, "
            f"deadline {deadline_ms:.4f} ms",
            f"{'strategy':>14}  {'rungs':>5}  {'acc@deadline':>12}"]
    for strategy in sorted(per_strategy):
        points = artifact_points(per_strategy[strategy])
        assert frontier_dominates(mixed_points, points), (
            f"mixed frontier fails to dominate {strategy} on {name}")
        single = accuracy_at_deadline(points, deadline_ms)
        assert (accuracy_at_deadline(mixed_points, deadline_ms)
                >= single or np.isnan(single))
        rows.append(f"{strategy:>14}  {len(points):>5d}  {single:>12.4f}")
    rows.append(f"{'mixed':>14}  {len(mixed_points):>5d}  "
                f"{accuracy_at_deadline(mixed_points, deadline_ms):>12.4f}")
    front = frontier_artifacts(mixed)
    rows.append("")
    rows.append(f"# mixed frontier ({len(front)} rungs, slowest first)")
    for a in front:
        rows.append(f"{a.trn_name:>40}  {a.measured_latency_ms:>10.4f}  "
                    f"{a.accuracy:>8.4f}  [{a.builder}]")
    emit(f"builder_bakeoff_{name}", rows)
    # the mixed frontier is genuinely mixed: >1 strategy contributes
    assert len({a.builder for a in front}) > 1


def test_mixed_ladder_serves_overload_at_least_as_well(bakeoff):
    name, per_strategy, spec, deadline_ms = bakeoff
    mixed = [a for strategy in sorted(per_strategy)
             for a in per_strategy[strategy]]
    full_ms = max(a.measured_latency_ms for a in mixed)
    trace = poisson_trace(REQUESTS, 1.2e3 / full_ms, deadline_ms, rng=SEED)
    mixed_goodput, mixed_result = _serve(frontier_artifacts(mixed), spec,
                                         deadline_ms, trace)
    assert mixed_goodput > 0
    for strategy in sorted(per_strategy):
        single_goodput, _ = _serve(frontier_artifacts(per_strategy[strategy]),
                                   spec, deadline_ms, trace)
        # dominates-or-ties, with a small slack for hysteresis-controller
        # path differences (more rungs -> different step sequences)
        assert mixed_goodput >= 0.97 * single_goodput, (
            f"mixed ladder under-delivers vs {strategy} on {name}: "
            f"{mixed_goodput:.4f} vs {single_goodput:.4f}")
    # the served ladder carries its builder tags into the metrics surface
    ladder_snapshot = mixed_result.metrics.snapshot()["ladder"]
    assert {r["builder"] for r in ladder_snapshot} - {""}, (
        "served rungs lost their builder tags")
