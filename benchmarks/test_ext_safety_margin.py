"""Safety-margin extension: eliminating measured-deadline violations.

Quantifies the failure mode documented in EXPERIMENTS.md (estimator error
vs DenseNet's finely spaced cutpoints) and the fix: inflating every
estimate by a small safety margin trades a little accuracy for measured
deadline compliance.
"""

import pytest

from repro.device.runtime import measure_latency
from repro.hand import DEFAULT_DEADLINE_MS
from repro.netcut import MarginAdapter, run_netcut, violation_rate

from conftest import emit


@pytest.fixture(scope="module")
def margin_sweep(wb):
    results = {}
    for margin in (0.0, 0.02, 0.05):
        adapter = MarginAdapter(wb.profiler_adapter(), margin)
        results[margin] = run_netcut(
            wb.bases(), DEFAULT_DEADLINE_MS, adapter,
            retrain=wb.retrain_trn,
            measure=lambda trn: measure_latency(trn, wb.device).mean_ms,
            base_latencies_ms=wb.base_latencies(),
            cost_model=wb.cost_model)
    return results


def test_margin_reduces_violations(margin_sweep, benchmark):
    rates = benchmark(lambda: {m: violation_rate(r, DEFAULT_DEADLINE_MS)
                               for m, r in margin_sweep.items()})
    accs = {m: r.best.accuracy for m, r in margin_sweep.items()}
    lines = [f"{'margin':>7} {'violation_rate':>15} {'winner_accuracy':>16}"]
    for m in sorted(rates):
        lines.append(f"{m:>7.0%} {rates[m]:>15.2f} {accs[m]:>16.4f}")
    emit("ext_safety_margin", lines)

    # violations are monotone non-increasing in the margin and reach zero
    ordered = [rates[m] for m in sorted(rates)]
    assert ordered == sorted(ordered, reverse=True)
    assert rates[0.05] == 0.0


def test_margin_costs_little_accuracy(margin_sweep, benchmark):
    """The 5% margin's winner stays within a few percent of the
    no-margin winner while guaranteeing measured compliance."""
    accs = benchmark(lambda: {m: r.best.accuracy
                              for m, r in margin_sweep.items()})
    assert accs[0.05] > accs[0.0] - 0.05


def test_margin_winner_measured_feasible(margin_sweep, benchmark):
    best = benchmark(lambda: margin_sweep[0.05].best)
    assert best.measured_latency_ms <= DEFAULT_DEADLINE_MS
