"""Training-protocol ablations.

- The paper's two-phase fine-tuning (frozen head training, then full
  fine-tuning at 1e-4) versus the frozen-only protocol the big sweeps use:
  unfreezing buys some accuracy, so sweep accuracies are mild
  *underestimates* — conservative in the right direction.
- Seed stability: the qualitative Fig. 5 orderings do not depend on the
  dataset seed.
"""

import numpy as np

from repro.data import make_hands_dataset
from repro.train import TrainConfig, fine_tune
from repro.trim import enumerate_blockwise

from conftest import emit


def test_ablation_two_phase_finetuning(wb, benchmark):
    """Full two-phase fine-tuning matches or beats frozen-only training on
    the same TRN (it can move the pretrained features toward the task)."""
    base = wb.base("mobilenet_v1_0.5")
    cut = enumerate_blockwise(base)[1]  # remove 2 blocks
    train_data, test_data = wb.hands()

    def run_both():
        _, frozen_acc = wb.retrain_trn(base, cut)
        trn = wb.transfer_model("mobilenet_v1_0.5", cut)
        result = fine_tune(
            trn, train_data, test_data,
            TrainConfig(epochs_frozen=10, epochs_full=15, lr_full=3e-4,
                        batch_size=32, seed=0))
        return frozen_acc, result.test_accuracy

    frozen_acc, two_phase_acc = benchmark.pedantic(run_both, rounds=1,
                                                   iterations=1)
    emit("ablation_two_phase", [
        f"frozen-only head training: {frozen_acc:.4f}",
        f"two-phase fine-tuning:     {two_phase_acc:.4f}",
        "sweeps use the frozen protocol; its accuracies are conservative"])
    assert two_phase_acc > frozen_acc - 0.02


def test_ablation_seed_stability(wb, benchmark):
    """The Fig. 5 shape (accuracy decreasing with cut depth, wider net
    above narrower net) is stable across dataset seeds."""
    bases = [wb.base("mobilenet_v1_0.25"), wb.base("mobilenet_v1_0.5")]

    def sweep(seed):
        from repro.netcut import explore_blockwise

        data = make_hands_dataset(400, seed=seed)
        train, test = data.split(0.75, rng=0)
        ex = explore_blockwise(bases, train, test, wb.device,
                               head_epochs=25, rng_seed=0)
        return ex

    results = benchmark.pedantic(lambda: [sweep(11), sweep(23)], rounds=1,
                                 iterations=1)
    lines = []
    for ex, seed in zip(results, (11, 23)):
        for name in ("mobilenet_v1_0.25", "mobilenet_v1_0.5"):
            rows = ex.for_base(name)
            accs = [r.accuracy for r in rows]
            lines.append(f"seed={seed} {name}: origin={accs[0]:.4f} "
                         f"deepest={accs[-1]:.4f}")
    emit("ablation_seed_stability", lines)

    for ex in results:
        a25 = [r.accuracy for r in ex.for_base("mobilenet_v1_0.25")]
        a50 = [r.accuracy for r in ex.for_base("mobilenet_v1_0.5")]
        # the wider variant is more accurate at the origin, both seeds
        assert a50[0] > a25[0]
        # deep cuts hurt, both seeds
        assert a50[-1] < max(a50)
        # latencies are device-deterministic: identical across seeds
    lat_a = [r.latency_ms for r in results[0].for_base("mobilenet_v1_0.5")]
    lat_b = [r.latency_ms for r in results[1].for_base("mobilenet_v1_0.5")]
    np.testing.assert_allclose(lat_a, lat_b, rtol=1e-12)
