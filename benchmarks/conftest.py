"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark consumes the same :class:`repro.Workbench`. The expensive
artifacts (pretrained weights, the 148-TRN exploration, the TRN latency
dataset) are built once and cached on disk under the default cache
directory, so the first benchmark session pays for them and later sessions
are fast.

Each benchmark writes the data series it reproduces to
``benchmarks/results/<experiment>.txt`` so the "figure" can be inspected
(and plotted) after the run.
"""

from __future__ import annotations

import os

import pytest

from repro import Workbench

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def wb() -> Workbench:
    return Workbench()


@pytest.fixture(scope="session")
def exploration(wb):
    return wb.exploration()


@pytest.fixture(scope="session")
def latency_points(wb):
    return wb.latency_dataset()


@pytest.fixture(scope="session")
def originals(exploration):
    """Off-the-shelf (0 blocks removed) records, keyed by base network."""
    return {r.base_name: r for r in exploration.originals()}


def emit(name: str, lines: list[str]) -> str:
    """Write a reproduced figure's data series to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def series(xs, ys, fmt="{:.4f}") -> list[str]:
    """Format paired series as aligned two-column rows."""
    return [f"{x!s:>24}  {fmt.format(y)}" for x, y in zip(xs, ys)]
