"""§III-B4 — deployment optimizations: layer fusion and INT8 quantization.

The paper deploys every network with post-training quantization of weights
(per-feature) and activations (per-tensor, max-abs calibration on a random
10% of the training set) plus layer fusion. These benchmarks verify the
latency benefit of each optimization on the device model and that
quantization leaves the classifier's outputs essentially unchanged.
"""

import pytest

from repro.device import QuantizedNetwork, calibration_split, network_latency
from repro.metrics import mean_angular_similarity

from conftest import emit


@pytest.fixture(scope="module")
def calib(wb):
    train_data, _ = wb.hands()
    idx = calibration_split(len(train_data), 0.1, rng=0)
    return train_data.x[idx]


def test_deploy_fusion_speedup(wb, benchmark):
    """Fusion merges conv+BN+activation kernels: fewer launches, less
    intermediate traffic. Every network must speed up substantially."""

    def table():
        rows = {}
        for name in wb.config.networks:
            trn = wb.transfer_model(name)
            unfused = network_latency(trn, wb.device, fused=False).total_ms
            fused = network_latency(trn, wb.device, fused=True).total_ms
            rows[name] = (unfused, fused)
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [f"{'network':20s} {'unfused_ms':>10} {'fused_ms':>9} "
             f"{'speedup':>8}"]
    for name, (unfused, fused) in rows.items():
        lines.append(f"{name:20s} {unfused:>10.3f} {fused:>9.3f} "
                     f"{unfused / fused:>7.2f}x")
        assert fused < 0.8 * unfused, name
    emit("deploy_fusion", lines)


def test_deploy_int8_speedup(wb, benchmark):
    """INT8 halves memory traffic and doubles arithmetic throughput."""

    def table():
        rows = {}
        for name in wb.config.networks:
            trn = wb.transfer_model(name)
            fp32 = network_latency(trn, wb.device).total_ms
            int8 = network_latency(trn, wb.device,
                                   precision="int8").total_ms
            rows[name] = (fp32, int8)
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [f"{'network':20s} {'fp32_ms':>9} {'int8_ms':>9} {'speedup':>8}"]
    for name, (fp32, int8) in rows.items():
        lines.append(f"{name:20s} {fp32:>9.3f} {int8:>9.3f} "
                     f"{fp32 / int8:>7.2f}x")
        assert int8 < fp32, name
    emit("deploy_int8", lines)


def test_deploy_quantization_output_drift(wb, calib, benchmark):
    """Fake-quantized inference tracks fp32: angular similarity between
    int8 and fp32 outputs stays high. (The width-scaled networks quantize
    more coarsely than the originals — 8-channel layers leave int8 little
    headroom — so the bound is 0.90 rather than ~0.99.)"""
    _, test_data = wb.hands()
    x = test_data.x[:96]

    def drift(name):
        trn = wb.transfer_model(name)
        qnet = QuantizedNetwork(trn, calib)
        return mean_angular_similarity(qnet.forward(x), trn.forward(x))

    lines = [f"{'network':20s} {'int8_vs_fp32_similarity':>24}"]
    sim = benchmark.pedantic(drift, args=("mobilenet_v1_0.5",), rounds=1,
                             iterations=1)
    for name in wb.config.networks:
        s = sim if name == "mobilenet_v1_0.5" else drift(name)
        lines.append(f"{name:20s} {s:>24.4f}")
        assert s > 0.90, name
    emit("deploy_quantization_drift", lines)


def test_deploy_quantization_task_accuracy_preserved(wb, calib, benchmark):
    """The paper's actual requirement: post-training quantization must not
    cost task accuracy. Train a TRN head, run the trained TRN in fp32 and
    int8, and compare angular-similarity accuracy against the labels."""
    from repro.metrics import mean_angular_similarity as mas
    from repro.train import record_gap_features, train_head_on_features, \
        transplant_head
    from repro.trim import enumerate_blockwise

    base = wb.base("mobilenet_v1_0.5")
    cut = enumerate_blockwise(base)[0]
    train_data, test_data = wb.hands()

    def trained_accuracies():
        feats = record_gap_features(base, train_data.x, [cut.cut_node])
        head = train_head_on_features(feats[cut.cut_node], train_data.y, 5,
                                      epochs=wb.config.head_epochs,
                                      rng=0).network
        trn = wb.transfer_model("mobilenet_v1_0.5", cut)
        transplant_head(head, trn)
        qnet = QuantizedNetwork(trn, calib)
        fp_acc = mas(trn.forward(test_data.x), test_data.y)
        q_acc = mas(qnet.forward(test_data.x), test_data.y)
        return fp_acc, q_acc

    fp_acc, q_acc = benchmark.pedantic(trained_accuracies, rounds=1,
                                       iterations=1)
    emit("deploy_quantization_accuracy", [
        f"fp32 accuracy: {fp_acc:.4f}",
        f"int8 accuracy: {q_acc:.4f}",
        f"drop: {fp_acc - q_acc:+.4f}"])
    assert q_acc > fp_acc - 0.03
