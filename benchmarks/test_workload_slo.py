"""Workload benchmarks — multi-tenant SLOs and fluid-mode validation.

Not a paper figure: NetCut serves one traffic class on one device; these
benchmarks measure the workload layer built on top of the serving stack.

The SLO benchmark runs a seeded diurnal-plus-flash-crowd scenario where
the flash crowd is overwhelmingly batch traffic (90% share, 12 ms
deadline) sharing one pinned-rung replica with a small interactive
tenant (10% share, 3 ms deadline). Plain EDF admission lets the crowd
flood the bounded queue: batch work ages at the queue head, every batch
degenerates to size 1, and *both* tenants collapse — the interactive
miss rate must exceed 20%. The same trace under weighted-fair admission
(3:1 weights, watermark 0.25) must hold the interactive tenant under a
5% miss rate.

The fluid benchmarks cross-validate the analytical model against the
discrete simulator — admitted throughput and miss rate within 10%
relative on a 3-replica round-robin fleet — then solve 10/25/50/100
replica fleets in under five seconds wall-clock, a scale the event loop
cannot touch.
"""

import time

from repro.cluster import Router, homogeneous_replicas, make_policy
from repro.device import xavier
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import (
    DiurnalCycle,
    FlashCrowd,
    FluidModel,
    Superposition,
    TenantClass,
    TenantMix,
    WeightedFairAdmission,
    generate_trace,
)
from repro.zoo import build_network

import pytest

from conftest import emit

HORIZON_MS = 300.0
SEED = 0

CONFIG_KWARGS = dict(deadline_ms=3.0, execute=False, seed=SEED,
                     queue_capacity=64, adaptive=False, window=16,
                     min_observations=8, cooldown=8)


def make_mix() -> TenantMix:
    return TenantMix([
        TenantClass("interactive", deadline_ms=3.0, weight=3.0,
                    share=0.10, priority=1),
        TenantClass("batch", deadline_ms=12.0, weight=1.0,
                    share=0.90, priority=0),
    ])


def make_scenario() -> Superposition:
    return Superposition(
        DiurnalCycle(3000, amplitude=0.3, period_ms=HORIZON_MS),
        FlashCrowd(1000, peak_multiplier=8.0, start_ms=0.3 * HORIZON_MS,
                   ramp_ms=0.05 * HORIZON_MS, hold_ms=0.25 * HORIZON_MS,
                   decay_ms=0.1 * HORIZON_MS))


@pytest.fixture(scope="module")
def base():
    return build_network("mobilenet_v1_0.5").build(0)


@pytest.fixture(scope="module")
def ladder(base):
    return TRNLadder.from_base(base, xavier(), num_classes=5, max_rungs=6)


def tenant_rows(result) -> list[str]:
    snap = result.metrics.snapshot()
    return [f"  {name:12s} arrived {b['arrived']:5d}  admitted "
            f"{b['admitted']:5d}  rejected {b['rejected']:5d}  "
            f"miss% {100 * b['miss_rate']:7.2f}"
            for name, b in snap["tenants"].items()]


def test_bench_weighted_fair_protects_interactive(ladder, benchmark):
    """Flash-crowd overload: WFA <5% interactive miss, plain EDF >20%."""
    mix = make_mix()
    trace = generate_trace(make_scenario(), HORIZON_MS, tenants=mix,
                           rng=SEED)

    def run_fair():
        policy = WeightedFairAdmission(mix, watermark=0.25)
        config = ServerConfig(admission_policy=policy, **CONFIG_KWARGS)
        return Server(ladder, config).run_trace(trace)

    fair = benchmark(run_fair)
    plain = Server(ladder, ServerConfig(**CONFIG_KWARGS)).run_trace(trace)

    lines = [f"diurnal+flash, {len(trace)} requests over "
             f"{HORIZON_MS:.0f} ms, seed {SEED}", "plain EDF admission:"]
    lines += tenant_rows(plain)
    lines.append("weighted-fair admission (3:1, watermark 0.25):")
    lines += tenant_rows(fair)
    emit("workload_slo", lines)

    plain_miss = plain.metrics.tenant_miss_rate("interactive")
    fair_miss = fair.metrics.tenant_miss_rate("interactive")
    assert plain_miss > 0.20     # the crowd buries the interactive SLO
    assert fair_miss < 0.05      # weighted-fair admission holds it
    # protection is not starvation: batch still gets its queue share
    fair_batch = fair.metrics.snapshot()["tenants"]["batch"]
    assert fair_batch["admitted"] > 0
    assert fair_batch["completed"] == fair_batch["admitted"]


def test_bench_fluid_matches_discrete_on_small_fleet(base, ladder,
                                                     benchmark):
    """Fluid vs discrete on 3 replicas: <=10% relative on both answers."""
    process = make_scenario()
    trace = generate_trace(process, HORIZON_MS, deadline_ms=3.0, rng=1)
    config = ServerConfig(**CONFIG_KWARGS)
    replicas = homogeneous_replicas(base, xavier(), 3, config,
                                    num_classes=5, max_rungs=6)
    discrete = Router(replicas, make_policy("round-robin", SEED)).run(trace)
    d_admit = discrete.metrics.aggregate().counters["admitted"].value \
        * 1e3 / HORIZON_MS
    d_miss = discrete.miss_rate

    fluid = FluidModel.from_ladder(ladder, config)
    pred = benchmark(fluid.solve, process, HORIZON_MS, replicas=3)

    admit_err = abs(pred.admitted_rps - d_admit) / d_admit
    miss_err = abs(pred.miss_rate - d_miss) / d_miss
    emit("workload_fluid_validation", [
        f"3-replica round-robin fleet, {len(trace)} requests, seed 1",
        f"{'':12s} {'admitted rps':>14} {'miss rate':>11}",
        f"{'discrete':12s} {d_admit:>14.0f} {d_miss:>11.4f}",
        f"{'fluid':12s} {pred.admitted_rps:>14.0f} {pred.miss_rate:>11.4f}",
        f"{'rel error':12s} {100 * admit_err:>13.1f}% "
        f"{100 * miss_err:>10.1f}%",
    ])
    assert admit_err <= 0.10
    assert miss_err <= 0.10


def test_bench_fluid_scales_to_large_fleets(ladder, benchmark):
    """10..100-replica fleet sweep solved analytically in <5 s."""
    process = make_scenario()
    fluid = FluidModel.from_ladder(ladder, ServerConfig(**CONFIG_KWARGS),
                                   tenants=make_mix())
    sizes = (10, 25, 50, 100)

    start = time.perf_counter()
    preds = benchmark.pedantic(fluid.sweep, args=(process, HORIZON_MS,
                                                  sizes), rounds=1)
    elapsed = time.perf_counter() - start

    lines = [f"{'replicas':>8} {'admitted rps':>14} {'miss%':>8} "
             f"{'interactive miss%':>18}"]
    for n in sizes:
        p = preds[n]
        lines.append(f"{n:>8d} {p.admitted_rps:>14.0f} "
                     f"{100 * p.miss_rate:>8.2f} "
                     f"{100 * p.tenants['interactive'].miss_rate:>18.2f}")
    lines.append(f"solved in {elapsed:.3f} s wall-clock")
    emit("workload_fluid_sweep", lines)

    assert elapsed < 5.0
    assert set(preds) == set(sizes)
    # big fleets absorb the crowd: everything admitted, nothing missed
    big = preds[100]
    assert big.admitted_rps == pytest.approx(big.offered_rps, rel=0.01)
    assert big.miss_rate < 0.01
    assert preds[10].miss_rate <= 0.25   # even 10 replicas mostly cope
