"""Fig. 1 — latency/accuracy trade-off of the off-the-shelf networks.

The paper's Figure 1 plots the seven off-the-shelf networks on the
latency-accuracy plane and marks the 0.9 ms robotic-hand deadline: only the
MobileNetV1 variants meet it, MobileNetV1(0.5) is the best feasible choice
(0.81 accuracy at 0.36 ms on the real Xavier), and the slack between its
latency and the deadline is an unexploited accuracy gap.

Every test here times a representative step with pytest-benchmark so the
whole file runs under ``--benchmark-only``.
"""

import pytest

from repro.device import measure_latency
from repro.hand import DEFAULT_DEADLINE_MS
from repro.metrics import CandidatePoint, accuracy_gap, best_under_deadline

from conftest import emit


@pytest.fixture(scope="module")
def points(originals):
    return [CandidatePoint(r.base_name, r.latency_ms, r.accuracy)
            for r in originals.values()]


def test_fig01_offtheshelf_tradeoff(points, benchmark):
    best = benchmark(best_under_deadline, points, DEFAULT_DEADLINE_MS)
    gap = accuracy_gap(points, DEFAULT_DEADLINE_MS)

    lines = [f"{'network':24s} {'latency_ms':>10} {'accuracy':>9}"]
    for p in sorted(points, key=lambda p: p.latency_ms):
        lines.append(f"{p.name:24s} {p.latency_ms:>10.3f} {p.accuracy:>9.4f}")
    lines.append(f"deadline: {DEFAULT_DEADLINE_MS} ms")
    lines.append(f"best under deadline: {best.name} "
                 f"(acc {best.accuracy:.4f}); accuracy gap {gap:.4f}")
    emit("fig01_tradeoff", lines)

    # paper shape: only the MobileNetV1 variants meet the deadline ...
    feasible = {p.name for p in points if p.meets(DEFAULT_DEADLINE_MS)}
    assert feasible == {"mobilenet_v1_0.25", "mobilenet_v1_0.5"}
    # ... the best of them is MobileNetV1(0.5) ...
    assert best.name == "mobilenet_v1_0.5"
    # ... and a real accuracy gap is left on the table.
    assert gap > 0.02


def test_fig01_latency_ordering(originals, benchmark):
    lat = benchmark(lambda: {name: r.latency_ms
                             for name, r in originals.items()})
    assert lat["mobilenet_v1_0.25"] < lat["mobilenet_v1_0.5"]
    assert lat["mobilenet_v1_0.5"] < lat["mobilenet_v2_1.0"]
    assert lat["mobilenet_v2_1.0"] < lat["mobilenet_v2_1.4"]
    assert lat["resnet50"] < lat["densenet121"] < lat["inception_v3"]


def test_fig01_accuracy_broadly_increases_with_latency(points, benchmark):
    """Slower networks are (broadly) more accurate: the two extremes hold
    strictly, and pairwise concordance is clearly positive."""
    ordered = sorted(points, key=lambda p: p.latency_ms)
    accs = [p.accuracy for p in ordered]

    def concordance():
        hits = sum(1 for i in range(len(accs))
                   for j in range(i + 1, len(accs)) if accs[j] > accs[i])
        return hits / (len(accs) * (len(accs) - 1) / 2)

    ratio = benchmark(concordance)
    assert accs[0] == min(accs)           # fastest net is least accurate
    assert max(accs[-3:]) == max(accs)    # a slow net is the most accurate
    assert ratio > 0.6


def test_bench_measure_latency(benchmark, wb):
    """Benchmark: one paper-protocol latency measurement (200+800 runs)."""
    trn = wb.transfer_model("mobilenet_v1_0.5")
    result = benchmark(lambda: measure_latency(trn, wb.device).mean_ms)
    assert result > 0
