"""Ablations of the design choices DESIGN.md calls out.

- the profiler estimator's *ratio* formula vs the naive raw-difference
  (the paper's stated reason for the ratio);
- the head-share correction vs the verbatim paper formula (a deviation
  this reproduction documents — the paper's networks are deep enough that
  the head is negligible; ours are not);
- RBF vs linear SVR kernel;
- cross-validated grid search vs random search (the paper found grid
  search better at this sample size);
- the stratified 20% split vs a purely random one for the analytical
  model (random splits let the RBF model extrapolate and fail).
"""

import numpy as np
import pytest

from repro.estimators import SVR, grid_search, random_search, relative_error
from repro.trim import removed_node_set

from conftest import emit


@pytest.fixture(scope="module")
def truth(latency_points):
    return np.array([p.measured_ms for p in latency_points])


def test_ablation_ratio_vs_raw_difference(wb, latency_points, truth,
                                          benchmark):
    profiler = wb.profiler_adapter()

    def both():
        ratio_pred, raw_pred = [], []
        for p in latency_points:
            base = wb.base(p.base_name)
            est = profiler._estimator_for(base)
            removed = removed_node_set(base, p.cut_node)
            ratio_pred.append(est.estimate(removed))
            raw_pred.append(est.estimate_raw_difference(removed))
        return np.array(ratio_pred), np.array(raw_pred)

    ratio_pred, raw_pred = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio_err = relative_error(ratio_pred, truth)
    raw_err = relative_error(raw_pred, truth)
    emit("ablation_ratio_formula", [
        f"ratio formula:      {ratio_err:.2f}%",
        f"raw difference:     {raw_err:.2f}%",
        "paper: the raw sum overestimates because CUDA events inflate "
        "every per-layer record"])
    assert ratio_err < raw_err
    # the raw difference systematically overestimates
    assert np.mean(raw_pred - truth) > 0


def test_ablation_head_correction(wb, latency_points, truth, benchmark):
    """The verbatim paper formula scales the head away on deep cuts; the
    head-share correction removes that bias at this repository's scale."""
    profiler = wb.profiler_adapter()

    def both():
        corrected, verbatim = [], []
        for p in latency_points:
            base = wb.base(p.base_name)
            est = profiler._estimator_for(base)
            removed = removed_node_set(base, p.cut_node)
            corrected.append(est.estimate(removed))
            verbatim.append(est.estimate_paper(removed))
        return np.array(corrected), np.array(verbatim)

    corrected, verbatim = benchmark.pedantic(both, rounds=1, iterations=1)
    corr_err = relative_error(corrected, truth)
    verb_err = relative_error(verbatim, truth)
    # restrict to deep cuts (> 8 blocks removed) where the bias matters
    deep = np.array([p.blocks_removed > 8 for p in latency_points])
    corr_deep = relative_error(corrected[deep], truth[deep])
    verb_deep = relative_error(verbatim[deep], truth[deep])
    emit("ablation_head_correction", [
        f"all cuts:  corrected {corr_err:.2f}%  verbatim {verb_err:.2f}%",
        f"deep cuts: corrected {corr_deep:.2f}%  verbatim {verb_deep:.2f}%"])
    assert corr_err < verb_err
    assert corr_deep < 0.5 * verb_deep


def test_ablation_rbf_vs_linear_kernel(wb, latency_points, truth,
                                       benchmark):
    """RBF-SVR vs linear-kernel SVR vs OLS over the same features."""
    from repro.estimators import AnalyticalEstimator
    from repro.estimators.model_selection import stratified_split_indices

    train_idx, test_idx = stratified_split_indices(
        [p.base_name for p in latency_points], 0.2)
    feats_train = [latency_points[i].features for i in train_idx]
    y_train = truth[train_idx]
    feats_test = [latency_points[i].features for i in test_idx]
    y_test = truth[test_idx]

    def fit_all():
        errs = {}
        for kernel in ("rbf", "linear", "linear-ols"):
            model = AnalyticalEstimator(kernel=kernel).fit(feats_train,
                                                           y_train)
            errs[kernel] = relative_error(model.predict(feats_test), y_test)
        return errs

    errs = benchmark.pedantic(fit_all, rounds=1, iterations=1)
    emit("ablation_kernels", [f"{k}: {v:.2f}%" for k, v in errs.items()])
    assert errs["rbf"] < errs["linear"]
    assert errs["rbf"] < errs["linear-ols"]


def test_ablation_grid_vs_random_search(wb, latency_points, truth,
                                        benchmark):
    """The paper: 'grid search outperforms random search in tuning the
    hyper-parameters as the sample size was not huge'. We assert the
    weaker, robust property: grid search never does worse than random
    search by more than a small margin, at equal budget."""
    from repro.estimators import AnalyticalEstimator
    from repro.estimators.model_selection import stratified_split_indices

    train_idx, _ = stratified_split_indices(
        [p.base_name for p in latency_points], 0.2)
    x = AnalyticalEstimator.design_matrix(
        [latency_points[i].features for i in train_idx])
    y = truth[train_idx]
    factory = lambda gamma, c: SVR(c=c, gamma=gamma)  # noqa: E731

    def search_pair():
        grid = grid_search(factory,
                           {"gamma": [1e-2, 1e-1, 1.0], "c": [1e2, 1e4]},
                           x, y, k=5)
        rand = random_search(factory,
                             {"gamma": (1e-3, 10.0), "c": (10.0, 1e6)},
                             x, y, n_samples=6, k=5, rng=1)
        return grid, rand

    grid, rand = benchmark.pedantic(search_pair, rounds=1, iterations=1)
    emit("ablation_search", [
        f"grid:   best {grid.best_params} cv-err {grid.best_error:.2f}%",
        f"random: best {rand.best_params} cv-err {rand.best_error:.2f}%"])
    assert grid.best_error <= rand.best_error * 1.25


def test_ablation_edgent_layerwise_vs_coarse(wb, latency_points, truth,
                                             benchmark):
    """Related-work comparison (§II): an Edgent-style per-layer-type
    regression, trained on per-layer (unfused) timings, badly overestimates
    on the fused engine — the paper's stated reason for a coarse-grained
    estimator that stays compatible with layer fusion."""
    from repro.estimators import LayerwiseEstimator
    from repro.trim import build_trn

    nets = [wb.transfer_model(n) for n in wb.config.networks]
    est = LayerwiseEstimator().fit_from_device(nets, wb.device)

    def evaluate():
        sample = latency_points[::4]
        preds = []
        for p in sample:
            trn = build_trn(wb.base(p.base_name), p.cut_node, 5)
            preds.append(est.estimate(trn))
        t = truth[::4]
        preds = np.array(preds)
        return (relative_error(preds, t),
                float(np.mean((preds - t) / t)) * 100)

    err, bias = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    profiler_err = 1.6  # see fig09_averages.txt
    emit("ablation_edgent", [
        f"edgent-style per-layer-type model: {err:.1f}% error, "
        f"{bias:+.1f}% bias on the fused engine",
        "netcut coarse estimators: profiler ~1.6%, svr ~4.4% "
        "(fusion-compatible by construction)"])
    assert err > 10 * profiler_err
    assert bias > 20.0  # systematic overestimate, not noise


def test_ablation_stratified_vs_random_split(wb, latency_points, truth,
                                             benchmark):
    """A purely random 20% split can leave whole cut-ranges unobserved and
    makes the RBF model extrapolate; the stratified split avoids the worst
    case. Assert stratified is at least as good on worst-case error."""

    def split_pair():
        svr_s, test_s = wb.analytical_model("rbf", stratified=True)
        svr_r, test_r = wb.analytical_model("rbf", stratified=False)
        err_s = relative_error(
            svr_s.predict([latency_points[i].features for i in test_s]),
            truth[test_s])
        pred_r = svr_r.predict(
            [latency_points[i].features for i in test_r])
        err_r = relative_error(pred_r, truth[test_r])
        worst_r = float(np.max(np.abs(pred_r - truth[test_r])
                               / truth[test_r])) * 100
        return err_s, err_r, worst_r

    err_s, err_r, worst_r = benchmark.pedantic(split_pair, rounds=1,
                                               iterations=1)
    emit("ablation_split", [
        f"stratified split: {err_s:.2f}%",
        f"random split:     {err_r:.2f}% (worst case {worst_r:.1f}%)"])
    assert err_s <= err_r * 1.1
