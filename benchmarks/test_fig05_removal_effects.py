"""Fig. 5 and §IV-B2 — effects of layer removal on accuracy and latency.

Figure 5 plots accuracy against the number of removed layers for all seven
networks (148 TRNs): MobileNets degrade quickly with the slightest removal
while DenseNet and Inception stay flat past 100 removed layers. §IV-B2
notes (without a figure) that inference latency falls almost linearly with
the number of removed layers.
"""

import numpy as np

from conftest import emit


def _curve(exploration, name):
    rows = exploration.for_base(name)
    layers = np.array([r.layers_removed for r in rows])
    accs = np.array([r.accuracy for r in rows])
    lats = np.array([r.latency_ms for r in rows])
    return layers, accs, lats


def test_fig05_accuracy_vs_layers_removed(exploration, wb, benchmark):
    curves = benchmark(lambda: {name: _curve(exploration, name)
                                for name in wb.config.networks})
    lines = [f"{'network':20s} {'layers_removed':>14} {'accuracy':>9}"]
    for name, (layers, accs, _) in curves.items():
        for la, acc in zip(layers, accs):
            lines.append(f"{name:20s} {la:>14d} {acc:>9.4f}")
    emit("fig05_accuracy_vs_removal", lines)

    # total sweep size: 148 TRNs + 7 originals
    assert exploration.networks_trained == 155

    # deep removal hurts every network relative to its own peak
    for name, (layers, accs, _) in curves.items():
        assert accs[-1] < accs.max(), name


def test_fig05_mobilenets_fragile_dense_inception_robust(exploration,
                                                         benchmark):
    """The paper's headline Fig. 5 contrast, at matched relative depth:
    halfway through removal, MobileNets have lost far more of their
    original accuracy than DenseNet/Inception."""

    def half_depth_drop(name):
        layers, accs, _ = _curve(exploration, name)
        origin = accs[0]
        half = layers[-1] / 2
        idx = int(np.argmin(np.abs(layers - half)))
        return (origin - accs[idx]) / origin

    drops = benchmark(lambda: {
        name: half_depth_drop(name)
        for name in ["mobilenet_v1_0.5", "mobilenet_v1_0.25",
                     "densenet121", "inception_v3"]})
    assert drops["mobilenet_v1_0.5"] > 2 * drops["densenet121"]
    assert drops["mobilenet_v1_0.5"] > 2 * drops["inception_v3"]


def test_fig05_dense_inception_flat_past_100_layers(exploration, benchmark):
    """DenseNet's accuracy at 100+ removed layers is within a few percent
    of its unmodified accuracy; Inception holds at its deepest cuts too."""

    def flatness(name, threshold):
        layers, accs, _ = _curve(exploration, name)
        deep = accs[layers >= threshold]
        return (accs[0] - deep.max()) / accs[0] if deep.size else np.nan

    # "low loss passing 100 removed layers, smooth drop afterwards":
    # the best TRN beyond 100 removed layers is within 10% of the original
    dense = benchmark(flatness, "densenet121", 100)
    assert dense < 0.10
    incept = flatness("inception_v3", 60)
    assert incept < 0.06


def test_fig05_mobilenet_drops_with_slightest_removal(exploration,
                                                      benchmark):
    """Removing just a few blocks already costs MobileNetV1(0.5) more
    relative accuracy than DenseNet loses after dozens of layers."""
    layers_m, accs_m, _ = _curve(exploration, "mobilenet_v1_0.5")
    layers_d, accs_d, _ = _curve(exploration, "densenet121")
    mob_early_drop = benchmark(
        lambda: (accs_m[0] - accs_m[3]) / accs_m[0])  # 3 blocks = 6 layers
    dense_50_layer_drop = (accs_d[0]
                           - accs_d[np.argmin(np.abs(layers_d - 50))]) / accs_d[0]
    assert mob_early_drop > dense_50_layer_drop


def test_sec4b2_latency_linear_in_layers_removed(exploration, wb, benchmark):
    """Latency decreases almost linearly with removed layers.

    The narrow MobileNets are slightly convex (early layers run on larger
    feature maps and cost more per layer), so "almost linear" is asserted
    as R² > 0.90 with a strictly negative slope; the deep networks exceed
    0.98.
    """

    def r_squared(name):
        layers, _, lats = _curve(exploration, name)
        coeffs = np.polyfit(layers, lats, 1)
        fit = np.polyval(coeffs, layers)
        ss_res = np.sum((lats - fit) ** 2)
        ss_tot = np.sum((lats - lats.mean()) ** 2)
        return 1 - ss_res / ss_tot, coeffs[0]

    lines = [f"{'network':20s} {'R^2':>8} {'slope_ms_per_layer':>19}"]
    for name in wb.config.networks:
        r2, slope = r_squared(name)
        lines.append(f"{name:20s} {r2:>8.4f} {slope:>19.5f}")
        assert r2 > 0.90, name
        assert slope < 0, name
    for deep_name in ("inception_v3", "resnet50"):
        assert r_squared(deep_name)[0] > 0.98
    emit("sec4b2_latency_linearity", lines)
    benchmark(r_squared, "densenet121")
