"""Fig. 7 — the new Pareto frontier after layer removal.

The paper extracts the Pareto frontier over all TRNs and off-the-shelf
networks and reports that removal-derived TRNs expand it: removing one
block from MobileNetV1(0.5) yields a 10.43% relative accuracy gain at its
latency point, and the average relative improvement across networks is
about 5%.
"""

import numpy as np
import pytest

from repro.hand import DEFAULT_DEADLINE_MS
from repro.metrics import (
    CandidatePoint,
    best_under_deadline,
    pareto_frontier,
    relative_improvement,
)

from conftest import emit


@pytest.fixture(scope="module")
def trn_points(exploration):
    return [CandidatePoint(r.trn_name, r.latency_ms, r.accuracy)
            for r in exploration.records]


@pytest.fixture(scope="module")
def offshelf_points(originals):
    return [CandidatePoint(r.base_name, r.latency_ms, r.accuracy)
            for r in originals.values()]


def test_fig07_frontier_expands(trn_points, offshelf_points, benchmark):
    frontier = benchmark(pareto_frontier, trn_points)
    off_frontier = pareto_frontier(offshelf_points)

    lines = [f"{'frontier member':26s} {'latency_ms':>10} {'accuracy':>9}"]
    for p in frontier:
        lines.append(f"{p.name:26s} {p.latency_ms:>10.3f} "
                     f"{p.accuracy:>9.4f}")
    emit("fig07_pareto_frontier", lines)

    # the TRN frontier has many more members than the off-the-shelf one...
    assert len(frontier) > len(off_frontier)
    # ...and TRNs (not just originals) sit on it
    trimmed_members = [p for p in frontier if "/" in p.name]
    assert len(trimmed_members) >= 3


def test_fig07_relative_improvement_at_deadline(trn_points, offshelf_points,
                                                benchmark):
    """The headline number: TRNs beat the best feasible off-the-shelf
    network at the 0.9 ms deadline by a large relative margin (paper:
    up to 10.43%)."""
    baseline = best_under_deadline(offshelf_points, DEFAULT_DEADLINE_MS)
    best_trn = benchmark(best_under_deadline, trn_points,
                         DEFAULT_DEADLINE_MS)
    gain = relative_improvement(baseline, best_trn)
    emit("fig07_deadline_gain", [
        f"baseline: {baseline.name} acc={baseline.accuracy:.4f}",
        f"best TRN: {best_trn.name} acc={best_trn.accuracy:.4f}",
        f"relative improvement: {gain:+.2f}% (paper: up to +10.43%)"])
    assert gain > 4.0


def test_fig07_average_improvement_across_deadlines(trn_points,
                                                    offshelf_points,
                                                    benchmark):
    """Across a range of deadlines, TRNs improve on the off-the-shelf
    choice by ~5% on average (paper: 5.0% average across TRNs)."""
    deadlines = np.linspace(0.35, 2.2, 12)

    def mean_gain():
        gains = []
        for d in deadlines:
            base = best_under_deadline(offshelf_points, d)
            trn = best_under_deadline(trn_points, d)
            if base is None or trn is None:
                continue
            gains.append(relative_improvement(base, trn))
        return float(np.mean(gains))

    avg = benchmark(mean_gain)
    emit("fig07_average_gain",
         [f"mean relative improvement over {len(deadlines)} deadlines: "
          f"{avg:+.2f}% (paper: 5.0% average)"])
    assert avg > 2.0


def test_fig07_frontier_contains_fast_trns(trn_points, benchmark):
    """Layer removal expands the Pareto frontier to the lower extreme."""
    frontier = benchmark(pareto_frontier, trn_points)
    assert frontier[0].latency_ms < 0.2
